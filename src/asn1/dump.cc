#include "asn1/dump.h"

#include <cstdio>

#include "asn1/der.h"
#include "asn1/oid.h"
#include "asn1/strings.h"
#include "unicode/codec.h"
#include "unicode/properties.h"

namespace unicert::asn1 {
namespace {

bool is_printable_value(BytesView content) {
    if (content.empty()) return false;
    for (uint8_t b : content) {
        if (b < 0x20 || b > 0x7E) return false;
    }
    return true;
}

std::string value_preview(const Tlv& tlv) {
    if (tlv.is_universal(Tag::kOid)) {
        auto oid = Oid::from_der(tlv.content);
        if (oid.ok()) return oid->to_string();
    }
    if (tlv.is_universal(Tag::kInteger) && tlv.content.size() <= 8) {
        auto v = decode_integer(tlv);
        if (v.ok()) return std::to_string(v.value());
    }
    if (tlv.is_universal(Tag::kBoolean)) {
        auto v = decode_boolean(tlv);
        if (v.ok()) return v.value() ? "TRUE" : "FALSE";
    }
    auto st = string_type_from_tag(tlv.tag_number());
    if (tlv.tag_class() == TagClass::kUniversal && st && !tlv.is_constructed()) {
        std::string text = unicode::transcode_to_utf8(tlv.content, nominal_encoding(*st),
                                                      unicode::ErrorPolicy::kHexEscape);
        if (text.size() > 48) text = text.substr(0, 45) + "...";
        return "\"" + text + "\"";
    }
    if (tlv.is_universal(Tag::kUtcTime) || tlv.is_universal(Tag::kGeneralizedTime) ||
        is_printable_value(tlv.content)) {
        std::string text = to_string(tlv.content);
        if (text.size() > 48) text = text.substr(0, 45) + "...";
        return "\"" + text + "\"";
    }
    std::string hex = hex_encode(tlv.content);
    if (hex.size() > 40) hex = hex.substr(0, 37) + "...";
    return hex.empty() ? "" : "0x" + hex;
}

bool is_string_tag(const Tlv& tlv) {
    if (tlv.tag_class() != TagClass::kUniversal) return false;
    return tlv.tag_number() == static_cast<uint8_t>(Tag::kOctetString) ||
           string_type_from_tag(tlv.tag_number()).has_value();
}

void dump_node(BytesView data, size_t depth, size_t max_depth, std::string& out) {
    // Decode tolerantly so BER documents (indefinite lengths,
    // constructed strings) render legibly instead of bailing; strict
    // DER input produces exactly the output the old strict walk did.
    size_t pos = 0;
    while (pos < data.size()) {
        auto bt = read_tlv_tolerant(data.subspan(pos), kToleranceAllBer);
        if (!bt.ok()) {
            out += std::string(depth * 2, ' ') + "<malformed: " + bt.error().message + ">\n";
            return;
        }
        const Tlv& tlv = bt->tlv;
        pos += tlv.total_len;
        out += std::string(depth * 2, ' ') + tag_description(tlv.identifier) + " (" +
               std::to_string(tlv.content.size()) + ")";
        if (bt->indefinite) out += " [indefinite]";
        if (tlv.is_constructed() && is_string_tag(tlv)) {
            size_t segments = 0;
            size_t p = 0;
            while (p < tlv.content.size()) {
                auto seg = read_tlv_tolerant(tlv.content.subspan(p), kToleranceAllBer);
                if (!seg.ok()) break;
                ++segments;
                p += seg->tlv.total_len;
            }
            out += " [" + std::to_string(segments) +
                   (segments == 1 ? " segment]" : " segments]");
        }
        if (tlv.is_constructed() && depth < max_depth) {
            out += "\n";
            dump_node(tlv.content, depth + 1, max_depth, out);
        } else if (tlv.is_universal(Tag::kOctetString) && depth < max_depth &&
                   !tlv.content.empty() && (tlv.content[0] == 0x30 || tlv.content[0] == 0x04 ||
                                            tlv.content[0] == 0x05 || tlv.content[0] == 0x03)) {
            // Extension values are DER inside an OCTET STRING: recurse
            // when the payload plausibly starts a TLV.
            auto inner = read_tlv(tlv.content);
            if (inner.ok() && inner->total_len == tlv.content.size()) {
                out += " wrapping:\n";
                dump_node(tlv.content, depth + 1, max_depth, out);
            } else {
                out += " " + value_preview(tlv) + "\n";
            }
        } else {
            std::string preview = value_preview(tlv);
            if (!preview.empty()) out += " " + preview;
            out += "\n";
        }
    }
}

}  // namespace

std::string tag_description(uint8_t identifier) {
    TagClass cls = tag_class_of(identifier);
    uint8_t number = tag_number_of(identifier);
    if (cls == TagClass::kContextSpecific) {
        return "[" + std::to_string(number) + "]";
    }
    if (cls != TagClass::kUniversal) {
        return (cls == TagClass::kApplication ? "APPLICATION " : "PRIVATE ") +
               std::to_string(number);
    }
    switch (static_cast<Tag>(number)) {
        case Tag::kBoolean: return "BOOLEAN";
        case Tag::kInteger: return "INTEGER";
        case Tag::kBitString: return "BIT STRING";
        case Tag::kOctetString: return "OCTET STRING";
        case Tag::kNull: return "NULL";
        case Tag::kOid: return "OBJECT IDENTIFIER";
        case Tag::kUtf8String: return "UTF8String";
        case Tag::kSequence: return "SEQUENCE";
        case Tag::kSet: return "SET";
        case Tag::kNumericString: return "NumericString";
        case Tag::kPrintableString: return "PrintableString";
        case Tag::kTeletexString: return "TeletexString";
        case Tag::kIa5String: return "IA5String";
        case Tag::kUtcTime: return "UTCTime";
        case Tag::kGeneralizedTime: return "GeneralizedTime";
        case Tag::kVisibleString: return "VisibleString";
        case Tag::kUniversalString: return "UniversalString";
        case Tag::kBmpString: return "BMPString";
    }
    return "UNIVERSAL " + std::to_string(number);
}

std::string dump(BytesView der, size_t max_depth) {
    std::string out;
    dump_node(der, 0, max_depth, out);
    return out;
}

}  // namespace unicert::asn1
