// unicert/asn1/encoding.h
//
// Whole-document encoding-rule analysis over the tolerant TLV reader:
// scan a DER/BER document for the non-DER encodings it exercises, and
// normalize a tolerated BER document back to canonical DER. This is the
// ground truth the encoding-deviation lints, the tlslib EncodingProfile
// models, and the EncodingAnalyzer all share.
#pragma once

#include <optional>
#include <vector>

#include "asn1/der.h"

namespace unicert::asn1 {

// One observed use of a non-DER encoding rule, anchored to the TLV that
// exercised it.
struct EncodingDeviation {
    EncodingRule rule = EncodingRule::kDer;
    size_t offset = 0;       // byte offset of the TLV's identifier octet
    uint8_t identifier = 0;  // that TLV's identifier

    bool operator==(const EncodingDeviation&) const = default;
};

// Result of scanning a document.
struct EncodingScan {
    std::vector<EncodingDeviation> deviations;  // document order
    uint32_t mask = 0;                          // OR of encoding_rule_bit()s
    size_t tlv_count = 0;                       // TLVs visited

    bool strict_der() const noexcept { return mask == 0; }
    bool exercised(EncodingRule r) const noexcept {
        return (mask & encoding_rule_bit(r)) != 0;
    }
};

// Result of normalizing a document to DER.
struct NormalizedDer {
    Bytes der;                                  // canonical re-encoding
    std::vector<EncodingDeviation> deviations;  // what normalization undid
    uint32_t mask = 0;
    size_t tlv_count = 0;
};

// Walk every TLV in `data` (recursing into constructed values and into
// extension-style OCTET STRING wrappers, see nested_in_octet_string)
// and record each non-DER encoding exercised. Deviations covered by
// `tolerance` are recorded; any deviation outside the mask is an error,
// so scanning with kToleranceStrictDer is a strict-DER conformance
// check. Value-level rules (padded bit strings, non-minimal integers)
// are detected here, not in read_tlv_tolerant.
Expected<EncodingScan> scan_encoding(BytesView data, uint32_t tolerance);

// Re-encode `data` as canonical DER, undoing every deviation `tolerance`
// admits: definite minimal lengths, constructed strings concatenated
// back to primitive form, bit-string pad bits zeroed, redundant INTEGER
// sign octets stripped. Strict-DER input re-encodes byte-identically.
// The recorded deviations match scan_encoding's on the same input.
Expected<NormalizedDer> normalize_to_der(BytesView data, uint32_t tolerance);

// The shared recursion rule for extension bodies: X.509 wraps extension
// values in a primitive OCTET STRING whose content is itself one DER
// TLV. When `tlv` is such a wrapper — primitive universal OCTET STRING
// whose content parses under `tolerance` as exactly one universal-class
// TLV spanning the whole value — returns that inner TLV; otherwise
// nullopt and the value is treated as opaque bytes. scan_encoding,
// normalize_to_der, and the BER-izing mutator all descend by this rule
// so their notions of "reachable TLV" agree.
std::optional<BerTlv> nested_in_octet_string(const Tlv& tlv, uint32_t tolerance);

// Value-level deviation predicates (primitive TLV content).
// INTEGER with a redundant leading 0x00/0xFF sign octet.
bool integer_is_nonminimal(BytesView content) noexcept;
// BIT STRING whose pad bits (the low `content[0]` bits of the last
// octet) are not all zero. Requires a well-formed value; malformed
// bit strings (empty, pad count > 7) are the scanner's errors.
bool bit_string_pad_nonzero(BytesView content) noexcept;

}  // namespace unicert::asn1
