// unicert/asn1/time.h
//
// UTCTime / GeneralizedTime handling for certificate validity fields.
// Times are carried as seconds since the Unix epoch (UTC). RFC 5280:
// dates through 2049 use UTCTime, 2050+ use GeneralizedTime; both must
// end in 'Z' with no fractional seconds.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/expected.h"

namespace unicert::asn1 {

// Civil date-time components (UTC).
struct CivilTime {
    int year = 1970;
    int month = 1;  // 1..12
    int day = 1;    // 1..31
    int hour = 0;
    int minute = 0;
    int second = 0;
};

// days/seconds conversion (proleptic Gregorian).
int64_t civil_to_unix(const CivilTime& c) noexcept;
CivilTime unix_to_civil(int64_t t) noexcept;

// Convenience: make a Unix timestamp from components.
int64_t make_time(int year, int month, int day, int hour = 0, int minute = 0,
                  int second = 0) noexcept;

// Parse the value bytes of a UTCTime ("YYMMDDHHMMSSZ"; two-digit years
// map 00-49 -> 20xx, 50-99 -> 19xx per RFC 5280).
Expected<int64_t> parse_utc_time(BytesView value);

// Parse the value bytes of a GeneralizedTime ("YYYYMMDDHHMMSSZ").
Expected<int64_t> parse_generalized_time(BytesView value);

// Format for certificate encoding; picks UTCTime vs GeneralizedTime by
// the RFC 5280 2050 rule and reports which was used.
struct EncodedTime {
    std::string text;   // value bytes as a string
    bool generalized = false;
};
EncodedTime format_validity_time(int64_t unix_time);

// "YYYY-MM-DD HH:MM:SS" for reports.
std::string format_iso(int64_t unix_time);

}  // namespace unicert::asn1
