#include "asn1/der.h"

#include "asn1/strings.h"

namespace unicert::asn1 {

const char* asn1_error_code(Asn1Error e) noexcept {
    switch (e) {
        case Asn1Error::kEmpty: return "der_empty";
        case Asn1Error::kHighTag: return "der_high_tag";
        case Asn1Error::kTruncated: return "der_truncated";
        case Asn1Error::kIndefiniteLength: return "der_indefinite_length";
        case Asn1Error::kNonMinimalLength: return "der_nonminimal_length";
        case Asn1Error::kLengthTooLarge: return "der_length_too_large";
        case Asn1Error::kNestingTooDeep: return "der_nesting_too_deep";
        case Asn1Error::kConstructedString: return "ber_constructed_string";
        case Asn1Error::kBadSegment: return "ber_bad_segment";
        case Asn1Error::kMissingEoc: return "ber_missing_eoc";
        case Asn1Error::kPaddedBitString: return "ber_padded_bit_string";
        case Asn1Error::kNonMinimalInteger: return "ber_nonminimal_integer";
    }
    return "der_error";
}

const char* encoding_rule_name(EncodingRule r) noexcept {
    switch (r) {
        case EncodingRule::kDer: return "der";
        case EncodingRule::kLongFormLength: return "ber_long_form_length";
        case EncodingRule::kConstructedString: return "ber_constructed_string";
        case EncodingRule::kIndefiniteLength: return "ber_indefinite_length";
        case EncodingRule::kPaddedBitString: return "ber_padded_bit_string";
        case EncodingRule::kNonMinimalInteger: return "ber_nonminimal_integer";
    }
    return "unknown";
}

Expected<Tlv> read_tlv(BytesView data) {
    if (data.empty()) return Error{asn1_error_code(Asn1Error::kEmpty), "no bytes to read", 0};

    size_t pos = 0;
    uint8_t id = data[pos++];
    if ((id & 0x1F) == 0x1F) {
        return Error{asn1_error_code(Asn1Error::kHighTag),
                     "multi-byte tag numbers are not used in X.509", 0};
    }

    if (pos >= data.size()) {
        return Error{asn1_error_code(Asn1Error::kTruncated), "missing length octet", pos};
    }
    uint8_t len0 = data[pos++];
    size_t length = 0;
    if (len0 < 0x80) {
        length = len0;
    } else if (len0 == 0x80) {
        return Error{asn1_error_code(Asn1Error::kIndefiniteLength),
                     "indefinite length is forbidden in DER", pos - 1};
    } else {
        size_t num = len0 & 0x7F;
        if (num > data.size() - pos) {
            return Error{asn1_error_code(Asn1Error::kTruncated), "length octets truncated", pos};
        }
        // A redundant leading zero is the specific non-minimal-length
        // error even when the field is too wide to accumulate; check it
        // before the width guard so a zero-padded 9-octet length reports
        // Asn1Error::kNonMinimalLength, not kLengthTooLarge.
        if (num > 1 && data[pos] == 0) {
            return Error{asn1_error_code(Asn1Error::kNonMinimalLength),
                         "leading zero in length octets", pos};
        }
        if (num > sizeof(size_t)) {
            return Error{asn1_error_code(Asn1Error::kLengthTooLarge),
                         "length field too wide", pos - 1};
        }
        for (size_t i = 0; i < num; ++i) length = (length << 8) | data[pos++];
        // DER requires minimal length encoding.
        if (num == 1 && length < 0x80) {
            return Error{asn1_error_code(Asn1Error::kNonMinimalLength),
                         "long form used for short length", pos - 1};
        }
    }

    // Compare against the remaining bytes rather than `pos + length`:
    // an 8-octet length near SIZE_MAX would wrap the addition and slip
    // past the bound.
    if (length > data.size() - pos) {
        return Error{"der_truncated", "content extends past end of buffer", pos};
    }

    Tlv out;
    out.identifier = id;
    out.header_len = pos;
    out.total_len = pos + length;
    out.content = data.subspan(pos, length);
    return out;
}

namespace {

Expected<BerTlv> read_tlv_tolerant_at(BytesView data, uint32_t tolerance, size_t depth);

// Length of the content of an indefinite TLV: walk child TLVs until the
// 00 00 end-of-contents pair. Returns the content length excluding EOC.
Expected<size_t> indefinite_content_len(BytesView data, uint32_t tolerance, size_t depth) {
    size_t pos = 0;
    for (;;) {
        if (pos + 1 < data.size() && data[pos] == 0x00 && data[pos + 1] == 0x00) return pos;
        if (pos >= data.size()) {
            return Error{asn1_error_code(Asn1Error::kMissingEoc),
                         "indefinite length without end-of-contents", pos};
        }
        auto child = read_tlv_tolerant_at(data.subspan(pos), tolerance, depth + 1);
        if (!child.ok()) return child.error().shift_offset(pos);
        pos += child->tlv.total_len;
    }
}

// True for universal tags whose values are strings X.690 allows to be
// split into constructed segments: OCTET STRING and the restricted
// character strings. BIT STRING is deliberately excluded — constructed
// BIT STRING segmentation (pad-bit stitching) is not supported and is
// rejected outright.
bool is_segmentable_string_id(uint8_t id) {
    if (tag_class_of(id) != TagClass::kUniversal) return false;
    uint8_t n = tag_number_of(id);
    if (n == static_cast<uint8_t>(Tag::kOctetString)) return true;
    return string_type_from_tag(n).has_value();
}

Expected<BerTlv> read_tlv_tolerant_at(BytesView data, uint32_t tolerance, size_t depth) {
    if (depth > kMaxNestingDepth) {
        return Error{asn1_error_code(Asn1Error::kNestingTooDeep),
                     "indefinite-length nesting exceeds depth " +
                         std::to_string(kMaxNestingDepth),
                     0};
    }
    if (data.empty()) return Error{asn1_error_code(Asn1Error::kEmpty), "no bytes to read", 0};

    BerTlv out;
    size_t pos = 0;
    uint8_t id = data[pos++];
    if ((id & 0x1F) == 0x1F) {
        return Error{asn1_error_code(Asn1Error::kHighTag),
                     "multi-byte tag numbers are not used in X.509", 0};
    }

    if (pos >= data.size()) {
        return Error{asn1_error_code(Asn1Error::kTruncated), "missing length octet", pos};
    }
    uint8_t len0 = data[pos++];
    size_t length = 0;
    bool indefinite = false;
    const bool tol_long =
        (tolerance & encoding_rule_bit(EncodingRule::kLongFormLength)) != 0;
    if (len0 < 0x80) {
        length = len0;
    } else if (len0 == 0x80) {
        if ((tolerance & encoding_rule_bit(EncodingRule::kIndefiniteLength)) == 0) {
            return Error{asn1_error_code(Asn1Error::kIndefiniteLength),
                         "indefinite length is forbidden in DER", pos - 1};
        }
        if (!is_constructed_id(id)) {
            // X.690 8.1.3.2: only constructed encodings may use the
            // indefinite form, under every tolerance.
            return Error{asn1_error_code(Asn1Error::kIndefiniteLength),
                         "indefinite length on a primitive TLV", pos - 1};
        }
        indefinite = true;
    } else {
        size_t num = len0 & 0x7F;
        if (num > data.size() - pos) {
            return Error{asn1_error_code(Asn1Error::kTruncated), "length octets truncated", pos};
        }
        const bool redundant_zero = num > 1 && data[pos] == 0;
        if (redundant_zero && !tol_long) {
            return Error{asn1_error_code(Asn1Error::kNonMinimalLength),
                         "leading zero in length octets", pos};
        }
        // Width-check the length after stripping tolerated zero padding
        // so 0x89 00 <8 octets> still accumulates.
        size_t effective = num;
        for (size_t zi = pos; effective > 1 && data[zi] == 0; ++zi) --effective;
        if (effective > sizeof(size_t)) {
            return Error{asn1_error_code(Asn1Error::kLengthTooLarge),
                         "length field too wide", pos - 1};
        }
        for (size_t i = 0; i < num; ++i) length = (length << 8) | data[pos++];
        if (effective == 1 && length < 0x80 && !redundant_zero) {
            if (!tol_long) {
                return Error{asn1_error_code(Asn1Error::kNonMinimalLength),
                             "long form used for short length", pos - 1};
            }
            out.deviations |= encoding_rule_bit(EncodingRule::kLongFormLength);
        } else if (redundant_zero) {
            out.deviations |= encoding_rule_bit(EncodingRule::kLongFormLength);
        }
    }

    if (is_constructed_id(id) && is_segmentable_string_id(id)) {
        if ((tolerance & encoding_rule_bit(EncodingRule::kConstructedString)) == 0) {
            return Error{asn1_error_code(Asn1Error::kConstructedString),
                         "constructed string encoding is forbidden in DER", 0};
        }
        out.deviations |= encoding_rule_bit(EncodingRule::kConstructedString);
    }
    if (is_constructed_id(id) && tag_class_of(id) == TagClass::kUniversal &&
        tag_number_of(id) == static_cast<uint8_t>(Tag::kBitString)) {
        return Error{asn1_error_code(Asn1Error::kBadSegment),
                     "constructed BIT STRING segments are not supported", 0};
    }

    size_t content_len = 0;
    size_t trailer = 0;
    if (indefinite) {
        auto clen = indefinite_content_len(data.subspan(pos), tolerance, depth);
        if (!clen.ok()) return clen.error().shift_offset(pos);
        content_len = clen.value();
        trailer = 2;
        out.indefinite = true;
        out.deviations |= encoding_rule_bit(EncodingRule::kIndefiniteLength);
    } else {
        if (length > data.size() - pos) {
            return Error{asn1_error_code(Asn1Error::kTruncated),
                         "content extends past end of buffer", pos};
        }
        content_len = length;
    }

    out.tlv.identifier = id;
    out.tlv.header_len = pos;
    out.tlv.total_len = pos + content_len + trailer;
    out.tlv.content = data.subspan(pos, content_len);
    return out;
}

}  // namespace

Expected<BerTlv> read_tlv_tolerant(BytesView data, uint32_t tolerance) {
    return read_tlv_tolerant_at(data, tolerance, 0);
}

Status check_nesting(BytesView data, size_t max_depth) {
    // Iterative sibling walk: the stack holds the unread remainder of
    // each constructed level, so stack depth == nesting depth and a
    // nesting bomb cannot recurse the C++ stack. The depth guard bounds
    // the stack, so the default limit fits a fixed inline buffer — this
    // runs once per certificate on the zero-copy hot path and must not
    // touch the heap.
    BytesView inline_stack[kMaxNestingDepth];
    std::vector<BytesView> heap_stack;
    BytesView* stack = inline_stack;
    if (max_depth > kMaxNestingDepth) {
        heap_stack.resize(max_depth);
        stack = heap_stack.data();
    }
    size_t depth = 0;
    stack[depth++] = data;
    while (depth > 0) {
        BytesView& level = stack[depth - 1];
        if (level.empty()) {
            --depth;
            continue;
        }
        auto tlv = read_tlv(level);
        if (!tlv.ok()) {
            // Only depth is this guard's concern; malformed TLVs are
            // reported with full context by whichever consumer reads
            // them. Skip the rest of the level.
            --depth;
            continue;
        }
        level = level.subspan(tlv->total_len);
        if (tlv->is_constructed() && !tlv->content.empty()) {
            if (depth >= max_depth) {
                return Error{"der_nesting_too_deep",
                             "TLV nesting exceeds depth " + std::to_string(max_depth)};
            }
            stack[depth++] = tlv->content;
        }
    }
    return Status::success();
}

Expected<Tlv> Reader::next() {
    auto tlv = read_tlv(data_.subspan(pos_));
    if (!tlv.ok()) return tlv.error().shift_offset(pos_);
    pos_ += tlv->total_len;
    return tlv;
}

Expected<Tlv> Reader::peek() const {
    auto tlv = read_tlv(data_.subspan(pos_));
    if (!tlv.ok()) return tlv.error().shift_offset(pos_);
    return tlv;
}

Expected<Tlv> Reader::expect(Tag tag) {
    auto tlv = next();
    if (!tlv.ok()) return tlv;
    if (!tlv->is_universal(tag)) {
        return Error{"der_unexpected_tag",
                     "expected universal tag " + std::to_string(static_cast<int>(tag)) +
                         ", got identifier 0x" + hex_encode({&tlv->identifier, 1})};
    }
    return tlv;
}

Expected<Tlv> Reader::expect_context(uint8_t n) {
    auto tlv = next();
    if (!tlv.ok()) return tlv;
    if (!tlv->is_context(n)) {
        return Error{"der_unexpected_tag",
                     "expected context tag [" + std::to_string(n) + "]"};
    }
    return tlv;
}

Expected<int64_t> decode_integer(const Tlv& tlv) {
    if (tlv.content.empty()) return Error{"der_bad_integer", "empty INTEGER"};
    if (tlv.content.size() > 8) return Error{"der_integer_too_large", "INTEGER exceeds 64 bits"};
    // Accumulate in unsigned space: shifting a negative signed value is
    // UB, and an 8-octet INTEGER with the top bit set (INT64_MIN) must
    // decode without tripping UBSan.
    uint64_t v = (tlv.content[0] & 0x80) ? ~uint64_t{0} : 0;
    for (uint8_t b : tlv.content) v = (v << 8) | b;
    return static_cast<int64_t>(v);
}

Expected<BytesView> decode_integer_magnitude(const Tlv& tlv) {
    if (tlv.content.empty()) return Error{"der_bad_integer", "empty INTEGER"};
    BytesView c = tlv.content;
    // Strip a single leading zero used to keep the value positive.
    if (c.size() > 1 && c[0] == 0x00) c = c.subspan(1);
    return c;
}

Expected<Bytes> decode_integer_bytes(const Tlv& tlv) {
    auto view = decode_integer_magnitude(tlv);
    if (!view.ok()) return view.error();
    return Bytes(view->begin(), view->end());
}

Expected<bool> decode_boolean(const Tlv& tlv) {
    if (tlv.content.size() != 1) return Error{"der_bad_boolean", "BOOLEAN must be one octet"};
    if (tlv.content[0] != 0x00 && tlv.content[0] != 0xFF) {
        return Error{"der_bad_boolean", "DER BOOLEAN must be 0x00 or 0xFF"};
    }
    return tlv.content[0] == 0xFF;
}

Expected<BytesView> decode_bit_string_view(const Tlv& tlv) {
    if (tlv.content.empty()) return Error{"der_bad_bit_string", "missing unused-bits octet"};
    if (tlv.content[0] != 0) {
        return Error{"der_bit_string_unused_bits",
                     "certificates require 0 unused bits in BIT STRING"};
    }
    return tlv.content.subspan(1);
}

Expected<Bytes> decode_bit_string(const Tlv& tlv) {
    auto view = decode_bit_string_view(tlv);
    if (!view.ok()) return view.error();
    return Bytes(view->begin(), view->end());
}

Bytes encode_length(size_t len) {
    Bytes out;
    if (len < 0x80) {
        out.push_back(static_cast<uint8_t>(len));
        return out;
    }
    Bytes tmp;
    while (len > 0) {
        tmp.push_back(static_cast<uint8_t>(len & 0xFF));
        len >>= 8;
    }
    out.push_back(static_cast<uint8_t>(0x80 | tmp.size()));
    out.insert(out.end(), tmp.rbegin(), tmp.rend());
    return out;
}

Bytes encode_length_ber_long(size_t len, size_t extra_zero_octets) {
    Bytes tmp;
    size_t v = len;
    do {
        tmp.push_back(static_cast<uint8_t>(v & 0xFF));
        v >>= 8;
    } while (v > 0);
    size_t extras = extra_zero_octets;
    if (tmp.size() + extras > 126) extras = 126 - tmp.size();
    Bytes out;
    out.push_back(static_cast<uint8_t>(0x80 | (tmp.size() + extras)));
    out.insert(out.end(), extras, 0x00);
    out.insert(out.end(), tmp.rbegin(), tmp.rend());
    return out;
}

void Writer::add_tlv(uint8_t identifier, BytesView content) {
    buf_.push_back(identifier);
    Bytes len = encode_length(content.size());
    append(buf_, len);
    append(buf_, content);
}

void Writer::add_boolean(bool v) {
    uint8_t b = v ? 0xFF : 0x00;
    add_tlv(identifier(Tag::kBoolean), {&b, 1});
}

void Writer::add_integer(int64_t v) {
    // Minimal two's-complement big-endian encoding.
    Bytes content;
    bool negative = v < 0;
    uint64_t uv = static_cast<uint64_t>(v);
    for (int i = 7; i >= 0; --i) {
        content.push_back(static_cast<uint8_t>((uv >> (i * 8)) & 0xFF));
    }
    size_t skip = 0;
    while (skip + 1 < content.size()) {
        uint8_t cur = content[skip];
        uint8_t nxt = content[skip + 1];
        if ((cur == 0x00 && (nxt & 0x80) == 0) || (cur == 0xFF && (nxt & 0x80) != 0)) {
            ++skip;
        } else {
            break;
        }
    }
    (void)negative;
    add_tlv(identifier(Tag::kInteger), BytesView(content).subspan(skip));
}

void Writer::add_integer_bytes(BytesView magnitude) {
    Bytes content;
    size_t skip = 0;
    while (skip + 1 < magnitude.size() && magnitude[skip] == 0) ++skip;
    BytesView mag = magnitude.subspan(skip);
    if (mag.empty()) {
        content.push_back(0);
    } else {
        if (mag[0] & 0x80) content.push_back(0);  // keep positive
        append(content, mag);
    }
    add_tlv(identifier(Tag::kInteger), content);
}

void Writer::add_null() { add_tlv(identifier(Tag::kNull), {}); }

void Writer::add_oid_der(BytesView encoded_oid_body) {
    add_tlv(identifier(Tag::kOid), encoded_oid_body);
}

void Writer::add_octet_string(BytesView content) {
    add_tlv(identifier(Tag::kOctetString), content);
}

void Writer::add_bit_string(BytesView content, uint8_t unused_bits) {
    Bytes body;
    body.push_back(unused_bits);
    append(body, content);
    add_tlv(identifier(Tag::kBitString), body);
}

void Writer::add_string(Tag t, BytesView value_bytes) {
    add_tlv(identifier(t), value_bytes);
}

void Writer::add_string(Tag t, std::string_view value_bytes) {
    // No intermediate owned copy: the bytes go straight into the buffer.
    add_tlv(identifier(t),
            BytesView{reinterpret_cast<const uint8_t*>(value_bytes.data()), value_bytes.size()});
}

void Writer::add_constructed(uint8_t id, const std::function<void(Writer&)>& body) {
    Writer inner;
    body(inner);
    add_tlv(id, inner.bytes());
}

void Writer::add_sequence(const std::function<void(Writer&)>& body) {
    add_constructed(constructed(Tag::kSequence), body);
}

void Writer::add_set(const std::function<void(Writer&)>& body) {
    add_constructed(constructed(Tag::kSet), body);
}

void Writer::add_explicit(uint8_t n, const std::function<void(Writer&)>& body) {
    add_constructed(context(n, /*is_constructed=*/true), body);
}

void Writer::add_raw(BytesView der) { append(buf_, der); }

}  // namespace unicert::asn1
