#include "asn1/der.h"

namespace unicert::asn1 {

Expected<Tlv> read_tlv(BytesView data) {
    if (data.empty()) return Error{"der_empty", "no bytes to read", 0};

    size_t pos = 0;
    uint8_t id = data[pos++];
    if ((id & 0x1F) == 0x1F) {
        return Error{"der_high_tag", "multi-byte tag numbers are not used in X.509", 0};
    }

    if (pos >= data.size()) return Error{"der_truncated", "missing length octet", pos};
    uint8_t len0 = data[pos++];
    size_t length = 0;
    if (len0 < 0x80) {
        length = len0;
    } else if (len0 == 0x80) {
        return Error{"der_indefinite_length", "indefinite length is forbidden in DER", pos - 1};
    } else {
        size_t num = len0 & 0x7F;
        if (num > sizeof(size_t)) {
            return Error{"der_length_too_large", "length field too wide", pos - 1};
        }
        if (num > data.size() - pos) {
            return Error{"der_truncated", "length octets truncated", pos};
        }
        uint8_t first_len_octet = data[pos];
        for (size_t i = 0; i < num; ++i) length = (length << 8) | data[pos++];
        // DER requires minimal length encoding.
        if (num == 1 && length < 0x80) {
            return Error{"der_nonminimal_length", "long form used for short length", pos - 1};
        }
        if (num > 1 && first_len_octet == 0) {
            return Error{"der_nonminimal_length", "leading zero in length octets", pos - num};
        }
    }

    // Compare against the remaining bytes rather than `pos + length`:
    // an 8-octet length near SIZE_MAX would wrap the addition and slip
    // past the bound.
    if (length > data.size() - pos) {
        return Error{"der_truncated", "content extends past end of buffer", pos};
    }

    Tlv out;
    out.identifier = id;
    out.header_len = pos;
    out.total_len = pos + length;
    out.content = data.subspan(pos, length);
    return out;
}

Status check_nesting(BytesView data, size_t max_depth) {
    // Iterative sibling walk: the stack holds the unread remainder of
    // each constructed level, so stack depth == nesting depth and a
    // nesting bomb cannot recurse the C++ stack. The depth guard bounds
    // the stack, so the default limit fits a fixed inline buffer — this
    // runs once per certificate on the zero-copy hot path and must not
    // touch the heap.
    BytesView inline_stack[kMaxNestingDepth];
    std::vector<BytesView> heap_stack;
    BytesView* stack = inline_stack;
    if (max_depth > kMaxNestingDepth) {
        heap_stack.resize(max_depth);
        stack = heap_stack.data();
    }
    size_t depth = 0;
    stack[depth++] = data;
    while (depth > 0) {
        BytesView& level = stack[depth - 1];
        if (level.empty()) {
            --depth;
            continue;
        }
        auto tlv = read_tlv(level);
        if (!tlv.ok()) {
            // Only depth is this guard's concern; malformed TLVs are
            // reported with full context by whichever consumer reads
            // them. Skip the rest of the level.
            --depth;
            continue;
        }
        level = level.subspan(tlv->total_len);
        if (tlv->is_constructed() && !tlv->content.empty()) {
            if (depth >= max_depth) {
                return Error{"der_nesting_too_deep",
                             "TLV nesting exceeds depth " + std::to_string(max_depth)};
            }
            stack[depth++] = tlv->content;
        }
    }
    return Status::success();
}

Expected<Tlv> Reader::next() {
    auto tlv = read_tlv(data_.subspan(pos_));
    if (!tlv.ok()) return tlv.error().shift_offset(pos_);
    pos_ += tlv->total_len;
    return tlv;
}

Expected<Tlv> Reader::peek() const {
    auto tlv = read_tlv(data_.subspan(pos_));
    if (!tlv.ok()) return tlv.error().shift_offset(pos_);
    return tlv;
}

Expected<Tlv> Reader::expect(Tag tag) {
    auto tlv = next();
    if (!tlv.ok()) return tlv;
    if (!tlv->is_universal(tag)) {
        return Error{"der_unexpected_tag",
                     "expected universal tag " + std::to_string(static_cast<int>(tag)) +
                         ", got identifier 0x" + hex_encode({&tlv->identifier, 1})};
    }
    return tlv;
}

Expected<Tlv> Reader::expect_context(uint8_t n) {
    auto tlv = next();
    if (!tlv.ok()) return tlv;
    if (!tlv->is_context(n)) {
        return Error{"der_unexpected_tag",
                     "expected context tag [" + std::to_string(n) + "]"};
    }
    return tlv;
}

Expected<int64_t> decode_integer(const Tlv& tlv) {
    if (tlv.content.empty()) return Error{"der_bad_integer", "empty INTEGER"};
    if (tlv.content.size() > 8) return Error{"der_integer_too_large", "INTEGER exceeds 64 bits"};
    // Accumulate in unsigned space: shifting a negative signed value is
    // UB, and an 8-octet INTEGER with the top bit set (INT64_MIN) must
    // decode without tripping UBSan.
    uint64_t v = (tlv.content[0] & 0x80) ? ~uint64_t{0} : 0;
    for (uint8_t b : tlv.content) v = (v << 8) | b;
    return static_cast<int64_t>(v);
}

Expected<BytesView> decode_integer_magnitude(const Tlv& tlv) {
    if (tlv.content.empty()) return Error{"der_bad_integer", "empty INTEGER"};
    BytesView c = tlv.content;
    // Strip a single leading zero used to keep the value positive.
    if (c.size() > 1 && c[0] == 0x00) c = c.subspan(1);
    return c;
}

Expected<Bytes> decode_integer_bytes(const Tlv& tlv) {
    auto view = decode_integer_magnitude(tlv);
    if (!view.ok()) return view.error();
    return Bytes(view->begin(), view->end());
}

Expected<bool> decode_boolean(const Tlv& tlv) {
    if (tlv.content.size() != 1) return Error{"der_bad_boolean", "BOOLEAN must be one octet"};
    if (tlv.content[0] != 0x00 && tlv.content[0] != 0xFF) {
        return Error{"der_bad_boolean", "DER BOOLEAN must be 0x00 or 0xFF"};
    }
    return tlv.content[0] == 0xFF;
}

Expected<BytesView> decode_bit_string_view(const Tlv& tlv) {
    if (tlv.content.empty()) return Error{"der_bad_bit_string", "missing unused-bits octet"};
    if (tlv.content[0] != 0) {
        return Error{"der_bit_string_unused_bits",
                     "certificates require 0 unused bits in BIT STRING"};
    }
    return tlv.content.subspan(1);
}

Expected<Bytes> decode_bit_string(const Tlv& tlv) {
    auto view = decode_bit_string_view(tlv);
    if (!view.ok()) return view.error();
    return Bytes(view->begin(), view->end());
}

Bytes encode_length(size_t len) {
    Bytes out;
    if (len < 0x80) {
        out.push_back(static_cast<uint8_t>(len));
        return out;
    }
    Bytes tmp;
    while (len > 0) {
        tmp.push_back(static_cast<uint8_t>(len & 0xFF));
        len >>= 8;
    }
    out.push_back(static_cast<uint8_t>(0x80 | tmp.size()));
    out.insert(out.end(), tmp.rbegin(), tmp.rend());
    return out;
}

void Writer::add_tlv(uint8_t identifier, BytesView content) {
    buf_.push_back(identifier);
    Bytes len = encode_length(content.size());
    append(buf_, len);
    append(buf_, content);
}

void Writer::add_boolean(bool v) {
    uint8_t b = v ? 0xFF : 0x00;
    add_tlv(identifier(Tag::kBoolean), {&b, 1});
}

void Writer::add_integer(int64_t v) {
    // Minimal two's-complement big-endian encoding.
    Bytes content;
    bool negative = v < 0;
    uint64_t uv = static_cast<uint64_t>(v);
    for (int i = 7; i >= 0; --i) {
        content.push_back(static_cast<uint8_t>((uv >> (i * 8)) & 0xFF));
    }
    size_t skip = 0;
    while (skip + 1 < content.size()) {
        uint8_t cur = content[skip];
        uint8_t nxt = content[skip + 1];
        if ((cur == 0x00 && (nxt & 0x80) == 0) || (cur == 0xFF && (nxt & 0x80) != 0)) {
            ++skip;
        } else {
            break;
        }
    }
    (void)negative;
    add_tlv(identifier(Tag::kInteger), BytesView(content).subspan(skip));
}

void Writer::add_integer_bytes(BytesView magnitude) {
    Bytes content;
    size_t skip = 0;
    while (skip + 1 < magnitude.size() && magnitude[skip] == 0) ++skip;
    BytesView mag = magnitude.subspan(skip);
    if (mag.empty()) {
        content.push_back(0);
    } else {
        if (mag[0] & 0x80) content.push_back(0);  // keep positive
        append(content, mag);
    }
    add_tlv(identifier(Tag::kInteger), content);
}

void Writer::add_null() { add_tlv(identifier(Tag::kNull), {}); }

void Writer::add_oid_der(BytesView encoded_oid_body) {
    add_tlv(identifier(Tag::kOid), encoded_oid_body);
}

void Writer::add_octet_string(BytesView content) {
    add_tlv(identifier(Tag::kOctetString), content);
}

void Writer::add_bit_string(BytesView content, uint8_t unused_bits) {
    Bytes body;
    body.push_back(unused_bits);
    append(body, content);
    add_tlv(identifier(Tag::kBitString), body);
}

void Writer::add_string(Tag t, BytesView value_bytes) {
    add_tlv(identifier(t), value_bytes);
}

void Writer::add_string(Tag t, std::string_view value_bytes) {
    // No intermediate owned copy: the bytes go straight into the buffer.
    add_tlv(identifier(t),
            BytesView{reinterpret_cast<const uint8_t*>(value_bytes.data()), value_bytes.size()});
}

void Writer::add_constructed(uint8_t id, const std::function<void(Writer&)>& body) {
    Writer inner;
    body(inner);
    add_tlv(id, inner.bytes());
}

void Writer::add_sequence(const std::function<void(Writer&)>& body) {
    add_constructed(constructed(Tag::kSequence), body);
}

void Writer::add_set(const std::function<void(Writer&)>& body) {
    add_constructed(constructed(Tag::kSet), body);
}

void Writer::add_explicit(uint8_t n, const std::function<void(Writer&)>& body) {
    add_constructed(context(n, /*is_constructed=*/true), body);
}

void Writer::add_raw(BytesView der) { append(buf_, der); }

}  // namespace unicert::asn1
