#include "asn1/strings.h"

#include "unicode/properties.h"

namespace unicert::asn1 {

const char* string_type_name(StringType t) noexcept {
    switch (t) {
        case StringType::kUtf8String: return "UTF8String";
        case StringType::kNumericString: return "NumericString";
        case StringType::kPrintableString: return "PrintableString";
        case StringType::kIa5String: return "IA5String";
        case StringType::kVisibleString: return "VisibleString";
        case StringType::kUniversalString: return "UniversalString";
        case StringType::kBmpString: return "BMPString";
        case StringType::kTeletexString: return "TeletexString";
    }
    return "?";
}

Tag string_type_tag(StringType t) noexcept {
    switch (t) {
        case StringType::kUtf8String: return Tag::kUtf8String;
        case StringType::kNumericString: return Tag::kNumericString;
        case StringType::kPrintableString: return Tag::kPrintableString;
        case StringType::kIa5String: return Tag::kIa5String;
        case StringType::kVisibleString: return Tag::kVisibleString;
        case StringType::kUniversalString: return Tag::kUniversalString;
        case StringType::kBmpString: return Tag::kBmpString;
        case StringType::kTeletexString: return Tag::kTeletexString;
    }
    return Tag::kUtf8String;
}

std::optional<StringType> string_type_from_tag(uint8_t tag_number) noexcept {
    switch (tag_number) {
        case static_cast<uint8_t>(Tag::kUtf8String): return StringType::kUtf8String;
        case static_cast<uint8_t>(Tag::kNumericString): return StringType::kNumericString;
        case static_cast<uint8_t>(Tag::kPrintableString): return StringType::kPrintableString;
        case static_cast<uint8_t>(Tag::kIa5String): return StringType::kIa5String;
        case static_cast<uint8_t>(Tag::kVisibleString): return StringType::kVisibleString;
        case static_cast<uint8_t>(Tag::kUniversalString): return StringType::kUniversalString;
        case static_cast<uint8_t>(Tag::kBmpString): return StringType::kBmpString;
        case static_cast<uint8_t>(Tag::kTeletexString): return StringType::kTeletexString;
        default: return std::nullopt;
    }
}

unicode::Encoding nominal_encoding(StringType t) noexcept {
    switch (t) {
        case StringType::kUtf8String: return unicode::Encoding::kUtf8;
        case StringType::kNumericString:
        case StringType::kPrintableString:
        case StringType::kIa5String:
        case StringType::kVisibleString: return unicode::Encoding::kAscii;
        case StringType::kUniversalString: return unicode::Encoding::kUcs4;
        case StringType::kBmpString: return unicode::Encoding::kUcs2;
        case StringType::kTeletexString: return unicode::Encoding::kLatin1;
    }
    return unicode::Encoding::kUtf8;
}

bool in_standard_charset(StringType t, unicode::CodePoint cp) noexcept {
    switch (t) {
        case StringType::kUtf8String:
            return unicode::is_scalar_value(cp);
        case StringType::kNumericString:
            return (cp >= '0' && cp <= '9') || cp == ' ';
        case StringType::kPrintableString:
            if ((cp >= 'A' && cp <= 'Z') || (cp >= 'a' && cp <= 'z') ||
                (cp >= '0' && cp <= '9')) {
                return true;
            }
            switch (cp) {
                case ' ': case '\'': case '(': case ')': case '+': case ',':
                case '-': case '.': case '/': case ':': case '=': case '?':
                    return true;
                default:
                    return false;
            }
        case StringType::kIa5String:
            return cp <= 0x7F;
        case StringType::kVisibleString:
            return cp >= 0x20 && cp <= 0x7E;
        case StringType::kUniversalString:
            return unicode::is_scalar_value(cp);
        case StringType::kBmpString:
            return cp <= 0xFFFF && !unicode::is_surrogate(cp);
        case StringType::kTeletexString:
            // T.61 modelled as Latin-1 repertoire (the practical
            // interpretation applied by mainstream parsers).
            return cp <= 0xFF;
    }
    return false;
}

Status validate_value_bytes(StringType t, BytesView value) {
    auto decoded = unicode::decode(value, nominal_encoding(t));
    if (!decoded.ok()) {
        return Error{"asn1_string_undecodable",
                     std::string(string_type_name(t)) + ": " + decoded.error().message};
    }
    for (unicode::CodePoint cp : decoded.value()) {
        if (!in_standard_charset(t, cp)) {
            return Error{"asn1_string_charset",
                         std::string(string_type_name(t)) + " contains disallowed character " +
                             unicode::codepoint_label(cp)};
        }
    }
    return Status::success();
}

Expected<Bytes> encode_checked(StringType t, const unicode::CodePoints& cps) {
    for (unicode::CodePoint cp : cps) {
        if (!in_standard_charset(t, cp)) {
            return Error{"asn1_string_charset",
                         std::string(string_type_name(t)) + " cannot contain " +
                             unicode::codepoint_label(cp)};
        }
    }
    return unicode::encode(cps, nominal_encoding(t));
}

Expected<Bytes> encode_unchecked(StringType t, const unicode::CodePoints& cps) {
    return unicode::encode(cps, nominal_encoding(t));
}

Expected<unicode::CodePoints> decode_strict(StringType t, BytesView value) {
    return unicode::decode(value, nominal_encoding(t));
}

bool is_directory_string_type(StringType t) noexcept {
    switch (t) {
        case StringType::kPrintableString:
        case StringType::kUtf8String:
        case StringType::kTeletexString:
        case StringType::kUniversalString:
        case StringType::kBmpString:
            return true;
        default:
            return false;
    }
}

}  // namespace unicert::asn1
