// unicert/asn1/tag.h
//
// ASN.1 tag numbers and identifier-octet helpers (X.690).
#pragma once

#include <cstdint>

namespace unicert::asn1 {

// Universal-class tag numbers used in X.509 certificates.
enum class Tag : uint8_t {
    kBoolean = 0x01,
    kInteger = 0x02,
    kBitString = 0x03,
    kOctetString = 0x04,
    kNull = 0x05,
    kOid = 0x06,
    kUtf8String = 0x0C,
    kSequence = 0x10,
    kSet = 0x11,
    kNumericString = 0x12,
    kPrintableString = 0x13,
    kTeletexString = 0x14,
    kIa5String = 0x16,
    kUtcTime = 0x17,
    kGeneralizedTime = 0x18,
    kVisibleString = 0x1A,
    kUniversalString = 0x1C,
    kBmpString = 0x1E,
};

enum class TagClass : uint8_t {
    kUniversal = 0x00,
    kApplication = 0x40,
    kContextSpecific = 0x80,
    kPrivate = 0xC0,
};

inline constexpr uint8_t kConstructedBit = 0x20;

// Full identifier octet for a universal primitive tag.
constexpr uint8_t identifier(Tag t) noexcept { return static_cast<uint8_t>(t); }

// Identifier octet for a universal constructed tag (SEQUENCE, SET).
constexpr uint8_t constructed(Tag t) noexcept {
    return static_cast<uint8_t>(static_cast<uint8_t>(t) | kConstructedBit);
}

// Context-specific tag [n], primitive or constructed.
constexpr uint8_t context(uint8_t n, bool is_constructed) noexcept {
    return static_cast<uint8_t>(static_cast<uint8_t>(TagClass::kContextSpecific) |
                                (is_constructed ? kConstructedBit : 0) | n);
}

constexpr bool is_constructed_id(uint8_t id) noexcept { return (id & kConstructedBit) != 0; }

constexpr TagClass tag_class_of(uint8_t id) noexcept {
    return static_cast<TagClass>(id & 0xC0);
}

constexpr uint8_t tag_number_of(uint8_t id) noexcept { return id & 0x1F; }

}  // namespace unicert::asn1
