#include "asn1/encoding.h"

#include "asn1/strings.h"

namespace unicert::asn1 {
namespace {

constexpr uint32_t rule_bit(EncodingRule r) noexcept { return encoding_rule_bit(r); }

// Shared accumulator for scan and normalize: one walker produces both
// the canonical bytes and the deviation list so the two views can never
// disagree. Deviation offsets are positions in the ORIGINAL document.
struct WalkOut {
    Bytes der;
    std::vector<EncodingDeviation> deviations;
    uint32_t mask = 0;
    size_t tlv_count = 0;

    void record(EncodingRule r, size_t offset, uint8_t id) {
        deviations.push_back(EncodingDeviation{r, offset, id});
        mask |= rule_bit(r);
    }
    void merge(WalkOut&& sub) {
        deviations.insert(deviations.end(), sub.deviations.begin(), sub.deviations.end());
        mask |= sub.mask;
        tlv_count += sub.tlv_count;
    }
};

bool is_segmentable_string_id(uint8_t id) {
    if (tag_class_of(id) != TagClass::kUniversal) return false;
    uint8_t n = tag_number_of(id);
    if (n == static_cast<uint8_t>(Tag::kOctetString)) return true;
    return string_type_from_tag(n).has_value();
}

void emit_tlv(Bytes& out, uint8_t id, BytesView content) {
    out.push_back(id);
    Bytes len = encode_length(content.size());
    out.insert(out.end(), len.begin(), len.end());
    out.insert(out.end(), content.begin(), content.end());
}

Status walk_level(BytesView data, size_t base, size_t depth, uint32_t tolerance, WalkOut& out);

// Normalize one TLV (already read) into out.der, recording deviations.
// `abs` is the identifier's offset in the original document.
Status walk_tlv(const BerTlv& bt, size_t abs, size_t depth, uint32_t tolerance, WalkOut& out) {
    const Tlv& tlv = bt.tlv;
    out.tlv_count++;
    if (bt.exercised(EncodingRule::kLongFormLength)) {
        out.record(EncodingRule::kLongFormLength, abs, tlv.identifier);
    }
    if (bt.exercised(EncodingRule::kConstructedString)) {
        out.record(EncodingRule::kConstructedString, abs, tlv.identifier);
    }
    if (bt.exercised(EncodingRule::kIndefiniteLength)) {
        out.record(EncodingRule::kIndefiniteLength, abs, tlv.identifier);
    }

    const size_t content_base = abs + tlv.header_len;

    if (tlv.is_constructed() && is_segmentable_string_id(tlv.identifier)) {
        // Constructed string: concatenate primitive segments back into
        // one primitive TLV. Segments must carry the parent's tag or
        // OCTET STRING and be primitive; anything else is unsupported.
        Bytes joined;
        size_t pos = 0;
        while (pos < tlv.content.size()) {
            auto seg = read_tlv_tolerant(tlv.content.subspan(pos), tolerance);
            if (!seg.ok()) return seg.error().shift_offset(content_base + pos);
            const Tlv& s = seg->tlv;
            bool tag_ok = tag_class_of(s.identifier) == TagClass::kUniversal &&
                          (tag_number_of(s.identifier) == tag_number_of(tlv.identifier) ||
                           tag_number_of(s.identifier) ==
                               static_cast<uint8_t>(Tag::kOctetString));
            if (s.is_constructed() || !tag_ok) {
                return Error{asn1_error_code(Asn1Error::kBadSegment),
                             "constructed string segment must be a primitive of the "
                             "same type",
                             content_base + pos};
            }
            out.tlv_count++;
            if (seg->exercised(EncodingRule::kLongFormLength)) {
                out.record(EncodingRule::kLongFormLength, content_base + pos, s.identifier);
            }
            joined.insert(joined.end(), s.content.begin(), s.content.end());
            pos += s.total_len;
        }
        emit_tlv(out.der, static_cast<uint8_t>(tlv.identifier & ~kConstructedBit), joined);
        return Status::success();
    }

    if (tlv.is_constructed()) {
        WalkOut sub;
        auto st = walk_level(tlv.content, content_base, depth + 1, tolerance, sub);
        if (!st.ok()) return st;
        out.der.push_back(tlv.identifier);
        Bytes len = encode_length(sub.der.size());
        out.der.insert(out.der.end(), len.begin(), len.end());
        out.der.insert(out.der.end(), sub.der.begin(), sub.der.end());
        out.merge(std::move(sub));
        return Status::success();
    }

    // Primitive values: the two value-level rules, plus the extension
    // wrapper descent.
    if (tlv.is_universal(Tag::kInteger) && integer_is_nonminimal(tlv.content)) {
        if ((tolerance & rule_bit(EncodingRule::kNonMinimalInteger)) == 0) {
            return Error{asn1_error_code(Asn1Error::kNonMinimalInteger),
                         "INTEGER has redundant leading sign octets", abs};
        }
        out.record(EncodingRule::kNonMinimalInteger, abs, tlv.identifier);
        BytesView c = tlv.content;
        while (c.size() > 1 && ((c[0] == 0x00 && (c[1] & 0x80) == 0) ||
                                (c[0] == 0xFF && (c[1] & 0x80) != 0))) {
            c = c.subspan(1);
        }
        emit_tlv(out.der, tlv.identifier, c);
        return Status::success();
    }
    if (tlv.is_universal(Tag::kBitString) && bit_string_pad_nonzero(tlv.content)) {
        if ((tolerance & rule_bit(EncodingRule::kPaddedBitString)) == 0) {
            return Error{asn1_error_code(Asn1Error::kPaddedBitString),
                         "BIT STRING padding bits are not zero", abs};
        }
        out.record(EncodingRule::kPaddedBitString, abs, tlv.identifier);
        Bytes fixed(tlv.content.begin(), tlv.content.end());
        fixed.back() = static_cast<uint8_t>(fixed.back() &
                                            ~((1u << fixed[0]) - 1u));
        emit_tlv(out.der, tlv.identifier, fixed);
        return Status::success();
    }
    if (nested_in_octet_string(tlv, kToleranceAllBer)) {
        // Speculative descent: extension bodies are DER inside an OCTET
        // STRING. Eligibility is probed at FULL tolerance — whether the
        // value is structured content cannot depend on the caller's
        // strictness, or a strict scan would silently skip exactly the
        // wrapped deviations it exists to find. Once the value is known
        // to be structured, the inner walk runs at the caller's
        // tolerance and its errors are real. Only a tolerant-walk
        // failure (opaque blob after all) falls back to verbatim.
        WalkOut sub;
        auto st = walk_level(tlv.content, content_base, depth + 1, tolerance, sub);
        if (st.ok()) {
            out.der.push_back(tlv.identifier);
            Bytes len = encode_length(sub.der.size());
            out.der.insert(out.der.end(), len.begin(), len.end());
            out.der.insert(out.der.end(), sub.der.begin(), sub.der.end());
            out.merge(std::move(sub));
            return Status::success();
        }
        if (tolerance != kToleranceAllBer) {
            WalkOut probe;
            if (walk_level(tlv.content, content_base, depth + 1, kToleranceAllBer, probe)
                    .ok()) {
                return st;  // structured content whose deviation exceeds tolerance
            }
        }
    }
    emit_tlv(out.der, tlv.identifier, tlv.content);
    return Status::success();
}

Status walk_level(BytesView data, size_t base, size_t depth, uint32_t tolerance, WalkOut& out) {
    if (depth > kMaxNestingDepth) {
        return Error{asn1_error_code(Asn1Error::kNestingTooDeep),
                     "TLV nesting exceeds depth " + std::to_string(kMaxNestingDepth), base};
    }
    size_t pos = 0;
    while (pos < data.size()) {
        auto bt = read_tlv_tolerant(data.subspan(pos), tolerance);
        if (!bt.ok()) return bt.error().shift_offset(base + pos);
        auto st = walk_tlv(bt.value(), base + pos, depth, tolerance, out);
        if (!st.ok()) return st;
        pos += bt->tlv.total_len;
    }
    return Status::success();
}

}  // namespace

bool integer_is_nonminimal(BytesView content) noexcept {
    if (content.size() < 2) return false;
    return (content[0] == 0x00 && (content[1] & 0x80) == 0) ||
           (content[0] == 0xFF && (content[1] & 0x80) != 0);
}

bool bit_string_pad_nonzero(BytesView content) noexcept {
    if (content.size() < 2) return false;
    uint8_t unused = content[0];
    if (unused == 0 || unused > 7) return false;
    return (content.back() & ((1u << unused) - 1u)) != 0;
}

std::optional<BerTlv> nested_in_octet_string(const Tlv& tlv, uint32_t tolerance) {
    if (tlv.is_constructed() || !tlv.is_universal(Tag::kOctetString)) return std::nullopt;
    if (tlv.content.empty()) return std::nullopt;
    // Only universal-class inner identifiers qualify: extension bodies
    // start with SEQUENCE / OCTET STRING / BIT STRING / NULL / INTEGER,
    // and the class guard keeps raw blobs that coincidentally look
    // TLV-ish (context tags, high-tag forms) opaque.
    if (tag_class_of(tlv.content[0]) != TagClass::kUniversal) return std::nullopt;
    if ((tlv.content[0] & 0x1F) == 0x1F) return std::nullopt;
    auto inner = read_tlv_tolerant(tlv.content, tolerance);
    if (!inner.ok()) return std::nullopt;
    if (inner->tlv.total_len != tlv.content.size()) return std::nullopt;
    return inner.value();
}

Expected<EncodingScan> scan_encoding(BytesView data, uint32_t tolerance) {
    WalkOut out;
    auto st = walk_level(data, 0, 0, tolerance, out);
    if (!st.ok()) return st.error();
    EncodingScan scan;
    scan.deviations = std::move(out.deviations);
    scan.mask = out.mask;
    scan.tlv_count = out.tlv_count;
    return scan;
}

Expected<NormalizedDer> normalize_to_der(BytesView data, uint32_t tolerance) {
    WalkOut out;
    auto st = walk_level(data, 0, 0, tolerance, out);
    if (!st.ok()) return st.error();
    NormalizedDer norm;
    norm.der = std::move(out.der);
    norm.deviations = std::move(out.deviations);
    norm.mask = out.mask;
    norm.tlv_count = out.tlv_count;
    return norm;
}

}  // namespace unicert::asn1
