// unicert/asn1/der.h
//
// DER (Distinguished Encoding Rules) reader and writer. Definite-length
// only, as DER requires; the reader exposes a TLV cursor interface the
// X.509 parser walks, the writer builds nested structures inside-out.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "asn1/tag.h"
#include "common/bytes.h"
#include "common/expected.h"

namespace unicert::asn1 {

// One decoded TLV element. `content` aliases the input buffer.
struct Tlv {
    uint8_t identifier = 0;          // full identifier octet
    BytesView content;               // value bytes
    size_t header_len = 0;           // bytes of tag + length
    size_t total_len = 0;            // header + content

    bool is_constructed() const noexcept { return is_constructed_id(identifier); }
    TagClass tag_class() const noexcept { return tag_class_of(identifier); }
    uint8_t tag_number() const noexcept { return tag_number_of(identifier); }
    bool is_universal(Tag t) const noexcept {
        return tag_class() == TagClass::kUniversal &&
               tag_number() == static_cast<uint8_t>(t);
    }
    bool is_context(uint8_t n) const noexcept {
        return tag_class() == TagClass::kContextSpecific && tag_number() == n;
    }
};

// Sequential reader over a DER buffer. Does not own the data.
class Reader {
public:
    explicit Reader(BytesView data) noexcept : data_(data) {}

    bool done() const noexcept { return pos_ >= data_.size(); }
    size_t remaining() const noexcept { return data_.size() - pos_; }
    size_t position() const noexcept { return pos_; }

    // Decode the next TLV and advance past it.
    Expected<Tlv> next();

    // Decode the next TLV without advancing.
    Expected<Tlv> peek() const;

    // Read the next TLV and require a specific universal tag.
    Expected<Tlv> expect(Tag tag);

    // Read the next TLV and require a context-specific tag number.
    Expected<Tlv> expect_context(uint8_t n);

private:
    BytesView data_;
    size_t pos_ = 0;
};

// Parse one TLV at the front of `data`.
Expected<Tlv> read_tlv(BytesView data);

// Deepest TLV nesting a well-formed certificate plausibly needs; DER
// documents nested deeper are treated as resource-exhaustion bombs.
inline constexpr size_t kMaxNestingDepth = 64;

// Walk the whole TLV tree (iteratively — bounded memory, no C++
// recursion) and reject documents nested deeper than `max_depth`.
// Malformed TLVs are skipped, not reported: this is purely the
// nesting guard, run before full parsing.
Status check_nesting(BytesView data, size_t max_depth = kMaxNestingDepth);

// ---- Primitive value decoders ---------------------------------------------

// Small-integer decode (fits int64); X.509 versions/serial flags use this.
Expected<int64_t> decode_integer(const Tlv& tlv);

// Arbitrary-precision INTEGER as big-endian magnitude bytes (serials).
Expected<Bytes> decode_integer_bytes(const Tlv& tlv);

// Zero-copy variant: the same validation and leading-zero stripping as
// decode_integer_bytes, but the result aliases the input buffer.
Expected<BytesView> decode_integer_magnitude(const Tlv& tlv);

Expected<bool> decode_boolean(const Tlv& tlv);

// BIT STRING content without the unused-bits octet (must be 0 in certs).
Expected<Bytes> decode_bit_string(const Tlv& tlv);

// Zero-copy variant of decode_bit_string; aliases the input buffer.
Expected<BytesView> decode_bit_string_view(const Tlv& tlv);

// ---- Writer ------------------------------------------------------------

// DER writer. Values are appended; constructed types wrap previously
// written children via the sequence/set helpers which take a builder
// callback.
class Writer {
public:
    const Bytes& bytes() const noexcept { return buf_; }
    Bytes take() noexcept { return std::move(buf_); }

    // Append a complete TLV with the given identifier octet.
    void add_tlv(uint8_t identifier, BytesView content);

    void add_boolean(bool v);
    void add_integer(int64_t v);
    void add_integer_bytes(BytesView magnitude);  // unsigned big-endian
    void add_null();
    void add_oid_der(BytesView encoded_oid_body);
    void add_octet_string(BytesView content);
    void add_bit_string(BytesView content, uint8_t unused_bits = 0);

    // Character-string TLV: raw value bytes with the tag for `t`.
    void add_string(Tag t, BytesView value_bytes);
    void add_string(Tag t, std::string_view value_bytes);

    // Constructed wrapper: runs `body` against a fresh Writer and wraps
    // its output in identifier `id`.
    void add_constructed(uint8_t id, const std::function<void(Writer&)>& body);
    void add_sequence(const std::function<void(Writer&)>& body);
    void add_set(const std::function<void(Writer&)>& body);
    void add_explicit(uint8_t n, const std::function<void(Writer&)>& body);

    // Append already-encoded DER verbatim.
    void add_raw(BytesView der);

private:
    Bytes buf_;
};

// Encode a DER length field.
Bytes encode_length(size_t len);

}  // namespace unicert::asn1
