// unicert/asn1/der.h
//
// DER (Distinguished Encoding Rules) reader and writer. Definite-length
// only, as DER requires; the reader exposes a TLV cursor interface the
// X.509 parser walks, the writer builds nested structures inside-out.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "asn1/tag.h"
#include "common/bytes.h"
#include "common/expected.h"

namespace unicert::asn1 {

// One decoded TLV element. `content` aliases the input buffer.
struct Tlv {
    uint8_t identifier = 0;          // full identifier octet
    BytesView content;               // value bytes
    size_t header_len = 0;           // bytes of tag + length
    size_t total_len = 0;            // header + content

    bool is_constructed() const noexcept { return is_constructed_id(identifier); }
    TagClass tag_class() const noexcept { return tag_class_of(identifier); }
    uint8_t tag_number() const noexcept { return tag_number_of(identifier); }
    bool is_universal(Tag t) const noexcept {
        return tag_class() == TagClass::kUniversal &&
               tag_number() == static_cast<uint8_t>(t);
    }
    bool is_context(uint8_t n) const noexcept {
        return tag_class() == TagClass::kContextSpecific && tag_number() == n;
    }
};

// Sequential reader over a DER buffer. Does not own the data.
class Reader {
public:
    explicit Reader(BytesView data) noexcept : data_(data) {}

    bool done() const noexcept { return pos_ >= data_.size(); }
    size_t remaining() const noexcept { return data_.size() - pos_; }
    size_t position() const noexcept { return pos_; }

    // Decode the next TLV and advance past it.
    Expected<Tlv> next();

    // Decode the next TLV without advancing.
    Expected<Tlv> peek() const;

    // Read the next TLV and require a specific universal tag.
    Expected<Tlv> expect(Tag tag);

    // Read the next TLV and require a context-specific tag number.
    Expected<Tlv> expect_context(uint8_t n);

private:
    BytesView data_;
    size_t pos_ = 0;
};

// Parse one TLV at the front of `data`.
Expected<Tlv> read_tlv(BytesView data);

// ---- Error taxonomy -------------------------------------------------------

// Structural decode failures the TLV readers can report. Each value maps
// to a stable snake_case wire code via asn1_error_code(); the strings are
// part of the tool/JSON surface and must not change once shipped.
enum class Asn1Error : uint8_t {
    kEmpty,               // no bytes where a TLV was required
    kHighTag,             // multi-byte tag number (not used in X.509)
    kTruncated,           // length/content extends past the buffer
    kIndefiniteLength,    // 0x80 length octet outside tolerant mode
    kNonMinimalLength,    // long form where short fits, or redundant
                          // leading zero length octets
    kLengthTooLarge,      // length field wider than size_t
    kNestingTooDeep,      // TLV tree exceeds the depth guard
    kConstructedString,   // constructed string met without tolerance
    kBadSegment,          // constructed-string segment with a foreign tag,
                          // a nested constructed segment, or a constructed
                          // BIT STRING (unsupported)
    kMissingEoc,          // indefinite length without a matching 00 00
    kPaddedBitString,     // nonzero padding bits without tolerance
    kNonMinimalInteger,   // redundant INTEGER sign octets without tolerance
};

// Stable wire code for an Asn1Error ("der_truncated", ...).
const char* asn1_error_code(Asn1Error e) noexcept;

// ---- Encoding-rule taxonomy (X.690) ---------------------------------------

// The encoding axis the differential engine probes: DER is the canonical
// form; the five BER relaxations below are the deviations real parsers
// disagree on (the ASN1EncodingRule taxonomy from the Bouncy Castle /
// pc-dart lineage). kDer is rule zero so the BER rules form a contiguous
// bitmask starting at bit 1.
enum class EncodingRule : uint8_t {
    kDer = 0,              // canonical: minimal definite lengths, primitive
                           // strings, zero pad bits, minimal integers
    kLongFormLength,       // long-form length where short fits, or
                           // redundant leading zero length octets
    kConstructedString,    // string value split into constructed segments
    kIndefiniteLength,     // constructed TLV with 0x80 length + 00 00 EOC
    kPaddedBitString,      // BIT STRING whose padding bits are nonzero
    kNonMinimalInteger,    // INTEGER with redundant leading 00/FF octets
};

inline constexpr size_t kEncodingRuleCount = 6;

// The five non-DER rules, in deviation-bit order.
inline constexpr EncodingRule kAllBerRules[] = {
    EncodingRule::kLongFormLength,   EncodingRule::kConstructedString,
    EncodingRule::kIndefiniteLength, EncodingRule::kPaddedBitString,
    EncodingRule::kNonMinimalInteger,
};

// Stable snake_case name ("ber_long_form_length", ...).
const char* encoding_rule_name(EncodingRule r) noexcept;

// Bit for tolerance masks and deviation sets.
constexpr uint32_t encoding_rule_bit(EncodingRule r) noexcept {
    return 1u << static_cast<uint8_t>(r);
}

// Tolerance masks for the tolerant decode paths. Strict DER (mask 0)
// keeps today's byte-exact reject behaviour.
inline constexpr uint32_t kToleranceStrictDer = 0;
inline constexpr uint32_t kToleranceAllBer =
    encoding_rule_bit(EncodingRule::kLongFormLength) |
    encoding_rule_bit(EncodingRule::kConstructedString) |
    encoding_rule_bit(EncodingRule::kIndefiniteLength) |
    encoding_rule_bit(EncodingRule::kPaddedBitString) |
    encoding_rule_bit(EncodingRule::kNonMinimalInteger);

// One TLV decoded under a tolerance mask. `deviations` records which
// non-DER header encodings this TLV itself exercised (value-level rules —
// padded bit strings, non-minimal integers — are the scanner's business,
// see asn1/encoding.h). For indefinite TLVs `content` excludes the EOC
// pair but `total_len` includes it.
struct BerTlv {
    Tlv tlv;
    uint32_t deviations = 0;   // encoding_rule_bit()s exercised by the header
    bool indefinite = false;

    bool exercised(EncodingRule r) const noexcept {
        return (deviations & encoding_rule_bit(r)) != 0;
    }
};

// Parse one TLV at the front of `data` under `tolerance` (a bitmask of
// encoding_rule_bit()s). With kToleranceStrictDer this rejects every BER
// header deviation with the same codes read_tlv uses — a superset of
// read_tlv's checks (read_tlv does not police constructed strings; the
// X.509 layer does). Each tolerance bit converts the corresponding
// rejection into a recorded deviation. Indefinite lengths require
// scanning for the matching EOC, which nests at most kMaxNestingDepth
// deep. Constructed BIT STRINGs are rejected under every tolerance.
Expected<BerTlv> read_tlv_tolerant(BytesView data, uint32_t tolerance);

// Deepest TLV nesting a well-formed certificate plausibly needs; DER
// documents nested deeper are treated as resource-exhaustion bombs.
inline constexpr size_t kMaxNestingDepth = 64;

// Walk the whole TLV tree (iteratively — bounded memory, no C++
// recursion) and reject documents nested deeper than `max_depth`.
// Malformed TLVs are skipped, not reported: this is purely the
// nesting guard, run before full parsing.
Status check_nesting(BytesView data, size_t max_depth = kMaxNestingDepth);

// ---- Primitive value decoders ---------------------------------------------

// Small-integer decode (fits int64); X.509 versions/serial flags use this.
Expected<int64_t> decode_integer(const Tlv& tlv);

// Arbitrary-precision INTEGER as big-endian magnitude bytes (serials).
Expected<Bytes> decode_integer_bytes(const Tlv& tlv);

// Zero-copy variant: the same validation and leading-zero stripping as
// decode_integer_bytes, but the result aliases the input buffer.
Expected<BytesView> decode_integer_magnitude(const Tlv& tlv);

Expected<bool> decode_boolean(const Tlv& tlv);

// BIT STRING content without the unused-bits octet (must be 0 in certs).
Expected<Bytes> decode_bit_string(const Tlv& tlv);

// Zero-copy variant of decode_bit_string; aliases the input buffer.
Expected<BytesView> decode_bit_string_view(const Tlv& tlv);

// ---- Writer ------------------------------------------------------------

// DER writer. Values are appended; constructed types wrap previously
// written children via the sequence/set helpers which take a builder
// callback.
class Writer {
public:
    const Bytes& bytes() const noexcept { return buf_; }
    Bytes take() noexcept { return std::move(buf_); }

    // Append a complete TLV with the given identifier octet.
    void add_tlv(uint8_t identifier, BytesView content);

    void add_boolean(bool v);
    void add_integer(int64_t v);
    void add_integer_bytes(BytesView magnitude);  // unsigned big-endian
    void add_null();
    void add_oid_der(BytesView encoded_oid_body);
    void add_octet_string(BytesView content);
    void add_bit_string(BytesView content, uint8_t unused_bits = 0);

    // Character-string TLV: raw value bytes with the tag for `t`.
    void add_string(Tag t, BytesView value_bytes);
    void add_string(Tag t, std::string_view value_bytes);

    // Constructed wrapper: runs `body` against a fresh Writer and wraps
    // its output in identifier `id`.
    void add_constructed(uint8_t id, const std::function<void(Writer&)>& body);
    void add_sequence(const std::function<void(Writer&)>& body);
    void add_set(const std::function<void(Writer&)>& body);
    void add_explicit(uint8_t n, const std::function<void(Writer&)>& body);

    // Append already-encoded DER verbatim.
    void add_raw(BytesView der);

private:
    Bytes buf_;
};

// Encode a DER length field.
Bytes encode_length(size_t len);

// Encode a length in BER long form: always the long form (even when the
// short form fits) with `extra_zero_octets` redundant leading zeros.
// Non-minimal by construction — for the BER-izing mutator and tests
// only; DER writers use encode_length. The total octet count is capped
// at the wire maximum of 126 value octets.
Bytes encode_length_ber_long(size_t len, size_t extra_zero_octets);

}  // namespace unicert::asn1
