// unicert/asn1/oid.h
//
// OBJECT IDENTIFIER handling plus the registry of OIDs that X.509
// certificate processing needs (DN attribute types, extensions,
// signature algorithms, access descriptors, general-name helpers).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/expected.h"

namespace unicert::asn1 {

// An object identifier as its arc values, e.g. {2,5,4,3} for id-at-commonName.
class Oid {
public:
    Oid() = default;
    explicit Oid(std::vector<uint32_t> arcs) : arcs_(std::move(arcs)) {}

    // Parse dotted-decimal, e.g. "2.5.4.3".
    static Expected<Oid> from_string(std::string_view dotted);

    // Decode DER content octets (without tag/length).
    static Expected<Oid> from_der(BytesView content);

    const std::vector<uint32_t>& arcs() const noexcept { return arcs_; }
    bool empty() const noexcept { return arcs_.empty(); }

    // Encode to DER content octets.
    Bytes to_der() const;

    // True when `content` (DER content octets) encodes exactly this
    // OID. Allocation-free — the zero-copy extension probe compares
    // raw OID spans against well-known OIDs without decoding them.
    bool matches_der(BytesView content) const noexcept;

    std::string to_string() const;

    bool operator==(const Oid& other) const = default;
    auto operator<=>(const Oid& other) const = default;

private:
    std::vector<uint32_t> arcs_;
};

// Structural validation of DER OID content octets without building the
// arc vector — exactly the acceptance set (and Errors) of
// Oid::from_der, minus the allocation. The zero-copy certificate index
// validates every OID it records a span for through this.
Status validate_oid_der(BytesView content);

// ---- Well-known OIDs -------------------------------------------------------

namespace oids {

// DN attribute types (X.520 / PKCS#9).
const Oid& common_name();              // 2.5.4.3
const Oid& surname();                  // 2.5.4.4
const Oid& serial_number();            // 2.5.4.5
const Oid& country_name();             // 2.5.4.6
const Oid& locality_name();            // 2.5.4.7
const Oid& state_or_province_name();   // 2.5.4.8
const Oid& street_address();           // 2.5.4.9
const Oid& organization_name();        // 2.5.4.10
const Oid& organizational_unit_name(); // 2.5.4.11
const Oid& business_category();        // 2.5.4.15
const Oid& postal_code();              // 2.5.4.17
const Oid& given_name();               // 2.5.4.42
const Oid& domain_component();         // 0.9.2342.19200300.100.1.25
const Oid& email_address();            // 1.2.840.113549.1.9.1 (PKCS#9)
const Oid& jurisdiction_locality();    // 1.3.6.1.4.1.311.60.2.1.1
const Oid& jurisdiction_state();       // 1.3.6.1.4.1.311.60.2.1.2
const Oid& jurisdiction_country();     // 1.3.6.1.4.1.311.60.2.1.3
const Oid& organization_identifier();  // 2.5.4.97

// Extensions.
const Oid& subject_key_identifier();     // 2.5.29.14
const Oid& key_usage();                  // 2.5.29.15
const Oid& subject_alt_name();           // 2.5.29.17
const Oid& issuer_alt_name();            // 2.5.29.18
const Oid& basic_constraints();          // 2.5.29.19
const Oid& crl_distribution_points();    // 2.5.29.31
const Oid& certificate_policies();       // 2.5.29.32
const Oid& authority_key_identifier();   // 2.5.29.35
const Oid& ext_key_usage();              // 2.5.29.37
const Oid& authority_info_access();      // 1.3.6.1.5.5.7.1.1
const Oid& subject_info_access();        // 1.3.6.1.5.5.7.1.11
const Oid& ct_poison();                  // 1.3.6.1.4.1.11129.2.4.3
const Oid& ct_sct_list();                // 1.3.6.1.4.1.11129.2.4.2
const Oid& smtp_utf8_mailbox();          // 1.3.6.1.5.5.7.8.9 (otherName)

// Policy qualifier ids.
const Oid& cps_qualifier();              // 1.3.6.1.5.5.7.2.1
const Oid& user_notice_qualifier();      // 1.3.6.1.5.5.7.2.2

// Access method ids (AIA/SIA).
const Oid& ad_ocsp();                    // 1.3.6.1.5.5.7.48.1
const Oid& ad_ca_issuers();              // 1.3.6.1.5.5.7.48.2

// Signature algorithm placeholder for the SimSig substrate; we reuse
// an arc under the private enterprise space reserved for experiments.
const Oid& sim_sig_with_sha256();        // 1.3.6.1.4.1.99999.1.1

}  // namespace oids

// Short attribute-type name ("CN", "O", …) for a DN attribute OID, or
// the dotted form when unknown.
std::string attribute_short_name(const Oid& oid);

}  // namespace unicert::asn1
