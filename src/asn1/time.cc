#include "asn1/time.h"

#include <cstdio>

namespace unicert::asn1 {
namespace {

// Howard Hinnant's days-from-civil algorithm.
int64_t days_from_civil(int y, int m, int d) noexcept {
    y -= m <= 2;
    int64_t era = (y >= 0 ? y : y - 399) / 400;
    int64_t yoe = y - era * 400;
    int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
    int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    return era * 146097 + doe - 719468;
}

void civil_from_days(int64_t z, int& y, int& m, int& d) noexcept {
    z += 719468;
    int64_t era = (z >= 0 ? z : z - 146096) / 146097;
    int64_t doe = z - era * 146097;
    int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    int64_t yy = yoe + era * 400;
    int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    int64_t mp = (5 * doy + 2) / 153;
    d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
    m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
    y = static_cast<int>(yy + (m <= 2));
}

bool all_digits(BytesView v, size_t from, size_t to) {
    for (size_t i = from; i < to; ++i) {
        if (v[i] < '0' || v[i] > '9') return false;
    }
    return true;
}

int two(BytesView v, size_t i) { return (v[i] - '0') * 10 + (v[i + 1] - '0'); }

bool valid_fields(int month, int day, int hour, int minute, int second) {
    return month >= 1 && month <= 12 && day >= 1 && day <= 31 && hour <= 23 && minute <= 59 &&
           second <= 60;
}

}  // namespace

int64_t civil_to_unix(const CivilTime& c) noexcept {
    return days_from_civil(c.year, c.month, c.day) * 86400 + c.hour * 3600 + c.minute * 60 +
           c.second;
}

CivilTime unix_to_civil(int64_t t) noexcept {
    CivilTime c;
    int64_t days = t / 86400;
    int64_t rem = t % 86400;
    if (rem < 0) {
        rem += 86400;
        --days;
    }
    civil_from_days(days, c.year, c.month, c.day);
    c.hour = static_cast<int>(rem / 3600);
    c.minute = static_cast<int>((rem % 3600) / 60);
    c.second = static_cast<int>(rem % 60);
    return c;
}

int64_t make_time(int year, int month, int day, int hour, int minute, int second) noexcept {
    return civil_to_unix({year, month, day, hour, minute, second});
}

Expected<int64_t> parse_utc_time(BytesView value) {
    if (value.size() != 13 || value[12] != 'Z' || !all_digits(value, 0, 12)) {
        return Error{"utctime_bad_format", "UTCTime must be YYMMDDHHMMSSZ"};
    }
    int yy = two(value, 0);
    int year = yy < 50 ? 2000 + yy : 1900 + yy;
    int month = two(value, 2), day = two(value, 4);
    int hour = two(value, 6), minute = two(value, 8), second = two(value, 10);
    if (!valid_fields(month, day, hour, minute, second)) {
        return Error{"utctime_bad_value", "field out of range"};
    }
    return make_time(year, month, day, hour, minute, second);
}

Expected<int64_t> parse_generalized_time(BytesView value) {
    if (value.size() != 15 || value[14] != 'Z' || !all_digits(value, 0, 14)) {
        return Error{"gentime_bad_format", "GeneralizedTime must be YYYYMMDDHHMMSSZ"};
    }
    int year = two(value, 0) * 100 + two(value, 2);
    int month = two(value, 4), day = two(value, 6);
    int hour = two(value, 8), minute = two(value, 10), second = two(value, 12);
    if (!valid_fields(month, day, hour, minute, second)) {
        return Error{"gentime_bad_value", "field out of range"};
    }
    return make_time(year, month, day, hour, minute, second);
}

EncodedTime format_validity_time(int64_t unix_time) {
    CivilTime c = unix_to_civil(unix_time);
    char buf[24];
    EncodedTime out;
    if (c.year >= 1950 && c.year <= 2049) {
        std::snprintf(buf, sizeof(buf), "%02d%02d%02d%02d%02d%02dZ", c.year % 100, c.month, c.day,
                      c.hour, c.minute, c.second);
        out.generalized = false;
    } else {
        std::snprintf(buf, sizeof(buf), "%04d%02d%02d%02d%02d%02dZ", c.year, c.month, c.day,
                      c.hour, c.minute, c.second);
        out.generalized = true;
    }
    out.text = buf;
    return out;
}

std::string format_iso(int64_t unix_time) {
    CivilTime c = unix_to_civil(unix_time);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", c.year, c.month, c.day,
                  c.hour, c.minute, c.second);
    return buf;
}

}  // namespace unicert::asn1
