// unicert/asn1/strings.h
//
// ASN.1 character string types used in X.509 (Table 8 of the paper):
// per-type standard character sets, the nominal byte encoding of each
// type, strict validation, and *unchecked* encoding for crafting
// deliberately noncompliant test Unicerts (Section 3.2).
#pragma once

#include <optional>
#include <string>

#include "asn1/tag.h"
#include "common/bytes.h"
#include "common/expected.h"
#include "unicode/codec.h"
#include "unicode/codepoint.h"

namespace unicert::asn1 {

enum class StringType {
    kUtf8String,
    kNumericString,
    kPrintableString,
    kIa5String,
    kVisibleString,
    kUniversalString,
    kBmpString,
    kTeletexString,
};

const char* string_type_name(StringType t) noexcept;

// The DER tag for a string type.
Tag string_type_tag(StringType t) noexcept;

// Inverse: string type for a universal tag number, if it is one.
std::optional<StringType> string_type_from_tag(uint8_t tag_number) noexcept;

// The nominal (standards-compliant) byte encoding for each type:
// PrintableString/IA5String/NumericString/VisibleString -> ASCII,
// UTF8String -> UTF-8, BMPString -> UCS-2, UniversalString -> UCS-4,
// TeletexString -> Latin-1 (the common simplification of T.61 that
// real-world parsers apply).
unicode::Encoding nominal_encoding(StringType t) noexcept;

// Whether `cp` is inside the *standard character set* of the type —
// e.g. PrintableString admits only [A-Za-z0-9 '()+,-./:=?],
// IA5String the 7-bit set, NumericString digits and space.
bool in_standard_charset(StringType t, unicode::CodePoint cp) noexcept;

// Validate that value *bytes* are well-formed for the type (decodable
// by the nominal encoding) and that every decoded character lies in
// the standard charset. On failure the Error code distinguishes
// "undecodable" from "charset" violations.
Status validate_value_bytes(StringType t, BytesView value);

// Encode code points as value bytes for the type, enforcing the
// standard charset. Used by compliant certificate construction.
Expected<Bytes> encode_checked(StringType t, const unicode::CodePoints& cps);

// Encode code points using only the nominal byte encoding, with NO
// charset enforcement (e.g. non-printable characters inside a
// PrintableString). This is the generator's tool for crafting the
// noncompliant Unicerts the paper measures. Fails only when the byte
// encoding itself cannot represent a code point.
Expected<Bytes> encode_unchecked(StringType t, const unicode::CodePoints& cps);

// Decode value bytes with the nominal encoding, strictly.
Expected<unicode::CodePoints> decode_strict(StringType t, BytesView value);

// All string types DirectoryString permits (RFC 5280):
// printable, utf8, teletex, universal, bmp.
bool is_directory_string_type(StringType t) noexcept;

}  // namespace unicert::asn1
