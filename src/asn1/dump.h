// unicert/asn1/dump.h
//
// Human-readable ASN.1 tree dump (openssl asn1parse style) for
// debugging certificates and the unicert_inspect --asn1 view.
#pragma once

#include <string>

#include "common/bytes.h"

namespace unicert::asn1 {

// Render the DER structure as an indented tree. Malformed regions are
// reported inline rather than aborting the dump.
std::string dump(BytesView der, size_t max_depth = 32);

// Name for a universal tag number ("SEQUENCE", "UTF8String", ...).
std::string tag_description(uint8_t identifier);

}  // namespace unicert::asn1
