#include "asn1/oid.h"

namespace unicert::asn1 {

Expected<Oid> Oid::from_string(std::string_view dotted) {
    std::vector<uint32_t> arcs;
    uint64_t cur = 0;
    bool have_digit = false;
    for (char c : dotted) {
        if (c >= '0' && c <= '9') {
            cur = cur * 10 + static_cast<uint64_t>(c - '0');
            if (cur > 0xFFFFFFFFULL) return Error{"oid_arc_overflow", "arc exceeds 32 bits"};
            have_digit = true;
        } else if (c == '.') {
            if (!have_digit) return Error{"oid_bad_syntax", "empty arc"};
            arcs.push_back(static_cast<uint32_t>(cur));
            cur = 0;
            have_digit = false;
        } else {
            return Error{"oid_bad_syntax", std::string("invalid character '") + c + "'"};
        }
    }
    if (!have_digit) return Error{"oid_bad_syntax", "trailing dot or empty OID"};
    arcs.push_back(static_cast<uint32_t>(cur));
    if (arcs.size() < 2) return Error{"oid_bad_syntax", "OID needs at least two arcs"};
    if (arcs[0] > 2 || (arcs[0] < 2 && arcs[1] > 39)) {
        return Error{"oid_bad_syntax", "invalid first/second arc"};
    }
    return Oid{std::move(arcs)};
}

namespace {

// Shared base-128 scan behind from_der and validate_oid_der: one
// acceptance set, one Error vocabulary. `out` is null in validate-only
// mode, which is what keeps the zero-copy index allocation-free.
Status scan_oid_der(BytesView content, std::vector<uint32_t>* out) {
    if (content.empty()) return Error{"oid_empty", "empty OID content"};
    uint64_t cur = 0;
    bool in_arc = false;
    bool first_done = false;
    for (size_t i = 0; i < content.size(); ++i) {
        uint8_t b = content[i];
        if (!in_arc && b == 0x80) {
            return Error{"oid_nonminimal", "leading 0x80 in base-128 arc"};
        }
        cur = (cur << 7) | (b & 0x7F);
        if (cur > 0xFFFFFFFFULL) return Error{"oid_arc_overflow", "arc exceeds 32 bits"};
        in_arc = true;
        if ((b & 0x80) == 0) {
            if (!first_done) {
                // First subidentifier packs the first two arcs.
                first_done = true;
                if (out != nullptr) {
                    uint32_t first = cur < 40 ? 0 : (cur < 80 ? 1 : 2);
                    out->push_back(first);
                    out->push_back(static_cast<uint32_t>(cur - first * 40));
                }
            } else if (out != nullptr) {
                out->push_back(static_cast<uint32_t>(cur));
            }
            cur = 0;
            in_arc = false;
        }
    }
    if (in_arc) return Error{"oid_truncated", "OID ends mid-arc"};
    return Status::success();
}

}  // namespace

Expected<Oid> Oid::from_der(BytesView content) {
    std::vector<uint32_t> arcs;
    if (Status s = scan_oid_der(content, &arcs); !s.ok()) return s.error();
    return Oid{std::move(arcs)};
}

Status validate_oid_der(BytesView content) { return scan_oid_der(content, nullptr); }

Bytes Oid::to_der() const {
    Bytes out;
    if (arcs_.size() < 2) return out;
    auto push_base128 = [&out](uint64_t v) {
        uint8_t tmp[10];
        int n = 0;
        do {
            tmp[n++] = static_cast<uint8_t>(v & 0x7F);
            v >>= 7;
        } while (v > 0);
        for (int i = n - 1; i > 0; --i) out.push_back(static_cast<uint8_t>(tmp[i] | 0x80));
        out.push_back(tmp[0]);
    };
    push_base128(static_cast<uint64_t>(arcs_[0]) * 40 + arcs_[1]);
    for (size_t i = 2; i < arcs_.size(); ++i) push_base128(arcs_[i]);
    return out;
}

bool Oid::matches_der(BytesView content) const noexcept {
    if (arcs_.size() < 2 || content.empty()) return false;
    // Decode arc-by-arc and compare against arcs_ incrementally; no
    // allocation either way (this runs per extension probe on the lint
    // hot path).
    size_t next = 0;  // index into arcs_ of the next expected arc
    uint64_t cur = 0;
    bool in_arc = false;
    for (uint8_t b : content) {
        if (!in_arc && b == 0x80) return false;
        cur = (cur << 7) | (b & 0x7F);
        if (cur > 0xFFFFFFFFULL) return false;
        in_arc = true;
        if ((b & 0x80) == 0) {
            uint64_t expected;
            if (next == 0) {
                expected = static_cast<uint64_t>(arcs_[0]) * 40 + arcs_[1];
                next = 2;
            } else {
                if (next >= arcs_.size()) return false;
                expected = arcs_[next++];
            }
            if (cur != expected) return false;
            cur = 0;
            in_arc = false;
        }
    }
    return !in_arc && next == arcs_.size();
}

std::string Oid::to_string() const {
    std::string out;
    for (size_t i = 0; i < arcs_.size(); ++i) {
        if (i) out.push_back('.');
        out += std::to_string(arcs_[i]);
    }
    return out;
}

namespace oids {
namespace {
Oid make(std::initializer_list<uint32_t> arcs) { return Oid{std::vector<uint32_t>(arcs)}; }
}  // namespace

#define UNICERT_DEFINE_OID(name, ...)               \
    const Oid& name() {                             \
        static const Oid oid = make({__VA_ARGS__}); \
        return oid;                                 \
    }

UNICERT_DEFINE_OID(common_name, 2, 5, 4, 3)
UNICERT_DEFINE_OID(surname, 2, 5, 4, 4)
UNICERT_DEFINE_OID(serial_number, 2, 5, 4, 5)
UNICERT_DEFINE_OID(country_name, 2, 5, 4, 6)
UNICERT_DEFINE_OID(locality_name, 2, 5, 4, 7)
UNICERT_DEFINE_OID(state_or_province_name, 2, 5, 4, 8)
UNICERT_DEFINE_OID(street_address, 2, 5, 4, 9)
UNICERT_DEFINE_OID(organization_name, 2, 5, 4, 10)
UNICERT_DEFINE_OID(organizational_unit_name, 2, 5, 4, 11)
UNICERT_DEFINE_OID(business_category, 2, 5, 4, 15)
UNICERT_DEFINE_OID(postal_code, 2, 5, 4, 17)
UNICERT_DEFINE_OID(given_name, 2, 5, 4, 42)
UNICERT_DEFINE_OID(domain_component, 0, 9, 2342, 19200300, 100, 1, 25)
UNICERT_DEFINE_OID(email_address, 1, 2, 840, 113549, 1, 9, 1)
UNICERT_DEFINE_OID(jurisdiction_locality, 1, 3, 6, 1, 4, 1, 311, 60, 2, 1, 1)
UNICERT_DEFINE_OID(jurisdiction_state, 1, 3, 6, 1, 4, 1, 311, 60, 2, 1, 2)
UNICERT_DEFINE_OID(jurisdiction_country, 1, 3, 6, 1, 4, 1, 311, 60, 2, 1, 3)
UNICERT_DEFINE_OID(organization_identifier, 2, 5, 4, 97)

UNICERT_DEFINE_OID(subject_key_identifier, 2, 5, 29, 14)
UNICERT_DEFINE_OID(key_usage, 2, 5, 29, 15)
UNICERT_DEFINE_OID(subject_alt_name, 2, 5, 29, 17)
UNICERT_DEFINE_OID(issuer_alt_name, 2, 5, 29, 18)
UNICERT_DEFINE_OID(basic_constraints, 2, 5, 29, 19)
UNICERT_DEFINE_OID(crl_distribution_points, 2, 5, 29, 31)
UNICERT_DEFINE_OID(certificate_policies, 2, 5, 29, 32)
UNICERT_DEFINE_OID(authority_key_identifier, 2, 5, 29, 35)
UNICERT_DEFINE_OID(ext_key_usage, 2, 5, 29, 37)
UNICERT_DEFINE_OID(authority_info_access, 1, 3, 6, 1, 5, 5, 7, 1, 1)
UNICERT_DEFINE_OID(subject_info_access, 1, 3, 6, 1, 5, 5, 7, 1, 11)
UNICERT_DEFINE_OID(ct_poison, 1, 3, 6, 1, 4, 1, 11129, 2, 4, 3)
UNICERT_DEFINE_OID(ct_sct_list, 1, 3, 6, 1, 4, 1, 11129, 2, 4, 2)
UNICERT_DEFINE_OID(smtp_utf8_mailbox, 1, 3, 6, 1, 5, 5, 7, 8, 9)

UNICERT_DEFINE_OID(cps_qualifier, 1, 3, 6, 1, 5, 5, 7, 2, 1)
UNICERT_DEFINE_OID(user_notice_qualifier, 1, 3, 6, 1, 5, 5, 7, 2, 2)

UNICERT_DEFINE_OID(ad_ocsp, 1, 3, 6, 1, 5, 5, 7, 48, 1)
UNICERT_DEFINE_OID(ad_ca_issuers, 1, 3, 6, 1, 5, 5, 7, 48, 2)

UNICERT_DEFINE_OID(sim_sig_with_sha256, 1, 3, 6, 1, 4, 1, 99999, 1, 1)

#undef UNICERT_DEFINE_OID

}  // namespace oids

std::string attribute_short_name(const Oid& oid) {
    using namespace oids;
    if (oid == common_name()) return "CN";
    if (oid == surname()) return "SN";
    if (oid == serial_number()) return "serialNumber";
    if (oid == country_name()) return "C";
    if (oid == locality_name()) return "L";
    if (oid == state_or_province_name()) return "ST";
    if (oid == street_address()) return "STREET";
    if (oid == organization_name()) return "O";
    if (oid == organizational_unit_name()) return "OU";
    if (oid == business_category()) return "businessCategory";
    if (oid == postal_code()) return "postalCode";
    if (oid == given_name()) return "GN";
    if (oid == domain_component()) return "DC";
    if (oid == email_address()) return "emailAddress";
    if (oid == jurisdiction_locality()) return "jurisdictionL";
    if (oid == jurisdiction_state()) return "jurisdictionST";
    if (oid == jurisdiction_country()) return "jurisdictionC";
    if (oid == organization_identifier()) return "organizationIdentifier";
    return oid.to_string();
}

}  // namespace unicert::asn1
