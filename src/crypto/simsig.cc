#include "crypto/simsig.h"

namespace unicert::crypto {

SimSigner SimSigner::from_name(std::string_view name) {
    Bytes seed = to_bytes("unicert-simsig-v1:");
    append(seed, to_bytes(name));
    return SimSigner{sha256_bytes(seed)};
}

Bytes SimSigner::public_key() const { return sha256_bytes(secret_); }

Bytes SimSigner::key_id() const {
    Bytes pk = public_key();
    Bytes id = sha256_bytes(pk);
    id.resize(20);
    return id;
}

Bytes SimSigner::sign(BytesView message) const {
    Sha256 h;
    h.update(secret_);
    h.update(message);
    Digest d = h.finish();
    return Bytes(d.begin(), d.end());
}

bool sim_verify(const SimSigner& signer, BytesView message, BytesView signature) {
    Bytes expected = signer.sign(message);
    if (expected.size() != signature.size()) return false;
    // Constant-time compare (good hygiene even in a simulation).
    uint8_t diff = 0;
    for (size_t i = 0; i < expected.size(); ++i) diff |= expected[i] ^ signature[i];
    return diff == 0;
}

}  // namespace unicert::crypto
