// unicert/crypto/simsig.h
//
// SimSig: a deterministic hash-based signature substrate.
//
// Documented substitution (see DESIGN.md): the paper's experiments need
// certificate chains that *verify structurally* — signature bytes that
// bind a TBS blob to an issuer key — but never rely on cryptographic
// hardness. SimSig signs with sig = SHA256(secret || tbs) and verifies
// by recomputation, giving real sign/verify/chain semantics with zero
// external dependencies. The public key is SHA256(secret) so a
// verifier can be addressed without revealing the secret (within this
// simulation's honest-component threat model).
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace unicert::crypto {

// Signing key: wraps a secret seed. Deterministically derivable from a
// name so corpus generation is reproducible.
class SimSigner {
public:
    // Derive a signer from an arbitrary identity string (e.g. the CA
    // subject DN). Same name -> same key, which keeps the synthetic CT
    // corpus stable across runs.
    static SimSigner from_name(std::string_view name);

    explicit SimSigner(Bytes secret) : secret_(std::move(secret)) {}

    // Public key bytes (SHA256 of the secret).
    Bytes public_key() const;

    // SubjectKeyIdentifier-style truncated key id (first 20 bytes of
    // SHA256(public key)).
    Bytes key_id() const;

    // Sign a message: SHA256(secret || message).
    Bytes sign(BytesView message) const;

private:
    Bytes secret_;
};

// Verification in this substrate requires the signer's secret-derived
// oracle; we model the "trust store" as a map from public key to the
// signer. The helper below verifies when the caller holds the signer.
bool sim_verify(const SimSigner& signer, BytesView message, BytesView signature);

}  // namespace unicert::crypto
