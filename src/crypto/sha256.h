// unicert/crypto/sha256.h
//
// SHA-256 (FIPS 180-4), implemented from scratch. Backs the Merkle tree
// in the CT-log substrate, key identifiers, and the SimSig signature
// scheme.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace unicert::crypto {

using Digest = std::array<uint8_t, 32>;

class Sha256 {
public:
    Sha256() noexcept { reset(); }

    void reset() noexcept;
    void update(BytesView data) noexcept;
    Digest finish() noexcept;

private:
    void process_block(const uint8_t* block) noexcept;

    std::array<uint32_t, 8> state_{};
    uint64_t total_len_ = 0;
    std::array<uint8_t, 64> buffer_{};
    size_t buffer_len_ = 0;
};

// One-shot convenience.
Digest sha256(BytesView data) noexcept;

// Digest as Bytes (for APIs that traffic in buffers).
Bytes sha256_bytes(BytesView data);

}  // namespace unicert::crypto
