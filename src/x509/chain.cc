#include "x509/chain.h"

#include "asn1/time.h"
#include "x509/builder.h"
#include "x509/dn_text.h"
#include "x509/name_match.h"

namespace unicert::x509 {
namespace {

std::string dn_key(const DistinguishedName& dn) {
    return format_dn(dn, DnDialect::kRfc4514);
}

}  // namespace

CaEntity& CaRegistry::create_ca(const std::string& organization, bool publicly_trusted) {
    // AIA URL derived from the organization name (hex of its hash) so
    // distinct CAs never collide, even across registries.
    std::string url_slug = hex_encode(crypto::sha256_bytes(to_bytes(organization))).substr(0, 16);
    auto entity = std::make_unique<CaEntity>(CaEntity{
        organization,
        {},
        crypto::SimSigner::from_name(organization),
        "http://ca.invalid/" + url_slug + ".crt",
        publicly_trusted,
    });

    Certificate& cert = entity->certificate;
    cert.version = 2;
    cert.serial = {static_cast<uint8_t>(cas_.size() + 1)};
    cert.subject = make_dn({
        make_attribute(asn1::oids::country_name(), "XX", asn1::StringType::kPrintableString),
        make_attribute(asn1::oids::organization_name(), organization),
        make_attribute(asn1::oids::common_name(), organization + " Root CA"),
    });
    cert.issuer = cert.subject;  // self-signed
    cert.validity = {asn1::make_time(2013, 1, 1), asn1::make_time(2043, 1, 1)};
    cert.subject_public_key = entity->key.public_key();
    cert.extensions.push_back(make_basic_constraints({true, std::nullopt}));
    cert.extensions.push_back(make_subject_key_identifier(entity->key.key_id()));
    sign_certificate(cert, entity->key);

    CaEntity& ref = *entity;
    by_url_[entity->aia_url] = entity.get();
    by_name_[organization] = entity.get();
    cas_.push_back(std::move(entity));
    return ref;
}

const CaEntity* CaRegistry::by_aia_url(const std::string& url) const {
    auto it = by_url_.find(url);
    return it == by_url_.end() ? nullptr : it->second;
}

const CaEntity* CaRegistry::by_subject(const DistinguishedName& dn) const {
    std::string key = dn_key(dn);
    for (const auto& ca : cas_) {
        if (dn_key(ca->certificate.subject) == key) return ca.get();
    }
    return nullptr;
}

const CaEntity* CaRegistry::by_name(const std::string& organization) const {
    auto it = by_name_.find(organization);
    return it == by_name_.end() ? nullptr : it->second;
}

std::vector<const CaEntity*> CaRegistry::all() const {
    std::vector<const CaEntity*> out;
    out.reserve(cas_.size());
    for (const auto& ca : cas_) out.push_back(ca.get());
    return out;
}

ChainResult build_and_verify_chain(const Certificate& leaf, const CaRegistry& registry) {
    ChainResult result;

    // Prefer AIA reconstruction; fall back to issuer-DN lookup (the
    // paper's pipeline does the same when AIA is missing).
    const CaEntity* issuer = nullptr;
    for (const std::string& url : leaf.ca_issuer_urls()) {
        result.path.push_back(url);
        if (const CaEntity* ca = registry.by_aia_url(url)) {
            issuer = ca;
            break;
        }
    }
    if (issuer == nullptr) issuer = registry.by_subject(leaf.issuer);
    if (issuer == nullptr) return result;

    result.chain_complete = true;
    result.signature_valid = verify_signature(leaf, issuer->key);
    result.issuer_trusted = issuer->publicly_trusted;
    return result;
}

ValidationResult validate_certificate(const Certificate& leaf, const CaRegistry& registry,
                                      int64_t at_time) {
    ValidationResult result;
    auto fail = [&](const char* why) {
        if (result.failure.empty()) result.failure = why;
    };

    // Chain discovery, as in build_and_verify_chain.
    const CaEntity* issuer = nullptr;
    for (const std::string& url : leaf.ca_issuer_urls()) {
        if (const CaEntity* ca = registry.by_aia_url(url)) {
            issuer = ca;
            break;
        }
    }
    if (issuer == nullptr) issuer = registry.by_subject(leaf.issuer);
    if (issuer == nullptr) {
        fail("no issuer found via AIA or issuer DN");
        return result;
    }
    result.chain_complete = true;

    result.signature_valid = verify_signature(leaf, issuer->key);
    if (!result.signature_valid) fail("signature verification failed");

    auto bc_ext = issuer->certificate.find_extension(asn1::oids::basic_constraints());
    if (bc_ext != nullptr) {
        auto bc = parse_basic_constraints(*bc_ext);
        result.issuer_is_ca = bc.ok() && bc->ca;
    }
    if (!result.issuer_is_ca) fail("issuer certificate does not assert cA");

    // RFC 5280 §7.1 name chaining (caseIgnoreMatch, not byte compare).
    result.issuer_name_matches = names_match(leaf.issuer, issuer->certificate.subject);
    if (!result.issuer_name_matches) fail("issuer DN does not chain to CA subject");

    result.within_validity = leaf.validity.contains(at_time);
    if (!result.within_validity) fail("leaf outside its validity window");
    result.issuer_within_validity = issuer->certificate.validity.contains(at_time);
    if (!result.issuer_within_validity) fail("issuer certificate expired");

    result.issuer_trusted = issuer->publicly_trusted;

    result.valid = result.chain_complete && result.signature_valid && result.issuer_is_ca &&
                   result.issuer_name_matches && result.within_validity &&
                   result.issuer_within_validity;
    return result;
}

}  // namespace unicert::x509
