#include "x509/dn_text.h"

#include <cctype>
#include <cstdio>

#include "unicode/codec.h"
#include "unicode/properties.h"

namespace unicert::x509 {
namespace {

bool is_special_2253(char c) {
    switch (c) {
        case ',': case '+': case '"': case '\\': case '<': case '>': case ';':
            return true;
        default:
            return false;
    }
}

// RFC 1779 quoting trigger set.
bool needs_quoting_1779(std::string_view s) {
    if (s.empty()) return true;
    if (s.front() == ' ' || s.back() == ' ') return true;
    for (char c : s) {
        switch (c) {
            case ',': case '=': case '+': case '<': case '>': case '#': case ';':
            case '"': case '\\': case '\r': case '\n':
                return true;
            default:
                break;
        }
    }
    return false;
}

void append_hex_escape(std::string& out, unsigned char byte) {
    char buf[4];
    std::snprintf(buf, sizeof(buf), "%02X", byte);
    out.push_back('\\');
    out += buf;
}

std::string escape_2253_like(std::string_view utf8, bool escape_nul_as_hex) {
    std::string out;
    out.reserve(utf8.size() + 8);
    for (size_t i = 0; i < utf8.size(); ++i) {
        unsigned char c = static_cast<unsigned char>(utf8[i]);
        bool at_start = i == 0;
        bool at_end = i + 1 == utf8.size();
        if (at_start && (c == ' ' || c == '#')) {
            out.push_back('\\');
            out.push_back(static_cast<char>(c));
        } else if (at_end && c == ' ') {
            out.push_back('\\');
            out.push_back(' ');
        } else if (c < 0x80 && is_special_2253(static_cast<char>(c))) {
            out.push_back('\\');
            out.push_back(static_cast<char>(c));
        } else if (c == 0x00 && escape_nul_as_hex) {
            append_hex_escape(out, c);  // RFC 4514: NUL MUST be "\00"
        } else if (c < 0x20 || c == 0x7F) {
            // Control characters: hex-escape (allowed by both RFCs and
            // required for safe round-tripping).
            append_hex_escape(out, c);
        } else {
            out.push_back(static_cast<char>(c));
        }
    }
    return out;
}

std::string escape_1779(std::string_view utf8) {
    if (!needs_quoting_1779(utf8)) return std::string(utf8);
    std::string out;
    out.reserve(utf8.size() + 4);
    out.push_back('"');
    for (char c : utf8) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

std::string escape_oneline(std::string_view utf8) {
    // OpenSSL oneline: '/' introduces the next attribute, so values
    // containing '/' are ambiguous; the compliant formatter hex-escapes
    // control bytes and leaves '/' (this ambiguity is the DN subfield
    // forgery vector the paper demonstrates against X509_NAME_oneline).
    std::string out;
    for (char c : utf8) {
        unsigned char uc = static_cast<unsigned char>(c);
        if (uc < 0x20 || uc == 0x7F) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\x%02X", uc);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

}  // namespace

const char* dn_dialect_name(DnDialect d) noexcept {
    switch (d) {
        case DnDialect::kRfc2253: return "RFC2253";
        case DnDialect::kRfc4514: return "RFC4514";
        case DnDialect::kRfc1779: return "RFC1779";
        case DnDialect::kOpenSslOneline: return "oneline";
    }
    return "?";
}

std::string escape_dn_value(std::string_view utf8, DnDialect dialect, bool apply_escaping) {
    if (!apply_escaping) return std::string(utf8);
    switch (dialect) {
        case DnDialect::kRfc2253: return escape_2253_like(utf8, /*escape_nul_as_hex=*/false);
        case DnDialect::kRfc4514: return escape_2253_like(utf8, /*escape_nul_as_hex=*/true);
        case DnDialect::kRfc1779: return escape_1779(utf8);
        case DnDialect::kOpenSslOneline: return escape_oneline(utf8);
    }
    return std::string(utf8);
}

bool is_properly_escaped(std::string_view rendered, DnDialect dialect) {
    switch (dialect) {
        case DnDialect::kRfc2253:
        case DnDialect::kRfc4514: {
            for (size_t i = 0; i < rendered.size(); ++i) {
                char c = rendered[i];
                if (c == '\\') {
                    ++i;  // escaped pair or hex; skip escape target
                    if (i < rendered.size() && std::isxdigit(static_cast<unsigned char>(rendered[i]))) {
                        ++i;
                    }
                    continue;
                }
                if (is_special_2253(c)) return false;
                if (static_cast<unsigned char>(c) == 0x00 && dialect == DnDialect::kRfc4514) {
                    return false;
                }
            }
            return true;
        }
        case DnDialect::kRfc1779: {
            // Inside quotes anything goes; outside, specials are violations.
            bool in_quotes = false;
            for (size_t i = 0; i < rendered.size(); ++i) {
                char c = rendered[i];
                if (c == '\\') {
                    ++i;
                    continue;
                }
                if (c == '"') {
                    in_quotes = !in_quotes;
                    continue;
                }
                if (!in_quotes && (c == '+' || c == ';' || c == '<' || c == '>')) return false;
            }
            return !in_quotes;
        }
        case DnDialect::kOpenSslOneline:
            // No escaping standard exists; controls must not leak raw.
            for (char c : rendered) {
                unsigned char uc = static_cast<unsigned char>(c);
                if (uc < 0x20 || uc == 0x7F) return false;
            }
            return true;
    }
    return true;
}

std::string format_dn(const DistinguishedName& dn, DnDialect dialect, bool apply_escaping) {
    std::string out;
    bool reverse = dialect == DnDialect::kRfc2253 || dialect == DnDialect::kRfc4514;
    bool oneline = dialect == DnDialect::kOpenSslOneline;

    auto emit_rdn = [&](const Rdn& rdn) {
        bool first_attr = true;
        for (const AttributeValue& av : rdn.attributes) {
            if (!first_attr) out += "+";
            first_attr = false;
            out += asn1::attribute_short_name(av.type);
            out += "=";
            out += escape_dn_value(av.to_utf8_lossy(), dialect, apply_escaping);
        }
    };

    if (oneline) {
        for (const Rdn& rdn : dn.rdns) {
            out += "/";
            emit_rdn(rdn);
        }
        return out;
    }

    bool first = true;
    if (reverse) {
        for (auto it = dn.rdns.rbegin(); it != dn.rdns.rend(); ++it) {
            if (!first) out += ",";
            first = false;
            emit_rdn(*it);
        }
    } else {
        for (const Rdn& rdn : dn.rdns) {
            if (!first) out += ", ";
            first = false;
            emit_rdn(rdn);
        }
    }
    return out;
}

std::string format_general_name(const GeneralName& gn, bool apply_escaping) {
    std::string value = gn.to_utf8_lossy();
    if (gn.type == GeneralNameType::kDirectoryName) {
        value = format_dn(gn.directory, DnDialect::kRfc2253, apply_escaping);
    }
    if (apply_escaping) {
        // In X.509-text form, a value containing the ", " separator or
        // a "TYPE:" prefix could forge additional entries; hex-escape
        // control bytes and escape commas.
        std::string safe;
        for (char c : value) {
            unsigned char uc = static_cast<unsigned char>(c);
            if (uc < 0x20 || uc == 0x7F) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\x%02X", uc);
                safe += buf;
            } else if (c == ',') {
                safe += "\\,";
            } else {
                safe.push_back(c);
            }
        }
        value = std::move(safe);
    }
    return std::string(general_name_type_label(gn.type)) + ":" + value;
}

std::string format_general_names(const GeneralNames& gns, bool apply_escaping) {
    std::string out;
    bool first = true;
    for (const GeneralName& gn : gns) {
        if (!first) out += ", ";
        first = false;
        out += format_general_name(gn, apply_escaping);
    }
    return out;
}

}  // namespace unicert::x509
