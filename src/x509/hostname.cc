#include "x509/hostname.h"

#include <algorithm>

#include "idna/labels.h"
#include "unicode/properties.h"

namespace unicert::x509 {
namespace {

std::string ascii_lower(std::string_view s) {
    std::string out(s);
    for (char& c : out) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + 0x20);
    }
    return out;
}

// Convert to comparable ACE form: lowercase; U-labels become A-labels
// when convertible (unconvertible names are compared verbatim, which
// can only cause a non-match, never a false match).
std::string comparable(std::string_view name) {
    bool ascii = std::all_of(name.begin(), name.end(), [](char c) {
        return static_cast<unsigned char>(c) < 0x80;
    });
    if (ascii) return ascii_lower(name);
    auto ace = idna::hostname_to_ascii(name);
    if (ace.ok()) return ascii_lower(ace.value());
    return std::string(name);
}

std::vector<std::string> split_labels(std::string_view host) {
    std::vector<std::string> labels;
    size_t start = 0;
    while (start <= host.size()) {
        size_t dot = host.find('.', start);
        labels.emplace_back(
            host.substr(start, dot == std::string_view::npos ? std::string_view::npos
                                                             : dot - start));
        if (dot == std::string_view::npos) break;
        start = dot + 1;
    }
    // Tolerate one trailing dot (root label).
    if (labels.size() > 1 && labels.back().empty()) labels.pop_back();
    return labels;
}

}  // namespace

bool dns_name_matches(std::string_view pattern_in, std::string_view hostname_in) {
    std::string pattern = comparable(pattern_in);
    std::string hostname = comparable(hostname_in);
    if (pattern.empty() || hostname.empty()) return false;
    if (hostname.find('*') != std::string::npos) return false;  // reference must be literal

    std::vector<std::string> p = split_labels(pattern);
    std::vector<std::string> h = split_labels(hostname);
    if (p.size() != h.size()) return false;

    for (size_t i = 0; i < p.size(); ++i) {
        if (p[i] == "*") {
            // RFC 6125: wildcard only as the complete leftmost label,
            // must cover exactly one label, and needs a registrable
            // suffix below it (no "*.com"-style matches).
            if (i != 0 || p.size() < 3) return false;
            if (h[i].empty()) return false;
            continue;
        }
        if (p[i].find('*') != std::string::npos) return false;  // partial wildcards banned
        if (p[i] != h[i]) return false;
        if (p[i].empty()) return false;
    }
    return true;
}

HostnameVerifyResult verify_hostname(const Certificate& cert, std::string_view hostname,
                                     const HostnameVerifyOptions& options) {
    HostnameVerifyResult result;

    auto effective_identity = [&](std::string value) {
        if (!options.nul_safe) {
            // C-string semantics: truncate at the first NUL — the
            // "bank.example\0.evil" bypass.
            size_t nul = value.find('\0');
            if (nul != std::string::npos) value.resize(nul);
        }
        return value;
    };

    bool saw_san_dns = false;
    for (const GeneralName& gn : cert.subject_alt_names()) {
        if (gn.type != GeneralNameType::kDnsName) continue;
        saw_san_dns = true;
        std::string presented = effective_identity(to_string(gn.value_bytes));
        if (dns_name_matches(presented, hostname)) {
            result.matched = true;
            result.matched_identity = presented;
            return result;
        }
    }

    if (!saw_san_dns && options.allow_cn_fallback) {
        for (const AttributeValue* cn : cert.subject_common_names()) {
            std::string presented = effective_identity(cn->to_utf8_lossy());
            if (dns_name_matches(presented, hostname)) {
                result.matched = true;
                result.used_cn_fallback = true;
                result.matched_identity = presented;
                return result;
            }
        }
    }

    result.detail = saw_san_dns ? "no SAN dNSName matched"
                                : (options.allow_cn_fallback ? "no identity matched"
                                                             : "no SAN dNSName present");
    return result;
}

}  // namespace unicert::x509
