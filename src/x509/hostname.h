// unicert/x509/hostname.h
//
// RFC 6125 / RFC 9525 hostname verification against certificate
// identities: SAN dNSName matching with single-leftmost-label
// wildcards, optional (discouraged) CN fallback, IDN-aware comparison
// via A-label conversion, and a deliberately configurable NUL-handling
// mode that models the classic CN-NUL-termination bypass the paper's
// T1 discussion cites (PKI Layer Cake, CVE-2009-2408 lineage).
#pragma once

#include <string>
#include <string_view>

#include "x509/certificate.h"

namespace unicert::x509 {

// Match one presented DNS identifier (possibly with a wildcard) against
// a reference hostname. Both sides are compared case-insensitively in
// ACE form; the reference must not contain wildcards.
bool dns_name_matches(std::string_view pattern, std::string_view hostname);

struct HostnameVerifyOptions {
    // RFC 9525 discourages CN-based matching; tools like Snort/cURL/
    // Postfix still fall back to it when the SAN is absent.
    bool allow_cn_fallback = false;
    // When false, identities are compared as C strings — i.e. an
    // embedded NUL truncates the presented name. This reproduces the
    // vulnerable behaviour; safe implementations keep it true.
    bool nul_safe = true;
};

struct HostnameVerifyResult {
    bool matched = false;
    bool used_cn_fallback = false;
    std::string matched_identity;  // the presented identifier that matched
    std::string detail;            // diagnostics when !matched
};

// Verify `hostname` against the certificate's SAN dNSNames (and CN when
// the fallback is enabled and no SAN dNSName exists).
HostnameVerifyResult verify_hostname(const Certificate& cert, std::string_view hostname,
                                     const HostnameVerifyOptions& options = {});

}  // namespace unicert::x509
