// unicert/x509/general_name.h
//
// GeneralName (RFC 5280 section 4.2.1.6): the identity variants used
// in SAN, IAN, AIA, SIA and CRLDistributionPoints. String-valued kinds
// (dNSName, rfc822Name, URI) keep raw bytes plus the string type
// actually used on the wire — compliant encodings use IA5String but
// the paper measures certificates that deviate.
#pragma once

#include <string>
#include <vector>

#include "asn1/der.h"
#include "asn1/oid.h"
#include "asn1/strings.h"
#include "common/bytes.h"
#include "common/expected.h"
#include "x509/name.h"

namespace unicert::x509 {

enum class GeneralNameType {
    kOtherName,       // [0]
    kRfc822Name,      // [1]
    kDnsName,         // [2]
    kDirectoryName,   // [4]
    kUri,             // [6]
    kIpAddress,       // [7]
    kRegisteredId,    // [8]
};

const char* general_name_type_label(GeneralNameType t) noexcept;

struct GeneralName {
    GeneralNameType type = GeneralNameType::kDnsName;

    // For string kinds ([1],[2],[6]): the value bytes and the string
    // type they were (or will be) encoded with. RFC 5280 mandates
    // IA5String; other values model noncompliant certificates.
    asn1::StringType string_type = asn1::StringType::kIa5String;
    Bytes value_bytes;

    // kDirectoryName payload.
    DistinguishedName directory;

    // kOtherName payload (e.g. SmtpUTF8Mailbox).
    asn1::Oid other_name_oid;
    Bytes other_name_value;  // inner DER (for SmtpUTF8Mailbox: a UTF8String TLV)

    // kIpAddress payload: 4 or 16 octets. kRegisteredId: OID in value.
    // (both reuse value_bytes)

    std::string to_utf8_lossy() const;

    bool operator==(const GeneralName&) const = default;
};

using GeneralNames = std::vector<GeneralName>;

// Convenience constructors.
GeneralName dns_name(std::string_view ascii_or_utf8,
                     asn1::StringType st = asn1::StringType::kIa5String);
GeneralName rfc822_name(std::string_view email,
                        asn1::StringType st = asn1::StringType::kIa5String);
GeneralName uri_name(std::string_view uri,
                     asn1::StringType st = asn1::StringType::kIa5String);
GeneralName ip_address(BytesView octets);
GeneralName directory_name(DistinguishedName dn);
GeneralName smtp_utf8_mailbox(std::string_view utf8_mailbox);

// DER encoding of a single GeneralName (with its context tag).
Bytes encode_general_name(const GeneralName& gn);

// DER encoding of GeneralNames as SEQUENCE OF GeneralName.
Bytes encode_general_names(const GeneralNames& gns);

// Parse a single GeneralName TLV.
Expected<GeneralName> parse_general_name(const asn1::Tlv& tlv);

// Parse SEQUENCE OF GeneralName content.
Expected<GeneralNames> parse_general_names(BytesView sequence_content);

}  // namespace unicert::x509
