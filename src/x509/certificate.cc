#include "x509/certificate.h"

#include "crypto/sha256.h"

namespace unicert::x509 {

const Extension* Certificate::find_extension(const asn1::Oid& oid) const {
    for (const Extension& ext : extensions) {
        if (ext.oid == oid) return &ext;
    }
    return nullptr;
}

bool Certificate::is_precertificate() const {
    return has_extension(asn1::oids::ct_poison());
}

std::vector<const AttributeValue*> Certificate::subject_common_names() const {
    return subject.find_all(asn1::oids::common_name());
}

GeneralNames Certificate::subject_alt_names() const {
    const Extension* ext = find_extension(asn1::oids::subject_alt_name());
    if (ext == nullptr) return {};
    auto parsed = parse_san(*ext);
    if (!parsed.ok()) return {};
    return std::move(parsed).value();
}

std::vector<std::string> Certificate::dns_identities() const {
    std::vector<std::string> out;
    for (const AttributeValue* cn : subject_common_names()) {
        out.push_back(cn->to_utf8_lossy());
    }
    for (const GeneralName& gn : subject_alt_names()) {
        if (gn.type == GeneralNameType::kDnsName) out.push_back(gn.to_utf8_lossy());
    }
    return out;
}

std::vector<std::string> Certificate::ca_issuer_urls() const {
    std::vector<std::string> out;
    const Extension* ext = find_extension(asn1::oids::authority_info_access());
    if (ext == nullptr) return out;
    auto parsed = parse_access_descriptions(*ext);
    if (!parsed.ok()) return out;
    for (const AccessDescription& ad : parsed.value()) {
        if (ad.method == asn1::oids::ad_ca_issuers() &&
            ad.location.type == GeneralNameType::kUri) {
            out.push_back(ad.location.to_utf8_lossy());
        }
    }
    return out;
}

std::vector<std::string> Certificate::crl_urls() const {
    std::vector<std::string> out;
    const Extension* ext = find_extension(asn1::oids::crl_distribution_points());
    if (ext == nullptr) return out;
    auto parsed = parse_crl_distribution_points(*ext);
    if (!parsed.ok()) return out;
    for (const DistributionPoint& dp : parsed.value()) {
        for (const GeneralName& gn : dp.full_names) {
            if (gn.type == GeneralNameType::kUri) out.push_back(gn.to_utf8_lossy());
        }
    }
    return out;
}

Bytes Certificate::fingerprint() const { return crypto::sha256_bytes(der); }

}  // namespace unicert::x509
