// unicert/x509/name_match.h
//
// RFC 5280 section 7.1 distinguished-name comparison, used for name
// chaining (issuer DN of a leaf vs subject DN of its CA). String
// values are compared with caseIgnoreMatch semantics after LDAP
// StringPrep-style processing: decode per declared type, normalize to
// NFC, fold case, trim and collapse internal whitespace. This is the
// processing whose absence makes the T2 "Bad Normalization" findings
// dangerous: byte-compare implementations break chains that
// caseIgnoreMatch would accept.
#pragma once

#include <string>

#include "x509/name.h"

namespace unicert::x509 {

// Normalized comparison key for one attribute value.
std::string attribute_match_key(const AttributeValue& av);

// caseIgnoreMatch over two attribute values (types must also be equal).
bool attributes_match(const AttributeValue& a, const AttributeValue& b);

// RFC 5280 7.1 DN equality: same RDN structure, each RDN's attribute
// sets equal under attributes_match (order within an RDN is
// insignificant; RDN sequence order is significant).
bool names_match(const DistinguishedName& a, const DistinguishedName& b);

// Byte-exact DN equality (what naive implementations do instead).
bool names_match_binary(const DistinguishedName& a, const DistinguishedName& b);

}  // namespace unicert::x509
