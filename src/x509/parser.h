// unicert/x509/parser.h
//
// DER -> Certificate model. The parser is *standards-strict at the
// structural level* (DER well-formedness, field order) but — like the
// model — does not police string charsets; that is the lint layer's
// job, matching how the paper separates parsing from compliance.
#pragma once

#include "common/bytes.h"
#include "common/expected.h"
#include "x509/certificate.h"

namespace unicert::x509 {

// Parse a complete certificate (outer SEQUENCE).
Expected<Certificate> parse_certificate(BytesView der);

}  // namespace unicert::x509
