#include "x509/name.h"

#include "asn1/der.h"
#include "unicode/codec.h"

namespace unicert::x509 {

std::string AttributeValue::to_utf8_lossy() const {
    return unicode::transcode_to_utf8(value_bytes, asn1::nominal_encoding(string_type),
                                      unicode::ErrorPolicy::kReplace);
}

const AttributeValue* DistinguishedName::find_first(const asn1::Oid& type) const {
    for (const Rdn& rdn : rdns) {
        for (const AttributeValue& av : rdn.attributes) {
            if (av.type == type) return &av;
        }
    }
    return nullptr;
}

const AttributeValue* DistinguishedName::find_last(const asn1::Oid& type) const {
    const AttributeValue* found = nullptr;
    for (const Rdn& rdn : rdns) {
        for (const AttributeValue& av : rdn.attributes) {
            if (av.type == type) found = &av;
        }
    }
    return found;
}

std::vector<const AttributeValue*> DistinguishedName::find_all(const asn1::Oid& type) const {
    std::vector<const AttributeValue*> out;
    for (const Rdn& rdn : rdns) {
        for (const AttributeValue& av : rdn.attributes) {
            if (av.type == type) out.push_back(&av);
        }
    }
    return out;
}

size_t DistinguishedName::count(const asn1::Oid& type) const { return find_all(type).size(); }

std::vector<const AttributeValue*> DistinguishedName::all_attributes() const {
    std::vector<const AttributeValue*> out;
    for (const Rdn& rdn : rdns) {
        for (const AttributeValue& av : rdn.attributes) out.push_back(&av);
    }
    return out;
}

AttributeValue make_attribute(const asn1::Oid& type, std::string_view utf8_value,
                              asn1::StringType string_type) {
    AttributeValue av;
    av.type = type;
    av.string_type = string_type;
    auto cps = unicode::utf8_to_codepoints(utf8_value);
    if (cps.ok()) {
        auto encoded = asn1::encode_unchecked(string_type, cps.value());
        if (encoded.ok()) {
            av.value_bytes = std::move(encoded).value();
            return av;
        }
    }
    // Fall back to the raw bytes; lets tests craft values that are not
    // even valid UTF-8 input.
    av.value_bytes = to_bytes(utf8_value);
    return av;
}

DistinguishedName make_dn(std::vector<AttributeValue> attributes) {
    DistinguishedName dn;
    dn.rdns.reserve(attributes.size());
    for (AttributeValue& av : attributes) {
        Rdn rdn;
        rdn.attributes.push_back(std::move(av));
        dn.rdns.push_back(std::move(rdn));
    }
    return dn;
}

Bytes encode_name(const DistinguishedName& dn) {
    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& seq) {
        for (const Rdn& rdn : dn.rdns) {
            seq.add_set([&](asn1::Writer& set) {
                for (const AttributeValue& av : rdn.attributes) {
                    set.add_sequence([&](asn1::Writer& atv) {
                        atv.add_oid_der(av.type.to_der());
                        atv.add_string(asn1::string_type_tag(av.string_type), av.value_bytes);
                    });
                }
            });
        }
    });
    return w.take();
}

namespace {

// The one Name walk behind parse_name and validate_name: identical
// structure checks and Errors either way; `out` selects whether the
// DistinguishedName is materialized (null = validate only, no
// allocation).
Status walk_name(BytesView der, DistinguishedName* out) {
    auto seq = asn1::read_tlv(der);
    if (!seq.ok()) return seq.error();
    if (!seq->is_universal(asn1::Tag::kSequence)) {
        return Error{"x509_name_not_sequence", "Name must be a SEQUENCE"};
    }

    asn1::Reader rdns(seq->content);
    while (!rdns.done()) {
        auto set = rdns.expect(asn1::Tag::kSet);
        if (!set.ok()) return set.error();

        Rdn rdn;
        asn1::Reader atvs(set->content);
        if (atvs.done()) return Error{"x509_empty_rdn", "RDN SET must not be empty"};
        while (!atvs.done()) {
            auto atv = atvs.expect(asn1::Tag::kSequence);
            if (!atv.ok()) return atv.error();
            asn1::Reader fields(atv->content);

            auto oid_tlv = fields.expect(asn1::Tag::kOid);
            if (!oid_tlv.ok()) return oid_tlv.error();
            // The OID is checked before the value tag in both modes so
            // a doubly-malformed attribute reports the same error.
            asn1::Oid oid;
            if (out == nullptr) {
                if (Status s = asn1::validate_oid_der(oid_tlv->content); !s.ok()) return s;
            } else {
                auto decoded = asn1::Oid::from_der(oid_tlv->content);
                if (!decoded.ok()) return decoded.error();
                oid = std::move(decoded).value();
            }

            auto val = fields.next();
            if (!val.ok()) return val.error();
            auto st = asn1::string_type_from_tag(val->tag_number());
            if (val->tag_class() != asn1::TagClass::kUniversal || !st) {
                return Error{"x509_attr_not_string",
                             "attribute value has non-string tag " +
                                 std::to_string(val->tag_number())};
            }

            if (out != nullptr) {
                AttributeValue av;
                av.type = std::move(oid);
                av.string_type = *st;
                av.value_bytes.assign(val->content.begin(), val->content.end());
                rdn.attributes.push_back(std::move(av));
            }
        }
        if (out != nullptr) out->rdns.push_back(std::move(rdn));
    }
    return Status::success();
}

}  // namespace

Expected<DistinguishedName> parse_name(BytesView der) {
    DistinguishedName dn;
    if (Status s = walk_name(der, &dn); !s.ok()) return s.error();
    return dn;
}

Status validate_name(BytesView der) { return walk_name(der, nullptr); }

}  // namespace unicert::x509
