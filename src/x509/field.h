// unicert/x509/field.h
//
// Top-level TBSCertificate field enumeration, used as a bitmask by the
// lint layer's declared rule footprints and the access-tracing view
// (lint::CertView / lint::analysis::TracingCertView). Each enumerator
// is its own bit so field sets compose with plain bitwise OR.
#pragma once

#include <cstdint>
#include <string>

namespace unicert::x509 {

enum class CertField : uint32_t {
    kVersion = 1u << 0,
    kSerial = 1u << 1,
    kSignatureAlgorithm = 1u << 2,
    kIssuer = 1u << 3,
    kValidity = 1u << 4,
    kSubject = 1u << 5,
    kSubjectPublicKey = 1u << 6,
    // Enumerating the raw extension list (as opposed to probing one
    // extension by OID, which the lint layer tracks per OID).
    kExtensions = 1u << 7,
    kSignature = 1u << 8,
    // Whole-certificate escape hatch: DER blobs, fingerprints, or any
    // access that cannot be attributed to a single field.
    kWholeCert = 1u << 9,
};

constexpr uint32_t field_bit(CertField f) noexcept { return static_cast<uint32_t>(f); }

const char* cert_field_name(CertField f) noexcept;

// "subject|validity" style rendering of a CertField bitmask.
std::string cert_field_mask_names(uint32_t mask);

}  // namespace unicert::x509
