#include "x509/name_match.h"

#include <algorithm>

#include "unicode/codec.h"
#include "unicode/normalize.h"
#include "unicode/properties.h"

namespace unicert::x509 {
namespace {

using unicode::CodePoint;
using unicode::CodePoints;

}  // namespace

std::string attribute_match_key(const AttributeValue& av) {
    auto decoded = av.decode();
    CodePoints cps;
    if (decoded.ok()) {
        cps = std::move(decoded).value();
    } else {
        // Undecodable values fall back to a lossy read; they can only
        // ever match another identically-broken value.
        cps = unicode::decode_lossy(av.value_bytes, asn1::nominal_encoding(av.string_type),
                                    unicode::ErrorPolicy::kReplace);
    }

    // NFC, then case folding.
    cps = unicode::nfc(cps);
    cps = unicode::fold_case(cps);

    // Whitespace processing: drop leading/trailing, collapse internal
    // runs (any space-class character) to a single U+0020.
    CodePoints out;
    bool pending_space = false;
    for (CodePoint cp : cps) {
        if (unicode::is_space(cp)) {
            if (!out.empty()) pending_space = true;
            continue;
        }
        if (pending_space) {
            out.push_back(' ');
            pending_space = false;
        }
        out.push_back(cp);
    }
    return unicode::codepoints_to_utf8(out);
}

bool attributes_match(const AttributeValue& a, const AttributeValue& b) {
    if (a.type != b.type) return false;
    return attribute_match_key(a) == attribute_match_key(b);
}

bool names_match(const DistinguishedName& a, const DistinguishedName& b) {
    if (a.rdns.size() != b.rdns.size()) return false;
    for (size_t i = 0; i < a.rdns.size(); ++i) {
        const Rdn& ra = a.rdns[i];
        const Rdn& rb = b.rdns[i];
        if (ra.attributes.size() != rb.attributes.size()) return false;
        // SET semantics: each attribute in ra must match a distinct one
        // in rb.
        std::vector<bool> used(rb.attributes.size(), false);
        for (const AttributeValue& av : ra.attributes) {
            bool found = false;
            for (size_t j = 0; j < rb.attributes.size(); ++j) {
                if (!used[j] && attributes_match(av, rb.attributes[j])) {
                    used[j] = true;
                    found = true;
                    break;
                }
            }
            if (!found) return false;
        }
    }
    return true;
}

bool names_match_binary(const DistinguishedName& a, const DistinguishedName& b) {
    return encode_name(a) == encode_name(b);
}

}  // namespace unicert::x509
