#include "x509/lazy.h"

#include <cassert>

#include "asn1/der.h"
#include "asn1/time.h"
#include "x509/name.h"

namespace unicert::x509 {
namespace {

Expected<int64_t> parse_time(const asn1::Tlv& tlv) {
    if (tlv.is_universal(asn1::Tag::kUtcTime)) return asn1::parse_utc_time(tlv.content);
    if (tlv.is_universal(asn1::Tag::kGeneralizedTime)) {
        return asn1::parse_generalized_time(tlv.content);
    }
    return Error{"x509_bad_time_tag", "validity time must be UTCTime or GeneralizedTime"};
}

// Count pass for arena sizing: a non-validating walk over the optional
// trailing fields that counts extension SEQUENCEs. Any malformation
// makes it stop early; that is safe because the validating fill pass
// errors out at (or before) the same point, so on every path that
// actually appends an extension the count is an upper bound.
size_t count_extensions(BytesView optional_fields) {
    size_t total = 0;
    asn1::Reader rc(optional_fields);
    while (!rc.done()) {
        auto tlv = rc.next();
        if (!tlv.ok()) break;
        if (!tlv->is_context(3) || !tlv->is_constructed()) continue;
        auto exts_seq = asn1::read_tlv(tlv->content);
        if (!exts_seq.ok() || !exts_seq->is_universal(asn1::Tag::kSequence)) break;
        asn1::Reader er(exts_seq->content);
        while (!er.done()) {
            auto e = er.next();
            if (!e.ok()) break;
            if (e->is_universal(asn1::Tag::kSequence)) ++total;
        }
    }
    return total;
}

}  // namespace

Expected<LazyCertificate> LazyCertificate::index(BytesView der, core::Arena* arena) {
    // Depth guard first: a nesting bomb must be rejected before any
    // structure-directed walk starts.
    if (Status depth = asn1::check_nesting(der); !depth.ok()) return depth.error();
    auto outer = asn1::read_tlv(der);
    if (!outer.ok()) return outer.error();
    if (!outer->is_universal(asn1::Tag::kSequence)) {
        return Error{"x509_not_sequence", "Certificate must be a SEQUENCE"};
    }

    LazyCertificate lc;
    lc.der_ = der.first(outer->total_len);

    asn1::Reader top(outer->content);

    // ---- TBSCertificate ----
    auto tbs = top.expect(asn1::Tag::kSequence);
    if (!tbs.ok()) return tbs.error();
    lc.tbs_der_ = der.subspan(outer->header_len, tbs->total_len);

    asn1::Reader r(tbs->content);

    // version [0] EXPLICIT (optional)
    auto first = r.peek();
    if (!first.ok()) return first.error();
    if (first->is_context(0) && first->is_constructed()) {
        auto vwrap = r.next();
        asn1::Reader vr(vwrap->content);
        auto v = vr.expect(asn1::Tag::kInteger);
        if (!v.ok()) return v.error();
        auto version = asn1::decode_integer(v.value());
        if (!version.ok()) return version.error();
        lc.version_ = static_cast<int>(version.value());
    } else {
        lc.version_ = 0;
    }

    // serialNumber
    auto serial = r.expect(asn1::Tag::kInteger);
    if (!serial.ok()) return serial.error();
    auto magnitude = asn1::decode_integer_magnitude(serial.value());
    if (!magnitude.ok()) return magnitude.error();
    lc.serial_ = magnitude.value();

    // signature AlgorithmIdentifier
    auto alg = r.expect(asn1::Tag::kSequence);
    if (!alg.ok()) return alg.error();
    {
        asn1::Reader ar(alg->content);
        auto oid_tlv = ar.expect(asn1::Tag::kOid);
        if (!oid_tlv.ok()) return oid_tlv.error();
        if (Status s = asn1::validate_oid_der(oid_tlv->content); !s.ok()) return s.error();
        lc.sig_alg_der_ = oid_tlv->content;
    }

    // issuer Name — validate over its raw TLV span, record the span.
    auto issuer_tlv = r.peek();
    if (!issuer_tlv.ok()) return issuer_tlv.error();
    {
        BytesView span = tbs->content.subspan(r.position(), issuer_tlv->total_len);
        if (Status s = validate_name(span); !s.ok()) return s.error();
        lc.issuer_der_ = span;
        (void)r.next();
    }

    // validity — decoded eagerly: every lint gate needs not_before.
    auto validity = r.expect(asn1::Tag::kSequence);
    if (!validity.ok()) return validity.error();
    {
        asn1::Reader vr(validity->content);
        auto nb_tlv = vr.next();
        if (!nb_tlv.ok()) return nb_tlv.error();
        auto nb = parse_time(nb_tlv.value());
        if (!nb.ok()) return nb.error();
        auto na_tlv = vr.next();
        if (!na_tlv.ok()) return na_tlv.error();
        auto na = parse_time(na_tlv.value());
        if (!na.ok()) return na.error();
        lc.validity_ = {nb.value(), na.value()};
    }

    // subject Name
    auto subject_tlv = r.peek();
    if (!subject_tlv.ok()) return subject_tlv.error();
    {
        BytesView span = tbs->content.subspan(r.position(), subject_tlv->total_len);
        if (Status s = validate_name(span); !s.ok()) return s.error();
        lc.subject_der_ = span;
        (void)r.next();
    }

    // SubjectPublicKeyInfo
    auto spki = r.expect(asn1::Tag::kSequence);
    if (!spki.ok()) return spki.error();
    {
        asn1::Reader sr(spki->content);
        auto spki_alg = sr.expect(asn1::Tag::kSequence);
        if (!spki_alg.ok()) return spki_alg.error();
        auto bit_str = sr.expect(asn1::Tag::kBitString);
        if (!bit_str.ok()) return bit_str.error();
        auto key = asn1::decode_bit_string_view(bit_str.value());
        if (!key.ok()) return key.error();
        lc.spki_key_ = key.value();
    }

    // Optional fields: issuerUniqueID [1], subjectUniqueID [2], extensions [3]
    RawExtension* arena_table = nullptr;
    size_t table_size = 0;
    size_t filled = 0;
    if (arena != nullptr) {
        table_size = count_extensions(tbs->content.subspan(r.position()));
        if (table_size > 0) arena_table = arena->alloc_array<RawExtension>(table_size);
    }
    while (!r.done()) {
        auto tlv = r.next();
        if (!tlv.ok()) return tlv.error();
        if (tlv->is_context(3) && tlv->is_constructed()) {
            asn1::Reader wrap(tlv->content);
            auto exts_seq = wrap.expect(asn1::Tag::kSequence);
            if (!exts_seq.ok()) return exts_seq.error();
            asn1::Reader er(exts_seq->content);
            while (!er.done()) {
                auto ext_tlv = er.expect(asn1::Tag::kSequence);
                if (!ext_tlv.ok()) return ext_tlv.error();
                asn1::Reader ef(ext_tlv->content);
                auto oid_tlv = ef.expect(asn1::Tag::kOid);
                if (!oid_tlv.ok()) return oid_tlv.error();
                if (Status s = asn1::validate_oid_der(oid_tlv->content); !s.ok()) {
                    return s.error();
                }

                RawExtension re;
                re.oid_der = oid_tlv->content;

                auto next = ef.next();
                if (!next.ok()) return next.error();
                if (next->is_universal(asn1::Tag::kBoolean)) {
                    auto crit = asn1::decode_boolean(next.value());
                    if (!crit.ok()) return crit.error();
                    re.critical = crit.value();
                    next = ef.next();
                    if (!next.ok()) return next.error();
                }
                if (!next->is_universal(asn1::Tag::kOctetString)) {
                    return Error{"x509_ext_not_octet_string",
                                 "extnValue must be an OCTET STRING"};
                }
                re.value = next->content;

                if (arena_table != nullptr) {
                    assert(filled < table_size);
                    new (arena_table + filled) RawExtension(re);
                } else {
                    lc.owned_exts_.push_back(re);
                }
                ++filled;
            }
        }
    }
    if (arena_table != nullptr) {
        lc.arena_exts_ = arena_table;
        lc.ext_count_ = filled;
    }

    // ---- signatureAlgorithm (outer) ----
    auto outer_alg = top.expect(asn1::Tag::kSequence);
    if (!outer_alg.ok()) return outer_alg.error();

    // ---- signatureValue ----
    auto sig = top.expect(asn1::Tag::kBitString);
    if (!sig.ok()) return sig.error();
    auto sig_view = asn1::decode_bit_string_view(sig.value());
    if (!sig_view.ok()) return sig_view.error();
    lc.signature_ = sig_view.value();

    return lc;
}

const LazyCertificate::RawExtension* LazyCertificate::find_raw_extension(
    const asn1::Oid& oid) const noexcept {
    for (const RawExtension& re : raw_extensions()) {
        if (oid.matches_der(re.oid_der)) return &re;
    }
    return nullptr;
}

asn1::Oid LazyCertificate::signature_algorithm() const {
    return asn1::Oid::from_der(sig_alg_der_).value();
}

DistinguishedName LazyCertificate::issuer() const { return parse_name(issuer_der_).value(); }

DistinguishedName LazyCertificate::subject() const { return parse_name(subject_der_).value(); }

Extension LazyCertificate::decode_extension(const RawExtension& raw) const {
    Extension ext;
    ext.oid = asn1::Oid::from_der(raw.oid_der).value();
    ext.critical = raw.critical;
    ext.value.assign(raw.value.begin(), raw.value.end());
    return ext;
}

Certificate LazyCertificate::materialize() const {
    Certificate cert;
    cert.version = version_;
    cert.serial.assign(serial_.begin(), serial_.end());
    cert.signature_algorithm = signature_algorithm();
    cert.issuer = issuer();
    cert.validity = validity_;
    cert.subject = subject();
    cert.subject_public_key.assign(spki_key_.begin(), spki_key_.end());
    auto raws = raw_extensions();
    cert.extensions.reserve(raws.size());
    for (const RawExtension& re : raws) cert.extensions.push_back(decode_extension(re));
    cert.signature.assign(signature_.begin(), signature_.end());
    cert.tbs_der.assign(tbs_der_.begin(), tbs_der_.end());
    cert.der.assign(der_.begin(), der_.end());
    return cert;
}

}  // namespace unicert::x509
