// unicert/x509/lazy.h
//
// Zero-copy certificate index: one structural walk over the DER that
// performs every validation parse_certificate performs — identical
// acceptance set, identical Error codes/messages/offsets — but records
// BytesView spans into the input buffer instead of materializing owned
// field values. parse_certificate itself is index() + materialize(),
// so there is exactly one decoder and parity is structural, not
// maintained by hand (proven by tests/parse_parity_test.cc).
//
// Borrowing rules (DESIGN.md section 13):
//   * Every span returned by a LazyCertificate aliases the buffer that
//     was passed to index(); the buffer must outlive the index and
//     every view derived from it (mmap'd corpus segments outlive the
//     pipeline run that borrows from them).
//   * When an Arena is supplied, the extension table lives in the
//     arena; releasing the enclosing scope mark invalidates the whole
//     LazyCertificate. The streaming pipelines open one ArenaScope per
//     certificate, so a warmed-up run indexes with zero heap traffic.
//   * materialize() deep-copies everything into an owning Certificate;
//     the result is independent of both buffer and arena.
#pragma once

#include <span>

#include "asn1/oid.h"
#include "common/bytes.h"
#include "common/expected.h"
#include "core/arena.h"
#include "x509/certificate.h"

namespace unicert::x509 {

class LazyCertificate {
public:
    // One indexed extension: raw OID content octets (validated),
    // criticality, and the DER inside extnValue's OCTET STRING.
    struct RawExtension {
        BytesView oid_der;
        bool critical = false;
        BytesView value;
    };

    // Walk + validate `der`, recording spans. With an arena, the
    // extension table is bump-allocated there; otherwise it is heap
    // allocated (one vector — still no per-field copies).
    static Expected<LazyCertificate> index(BytesView der, core::Arena* arena = nullptr);

    // ---- Eagerly decoded scalars (free at index time) -----------------

    int version() const noexcept { return version_; }
    const Validity& validity() const noexcept { return validity_; }

    // ---- Borrowed spans ------------------------------------------------

    BytesView der() const noexcept { return der_; }          // trimmed to the outer TLV
    BytesView tbs_der() const noexcept { return tbs_der_; }  // header + content
    BytesView serial() const noexcept { return serial_; }    // magnitude, leading 0x00 stripped
    BytesView signature_algorithm_der() const noexcept { return sig_alg_der_; }
    BytesView issuer_der() const noexcept { return issuer_der_; }    // full Name TLV
    BytesView subject_der() const noexcept { return subject_der_; }  // full Name TLV
    BytesView subject_public_key() const noexcept { return spki_key_; }
    BytesView signature() const noexcept { return signature_; }

    std::span<const RawExtension> raw_extensions() const noexcept {
        return arena_exts_ != nullptr ? std::span<const RawExtension>{arena_exts_, ext_count_}
                                      : std::span<const RawExtension>{owned_exts_};
    }
    // Allocation-free probe (first match, like Certificate::find_extension).
    const RawExtension* find_raw_extension(const asn1::Oid& oid) const noexcept;

    // ---- On-demand decodes ---------------------------------------------
    //
    // All of these succeeded structurally at index time, so they cannot
    // fail here; they allocate exactly what they return.

    asn1::Oid signature_algorithm() const;
    DistinguishedName issuer() const;
    DistinguishedName subject() const;
    Extension decode_extension(const RawExtension& raw) const;

    // Deep copy into the owning model — byte-identical to what the
    // legacy owning parse produced.
    Certificate materialize() const;

private:
    int version_ = 0;
    Validity validity_;
    BytesView der_;
    BytesView tbs_der_;
    BytesView serial_;
    BytesView sig_alg_der_;
    BytesView issuer_der_;
    BytesView subject_der_;
    BytesView spki_key_;
    BytesView signature_;
    // Extension table: arena-backed (arena_exts_) or owned. The vector
    // move keeps its heap buffer, so LazyCertificate is safely movable
    // either way; copying is fine too (spans are non-owning).
    const RawExtension* arena_exts_ = nullptr;
    size_t ext_count_ = 0;
    std::vector<RawExtension> owned_exts_;
};

}  // namespace unicert::x509
