#include "x509/parser.h"

#include "x509/lazy.h"

namespace unicert::x509 {

// There is exactly one certificate decoder: LazyCertificate::index
// performs the full structural walk and validation, and the owning
// parse is index + materialize. The parity harness
// (tests/parse_parity_test.cc) pins this against a retained copy of
// the original owning parser across generated corpora, mutants and
// handcrafted edge cases — byte-identical results and Errors.
Expected<Certificate> parse_certificate(BytesView der) {
    auto lazy = LazyCertificate::index(der);
    if (!lazy.ok()) return lazy.error();
    return lazy->materialize();
}

}  // namespace unicert::x509
