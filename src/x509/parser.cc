#include "x509/parser.h"

#include "asn1/der.h"
#include "asn1/time.h"

namespace unicert::x509 {
namespace {

Expected<asn1::Oid> parse_algorithm_identifier(const asn1::Tlv& tlv) {
    asn1::Reader r(tlv.content);
    auto oid_tlv = r.expect(asn1::Tag::kOid);
    if (!oid_tlv.ok()) return oid_tlv.error();
    return asn1::Oid::from_der(oid_tlv->content);
}

Expected<int64_t> parse_time(const asn1::Tlv& tlv) {
    if (tlv.is_universal(asn1::Tag::kUtcTime)) return asn1::parse_utc_time(tlv.content);
    if (tlv.is_universal(asn1::Tag::kGeneralizedTime)) {
        return asn1::parse_generalized_time(tlv.content);
    }
    return Error{"x509_bad_time_tag", "validity time must be UTCTime or GeneralizedTime"};
}

}  // namespace

Expected<Certificate> parse_certificate(BytesView der) {
    // Depth guard first: a nesting bomb must be rejected before any
    // structure-directed walk starts.
    if (Status depth = asn1::check_nesting(der); !depth.ok()) return depth.error();
    auto outer = asn1::read_tlv(der);
    if (!outer.ok()) return outer.error();
    if (!outer->is_universal(asn1::Tag::kSequence)) {
        return Error{"x509_not_sequence", "Certificate must be a SEQUENCE"};
    }

    Certificate cert;
    cert.der.assign(der.begin(), der.begin() + outer->total_len);

    asn1::Reader top(outer->content);

    // ---- TBSCertificate ----
    auto tbs = top.expect(asn1::Tag::kSequence);
    if (!tbs.ok()) return tbs.error();
    {
        // Recover the raw TBS bytes (header + content) for signature checks.
        size_t tbs_start = outer->header_len;
        cert.tbs_der.assign(der.begin() + tbs_start, der.begin() + tbs_start + tbs->total_len);
    }

    asn1::Reader r(tbs->content);

    // version [0] EXPLICIT (optional)
    auto first = r.peek();
    if (!first.ok()) return first.error();
    if (first->is_context(0) && first->is_constructed()) {
        auto vwrap = r.next();
        asn1::Reader vr(vwrap->content);
        auto v = vr.expect(asn1::Tag::kInteger);
        if (!v.ok()) return v.error();
        auto version = asn1::decode_integer(v.value());
        if (!version.ok()) return version.error();
        cert.version = static_cast<int>(version.value());
    } else {
        cert.version = 0;
    }

    // serialNumber
    auto serial = r.expect(asn1::Tag::kInteger);
    if (!serial.ok()) return serial.error();
    auto serial_bytes = asn1::decode_integer_bytes(serial.value());
    if (!serial_bytes.ok()) return serial_bytes.error();
    cert.serial = std::move(serial_bytes).value();

    // signature AlgorithmIdentifier
    auto alg = r.expect(asn1::Tag::kSequence);
    if (!alg.ok()) return alg.error();
    auto alg_oid = parse_algorithm_identifier(alg.value());
    if (!alg_oid.ok()) return alg_oid.error();
    cert.signature_algorithm = std::move(alg_oid).value();

    // issuer Name — parse from its raw TLV span.
    auto issuer_tlv = r.peek();
    if (!issuer_tlv.ok()) return issuer_tlv.error();
    {
        BytesView span = tbs->content.subspan(r.position(), issuer_tlv->total_len);
        auto issuer = parse_name(span);
        if (!issuer.ok()) return issuer.error();
        cert.issuer = std::move(issuer).value();
        (void)r.next();
    }

    // validity
    auto validity = r.expect(asn1::Tag::kSequence);
    if (!validity.ok()) return validity.error();
    {
        asn1::Reader vr(validity->content);
        auto nb_tlv = vr.next();
        if (!nb_tlv.ok()) return nb_tlv.error();
        auto nb = parse_time(nb_tlv.value());
        if (!nb.ok()) return nb.error();
        auto na_tlv = vr.next();
        if (!na_tlv.ok()) return na_tlv.error();
        auto na = parse_time(na_tlv.value());
        if (!na.ok()) return na.error();
        cert.validity = {nb.value(), na.value()};
    }

    // subject Name
    auto subject_tlv = r.peek();
    if (!subject_tlv.ok()) return subject_tlv.error();
    {
        BytesView span = tbs->content.subspan(r.position(), subject_tlv->total_len);
        auto subject = parse_name(span);
        if (!subject.ok()) return subject.error();
        cert.subject = std::move(subject).value();
        (void)r.next();
    }

    // SubjectPublicKeyInfo
    auto spki = r.expect(asn1::Tag::kSequence);
    if (!spki.ok()) return spki.error();
    {
        asn1::Reader sr(spki->content);
        auto spki_alg = sr.expect(asn1::Tag::kSequence);
        if (!spki_alg.ok()) return spki_alg.error();
        auto bit_str = sr.expect(asn1::Tag::kBitString);
        if (!bit_str.ok()) return bit_str.error();
        auto key = asn1::decode_bit_string(bit_str.value());
        if (!key.ok()) return key.error();
        cert.subject_public_key = std::move(key).value();
    }

    // Optional fields: issuerUniqueID [1], subjectUniqueID [2], extensions [3]
    while (!r.done()) {
        auto tlv = r.next();
        if (!tlv.ok()) return tlv.error();
        if (tlv->is_context(3) && tlv->is_constructed()) {
            asn1::Reader wrap(tlv->content);
            auto exts_seq = wrap.expect(asn1::Tag::kSequence);
            if (!exts_seq.ok()) return exts_seq.error();
            asn1::Reader er(exts_seq->content);
            while (!er.done()) {
                auto ext_tlv = er.expect(asn1::Tag::kSequence);
                if (!ext_tlv.ok()) return ext_tlv.error();
                asn1::Reader ef(ext_tlv->content);
                auto oid_tlv = ef.expect(asn1::Tag::kOid);
                if (!oid_tlv.ok()) return oid_tlv.error();
                auto oid = asn1::Oid::from_der(oid_tlv->content);
                if (!oid.ok()) return oid.error();

                Extension ext;
                ext.oid = std::move(oid).value();

                auto next = ef.next();
                if (!next.ok()) return next.error();
                if (next->is_universal(asn1::Tag::kBoolean)) {
                    auto crit = asn1::decode_boolean(next.value());
                    if (!crit.ok()) return crit.error();
                    ext.critical = crit.value();
                    next = ef.next();
                    if (!next.ok()) return next.error();
                }
                if (!next->is_universal(asn1::Tag::kOctetString)) {
                    return Error{"x509_ext_not_octet_string",
                                 "extnValue must be an OCTET STRING"};
                }
                ext.value.assign(next->content.begin(), next->content.end());
                cert.extensions.push_back(std::move(ext));
            }
        }
    }

    // ---- signatureAlgorithm (outer) ----
    auto outer_alg = top.expect(asn1::Tag::kSequence);
    if (!outer_alg.ok()) return outer_alg.error();

    // ---- signatureValue ----
    auto sig = top.expect(asn1::Tag::kBitString);
    if (!sig.ok()) return sig.error();
    auto sig_bytes = asn1::decode_bit_string(sig.value());
    if (!sig_bytes.ok()) return sig_bytes.error();
    cert.signature = std::move(sig_bytes).value();

    return cert;
}

}  // namespace unicert::x509
