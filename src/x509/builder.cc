#include "x509/builder.h"

#include "asn1/der.h"
#include "asn1/time.h"

namespace unicert::x509 {
namespace {

void write_time(asn1::Writer& w, int64_t t) {
    asn1::EncodedTime enc = asn1::format_validity_time(t);
    w.add_string(enc.generalized ? asn1::Tag::kGeneralizedTime : asn1::Tag::kUtcTime, enc.text);
}

void write_algorithm_identifier(asn1::Writer& w, const asn1::Oid& alg) {
    w.add_sequence([&](asn1::Writer& seq) {
        seq.add_oid_der(alg.to_der());
        seq.add_null();
    });
}

}  // namespace

Bytes encode_tbs(const Certificate& cert) {
    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& tbs) {
        // version [0] EXPLICIT INTEGER (omitted for v1)
        if (cert.version != 0) {
            tbs.add_explicit(0, [&](asn1::Writer& v) { v.add_integer(cert.version); });
        }
        tbs.add_integer_bytes(cert.serial);
        write_algorithm_identifier(tbs, cert.signature_algorithm);
        tbs.add_raw(encode_name(cert.issuer));
        tbs.add_sequence([&](asn1::Writer& validity) {
            write_time(validity, cert.validity.not_before);
            write_time(validity, cert.validity.not_after);
        });
        tbs.add_raw(encode_name(cert.subject));
        // SubjectPublicKeyInfo
        tbs.add_sequence([&](asn1::Writer& spki) {
            write_algorithm_identifier(spki, asn1::oids::sim_sig_with_sha256());
            spki.add_bit_string(cert.subject_public_key);
        });
        if (!cert.extensions.empty()) {
            tbs.add_explicit(3, [&](asn1::Writer& wrap) {
                wrap.add_sequence([&](asn1::Writer& exts) {
                    for (const Extension& ext : cert.extensions) {
                        exts.add_sequence([&](asn1::Writer& e) {
                            e.add_oid_der(ext.oid.to_der());
                            if (ext.critical) e.add_boolean(true);
                            e.add_octet_string(ext.value);
                        });
                    }
                });
            });
        }
    });
    return w.take();
}

Bytes sign_certificate(Certificate& cert, const crypto::SimSigner& issuer_key) {
    if (cert.signature_algorithm.empty()) {
        cert.signature_algorithm = asn1::oids::sim_sig_with_sha256();
    }
    cert.tbs_der = encode_tbs(cert);
    cert.signature = issuer_key.sign(cert.tbs_der);

    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& outer) {
        outer.add_raw(cert.tbs_der);
        outer.add_sequence([&](asn1::Writer& alg) {
            alg.add_oid_der(cert.signature_algorithm.to_der());
            alg.add_null();
        });
        outer.add_bit_string(cert.signature);
    });
    cert.der = w.take();
    return cert.der;
}

bool verify_signature(const Certificate& cert, const crypto::SimSigner& issuer_key) {
    if (cert.tbs_der.empty() || cert.signature.empty()) return false;
    return crypto::sim_verify(issuer_key, cert.tbs_der, cert.signature);
}

}  // namespace unicert::x509
