#include "x509/extensions.h"

#include "asn1/der.h"
#include "unicode/codec.h"

namespace unicert::x509 {
namespace {

Extension make_extension(const asn1::Oid& oid, bool critical, Bytes inner_der) {
    Extension ext;
    ext.oid = oid;
    ext.critical = critical;
    ext.value = std::move(inner_der);
    return ext;
}

Bytes encode_access_descriptions(const std::vector<AccessDescription>& descriptors) {
    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& seq) {
        for (const AccessDescription& ad : descriptors) {
            seq.add_sequence([&](asn1::Writer& item) {
                item.add_oid_der(ad.method.to_der());
                item.add_raw(encode_general_name(ad.location));
            });
        }
    });
    return w.take();
}

Expected<std::vector<AccessDescription>> parse_access_description_der(BytesView der) {
    auto seq = asn1::read_tlv(der);
    if (!seq.ok()) return seq.error();
    if (!seq->is_universal(asn1::Tag::kSequence)) {
        return Error{"x509_aia_not_sequence", "AIA/SIA must be a SEQUENCE"};
    }
    std::vector<AccessDescription> out;
    asn1::Reader r(seq->content);
    while (!r.done()) {
        auto item = r.expect(asn1::Tag::kSequence);
        if (!item.ok()) return item.error();
        asn1::Reader fields(item->content);
        auto oid_tlv = fields.expect(asn1::Tag::kOid);
        if (!oid_tlv.ok()) return oid_tlv.error();
        auto oid = asn1::Oid::from_der(oid_tlv->content);
        if (!oid.ok()) return oid.error();
        auto gn_tlv = fields.next();
        if (!gn_tlv.ok()) return gn_tlv.error();
        auto gn = parse_general_name(gn_tlv.value());
        if (!gn.ok()) return gn.error();
        out.push_back({std::move(oid).value(), std::move(gn).value()});
    }
    return out;
}

}  // namespace

std::string DisplayText::to_utf8_lossy() const {
    return unicode::transcode_to_utf8(value_bytes, asn1::nominal_encoding(string_type),
                                      unicode::ErrorPolicy::kReplace);
}

Extension make_san(const GeneralNames& names, bool critical) {
    return make_extension(asn1::oids::subject_alt_name(), critical, encode_general_names(names));
}

Extension make_ian(const GeneralNames& names) {
    return make_extension(asn1::oids::issuer_alt_name(), false, encode_general_names(names));
}

Extension make_aia(const std::vector<AccessDescription>& descriptors) {
    return make_extension(asn1::oids::authority_info_access(), false,
                          encode_access_descriptions(descriptors));
}

Extension make_sia(const std::vector<AccessDescription>& descriptors) {
    return make_extension(asn1::oids::subject_info_access(), false,
                          encode_access_descriptions(descriptors));
}

Extension make_crl_distribution_points(const std::vector<DistributionPoint>& points) {
    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& seq) {
        for (const DistributionPoint& dp : points) {
            seq.add_sequence([&](asn1::Writer& point) {
                // DistributionPointName [0] EXPLICIT -> fullName [0] IMPLICIT GeneralNames
                point.add_constructed(asn1::context(0, true), [&](asn1::Writer& dpn) {
                    dpn.add_constructed(asn1::context(0, true), [&](asn1::Writer& full) {
                        for (const GeneralName& gn : dp.full_names) {
                            full.add_raw(encode_general_name(gn));
                        }
                    });
                });
            });
        }
    });
    return make_extension(asn1::oids::crl_distribution_points(), false, w.take());
}

Extension make_certificate_policies(const std::vector<PolicyInformation>& policies) {
    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& seq) {
        for (const PolicyInformation& pi : policies) {
            seq.add_sequence([&](asn1::Writer& info) {
                info.add_oid_der(pi.policy_id.to_der());
                if (!pi.qualifiers.empty()) {
                    info.add_sequence([&](asn1::Writer& quals) {
                        for (const PolicyQualifier& q : pi.qualifiers) {
                            quals.add_sequence([&](asn1::Writer& qual) {
                                qual.add_oid_der(q.qualifier_id.to_der());
                                if (q.qualifier_id == asn1::oids::cps_qualifier()) {
                                    qual.add_string(asn1::Tag::kIa5String, q.cps_uri);
                                } else if (q.explicit_text) {
                                    // UserNotice ::= SEQUENCE { explicitText DisplayText }
                                    qual.add_sequence([&](asn1::Writer& notice) {
                                        notice.add_string(
                                            asn1::string_type_tag(q.explicit_text->string_type),
                                            q.explicit_text->value_bytes);
                                    });
                                }
                            });
                        }
                    });
                }
            });
        }
    });
    return make_extension(asn1::oids::certificate_policies(), false, w.take());
}

Extension make_basic_constraints(const BasicConstraints& bc, bool critical) {
    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& seq) {
        if (bc.ca) seq.add_boolean(true);
        if (bc.path_len) seq.add_integer(*bc.path_len);
    });
    return make_extension(asn1::oids::basic_constraints(), critical, w.take());
}

Extension make_key_usage(uint16_t bits, bool critical) {
    // KeyUsage is a BIT STRING with up to 9 named bits; encode the two
    // bytes and let unused bits be zero for simplicity.
    uint8_t content[2] = {static_cast<uint8_t>(bits >> 8), static_cast<uint8_t>(bits & 0xFF)};
    asn1::Writer w;
    w.add_bit_string({content, 2}, 0);
    return make_extension(asn1::oids::key_usage(), critical, w.take());
}

Extension make_subject_key_identifier(BytesView key_id) {
    asn1::Writer w;
    w.add_octet_string(key_id);
    return make_extension(asn1::oids::subject_key_identifier(), false, w.take());
}

Extension make_authority_key_identifier(BytesView key_id) {
    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& seq) {
        // keyIdentifier [0] IMPLICIT OCTET STRING
        seq.add_tlv(asn1::context(0, false), key_id);
    });
    return make_extension(asn1::oids::authority_key_identifier(), false, w.take());
}

namespace eku {
#define UNICERT_EKU(name, last)                                                  \
    const asn1::Oid& name() {                                                    \
        static const asn1::Oid oid{std::vector<uint32_t>{1, 3, 6, 1, 5, 5, 7, 3, last}}; \
        return oid;                                                              \
    }
UNICERT_EKU(server_auth, 1)
UNICERT_EKU(client_auth, 2)
UNICERT_EKU(email_protection, 4)
UNICERT_EKU(ocsp_signing, 9)
#undef UNICERT_EKU
}  // namespace eku

Extension make_ext_key_usage(const std::vector<asn1::Oid>& purposes) {
    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& seq) {
        for (const asn1::Oid& oid : purposes) seq.add_oid_der(oid.to_der());
    });
    return make_extension(asn1::oids::ext_key_usage(), false, w.take());
}

Expected<std::vector<asn1::Oid>> parse_ext_key_usage(const Extension& ext) {
    auto seq = asn1::read_tlv(ext.value);
    if (!seq.ok()) return seq.error();
    if (!seq->is_universal(asn1::Tag::kSequence)) {
        return Error{"x509_eku_not_sequence", "ExtendedKeyUsage must be a SEQUENCE"};
    }
    std::vector<asn1::Oid> out;
    asn1::Reader r(seq->content);
    while (!r.done()) {
        auto oid_tlv = r.expect(asn1::Tag::kOid);
        if (!oid_tlv.ok()) return oid_tlv.error();
        auto oid = asn1::Oid::from_der(oid_tlv->content);
        if (!oid.ok()) return oid.error();
        out.push_back(std::move(oid).value());
    }
    return out;
}

Extension make_ct_poison() {
    asn1::Writer w;
    w.add_null();
    return make_extension(asn1::oids::ct_poison(), true, w.take());
}

Expected<GeneralNames> parse_san(const Extension& ext) {
    auto seq = asn1::read_tlv(ext.value);
    if (!seq.ok()) return seq.error();
    if (!seq->is_universal(asn1::Tag::kSequence)) {
        return Error{"x509_san_not_sequence", "SubjectAltName must be a SEQUENCE"};
    }
    return parse_general_names(seq->content);
}

Expected<GeneralNames> parse_ian(const Extension& ext) { return parse_san(ext); }

Expected<std::vector<AccessDescription>> parse_access_descriptions(const Extension& ext) {
    return parse_access_description_der(ext.value);
}

Expected<std::vector<DistributionPoint>> parse_crl_distribution_points(const Extension& ext) {
    auto seq = asn1::read_tlv(ext.value);
    if (!seq.ok()) return seq.error();
    if (!seq->is_universal(asn1::Tag::kSequence)) {
        return Error{"x509_crldp_not_sequence", "CRLDistributionPoints must be a SEQUENCE"};
    }
    std::vector<DistributionPoint> out;
    asn1::Reader points(seq->content);
    while (!points.done()) {
        auto point = points.expect(asn1::Tag::kSequence);
        if (!point.ok()) return point.error();
        DistributionPoint dp;
        asn1::Reader fields(point->content);
        while (!fields.done()) {
            auto tlv = fields.next();
            if (!tlv.ok()) return tlv.error();
            if (tlv->is_context(0) && tlv->is_constructed()) {
                asn1::Reader dpn(tlv->content);
                while (!dpn.done()) {
                    auto inner = dpn.next();
                    if (!inner.ok()) return inner.error();
                    if (inner->is_context(0)) {
                        auto gns = parse_general_names(inner->content);
                        if (!gns.ok()) return gns.error();
                        dp.full_names = std::move(gns).value();
                    }
                }
            }
            // reasons [1] and cRLIssuer [2] are skipped: out of scope.
        }
        out.push_back(std::move(dp));
    }
    return out;
}

Expected<std::vector<PolicyInformation>> parse_certificate_policies(const Extension& ext) {
    auto seq = asn1::read_tlv(ext.value);
    if (!seq.ok()) return seq.error();
    if (!seq->is_universal(asn1::Tag::kSequence)) {
        return Error{"x509_cp_not_sequence", "CertificatePolicies must be a SEQUENCE"};
    }
    std::vector<PolicyInformation> out;
    asn1::Reader policies(seq->content);
    while (!policies.done()) {
        auto info = policies.expect(asn1::Tag::kSequence);
        if (!info.ok()) return info.error();
        PolicyInformation pi;
        asn1::Reader fields(info->content);
        auto oid_tlv = fields.expect(asn1::Tag::kOid);
        if (!oid_tlv.ok()) return oid_tlv.error();
        auto oid = asn1::Oid::from_der(oid_tlv->content);
        if (!oid.ok()) return oid.error();
        pi.policy_id = std::move(oid).value();
        if (!fields.done()) {
            auto quals = fields.expect(asn1::Tag::kSequence);
            if (!quals.ok()) return quals.error();
            asn1::Reader qr(quals->content);
            while (!qr.done()) {
                auto qual = qr.expect(asn1::Tag::kSequence);
                if (!qual.ok()) return qual.error();
                PolicyQualifier pq;
                asn1::Reader qf(qual->content);
                auto qid = qf.expect(asn1::Tag::kOid);
                if (!qid.ok()) return qid.error();
                auto qoid = asn1::Oid::from_der(qid->content);
                if (!qoid.ok()) return qoid.error();
                pq.qualifier_id = std::move(qoid).value();
                if (!qf.done()) {
                    auto payload = qf.next();
                    if (!payload.ok()) return payload.error();
                    if (pq.qualifier_id == asn1::oids::cps_qualifier()) {
                        pq.cps_uri.assign(payload->content.begin(), payload->content.end());
                    } else if (payload->is_universal(asn1::Tag::kSequence)) {
                        // UserNotice; take explicitText (skip noticeRef).
                        asn1::Reader notice(payload->content);
                        while (!notice.done()) {
                            auto item = notice.next();
                            if (!item.ok()) return item.error();
                            auto st = asn1::string_type_from_tag(item->tag_number());
                            if (item->tag_class() == asn1::TagClass::kUniversal && st &&
                                !item->is_constructed()) {
                                DisplayText dt;
                                dt.string_type = *st;
                                dt.value_bytes.assign(item->content.begin(), item->content.end());
                                pq.explicit_text = std::move(dt);
                            }
                        }
                    }
                }
                pi.qualifiers.push_back(std::move(pq));
            }
        }
        out.push_back(std::move(pi));
    }
    return out;
}

Expected<BasicConstraints> parse_basic_constraints(const Extension& ext) {
    auto seq = asn1::read_tlv(ext.value);
    if (!seq.ok()) return seq.error();
    if (!seq->is_universal(asn1::Tag::kSequence)) {
        return Error{"x509_bc_not_sequence", "BasicConstraints must be a SEQUENCE"};
    }
    BasicConstraints bc;
    asn1::Reader r(seq->content);
    if (!r.done()) {
        auto peeked = r.peek();
        if (peeked.ok() && peeked->is_universal(asn1::Tag::kBoolean)) {
            auto b = r.next();
            auto v = asn1::decode_boolean(b.value());
            if (!v.ok()) return v.error();
            bc.ca = v.value();
        }
    }
    if (!r.done()) {
        auto i = r.expect(asn1::Tag::kInteger);
        if (!i.ok()) return i.error();
        auto v = asn1::decode_integer(i.value());
        if (!v.ok()) return v.error();
        bc.path_len = v.value();
    }
    return bc;
}

}  // namespace unicert::x509
