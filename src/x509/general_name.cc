#include "x509/general_name.h"

#include "asn1/der.h"
#include "unicode/codec.h"

namespace unicert::x509 {
namespace {

// Context tag numbers from RFC 5280.
constexpr uint8_t kTagOtherName = 0;
constexpr uint8_t kTagRfc822 = 1;
constexpr uint8_t kTagDns = 2;
constexpr uint8_t kTagDirectory = 4;
constexpr uint8_t kTagUri = 6;
constexpr uint8_t kTagIp = 7;
constexpr uint8_t kTagRegisteredId = 8;

}  // namespace

const char* general_name_type_label(GeneralNameType t) noexcept {
    switch (t) {
        case GeneralNameType::kOtherName: return "otherName";
        case GeneralNameType::kRfc822Name: return "email";
        case GeneralNameType::kDnsName: return "DNS";
        case GeneralNameType::kDirectoryName: return "DirName";
        case GeneralNameType::kUri: return "URI";
        case GeneralNameType::kIpAddress: return "IP";
        case GeneralNameType::kRegisteredId: return "RID";
    }
    return "?";
}

std::string GeneralName::to_utf8_lossy() const {
    switch (type) {
        case GeneralNameType::kRfc822Name:
        case GeneralNameType::kDnsName:
        case GeneralNameType::kUri:
            return unicode::transcode_to_utf8(value_bytes, asn1::nominal_encoding(string_type),
                                              unicode::ErrorPolicy::kReplace);
        case GeneralNameType::kIpAddress: {
            if (value_bytes.size() == 4) {
                return std::to_string(value_bytes[0]) + "." + std::to_string(value_bytes[1]) +
                       "." + std::to_string(value_bytes[2]) + "." + std::to_string(value_bytes[3]);
            }
            if (value_bytes.size() == 16) {
                // Uncompressed colon-hex IPv6 groups.
                std::string out;
                for (size_t i = 0; i < 16; i += 2) {
                    if (i) out.push_back(':');
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "%x",
                                  (static_cast<unsigned>(value_bytes[i]) << 8) |
                                      value_bytes[i + 1]);
                    out += buf;
                }
                return out;
            }
            return hex_encode(value_bytes);
        }
        case GeneralNameType::kOtherName:
            return other_name_oid.to_string();
        case GeneralNameType::kRegisteredId:
            return hex_encode(value_bytes);
        case GeneralNameType::kDirectoryName:
            return "<directoryName>";  // rendered by dn_text helpers
    }
    return {};
}

GeneralName dns_name(std::string_view value, asn1::StringType st) {
    GeneralName gn;
    gn.type = GeneralNameType::kDnsName;
    gn.string_type = st;
    auto cps = unicode::utf8_to_codepoints(value);
    if (cps.ok()) {
        auto enc = asn1::encode_unchecked(st, cps.value());
        if (enc.ok()) {
            gn.value_bytes = std::move(enc).value();
            return gn;
        }
    }
    gn.value_bytes = to_bytes(value);
    return gn;
}

GeneralName rfc822_name(std::string_view email, asn1::StringType st) {
    GeneralName gn = dns_name(email, st);
    gn.type = GeneralNameType::kRfc822Name;
    return gn;
}

GeneralName uri_name(std::string_view uri, asn1::StringType st) {
    GeneralName gn = dns_name(uri, st);
    gn.type = GeneralNameType::kUri;
    return gn;
}

GeneralName ip_address(BytesView octets) {
    GeneralName gn;
    gn.type = GeneralNameType::kIpAddress;
    gn.value_bytes.assign(octets.begin(), octets.end());
    return gn;
}

GeneralName directory_name(DistinguishedName dn) {
    GeneralName gn;
    gn.type = GeneralNameType::kDirectoryName;
    gn.directory = std::move(dn);
    return gn;
}

GeneralName smtp_utf8_mailbox(std::string_view utf8_mailbox) {
    GeneralName gn;
    gn.type = GeneralNameType::kOtherName;
    gn.other_name_oid = asn1::oids::smtp_utf8_mailbox();
    asn1::Writer w;
    w.add_string(asn1::Tag::kUtf8String, utf8_mailbox);
    gn.other_name_value = w.take();
    return gn;
}

Bytes encode_general_name(const GeneralName& gn) {
    asn1::Writer w;
    switch (gn.type) {
        case GeneralNameType::kRfc822Name:
            w.add_tlv(asn1::context(kTagRfc822, false), gn.value_bytes);
            break;
        case GeneralNameType::kDnsName:
            w.add_tlv(asn1::context(kTagDns, false), gn.value_bytes);
            break;
        case GeneralNameType::kUri:
            w.add_tlv(asn1::context(kTagUri, false), gn.value_bytes);
            break;
        case GeneralNameType::kIpAddress:
            w.add_tlv(asn1::context(kTagIp, false), gn.value_bytes);
            break;
        case GeneralNameType::kRegisteredId:
            w.add_tlv(asn1::context(kTagRegisteredId, false), gn.value_bytes);
            break;
        case GeneralNameType::kDirectoryName:
            // directoryName is EXPLICITly tagged (Name is a CHOICE).
            w.add_constructed(asn1::context(kTagDirectory, true), [&](asn1::Writer& inner) {
                inner.add_raw(encode_name(gn.directory));
            });
            break;
        case GeneralNameType::kOtherName:
            w.add_constructed(asn1::context(kTagOtherName, true), [&](asn1::Writer& inner) {
                inner.add_oid_der(gn.other_name_oid.to_der());
                inner.add_constructed(asn1::context(0, true), [&](asn1::Writer& val) {
                    val.add_raw(gn.other_name_value);
                });
            });
            break;
    }
    return w.take();
}

Bytes encode_general_names(const GeneralNames& gns) {
    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& seq) {
        for (const GeneralName& gn : gns) seq.add_raw(encode_general_name(gn));
    });
    return w.take();
}

Expected<GeneralName> parse_general_name(const asn1::Tlv& tlv) {
    if (tlv.tag_class() != asn1::TagClass::kContextSpecific) {
        return Error{"x509_gn_bad_tag", "GeneralName must use context-specific tags"};
    }
    GeneralName gn;
    switch (tlv.tag_number()) {
        case kTagRfc822:
            gn.type = GeneralNameType::kRfc822Name;
            break;
        case kTagDns:
            gn.type = GeneralNameType::kDnsName;
            break;
        case kTagUri:
            gn.type = GeneralNameType::kUri;
            break;
        case kTagIp:
            gn.type = GeneralNameType::kIpAddress;
            gn.value_bytes.assign(tlv.content.begin(), tlv.content.end());
            return gn;
        case kTagRegisteredId:
            gn.type = GeneralNameType::kRegisteredId;
            gn.value_bytes.assign(tlv.content.begin(), tlv.content.end());
            return gn;
        case kTagDirectory: {
            gn.type = GeneralNameType::kDirectoryName;
            auto name = parse_name(tlv.content);
            if (!name.ok()) return name.error();
            gn.directory = std::move(name).value();
            return gn;
        }
        case kTagOtherName: {
            gn.type = GeneralNameType::kOtherName;
            asn1::Reader r(tlv.content);
            auto oid_tlv = r.expect(asn1::Tag::kOid);
            if (!oid_tlv.ok()) return oid_tlv.error();
            auto oid = asn1::Oid::from_der(oid_tlv->content);
            if (!oid.ok()) return oid.error();
            gn.other_name_oid = std::move(oid).value();
            auto val = r.expect_context(0);
            if (!val.ok()) return val.error();
            gn.other_name_value.assign(val->content.begin(), val->content.end());
            return gn;
        }
        default:
            return Error{"x509_gn_unknown_tag",
                         "unsupported GeneralName tag [" + std::to_string(tlv.tag_number()) + "]"};
    }
    // String kinds: the wire does not carry an explicit string type
    // (context tags replace the universal tag), so record IA5String —
    // the type RFC 5280 mandates — and keep the raw bytes for
    // behavioural analysis.
    gn.string_type = asn1::StringType::kIa5String;
    gn.value_bytes.assign(tlv.content.begin(), tlv.content.end());
    return gn;
}

Expected<GeneralNames> parse_general_names(BytesView sequence_content) {
    GeneralNames out;
    asn1::Reader r(sequence_content);
    while (!r.done()) {
        auto tlv = r.next();
        if (!tlv.ok()) return tlv.error();
        auto gn = parse_general_name(tlv.value());
        if (!gn.ok()) return gn.error();
        out.push_back(std::move(gn).value());
    }
    return out;
}

}  // namespace unicert::x509
