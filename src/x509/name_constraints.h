// unicert/x509/name_constraints.h
//
// NameConstraints (RFC 5280 section 4.2.1.10): permitted/excluded
// dNSName subtrees on CA certificates, plus constraint checking for
// leaf identities. The paper's Section 5.2(1) cites CVE-2021-44533 —
// ambiguous field transformations bypassing name-constraint checks;
// check_name_constraints() exposes both a bytes-faithful mode and a
// string-transformed mode so the bypass is demonstrable.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/expected.h"
#include "x509/certificate.h"

namespace unicert::x509 {

struct NameConstraints {
    // dNSName subtrees; an empty permitted list means "no restriction".
    std::vector<std::string> permitted_dns;
    std::vector<std::string> excluded_dns;
};

// Build the NameConstraints extension (critical, as RFC 5280 requires).
Extension make_name_constraints(const NameConstraints& nc);

// Parse from an Extension.
Expected<NameConstraints> parse_name_constraints(const Extension& ext);

// Is `dns_name` within subtree `base`? Subtree semantics: "example.com"
// covers itself and every subdomain; ".example.com" covers subdomains
// only.
bool dns_within_subtree(std::string_view dns_name, std::string_view base);

enum class ConstraintVerdict { kPermitted, kExcluded, kNotPermitted };

const char* constraint_verdict_name(ConstraintVerdict v) noexcept;

// Check every SAN dNSName of `leaf` against `nc`.
// When `use_text_transform` is set, each identity first passes through
// the X.509-text round trip (format + naive re-split) — the lossy path
// in which "a.com, DNS:b.com" becomes two identities and embedded NULs
// vanish, reproducing the constraint-bypass class of CVE-2021-44533.
ConstraintVerdict check_name_constraints(const Certificate& leaf, const NameConstraints& nc,
                                         bool use_text_transform = false);

}  // namespace unicert::x509
