#include "x509/name_constraints.h"

#include <algorithm>

#include "asn1/der.h"
#include "x509/dn_text.h"

namespace unicert::x509 {
namespace {

// GeneralSubtrees ::= SEQUENCE OF GeneralSubtree
// GeneralSubtree ::= SEQUENCE { base GeneralName, minimum [0] DEFAULT 0, ... }
void write_subtrees(asn1::Writer& w, uint8_t tag, const std::vector<std::string>& bases) {
    w.add_constructed(asn1::context(tag, true), [&](asn1::Writer& subtrees) {
        for (const std::string& base : bases) {
            subtrees.add_sequence([&](asn1::Writer& subtree) {
                subtree.add_raw(encode_general_name(dns_name(base)));
            });
        }
    });
}

Expected<std::vector<std::string>> read_subtrees(const asn1::Tlv& tlv) {
    std::vector<std::string> out;
    asn1::Reader r(tlv.content);
    while (!r.done()) {
        auto subtree = r.expect(asn1::Tag::kSequence);
        if (!subtree.ok()) return subtree.error();
        asn1::Reader sr(subtree->content);
        auto gn_tlv = sr.next();
        if (!gn_tlv.ok()) return gn_tlv.error();
        auto gn = parse_general_name(gn_tlv.value());
        if (!gn.ok()) return gn.error();
        if (gn->type == GeneralNameType::kDnsName) {
            out.push_back(to_string(gn->value_bytes));
        }
        // minimum/maximum fields are never used in the web PKI; skip.
    }
    return out;
}

std::string ascii_lower(std::string_view s) {
    std::string out(s);
    for (char& c : out) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + 0x20);
    }
    return out;
}

}  // namespace

Extension make_name_constraints(const NameConstraints& nc) {
    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& seq) {
        if (!nc.permitted_dns.empty()) write_subtrees(seq, 0, nc.permitted_dns);
        if (!nc.excluded_dns.empty()) write_subtrees(seq, 1, nc.excluded_dns);
    });
    Extension ext;
    ext.oid = asn1::Oid{std::vector<uint32_t>{2, 5, 29, 30}};
    ext.critical = true;
    ext.value = w.take();
    return ext;
}

Expected<NameConstraints> parse_name_constraints(const Extension& ext) {
    auto seq = asn1::read_tlv(ext.value);
    if (!seq.ok()) return seq.error();
    if (!seq->is_universal(asn1::Tag::kSequence)) {
        return Error{"x509_nc_not_sequence", "NameConstraints must be a SEQUENCE"};
    }
    NameConstraints nc;
    asn1::Reader r(seq->content);
    while (!r.done()) {
        auto tlv = r.next();
        if (!tlv.ok()) return tlv.error();
        if (tlv->is_context(0)) {
            auto subtrees = read_subtrees(tlv.value());
            if (!subtrees.ok()) return subtrees.error();
            nc.permitted_dns = std::move(subtrees).value();
        } else if (tlv->is_context(1)) {
            auto subtrees = read_subtrees(tlv.value());
            if (!subtrees.ok()) return subtrees.error();
            nc.excluded_dns = std::move(subtrees).value();
        }
    }
    return nc;
}

bool dns_within_subtree(std::string_view dns_name, std::string_view base) {
    std::string name = ascii_lower(dns_name);
    std::string b = ascii_lower(base);
    if (b.empty()) return true;  // empty base constrains nothing out
    if (b.front() == '.') {
        // Subdomains only.
        return name.size() > b.size() && name.ends_with(b);
    }
    if (name == b) return true;
    return name.size() > b.size() + 1 && name.ends_with(b) &&
           name[name.size() - b.size() - 1] == '.';
}

const char* constraint_verdict_name(ConstraintVerdict v) noexcept {
    switch (v) {
        case ConstraintVerdict::kPermitted: return "permitted";
        case ConstraintVerdict::kExcluded: return "excluded";
        case ConstraintVerdict::kNotPermitted: return "not_permitted";
    }
    return "?";
}

ConstraintVerdict check_name_constraints(const Certificate& leaf, const NameConstraints& nc,
                                         bool use_text_transform) {
    // Collect the identities to check.
    std::vector<std::string> identities;
    for (const GeneralName& gn : leaf.subject_alt_names()) {
        if (gn.type != GeneralNameType::kDnsName) continue;
        identities.push_back(to_string(gn.value_bytes));
    }

    if (use_text_transform) {
        // The vulnerable path: render to X.509-text without escaping and
        // re-split — embedded "DNS:" boundaries create identities the
        // DER never contained, and a checker on the *split* strings sees
        // different names than hostname validation will later use.
        std::vector<std::string> transformed;
        for (const std::string& id : identities) {
            std::string text = "DNS:" + id;
            size_t start = 0;
            while (start < text.size()) {
                size_t pos = text.find(", DNS:", start);
                std::string piece = text.substr(start, pos == std::string::npos
                                                           ? std::string::npos
                                                           : pos - start);
                if (piece.starts_with("DNS:")) piece = piece.substr(4);
                // C-string semantics also truncate at NUL in this path.
                if (size_t nul = piece.find('\0'); nul != std::string::npos) {
                    piece.resize(nul);
                }
                transformed.push_back(std::move(piece));
                if (pos == std::string::npos) break;
                start = pos + 2;
            }
        }
        identities = std::move(transformed);
    }

    if (identities.empty()) return ConstraintVerdict::kPermitted;

    for (const std::string& id : identities) {
        for (const std::string& excluded : nc.excluded_dns) {
            if (dns_within_subtree(id, excluded)) return ConstraintVerdict::kExcluded;
        }
        if (!nc.permitted_dns.empty()) {
            bool ok = std::any_of(nc.permitted_dns.begin(), nc.permitted_dns.end(),
                                  [&](const std::string& base) {
                                      return dns_within_subtree(id, base);
                                  });
            if (!ok) return ConstraintVerdict::kNotPermitted;
        }
    }
    return ConstraintVerdict::kPermitted;
}

}  // namespace unicert::x509
