// unicert/x509/ocsp.h
//
// A compact OCSP substrate (RFC 6960 shape, DER-framed, SimSig-signed).
// The paper's revocation discussion spans CRLs, OCSP's demotion to
// optional (CA/B ballot SC063) and the shift to short-lived
// certificates; this module supplies the OCSP side so the revocation
// scenarios can compare all three mechanisms.
#pragma once

#include <map>
#include <set>
#include <string>

#include "crypto/simsig.h"
#include "x509/certificate.h"
#include "x509/crl.h"  // RevocationStatus

namespace unicert::x509 {

struct OcspRequest {
    Bytes issuer_key_hash;  // SHA-256 of the issuer public key
    Bytes serial;
};

struct OcspResponse {
    RevocationStatus status = RevocationStatus::kUnknown;
    Bytes serial;
    int64_t this_update = 0;
    int64_t next_update = 0;
    Bytes signature;   // over the DER of the response data
    Bytes der;         // full encoded response
};

// DER encode / parse for both messages.
Bytes encode_ocsp_request(const OcspRequest& request);
Expected<OcspRequest> parse_ocsp_request(BytesView der);
Expected<OcspResponse> parse_ocsp_response(BytesView der);

// Verify the responder signature.
bool verify_ocsp_response(const OcspResponse& response, const crypto::SimSigner& responder_key);

// One CA's OCSP responder: knows its key and its revoked serials.
class OcspResponder {
public:
    OcspResponder(crypto::SimSigner key, int64_t this_update, int64_t next_update)
        : key_(std::move(key)), this_update_(this_update), next_update_(next_update) {}

    void revoke(Bytes serial) { revoked_.insert(hex_encode(serial)); }

    // Answer a request; serials the responder never issued come back
    // kGood in this simplified model unless `unknown_for_unissued`.
    OcspResponse respond(const OcspRequest& request) const;

    const crypto::SimSigner& key() const noexcept { return key_; }

private:
    crypto::SimSigner key_;
    int64_t this_update_;
    int64_t next_update_;
    std::set<std::string> revoked_;
};

// URL -> responder registry standing in for the network, keyed by the
// AIA id-ad-ocsp accessLocation.
class OcspNetwork {
public:
    void publish(const std::string& url, OcspResponder responder);

    // Query the certificate's AIA OCSP URL(s).
    RevocationStatus check(const Certificate& cert, const Bytes& issuer_key_hash) const;

private:
    std::map<std::string, OcspResponder> responders_;
};

}  // namespace unicert::x509
