#include "x509/crl.h"

#include "asn1/der.h"
#include "asn1/time.h"

namespace unicert::x509 {
namespace {

void write_time(asn1::Writer& w, int64_t t) {
    asn1::EncodedTime enc = asn1::format_validity_time(t);
    w.add_string(enc.generalized ? asn1::Tag::kGeneralizedTime : asn1::Tag::kUtcTime, enc.text);
}

Expected<int64_t> read_time(const asn1::Tlv& tlv) {
    if (tlv.is_universal(asn1::Tag::kUtcTime)) return asn1::parse_utc_time(tlv.content);
    if (tlv.is_universal(asn1::Tag::kGeneralizedTime)) {
        return asn1::parse_generalized_time(tlv.content);
    }
    return Error{"crl_bad_time", "expected UTCTime or GeneralizedTime"};
}

Bytes encode_tbs_cert_list(const CertificateList& crl) {
    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& tbs) {
        tbs.add_integer(1);  // version v2
        tbs.add_sequence([&](asn1::Writer& alg) {
            alg.add_oid_der(asn1::oids::sim_sig_with_sha256().to_der());
            alg.add_null();
        });
        tbs.add_raw(encode_name(crl.issuer));
        write_time(tbs, crl.this_update);
        write_time(tbs, crl.next_update);
        if (!crl.revoked.empty()) {
            tbs.add_sequence([&](asn1::Writer& list) {
                for (const RevokedEntry& entry : crl.revoked) {
                    list.add_sequence([&](asn1::Writer& item) {
                        item.add_integer_bytes(entry.serial);
                        write_time(item, entry.revocation_time);
                    });
                }
            });
        }
    });
    return w.take();
}

}  // namespace

bool CertificateList::is_revoked(BytesView serial) const {
    for (const RevokedEntry& entry : revoked) {
        if (entry.serial.size() == serial.size() &&
            std::equal(entry.serial.begin(), entry.serial.end(), serial.begin())) {
            return true;
        }
    }
    return false;
}

Bytes sign_crl(CertificateList& crl, const crypto::SimSigner& issuer_key) {
    crl.tbs_der = encode_tbs_cert_list(crl);
    crl.signature = issuer_key.sign(crl.tbs_der);

    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& outer) {
        outer.add_raw(crl.tbs_der);
        outer.add_sequence([&](asn1::Writer& alg) {
            alg.add_oid_der(asn1::oids::sim_sig_with_sha256().to_der());
            alg.add_null();
        });
        outer.add_bit_string(crl.signature);
    });
    crl.der = w.take();
    return crl.der;
}

Expected<CertificateList> parse_crl(BytesView der) {
    auto outer = asn1::read_tlv(der);
    if (!outer.ok()) return outer.error();
    if (!outer->is_universal(asn1::Tag::kSequence)) {
        return Error{"crl_not_sequence", "CertificateList must be a SEQUENCE"};
    }

    CertificateList crl;
    crl.der.assign(der.begin(), der.begin() + outer->total_len);

    asn1::Reader top(outer->content);
    auto tbs = top.expect(asn1::Tag::kSequence);
    if (!tbs.ok()) return tbs.error();
    crl.tbs_der.assign(der.begin() + outer->header_len,
                       der.begin() + outer->header_len + tbs->total_len);

    asn1::Reader r(tbs->content);

    // version (optional)
    auto first = r.peek();
    if (!first.ok()) return first.error();
    if (first->is_universal(asn1::Tag::kInteger)) (void)r.next();

    auto alg = r.expect(asn1::Tag::kSequence);
    if (!alg.ok()) return alg.error();

    auto issuer_tlv = r.peek();
    if (!issuer_tlv.ok()) return issuer_tlv.error();
    {
        BytesView span = tbs->content.subspan(r.position(), issuer_tlv->total_len);
        auto issuer = parse_name(span);
        if (!issuer.ok()) return issuer.error();
        crl.issuer = std::move(issuer).value();
        (void)r.next();
    }

    auto this_upd = r.next();
    if (!this_upd.ok()) return this_upd.error();
    auto tu = read_time(this_upd.value());
    if (!tu.ok()) return tu.error();
    crl.this_update = tu.value();

    auto next_upd = r.next();
    if (!next_upd.ok()) return next_upd.error();
    auto nu = read_time(next_upd.value());
    if (!nu.ok()) return nu.error();
    crl.next_update = nu.value();

    if (!r.done()) {
        auto peeked = r.peek();
        if (peeked.ok() && peeked->is_universal(asn1::Tag::kSequence)) {
            auto list = r.next();
            asn1::Reader lr(list->content);
            while (!lr.done()) {
                auto item = lr.expect(asn1::Tag::kSequence);
                if (!item.ok()) return item.error();
                asn1::Reader ir(item->content);
                auto serial_tlv = ir.expect(asn1::Tag::kInteger);
                if (!serial_tlv.ok()) return serial_tlv.error();
                auto serial = asn1::decode_integer_bytes(serial_tlv.value());
                if (!serial.ok()) return serial.error();
                auto time_tlv = ir.next();
                if (!time_tlv.ok()) return time_tlv.error();
                auto when = read_time(time_tlv.value());
                if (!when.ok()) return when.error();
                crl.revoked.push_back({std::move(serial).value(), when.value()});
            }
        }
    }

    // signatureAlgorithm + signatureValue
    auto outer_alg = top.expect(asn1::Tag::kSequence);
    if (!outer_alg.ok()) return outer_alg.error();
    auto sig = top.expect(asn1::Tag::kBitString);
    if (!sig.ok()) return sig.error();
    auto sig_bytes = asn1::decode_bit_string(sig.value());
    if (!sig_bytes.ok()) return sig_bytes.error();
    crl.signature = std::move(sig_bytes).value();
    return crl;
}

bool verify_crl(const CertificateList& crl, const crypto::SimSigner& issuer_key) {
    if (crl.tbs_der.empty() || crl.signature.empty()) return false;
    return crypto::sim_verify(issuer_key, crl.tbs_der, crl.signature);
}

const char* revocation_status_name(RevocationStatus s) noexcept {
    switch (s) {
        case RevocationStatus::kGood: return "good";
        case RevocationStatus::kRevoked: return "revoked";
        case RevocationStatus::kUnknown: return "unknown";
    }
    return "?";
}

void CrlDistributor::publish(const std::string& url, CertificateList crl) {
    published_[url] = std::move(crl);
}

const CertificateList* CrlDistributor::fetch(const std::string& url) const {
    auto it = published_.find(url);
    return it == published_.end() ? nullptr : &it->second;
}

RevocationStatus CrlDistributor::check(
    const Certificate& cert,
    const std::function<std::string(const std::string&)>& url_transform) const {
    std::vector<std::string> urls = cert.crl_urls();
    if (urls.empty()) return RevocationStatus::kUnknown;

    bool any_fetched = false;
    for (const std::string& url : urls) {
        std::string effective = url_transform ? url_transform(url) : url;
        const CertificateList* crl = fetch(effective);
        if (crl == nullptr) continue;
        any_fetched = true;
        if (crl->is_revoked(cert.serial)) return RevocationStatus::kRevoked;
    }
    return any_fetched ? RevocationStatus::kGood : RevocationStatus::kUnknown;
}

}  // namespace unicert::x509
