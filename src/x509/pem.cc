#include "x509/pem.h"

#include "common/base64.h"

namespace unicert::x509 {
namespace {

constexpr std::string_view kBeginPrefix = "-----BEGIN ";
constexpr std::string_view kEndPrefix = "-----END ";
constexpr std::string_view kDashes = "-----";

}  // namespace

std::string pem_encode(std::string_view label, BytesView der) {
    std::string body = base64_encode(der);
    std::string out;
    out.reserve(body.size() + body.size() / 64 + label.size() * 2 + 40);
    out += std::string(kBeginPrefix) + std::string(label) + std::string(kDashes) + "\n";
    for (size_t i = 0; i < body.size(); i += 64) {
        out += body.substr(i, 64);
        out += "\n";
    }
    out += std::string(kEndPrefix) + std::string(label) + std::string(kDashes) + "\n";
    return out;
}

Expected<std::vector<PemBlock>> pem_decode_all(std::string_view text) {
    std::vector<PemBlock> blocks;
    size_t pos = 0;
    while (true) {
        size_t begin = text.find(kBeginPrefix, pos);
        if (begin == std::string_view::npos) break;
        size_t label_start = begin + kBeginPrefix.size();
        size_t label_end = text.find(kDashes, label_start);
        if (label_end == std::string_view::npos) {
            return Error{"pem_bad_begin", "unterminated BEGIN line"};
        }
        std::string label(text.substr(label_start, label_end - label_start));

        std::string end_marker = std::string(kEndPrefix) + label + std::string(kDashes);
        size_t body_start = label_end + kDashes.size();
        size_t end = text.find(end_marker, body_start);
        if (end == std::string_view::npos) {
            return Error{"pem_missing_end", "no END line for label " + label};
        }

        auto der = base64_decode(text.substr(body_start, end - body_start));
        if (!der.ok()) return der.error();
        blocks.push_back({std::move(label), std::move(der).value()});
        pos = end + end_marker.size();
    }
    return blocks;
}

Expected<Bytes> pem_decode(std::string_view text, std::string_view label) {
    auto blocks = pem_decode_all(text);
    if (!blocks.ok()) return blocks.error();
    for (PemBlock& block : blocks.value()) {
        if (block.label == label) return std::move(block.der);
    }
    return Error{"pem_label_not_found", "no " + std::string(label) + " block found"};
}

}  // namespace unicert::x509
