// unicert/x509/crl.h
//
// Certificate Revocation Lists (RFC 5280 section 5): model, DER
// encode/parse over SimSig, and a revocation checker that fetches CRLs
// by distribution-point URL — the substrate behind the paper's CRL-
// spoofing threat (Section 5.2(2)): a client whose parser rewrites the
// CRLDP URL fetches the wrong list and never learns of the revocation.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/simsig.h"
#include "x509/certificate.h"

namespace unicert::x509 {

struct RevokedEntry {
    Bytes serial;           // big-endian magnitude, like Certificate::serial
    int64_t revocation_time = 0;
};

struct CertificateList {
    DistinguishedName issuer;
    int64_t this_update = 0;
    int64_t next_update = 0;
    std::vector<RevokedEntry> revoked;
    Bytes signature;
    Bytes tbs_der;
    Bytes der;

    bool is_revoked(BytesView serial) const;
};

// Encode + sign; fills tbs_der/signature/der.
Bytes sign_crl(CertificateList& crl, const crypto::SimSigner& issuer_key);

// Parse a DER CertificateList.
Expected<CertificateList> parse_crl(BytesView der);

// Verify the CRL signature against the issuer's signer.
bool verify_crl(const CertificateList& crl, const crypto::SimSigner& issuer_key);

// ---- Revocation checking ------------------------------------------------

enum class RevocationStatus {
    kGood,
    kRevoked,
    kUnknown,   // no CRL retrievable (soft-fail territory)
};

const char* revocation_status_name(RevocationStatus s) noexcept;

// A URL -> CRL distribution map standing in for the network.
class CrlDistributor {
public:
    void publish(const std::string& url, CertificateList crl);
    const CertificateList* fetch(const std::string& url) const;

    // Check `cert` by fetching each of its CRLDP URLs. `url_transform`
    // lets callers model a vulnerable client's URL rewriting (e.g. the
    // PyOpenSSL control-character collapse); pass identity for a
    // correct client.
    RevocationStatus check(const Certificate& cert,
                           const std::function<std::string(const std::string&)>&
                               url_transform = nullptr) const;

private:
    std::map<std::string, CertificateList> published_;
};

}  // namespace unicert::x509
