// unicert/x509/pem.h
//
// PEM (RFC 7468) framing for certificates and CRLs: the interchange
// format the CLI tools and examples read and write.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/expected.h"

namespace unicert::x509 {

// One decoded PEM block.
struct PemBlock {
    std::string label;  // e.g. "CERTIFICATE", "X509 CRL"
    Bytes der;
};

// Encode DER under the given label with 64-column base64 lines.
std::string pem_encode(std::string_view label, BytesView der);

// Parse every PEM block in `text` (non-PEM content between blocks is
// ignored, matching openssl behaviour). Errors only on malformed
// blocks, not on absence of blocks.
Expected<std::vector<PemBlock>> pem_decode_all(std::string_view text);

// Parse the first block with the given label.
Expected<Bytes> pem_decode(std::string_view text, std::string_view label = "CERTIFICATE");

}  // namespace unicert::x509
