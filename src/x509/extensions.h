// unicert/x509/extensions.h
//
// X.509 v3 extension model and the typed codecs for every extension
// the paper's analyses touch: SubjectAltName, IssuerAltName,
// AuthorityInfoAccess, SubjectInfoAccess, CRLDistributionPoints,
// CertificatePolicies, BasicConstraints, KeyUsage, SKI/AKI, and the
// CT poison / SCT-list markers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "asn1/oid.h"
#include "common/bytes.h"
#include "common/expected.h"
#include "x509/general_name.h"

namespace unicert::x509 {

// Raw extension: OID + criticality + the DER inside extnValue's OCTET STRING.
struct Extension {
    asn1::Oid oid;
    bool critical = false;
    Bytes value;  // inner DER

    bool operator==(const Extension&) const = default;
};

// ---- Typed payloads --------------------------------------------------------

// AccessDescription for AIA / SIA.
struct AccessDescription {
    asn1::Oid method;       // ad_ocsp or ad_ca_issuers
    GeneralName location;   // usually a URI

    bool operator==(const AccessDescription&) const = default;
};

// One DistributionPoint (only the fullName form, which is what real
// certificates overwhelmingly use).
struct DistributionPoint {
    GeneralNames full_names;

    bool operator==(const DistributionPoint&) const = default;
};

// DisplayText for policy user notices. RFC 5280 says explicitText
// SHOULD be UTF8String; the paper's most-hit lint
// (w_rfc_ext_cp_explicit_text_not_utf8, 117K certs) flags the others.
struct DisplayText {
    asn1::StringType string_type = asn1::StringType::kUtf8String;
    Bytes value_bytes;

    std::string to_utf8_lossy() const;
    bool operator==(const DisplayText&) const = default;
};

struct PolicyQualifier {
    asn1::Oid qualifier_id;                 // cps_qualifier or user_notice_qualifier
    Bytes cps_uri;                          // IA5String value bytes if CPS
    std::optional<DisplayText> explicit_text;  // if UserNotice

    bool operator==(const PolicyQualifier&) const = default;
};

struct PolicyInformation {
    asn1::Oid policy_id;
    std::vector<PolicyQualifier> qualifiers;

    bool operator==(const PolicyInformation&) const = default;
};

struct BasicConstraints {
    bool ca = false;
    std::optional<int64_t> path_len;

    bool operator==(const BasicConstraints&) const = default;
};

// ---- Builders (payload -> Extension) ---------------------------------------

Extension make_san(const GeneralNames& names, bool critical = false);
Extension make_ian(const GeneralNames& names);
Extension make_aia(const std::vector<AccessDescription>& descriptors);
Extension make_sia(const std::vector<AccessDescription>& descriptors);
Extension make_crl_distribution_points(const std::vector<DistributionPoint>& points);
Extension make_certificate_policies(const std::vector<PolicyInformation>& policies);
Extension make_basic_constraints(const BasicConstraints& bc, bool critical = true);
Extension make_key_usage(uint16_t bits, bool critical = true);
Extension make_subject_key_identifier(BytesView key_id);
Extension make_authority_key_identifier(BytesView key_id);
Extension make_ct_poison();

// ExtendedKeyUsage (RFC 5280 sec. 4.2.1.12) with the web-PKI purposes.
namespace eku {
const asn1::Oid& server_auth();   // 1.3.6.1.5.5.7.3.1
const asn1::Oid& client_auth();   // 1.3.6.1.5.5.7.3.2
const asn1::Oid& email_protection();  // 1.3.6.1.5.5.7.3.4
const asn1::Oid& ocsp_signing();  // 1.3.6.1.5.5.7.3.9
}  // namespace eku

Extension make_ext_key_usage(const std::vector<asn1::Oid>& purposes);

// ---- Parsers (Extension -> payload) -----------------------------------------

Expected<GeneralNames> parse_san(const Extension& ext);
Expected<GeneralNames> parse_ian(const Extension& ext);
Expected<std::vector<AccessDescription>> parse_access_descriptions(const Extension& ext);
Expected<std::vector<DistributionPoint>> parse_crl_distribution_points(const Extension& ext);
Expected<std::vector<PolicyInformation>> parse_certificate_policies(const Extension& ext);
Expected<BasicConstraints> parse_basic_constraints(const Extension& ext);
Expected<std::vector<asn1::Oid>> parse_ext_key_usage(const Extension& ext);

}  // namespace unicert::x509
