// unicert/x509/builder.h
//
// CertificateBuilder: turn a Certificate model into signed DER. The
// builder is intentionally permissive — it encodes whatever the model
// contains, including standard-violating string types and characters —
// because the paper's measurements require crafting noncompliant
// Unicerts (Section 3.2's generator rules are implemented on top of
// this in tlslib::CertFactory and ctlog::CorpusGenerator).
#pragma once

#include "common/bytes.h"
#include "common/expected.h"
#include "crypto/simsig.h"
#include "x509/certificate.h"

namespace unicert::x509 {

// Encode the TBSCertificate (without signing).
Bytes encode_tbs(const Certificate& cert);

// Encode + sign with the issuer's SimSigner. Fills cert.tbs_der,
// cert.signature and cert.der; returns the full DER.
Bytes sign_certificate(Certificate& cert, const crypto::SimSigner& issuer_key);

// Verify cert.signature against cert.tbs_der with the issuer signer.
bool verify_signature(const Certificate& cert, const crypto::SimSigner& issuer_key);

}  // namespace unicert::x509
