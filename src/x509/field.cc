#include "x509/field.h"

namespace unicert::x509 {

const char* cert_field_name(CertField f) noexcept {
    switch (f) {
        case CertField::kVersion: return "version";
        case CertField::kSerial: return "serial";
        case CertField::kSignatureAlgorithm: return "signature_algorithm";
        case CertField::kIssuer: return "issuer";
        case CertField::kValidity: return "validity";
        case CertField::kSubject: return "subject";
        case CertField::kSubjectPublicKey: return "subject_public_key";
        case CertField::kExtensions: return "extensions";
        case CertField::kSignature: return "signature";
        case CertField::kWholeCert: return "whole_cert";
    }
    return "?";
}

std::string cert_field_mask_names(uint32_t mask) {
    std::string out;
    for (uint32_t bit = 1; bit != 0 && bit <= field_bit(CertField::kWholeCert); bit <<= 1) {
        if ((mask & bit) == 0) continue;
        if (!out.empty()) out += '|';
        out += cert_field_name(static_cast<CertField>(bit));
    }
    return out;
}

}  // namespace unicert::x509
