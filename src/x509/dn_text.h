// unicert/x509/dn_text.h
//
// String representations of DistinguishedNames and GeneralNames:
// RFC 2253 / RFC 4514 / RFC 1779 escaping dialects plus the OpenSSL
// "oneline" format. Table 5 of the paper reports per-library escaping
// violations against exactly these three RFCs; the tlslib profiles
// compose their (sometimes broken) output from these primitives.
#pragma once

#include <string>
#include <string_view>

#include "x509/general_name.h"
#include "x509/name.h"

namespace unicert::x509 {

enum class DnDialect {
    kRfc2253,        // UTF-8 string representation, reverse RDN order
    kRfc4514,        // successor of 2253; explicitly requires escaping NUL
    kRfc1779,        // legacy "CN=..., O=..." with quoting
    kOpenSslOneline, // "/C=../CN=.." forward order
};

const char* dn_dialect_name(DnDialect d) noexcept;

// Escape one attribute *value* per the dialect's rules. Input/output
// are UTF-8. When `apply_escaping` is false the value passes through
// verbatim — this models the noncompliant libraries in Table 5.
std::string escape_dn_value(std::string_view utf8, DnDialect dialect,
                            bool apply_escaping = true);

// Whether a rendered value string is correctly escaped for the dialect
// (used by the differential harness to classify violations).
bool is_properly_escaped(std::string_view rendered, DnDialect dialect);

// Render a full DN. RFC 2253/4514 list RDNs in reverse order joined by
// ','; RFC 1779 forward order joined by ", "; oneline forward order
// with '/' prefixes.
std::string format_dn(const DistinguishedName& dn, DnDialect dialect,
                      bool apply_escaping = true);

// Render GeneralNames the way X.509-text tooling does:
// "DNS:a.com, DNS:b.com, email:x@y, URI:http://…".
std::string format_general_names(const GeneralNames& gns, bool apply_escaping = true);

// Render a single GeneralName with its "TYPE:value" prefix.
std::string format_general_name(const GeneralName& gn, bool apply_escaping = true);

}  // namespace unicert::x509
