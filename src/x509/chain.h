// unicert/x509/chain.h
//
// Certificate-chain construction and verification over the SimSig
// substrate. Reproduces the Section 5.1 methodology: reconstruct
// chains via AIA caIssuers pointers, then verify signatures up to a
// trust anchor.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/simsig.h"
#include "x509/certificate.h"

namespace unicert::x509 {

// An issuing CA in the simulation: its certificate, signing key, and
// the AIA URL at which leaf certificates point back to it.
struct CaEntity {
    std::string name;            // organization name
    Certificate certificate;
    crypto::SimSigner key;
    std::string aia_url;         // "http://ca.example/<name>.crt"
    bool publicly_trusted = true;
};

// A registry of CAs addressable by AIA URL and by subject DN — the
// simulation's stand-in for "fetch the issuer cert from the CA server".
class CaRegistry {
public:
    // Create a self-signed CA and register it.
    CaEntity& create_ca(const std::string& organization, bool publicly_trusted = true);

    const CaEntity* by_aia_url(const std::string& url) const;
    const CaEntity* by_subject(const DistinguishedName& dn) const;
    const CaEntity* by_name(const std::string& organization) const;

    std::vector<const CaEntity*> all() const;
    size_t size() const noexcept { return cas_.size(); }

private:
    std::vector<std::unique_ptr<CaEntity>> cas_;
    std::map<std::string, CaEntity*> by_url_;
    std::map<std::string, CaEntity*> by_name_;
};

// Result of a chain build + verify.
struct ChainResult {
    bool chain_complete = false;     // reached a registered CA via AIA
    bool signature_valid = false;    // SimSig verification succeeded
    bool issuer_trusted = false;     // CA is publicly trusted
    std::vector<std::string> path;   // AIA URLs walked
};

// Reconstruct and verify the chain for a leaf using AIA caIssuers URLs
// against the registry (Section 5.1's "reconstructing certificate
// chains via AIA extensions and verifying signatures").
ChainResult build_and_verify_chain(const Certificate& leaf, const CaRegistry& registry);

// Full path-validation verdict for one leaf at a point in time.
struct ValidationResult {
    bool valid = false;            // everything below holds
    bool chain_complete = false;
    bool signature_valid = false;
    bool issuer_is_ca = false;     // issuer cert asserts BasicConstraints cA
    bool issuer_name_matches = false;  // RFC 5280 §7.1 name chaining
    bool within_validity = false;  // leaf valid at `at_time`
    bool issuer_within_validity = false;
    bool issuer_trusted = false;
    std::string failure;           // first failing check, for diagnostics
};

// RFC 5280-shaped validation: chain discovery (AIA or issuer DN),
// SimSig signature check, BasicConstraints cA assertion, §7.1 name
// chaining, and validity windows for both certificates.
ValidationResult validate_certificate(const Certificate& leaf, const CaRegistry& registry,
                                      int64_t at_time);

}  // namespace unicert::x509
