// unicert/x509/certificate.h
//
// The in-memory X.509 v3 certificate model: the decoded TBS fields,
// extensions, the signature, and cached DER blobs for signature
// verification and re-serialization.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asn1/oid.h"
#include "common/bytes.h"
#include "x509/extensions.h"
#include "x509/name.h"

namespace unicert::x509 {

struct Validity {
    int64_t not_before = 0;  // Unix seconds UTC
    int64_t not_after = 0;

    bool contains(int64_t t) const noexcept { return t >= not_before && t <= not_after; }
    int64_t lifetime_days() const noexcept { return (not_after - not_before) / 86400; }

    bool operator==(const Validity&) const = default;
};

struct Certificate {
    int version = 2;  // 0 = v1, 2 = v3
    Bytes serial;     // big-endian magnitude
    asn1::Oid signature_algorithm;
    DistinguishedName issuer;
    Validity validity;
    DistinguishedName subject;
    Bytes subject_public_key;  // raw key bytes inside the BIT STRING
    std::vector<Extension> extensions;
    Bytes signature;

    // Cached encodings; filled by the builder and the parser.
    Bytes tbs_der;
    Bytes der;

    // ---- Typed lookups ------------------------------------------------

    const Extension* find_extension(const asn1::Oid& oid) const;
    bool has_extension(const asn1::Oid& oid) const { return find_extension(oid) != nullptr; }

    // True when the CT poison extension is present (precertificate).
    bool is_precertificate() const;

    // Subject CN attributes (possibly several — a paper finding).
    std::vector<const AttributeValue*> subject_common_names() const;

    // SAN GeneralNames; empty when absent or unparseable.
    GeneralNames subject_alt_names() const;

    // All DNSName strings from CN + SAN, lossily decoded (for quick
    // identity extraction; the lint layer works on raw fields instead).
    std::vector<std::string> dns_identities() const;

    // AIA caIssuers URIs (used for chain reconstruction per Section 5.1).
    std::vector<std::string> ca_issuer_urls() const;

    // CRL distribution URIs.
    std::vector<std::string> crl_urls() const;

    // SHA-256 fingerprint of the full DER.
    Bytes fingerprint() const;

    bool operator==(const Certificate&) const = default;
};

}  // namespace unicert::x509
