// unicert/x509/name.h
//
// Distinguished Name model: Name = RDNSequence = SEQUENCE OF RDN,
// RDN = SET OF AttributeTypeAndValue. Attribute values retain their
// declared ASN.1 string type and raw value bytes so compliance lints
// and the TLS-library behaviour profiles can examine exactly what was
// on the wire.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "asn1/oid.h"
#include "asn1/strings.h"
#include "common/bytes.h"
#include "common/expected.h"
#include "unicode/codepoint.h"

namespace unicert::x509 {

// One AttributeTypeAndValue. `value_bytes` are the DER value octets as
// encoded under `string_type`'s tag — deliberately unvalidated at the
// model level.
struct AttributeValue {
    asn1::Oid type;
    asn1::StringType string_type = asn1::StringType::kUtf8String;
    Bytes value_bytes;

    // Strict decode per the declared string type's nominal encoding.
    Expected<unicode::CodePoints> decode() const {
        return asn1::decode_strict(string_type, value_bytes);
    }

    // Lossy UTF-8 view (replacement-character policy) for display.
    std::string to_utf8_lossy() const;

    bool operator==(const AttributeValue&) const = default;
};

// RelativeDistinguishedName: SET OF AttributeTypeAndValue (usually 1).
struct Rdn {
    std::vector<AttributeValue> attributes;

    bool operator==(const Rdn&) const = default;
};

// The full Name.
struct DistinguishedName {
    std::vector<Rdn> rdns;

    bool empty() const noexcept { return rdns.empty(); }

    // First/last attribute with the given type, in RDN order. The
    // first/last distinction matters: the paper shows PyOpenSSL-style
    // parsers take the first duplicated CN while Go-style take the last
    // (Section 4.3.1).
    const AttributeValue* find_first(const asn1::Oid& type) const;
    const AttributeValue* find_last(const asn1::Oid& type) const;
    std::vector<const AttributeValue*> find_all(const asn1::Oid& type) const;
    size_t count(const asn1::Oid& type) const;

    // Flat list of all attributes in encounter order.
    std::vector<const AttributeValue*> all_attributes() const;

    bool operator==(const DistinguishedName&) const = default;
};

// Convenience constructors used throughout tests, examples and the
// corpus generator. Values are given in UTF-8; `type` selects the
// ASN.1 string type (charset is NOT enforced — callers wanting strict
// behaviour use asn1::encode_checked themselves).
AttributeValue make_attribute(const asn1::Oid& type, std::string_view utf8_value,
                              asn1::StringType string_type = asn1::StringType::kUtf8String);

// Build a DN with one attribute per RDN (the common shape).
DistinguishedName make_dn(std::vector<AttributeValue> attributes);

// DER-encode a Name.
Bytes encode_name(const DistinguishedName& dn);

// Parse a Name from its DER (the SEQUENCE TLV must be at the front).
Expected<DistinguishedName> parse_name(BytesView der);

// Structural validation of a Name without materializing the
// DistinguishedName: the exact acceptance set (and Errors) of
// parse_name, allocation-free. The zero-copy certificate index records
// a span for each Name after validating it through this, so a later
// parse_name over the same span cannot fail.
Status validate_name(BytesView der);

}  // namespace unicert::x509
