#include "x509/ocsp.h"

#include "asn1/der.h"
#include "asn1/time.h"

namespace unicert::x509 {
namespace {

int64_t status_code(RevocationStatus s) {
    switch (s) {
        case RevocationStatus::kGood: return 0;
        case RevocationStatus::kRevoked: return 1;
        case RevocationStatus::kUnknown: return 2;
    }
    return 2;
}

RevocationStatus status_from_code(int64_t v) {
    switch (v) {
        case 0: return RevocationStatus::kGood;
        case 1: return RevocationStatus::kRevoked;
        default: return RevocationStatus::kUnknown;
    }
}

Bytes encode_response_data(const OcspResponse& r) {
    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& seq) {
        seq.add_integer(status_code(r.status));
        seq.add_integer_bytes(r.serial);
        asn1::EncodedTime tu = asn1::format_validity_time(r.this_update);
        seq.add_string(tu.generalized ? asn1::Tag::kGeneralizedTime : asn1::Tag::kUtcTime,
                       tu.text);
        asn1::EncodedTime nu = asn1::format_validity_time(r.next_update);
        seq.add_string(nu.generalized ? asn1::Tag::kGeneralizedTime : asn1::Tag::kUtcTime,
                       nu.text);
    });
    return w.take();
}

Expected<int64_t> read_time_tlv(const asn1::Tlv& tlv) {
    if (tlv.is_universal(asn1::Tag::kUtcTime)) return asn1::parse_utc_time(tlv.content);
    if (tlv.is_universal(asn1::Tag::kGeneralizedTime)) {
        return asn1::parse_generalized_time(tlv.content);
    }
    return Error{"ocsp_bad_time", "expected a time value"};
}

}  // namespace

Bytes encode_ocsp_request(const OcspRequest& request) {
    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& seq) {
        seq.add_octet_string(request.issuer_key_hash);
        seq.add_integer_bytes(request.serial);
    });
    return w.take();
}

Expected<OcspRequest> parse_ocsp_request(BytesView der) {
    auto seq = asn1::read_tlv(der);
    if (!seq.ok()) return seq.error();
    if (!seq->is_universal(asn1::Tag::kSequence)) {
        return Error{"ocsp_request_not_sequence", "OCSP request must be a SEQUENCE"};
    }
    asn1::Reader r(seq->content);
    auto hash = r.expect(asn1::Tag::kOctetString);
    if (!hash.ok()) return hash.error();
    auto serial_tlv = r.expect(asn1::Tag::kInteger);
    if (!serial_tlv.ok()) return serial_tlv.error();
    auto serial = asn1::decode_integer_bytes(serial_tlv.value());
    if (!serial.ok()) return serial.error();

    OcspRequest out;
    out.issuer_key_hash.assign(hash->content.begin(), hash->content.end());
    out.serial = std::move(serial).value();
    return out;
}

Expected<OcspResponse> parse_ocsp_response(BytesView der) {
    auto outer = asn1::read_tlv(der);
    if (!outer.ok()) return outer.error();
    if (!outer->is_universal(asn1::Tag::kSequence)) {
        return Error{"ocsp_response_not_sequence", "OCSP response must be a SEQUENCE"};
    }
    asn1::Reader top(outer->content);
    auto data = top.expect(asn1::Tag::kSequence);
    if (!data.ok()) return data.error();

    OcspResponse out;
    out.der.assign(der.begin(), der.begin() + outer->total_len);

    asn1::Reader r(data->content);
    auto status = r.expect(asn1::Tag::kInteger);
    if (!status.ok()) return status.error();
    auto code = asn1::decode_integer(status.value());
    if (!code.ok()) return code.error();
    out.status = status_from_code(code.value());

    auto serial_tlv = r.expect(asn1::Tag::kInteger);
    if (!serial_tlv.ok()) return serial_tlv.error();
    auto serial = asn1::decode_integer_bytes(serial_tlv.value());
    if (!serial.ok()) return serial.error();
    out.serial = std::move(serial).value();

    auto tu_tlv = r.next();
    if (!tu_tlv.ok()) return tu_tlv.error();
    auto tu = read_time_tlv(tu_tlv.value());
    if (!tu.ok()) return tu.error();
    out.this_update = tu.value();

    auto nu_tlv = r.next();
    if (!nu_tlv.ok()) return nu_tlv.error();
    auto nu = read_time_tlv(nu_tlv.value());
    if (!nu.ok()) return nu.error();
    out.next_update = nu.value();

    auto sig = top.expect(asn1::Tag::kBitString);
    if (!sig.ok()) return sig.error();
    auto sig_bytes = asn1::decode_bit_string(sig.value());
    if (!sig_bytes.ok()) return sig_bytes.error();
    out.signature = std::move(sig_bytes).value();
    return out;
}

bool verify_ocsp_response(const OcspResponse& response,
                          const crypto::SimSigner& responder_key) {
    return crypto::sim_verify(responder_key, encode_response_data(response),
                              response.signature);
}

OcspResponse OcspResponder::respond(const OcspRequest& request) const {
    OcspResponse response;
    response.serial = request.serial;
    response.this_update = this_update_;
    response.next_update = next_update_;

    // A responder only answers for its own issuer key.
    Bytes my_hash = crypto::sha256_bytes(key_.public_key());
    if (request.issuer_key_hash != my_hash) {
        response.status = RevocationStatus::kUnknown;
    } else {
        response.status = revoked_.count(hex_encode(request.serial))
                              ? RevocationStatus::kRevoked
                              : RevocationStatus::kGood;
    }

    response.signature = key_.sign(encode_response_data(response));

    asn1::Writer w;
    w.add_sequence([&](asn1::Writer& outer) {
        outer.add_raw(encode_response_data(response));
        outer.add_bit_string(response.signature);
    });
    response.der = w.take();
    return response;
}

void OcspNetwork::publish(const std::string& url, OcspResponder responder) {
    responders_.emplace(url, std::move(responder));
}

RevocationStatus OcspNetwork::check(const Certificate& cert,
                                    const Bytes& issuer_key_hash) const {
    const Extension* ext = cert.find_extension(asn1::oids::authority_info_access());
    if (ext == nullptr) return RevocationStatus::kUnknown;
    auto ads = parse_access_descriptions(*ext);
    if (!ads.ok()) return RevocationStatus::kUnknown;

    for (const AccessDescription& ad : ads.value()) {
        if (ad.method != asn1::oids::ad_ocsp() || ad.location.type != GeneralNameType::kUri) {
            continue;
        }
        auto it = responders_.find(ad.location.to_utf8_lossy());
        if (it == responders_.end()) continue;

        OcspRequest request{issuer_key_hash, cert.serial};
        // Round-trip through the wire encoding (the realistic path).
        auto parsed_request = parse_ocsp_request(encode_ocsp_request(request));
        if (!parsed_request.ok()) continue;
        OcspResponse response = it->second.respond(parsed_request.value());
        auto parsed = parse_ocsp_response(response.der);
        if (!parsed.ok()) continue;
        if (!verify_ocsp_response(parsed.value(), it->second.key())) continue;
        return parsed->status;
    }
    return RevocationStatus::kUnknown;
}

}  // namespace unicert::x509
