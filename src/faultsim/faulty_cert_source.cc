#include "faultsim/faulty_cert_source.h"

#include <string>

namespace unicert::faultsim {

Expected<std::optional<core::CertEntry>> FaultyCertSource::next() {
    for (;;) {
        if (pos_ >= corpus_->size()) return std::optional<core::CertEntry>{};
        const size_t index = pos_;

        switch (step_) {
            case Step::kPoison:
                step_ = Step::kTransient;
                if (plan_.fires(FaultKind::kPoison, index)) {
                    ++injected_;
                    core::CertEntry entry;
                    entry.index = index;
                    entry.der = plan_.corrupt_der((*corpus_)[index].cert.der, index);
                    return std::optional<core::CertEntry>(std::move(entry));
                }
                continue;

            case Step::kTransient:
                if (plan_.fires(FaultKind::kTransient, index) &&
                    failures_served_ < plan_.options().transient_failures) {
                    ++failures_served_;
                    ++injected_;
                    return Error{failures_served_ % 2 == 1 ? "timeout" : "unavailable",
                                 "stream stalled before entry " + std::to_string(index)};
                }
                failures_served_ = 0;
                step_ = Step::kDeliver;
                continue;

            case Step::kDeliver: {
                step_ = Step::kDuplicate;
                core::CertEntry entry;
                entry.index = index;
                entry.meta = &(*corpus_)[index];
                return std::optional<core::CertEntry>(std::move(entry));
            }

            case Step::kDuplicate: {
                const bool redeliver = plan_.fires(FaultKind::kDuplicate, index);
                ++pos_;
                step_ = Step::kPoison;
                if (redeliver) {
                    ++injected_;
                    core::CertEntry entry;
                    entry.index = index;
                    entry.meta = &(*corpus_)[index];
                    return std::optional<core::CertEntry>(std::move(entry));
                }
                continue;
            }
        }
    }
}

}  // namespace unicert::faultsim
