// unicert/faultsim/faulty_fs.h
//
// Fault-injecting decorator over the core::Fs seam, the filesystem
// analogue of FaultyLogSource. Wraps a core::MemFs and injects, from
// the seeded FaultPlan's deterministic channels:
//
//   * short writes     — write() persists only a prefix (POSIX-style
//                        short count, no error);
//   * failed fsync     — sync() fails and the written bytes stay
//                        volatile, so a later crash eats them;
//   * ENOSPC           — write() fails outright with fs_no_space;
//   * power loss       — after `crash_after_ops` mutating operations,
//                        every subsequent operation fails with
//                        fs_crashed (the kill-point sweep's knob);
//   * torn tails       — crash() replays power-loss semantics onto the
//                        inner MemFs: each file keeps its durable bytes
//                        plus a plan-chosen prefix of its unsynced tail;
//   * bit flips        — a torn tail that survives may additionally
//                        have one bit flipped (sector garbage).
//
// Mutating ops are numbered in call order; each number indexes the
// plan's channels, so a schedule replays identically for a given seed.
// Read-side ops (read_file/exists/list_dir) are passed through
// unfaulted — recovery code must be able to see the damage, not fight
// the instrumentation.
#pragma once

#include <cstdint>
#include <string>

#include "core/fs.h"
#include "faultsim/fault_plan.h"

namespace unicert::faultsim {

struct FaultyFsOptions {
    FaultPlanOptions plan;

    // Fail every mutating operation from the N-th onward (1-based) with
    // fs_crashed, simulating power loss mid-run. 0 = never crash.
    size_t crash_after_ops = 0;
};

class FaultyFs final : public core::Fs {
public:
    FaultyFs(core::MemFs& inner, FaultyFsOptions options)
        : inner_(&inner), options_(options), plan_(options.plan) {}

    Expected<core::FilePtr> open_append(const std::string& path) override;
    Expected<core::FilePtr> create(const std::string& path) override;
    Expected<Bytes> read_file(const std::string& path) override;
    Expected<bool> exists(const std::string& path) override;
    Status rename(const std::string& from, const std::string& to) override;
    Status remove(const std::string& path) override;
    Status make_dirs(const std::string& path) override;
    Expected<std::vector<std::string>> list_dir(const std::string& path) override;
    Status sync_dir(const std::string& path) override;

    // Mutating operations observed so far.
    size_t ops() const noexcept { return ops_; }

    // True once the op budget has been exhausted (some op failed with
    // fs_crashed).
    bool crashed() const noexcept { return crashed_; }

    // Apply power-loss semantics to the inner MemFs: unsynced tails are
    // torn (or dropped) per the kTornTail/kBitFlip channels. Call after
    // the workload has failed with fs_crashed, then reopen the store
    // against the inner fs directly — the "reboot".
    void crash();

    // Fail the next `count` read_file() calls whose path contains
    // `substring` with fs_read_failed (transient media error, not power
    // loss). Reads are otherwise passed through unfaulted; this knob
    // exists so recovery code's unreadable-file classification can be
    // exercised deterministically.
    void fail_reads(std::string substring, size_t count) {
        read_fault_substring_ = std::move(substring);
        read_faults_remaining_ = count;
    }

    const FaultPlan& plan() const noexcept { return plan_; }

private:
    friend class FaultyFile;

    // Charge one mutating op against the budget. Returns false when the
    // simulated machine is already (or now) dead.
    bool charge_op();

    core::MemFs* inner_;
    FaultyFsOptions options_;
    FaultPlan plan_;
    size_t ops_ = 0;
    size_t files_seen_ = 0;  // per-file index for the torn-tail channel
    bool crashed_ = false;
    std::string read_fault_substring_;
    size_t read_faults_remaining_ = 0;
};

}  // namespace unicert::faultsim
