#include "faultsim/fault_plan.h"

namespace unicert::faultsim {
namespace {

// splitmix64 one-shot mixer: the whole schedule is hashes of it.
uint64_t mix64(uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

double unit(uint64_t h) noexcept {
    return static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
}

uint64_t channel_hash(uint64_t seed, FaultKind kind, size_t index) noexcept {
    uint64_t k = static_cast<uint64_t>(kind) + 1;
    return mix64(seed ^ mix64(k * 0x517CC1B727220A95ULL) ^ mix64(index));
}

}  // namespace

bool FaultPlan::fires(FaultKind kind, size_t index) const noexcept {
    double rate = 0.0;
    switch (kind) {
        case FaultKind::kTransient: rate = options_.transient_rate; break;
        case FaultKind::kDrop: rate = options_.drop_rate; break;
        case FaultKind::kDuplicate: rate = options_.duplicate_rate; break;
        case FaultKind::kPoison: rate = options_.poison_rate; break;
        case FaultKind::kHeadFlake: rate = options_.head_flake_rate; break;
        case FaultKind::kHeadRegression: rate = options_.head_regression_rate; break;
        case FaultKind::kShortWrite: rate = options_.short_write_rate; break;
        case FaultKind::kSyncFail: rate = options_.sync_fail_rate; break;
        case FaultKind::kNoSpace: rate = options_.no_space_rate; break;
        case FaultKind::kTornTail: rate = options_.torn_tail_rate; break;
        case FaultKind::kBitFlip: rate = options_.bit_flip_rate; break;
    }
    if (rate <= 0.0) return false;
    return unit(channel_hash(options_.seed, kind, index)) < rate;
}

size_t FaultPlan::choose(FaultKind kind, size_t index, size_t bound) const noexcept {
    if (bound == 0) return 0;
    return static_cast<size_t>(mix64(channel_hash(options_.seed, kind, index) ^ 0x5EED) %
                               bound);
}

Bytes FaultPlan::corrupt_der(BytesView der, size_t index) const {
    uint64_t h = channel_hash(options_.seed, FaultKind::kPoison, index) ^ 0xC0FFEE;
    Bytes out(der.begin(), der.end());
    if (out.empty()) {
        // Nothing to corrupt: synthesize a reserved high-tag fragment
        // that no DER reader accepts.
        out = {0x3F, 0x03, 0x01};
        return out;
    }
    if ((h & 1) != 0 && out.size() > 2) {
        // Truncate strictly inside the outer TLV: its length now runs
        // past the buffer, a guaranteed der_truncated.
        out.resize(1 + h % (out.size() - 1));
    } else {
        // Reserved high-tag-number identifier: guaranteed der_high_tag.
        out[0] |= 0x1F;
    }
    return out;
}

Bytes FaultPlan::mutate_der(BytesView der, uint64_t salt) const {
    uint64_t state = mix64(options_.seed ^ mix64(salt));
    auto next = [&state]() {
        state = mix64(state);
        return state;
    };
    Bytes out(der.begin(), der.end());
    if (out.empty()) return out;
    size_t flips = 1 + next() % 4;
    for (size_t i = 0; i < flips; ++i) {
        out[next() % out.size()] ^= static_cast<uint8_t>(1u << (next() % 8));
    }
    if (next() % 5 == 0) out.resize(1 + next() % out.size());
    if (next() % 10 == 0) out.push_back(static_cast<uint8_t>(next() % 256));
    return out;
}

}  // namespace unicert::faultsim
