#include "faultsim/faulty_fs.h"

#include <utility>

namespace unicert::faultsim {
namespace {

Error crashed_error(const std::string& what) {
    return Error{"fs_crashed", what + ": simulated power loss"};
}

}  // namespace

// File wrapper charging the op budget and sampling the write/sync
// channels. The op index is taken from the owning FaultyFs so writes
// to different files share one deterministic schedule.
class FaultyFile final : public core::File {
public:
    FaultyFile(FaultyFs* fs, core::FilePtr inner) : fs_(fs), inner_(std::move(inner)) {}

    Expected<size_t> write(BytesView data) override {
        size_t op = fs_->ops_ + 1;
        if (!fs_->charge_op()) return crashed_error("write");
        if (fs_->plan_.fires(FaultKind::kNoSpace, op)) {
            return Error{"fs_no_space", "injected ENOSPC at op " + std::to_string(op)};
        }
        if (fs_->plan_.fires(FaultKind::kShortWrite, op) && data.size() > 1) {
            // Persist a strict prefix and report the short count, like
            // POSIX write(2) on a nearly-full disk or signal delivery.
            size_t short_len = 1 + fs_->plan_.choose(FaultKind::kShortWrite, op,
                                                     data.size() - 1);
            auto written = inner_->write(data.subspan(0, short_len));
            if (!written.ok()) return written;
            return *written;  // < data.size(): caller must notice
        }
        return inner_->write(data);
    }

    Status sync() override {
        size_t op = fs_->ops_ + 1;
        if (!fs_->charge_op()) return crashed_error("sync");
        if (fs_->plan_.fires(FaultKind::kSyncFail, op)) {
            return Error{"fs_sync_failed", "injected fsync failure at op " + std::to_string(op)};
        }
        return inner_->sync();
    }

    Status close() override { return inner_->close(); }

private:
    FaultyFs* fs_;
    core::FilePtr inner_;
};

bool FaultyFs::charge_op() {
    if (crashed_) return false;
    ++ops_;
    if (options_.crash_after_ops != 0 && ops_ >= options_.crash_after_ops) {
        crashed_ = true;
        return false;
    }
    return true;
}

Expected<core::FilePtr> FaultyFs::open_append(const std::string& path) {
    if (!charge_op()) return crashed_error("open " + path);
    auto inner = inner_->open_append(path);
    if (!inner.ok()) return inner.error();
    return core::FilePtr(new FaultyFile(this, std::move(*inner)));
}

Expected<core::FilePtr> FaultyFs::create(const std::string& path) {
    if (!charge_op()) return crashed_error("create " + path);
    auto inner = inner_->create(path);
    if (!inner.ok()) return inner.error();
    return core::FilePtr(new FaultyFile(this, std::move(*inner)));
}

Expected<Bytes> FaultyFs::read_file(const std::string& path) {
    if (crashed_) return crashed_error("read " + path);
    if (read_faults_remaining_ > 0 && path.find(read_fault_substring_) != std::string::npos) {
        --read_faults_remaining_;
        return Error{"fs_read_failed", "injected media error reading " + path};
    }
    return inner_->read_file(path);
}

Expected<bool> FaultyFs::exists(const std::string& path) {
    if (crashed_) return crashed_error("stat " + path);
    return inner_->exists(path);
}

Status FaultyFs::rename(const std::string& from, const std::string& to) {
    if (!charge_op()) return crashed_error("rename " + from);
    return inner_->rename(from, to);
}

Status FaultyFs::remove(const std::string& path) {
    if (!charge_op()) return crashed_error("remove " + path);
    return inner_->remove(path);
}

Status FaultyFs::make_dirs(const std::string& path) {
    if (!charge_op()) return crashed_error("mkdir " + path);
    return inner_->make_dirs(path);
}

Expected<std::vector<std::string>> FaultyFs::list_dir(const std::string& path) {
    if (crashed_) return crashed_error("list " + path);
    return inner_->list_dir(path);
}

Status FaultyFs::sync_dir(const std::string& path) {
    if (!charge_op()) return crashed_error("syncdir " + path);
    return inner_->sync_dir(path);
}

void FaultyFs::crash() {
    crashed_ = true;
    struct Torn {
        std::string path;
        size_t index;        // channel index used for the keep decision
        size_t last_kept;    // absolute offset of the last surviving torn byte
    };
    std::vector<Torn> torn;
    size_t file_index = 0;
    inner_->simulate_crash([&](const std::string& path, size_t durable_len, size_t unsynced) {
        size_t idx = file_index++;
        if (unsynced == 0) return size_t{0};
        size_t kept = 0;
        if (plan_.fires(FaultKind::kTornTail, idx)) {
            // Part of the tail reached the platter before the lights
            // went out — anywhere from one byte to all of it.
            kept = 1 + plan_.choose(FaultKind::kTornTail, idx, unsynced);
            torn.push_back({path, idx, durable_len + kept - 1});
        }
        return kept;
    });
    // Bit flips ride on surviving torn bytes: the torn sector holds
    // garbage rather than a clean prefix. The flip lands in the last
    // kept byte — the most suspicious spot for a checksum to catch.
    for (const Torn& t : torn) {
        if (plan_.fires(FaultKind::kBitFlip, t.index)) {
            (void)inner_->flip_bit(t.path, t.last_kept,
                                   static_cast<unsigned>(plan_.choose(FaultKind::kBitFlip,
                                                                      t.index, 8)));
        }
    }
}

}  // namespace unicert::faultsim
