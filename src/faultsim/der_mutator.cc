#include "faultsim/der_mutator.h"

#include <vector>

#include "asn1/der.h"
#include "asn1/encoding.h"
#include "asn1/strings.h"

namespace unicert::faultsim {
namespace {

// splitmix64, same mixer as FaultPlan: schedules stay order-independent.
uint64_t mix64(uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

// One TLV node located in the buffer.
struct Node {
    size_t offset = 0;      // of the identifier octet
    size_t header_len = 0;  // tag + length octets
    size_t total_len = 0;   // header + content
    uint8_t identifier = 0;
};

// Collect TLV nodes breadth-first (bounded: the input is untrusted).
std::vector<Node> collect_nodes(BytesView der) {
    constexpr size_t kMaxNodes = 256;
    constexpr size_t kMaxDepth = 48;
    std::vector<Node> nodes;
    // (buffer offset, view, depth) work list.
    std::vector<std::pair<std::pair<size_t, size_t>, size_t>> work = {{{0, der.size()}, 0}};
    while (!work.empty() && nodes.size() < kMaxNodes) {
        auto [range, depth] = work.back();
        work.pop_back();
        size_t pos = range.first;
        const size_t end = range.first + range.second;
        while (pos < end && nodes.size() < kMaxNodes) {
            auto tlv = asn1::read_tlv(der.subspan(pos, end - pos));
            if (!tlv.ok()) break;
            nodes.push_back({pos, tlv->header_len, tlv->total_len, tlv->identifier});
            if (tlv->is_constructed() && depth < kMaxDepth && !tlv->content.empty()) {
                work.push_back({{pos + tlv->header_len, tlv->content.size()}, depth + 1});
            }
            pos += tlv->total_len;
        }
    }
    return nodes;
}

const uint8_t kStringTags[] = {
    static_cast<uint8_t>(asn1::Tag::kUtf8String),
    static_cast<uint8_t>(asn1::Tag::kPrintableString),
    static_cast<uint8_t>(asn1::Tag::kIa5String),
    static_cast<uint8_t>(asn1::Tag::kNumericString),
    static_cast<uint8_t>(asn1::Tag::kTeletexString),
    static_cast<uint8_t>(asn1::Tag::kVisibleString),
    static_cast<uint8_t>(asn1::Tag::kBmpString),
    static_cast<uint8_t>(asn1::Tag::kUniversalString),
};

Bytes byte_noise(BytesView der, uint64_t state) {
    Bytes out(der.begin(), der.end());
    if (out.empty()) return {0x3F, 0x03, 0x01};  // reserved high-tag fragment
    auto next = [&state]() {
        state = mix64(state);
        return state;
    };
    size_t flips = 1 + next() % 4;
    for (size_t i = 0; i < flips; ++i) {
        out[next() % out.size()] ^= static_cast<uint8_t>(1u << (next() % 8));
    }
    if (next() % 5 == 0) out.resize(1 + next() % out.size());
    if (next() % 8 == 0) out.push_back(static_cast<uint8_t>(next() % 256));
    return out;
}

// ---- BER-izing (semantics-preserving re-encode) ---------------------------
//
// Unlike the flat byte-splicing corruptions above, a BER-izing transform
// changes a node's encoded SIZE, which would desynchronize every
// ancestor's length field. So the document is parsed into a tree, one
// eligible node gets an encoding override, and the whole tree is
// re-encoded (minimal DER everywhere else reproduces the input bytes
// for untouched subtrees).

struct BerNode {
    uint8_t identifier = 0;
    BytesView content;               // raw value bytes in the input buffer
    std::vector<BerNode> children;   // constructed children, or the TLV
                                     // nested inside an OCTET STRING value
};

constexpr size_t kBerTreeMaxDepth = 48;

bool build_ber_tree(BytesView data, size_t depth, std::vector<BerNode>& out) {
    size_t pos = 0;
    while (pos < data.size()) {
        auto tlv = asn1::read_tlv(data.subspan(pos));
        if (!tlv.ok()) return false;
        BerNode n;
        n.identifier = tlv->identifier;
        n.content = tlv->content;
        if (tlv->is_constructed()) {
            if (depth >= kBerTreeMaxDepth) return false;
            if (!build_ber_tree(tlv->content, depth + 1, n.children)) return false;
        } else if (depth < kBerTreeMaxDepth &&
                   asn1::nested_in_octet_string(tlv.value(), asn1::kToleranceStrictDer)) {
            // Same descent rule as scan/normalize: extension bodies are
            // reachable, opaque blobs stay leaves.
            if (!build_ber_tree(tlv->content, depth + 1, n.children)) n.children.clear();
        }
        out.push_back(std::move(n));
        pos += tlv->total_len;
    }
    return true;
}

bool berize_eligible(const BerNode& n, asn1::EncodingRule rule) {
    using asn1::EncodingRule;
    using asn1::Tag;
    const bool universal = asn1::tag_class_of(n.identifier) == asn1::TagClass::kUniversal;
    const uint8_t num = asn1::tag_number_of(n.identifier);
    switch (rule) {
        case EncodingRule::kLongFormLength:
            return true;  // any TLV's length can be written long-form
        case EncodingRule::kConstructedString:
            return !asn1::is_constructed_id(n.identifier) && universal &&
                   (num == static_cast<uint8_t>(Tag::kOctetString) ||
                    asn1::string_type_from_tag(num).has_value()) &&
                   n.content.size() >= 2;
        case EncodingRule::kIndefiniteLength:
            return asn1::is_constructed_id(n.identifier);
        case EncodingRule::kPaddedBitString:
            // Needs spare pad bits that are currently zero, so zeroing
            // them (normalization) restores the original bytes.
            return !asn1::is_constructed_id(n.identifier) && universal &&
                   num == static_cast<uint8_t>(Tag::kBitString) && n.content.size() >= 2 &&
                   n.content[0] >= 1 && n.content[0] <= 7 &&
                   (n.content.back() & ((1u << n.content[0]) - 1u)) == 0;
        case EncodingRule::kNonMinimalInteger:
            return !asn1::is_constructed_id(n.identifier) && universal &&
                   num == static_cast<uint8_t>(Tag::kInteger) && !n.content.empty() &&
                   n.content.size() <= 20;
        case EncodingRule::kDer:
            return false;
    }
    return false;
}

void collect_berize_eligible(const std::vector<BerNode>& nodes, asn1::EncodingRule rule,
                             std::vector<const BerNode*>& out) {
    for (const BerNode& n : nodes) {
        if (berize_eligible(n, rule)) out.push_back(&n);
        collect_berize_eligible(n.children, rule, out);
    }
}

struct BerPlan {
    const BerNode* target = nullptr;
    asn1::EncodingRule rule = asn1::EncodingRule::kDer;
    uint64_t tweak = 0;
};

void emit_der_tlv(Bytes& out, uint8_t id, BytesView content) {
    out.push_back(id);
    Bytes len = asn1::encode_length(content.size());
    out.insert(out.end(), len.begin(), len.end());
    out.insert(out.end(), content.begin(), content.end());
}

void encode_ber_node(const BerNode& n, const BerPlan& plan, Bytes& out) {
    using asn1::EncodingRule;
    const bool targeted = (&n == plan.target);

    Bytes content;
    if (!n.children.empty() &&
        !(targeted && plan.rule == EncodingRule::kConstructedString)) {
        for (const BerNode& c : n.children) encode_ber_node(c, plan, content);
    } else {
        content.assign(n.content.begin(), n.content.end());
    }

    if (!targeted) {
        emit_der_tlv(out, n.identifier, content);
        return;
    }
    switch (plan.rule) {
        case EncodingRule::kLongFormLength: {
            out.push_back(n.identifier);
            Bytes len = asn1::encode_length_ber_long(content.size(), 1 + plan.tweak % 2);
            out.insert(out.end(), len.begin(), len.end());
            out.insert(out.end(), content.begin(), content.end());
            return;
        }
        case EncodingRule::kConstructedString: {
            // Split the raw value into 2..4 primitive same-tag segments.
            size_t k = std::min<size_t>(2 + plan.tweak % 3, content.size());
            Bytes segments;
            size_t off = 0;
            for (size_t i = 0; i < k; ++i) {
                size_t take = content.size() / k + (i < content.size() % k ? 1 : 0);
                emit_der_tlv(segments, n.identifier,
                             BytesView(content).subspan(off, take));
                off += take;
            }
            emit_der_tlv(out, static_cast<uint8_t>(n.identifier | asn1::kConstructedBit),
                         segments);
            return;
        }
        case EncodingRule::kIndefiniteLength: {
            out.push_back(n.identifier);
            out.push_back(0x80);
            out.insert(out.end(), content.begin(), content.end());
            out.push_back(0x00);
            out.push_back(0x00);
            return;
        }
        case EncodingRule::kPaddedBitString: {
            uint8_t unused = content[0];
            uint8_t garbage =
                static_cast<uint8_t>(1 + plan.tweak % ((1u << unused) - 1u));
            content.back() = static_cast<uint8_t>(content.back() | garbage);
            emit_der_tlv(out, n.identifier, content);
            return;
        }
        case EncodingRule::kNonMinimalInteger: {
            uint8_t sign = (content[0] & 0x80) ? 0xFF : 0x00;
            Bytes widened(1 + plan.tweak % 2, sign);
            widened.insert(widened.end(), content.begin(), content.end());
            emit_der_tlv(out, n.identifier, widened);
            return;
        }
        case EncodingRule::kDer:
            break;
    }
    emit_der_tlv(out, n.identifier, content);
}

}  // namespace

const char* der_mutation_name(DerMutation m) noexcept {
    switch (m) {
        case DerMutation::kTagFlip: return "tag_flip";
        case DerMutation::kStringTypeSwap: return "string_type_swap";
        case DerMutation::kLengthBomb: return "length_bomb";
        case DerMutation::kTruncate: return "truncate";
        case DerMutation::kNestingInflate: return "nesting_inflate";
        case DerMutation::kByteNoise: return "byte_noise";
        case DerMutation::kBerize: return "berize";
    }
    return "?";
}

DerMutation DerMutator::pick(uint64_t salt) const noexcept {
    uint64_t h = mix64(seed_ ^ mix64(salt ^ 0xD15EA5E0ULL));
    if (ber_axis_) {
        size_t idx = h % (kAllDerMutations.size() + 1);
        return idx == kAllDerMutations.size() ? DerMutation::kBerize : kAllDerMutations[idx];
    }
    return kAllDerMutations[h % kAllDerMutations.size()];
}

std::optional<Bytes> DerMutator::berize(asn1::EncodingRule rule, BytesView der,
                                        uint64_t salt) const {
    if (rule == asn1::EncodingRule::kDer || der.empty()) return std::nullopt;
    std::vector<BerNode> roots;
    if (!build_ber_tree(der, 0, roots)) return std::nullopt;
    std::vector<const BerNode*> eligible;
    collect_berize_eligible(roots, rule, eligible);
    if (eligible.empty()) return std::nullopt;

    uint64_t state = mix64(seed_ ^ mix64(salt ^ 0xBE71EDULL));
    BerPlan plan;
    plan.rule = rule;
    plan.target = eligible[state % eligible.size()];
    plan.tweak = mix64(state);

    Bytes out;
    for (const BerNode& n : roots) encode_ber_node(n, plan, out);
    return out;
}

Bytes DerMutator::mutate(BytesView der, uint64_t salt) const {
    return apply(pick(salt), der, salt);
}

Bytes DerMutator::apply(DerMutation m, BytesView der, uint64_t salt) const {
    uint64_t state = mix64(seed_ ^ mix64(salt));
    auto next = [&state]() {
        state = mix64(state);
        return state;
    };

    std::vector<Node> nodes = collect_nodes(der);
    if (nodes.empty() || m == DerMutation::kByteNoise) return byte_noise(der, next());

    Bytes out(der.begin(), der.end());
    switch (m) {
        case DerMutation::kTagFlip: {
            const Node& n = nodes[next() % nodes.size()];
            // New tag number in the same class; constructed bit kept so
            // lengths stay plausible. Tag number 31 (0x1F) announces a
            // multi-byte tag, which the reader rejects — also a case.
            out[n.offset] = static_cast<uint8_t>((n.identifier & 0xE0) | (next() % 32));
            return out;
        }

        case DerMutation::kStringTypeSwap: {
            // Retag a character-string TLV as a different string type:
            // the exact declared-type-vs-content mismatch the paper's
            // Table 4 scenarios probe.
            std::vector<const Node*> strings;
            for (const Node& n : nodes) {
                if (n.identifier == (n.identifier & 0x1F) &&
                    asn1::string_type_from_tag(n.identifier & 0x1F).has_value()) {
                    strings.push_back(&n);
                }
            }
            if (strings.empty()) return byte_noise(der, next());
            const Node& n = *strings[next() % strings.size()];
            uint8_t replacement = kStringTags[next() % std::size(kStringTags)];
            if (replacement == (n.identifier & 0x1F)) {
                replacement = kStringTags[(next() + 1) % std::size(kStringTags)];
            }
            out[n.offset] = replacement;
            return out;
        }

        case DerMutation::kLengthBomb: {
            // Replace the node's length octets with a long-form length
            // claiming vastly more content than the buffer holds.
            const Node& n = nodes[next() % nodes.size()];
            Bytes bomb;
            bomb.push_back(out[n.offset]);  // keep identifier
            if (next() % 2 == 0) {
                // 4-byte length near 4 GiB.
                bomb.insert(bomb.end(), {0x84, 0xFF, 0xFF, 0xFF, 0xF1});
            } else {
                // 8-byte length: exercises the size_t overflow path.
                bomb.insert(bomb.end(), {0x88, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xF1});
            }
            Bytes result(out.begin(), out.begin() + static_cast<long>(n.offset));
            result.insert(result.end(), bomb.begin(), bomb.end());
            result.insert(result.end(), out.begin() + static_cast<long>(n.offset + n.header_len),
                          out.end());
            return result;
        }

        case DerMutation::kTruncate: {
            const Node& n = nodes[next() % nodes.size()];
            // Cut strictly inside the TLV: header survives, content is
            // short — the der_truncated family.
            size_t keep = n.offset + 1 + next() % std::max<size_t>(1, n.total_len - 1);
            out.resize(keep);
            return out;
        }

        case DerMutation::kNestingInflate: {
            // Wrap a node in K extra constructed SEQUENCE layers.
            // K straddles the parser's 64-deep guard so the fuzzer
            // exercises both the accept and reject side of it.
            const Node& n = nodes[next() % nodes.size()];
            size_t layers = 48 + next() % 48;  // 48..95
            Bytes wrapped(out.begin() + static_cast<long>(n.offset),
                          out.begin() + static_cast<long>(n.offset + n.total_len));
            for (size_t i = 0; i < layers; ++i) {
                Bytes shell;
                shell.push_back(0x30);
                Bytes len = asn1::encode_length(wrapped.size());
                shell.insert(shell.end(), len.begin(), len.end());
                shell.insert(shell.end(), wrapped.begin(), wrapped.end());
                wrapped = std::move(shell);
            }
            Bytes result(out.begin(), out.begin() + static_cast<long>(n.offset));
            result.insert(result.end(), wrapped.begin(), wrapped.end());
            result.insert(result.end(), out.begin() + static_cast<long>(n.offset + n.total_len),
                          out.end());
            return result;
        }

        case DerMutation::kBerize: {
            // Rotate through the BER rules from a hash-chosen start
            // until one applies; clean DER always admits at least the
            // long-form rule, so the fallback only fires on input that
            // is already corrupt.
            size_t start = next() % std::size(asn1::kAllBerRules);
            for (size_t i = 0; i < std::size(asn1::kAllBerRules); ++i) {
                auto b = berize(asn1::kAllBerRules[(start + i) % std::size(asn1::kAllBerRules)],
                                der, salt);
                if (b) return *b;
            }
            return byte_noise(der, next());
        }

        case DerMutation::kByteNoise:
            break;  // handled above
    }
    return byte_noise(der, next());
}

}  // namespace unicert::faultsim
