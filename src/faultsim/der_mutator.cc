#include "faultsim/der_mutator.h"

#include <vector>

#include "asn1/der.h"
#include "asn1/strings.h"

namespace unicert::faultsim {
namespace {

// splitmix64, same mixer as FaultPlan: schedules stay order-independent.
uint64_t mix64(uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

// One TLV node located in the buffer.
struct Node {
    size_t offset = 0;      // of the identifier octet
    size_t header_len = 0;  // tag + length octets
    size_t total_len = 0;   // header + content
    uint8_t identifier = 0;
};

// Collect TLV nodes breadth-first (bounded: the input is untrusted).
std::vector<Node> collect_nodes(BytesView der) {
    constexpr size_t kMaxNodes = 256;
    constexpr size_t kMaxDepth = 48;
    std::vector<Node> nodes;
    // (buffer offset, view, depth) work list.
    std::vector<std::pair<std::pair<size_t, size_t>, size_t>> work = {{{0, der.size()}, 0}};
    while (!work.empty() && nodes.size() < kMaxNodes) {
        auto [range, depth] = work.back();
        work.pop_back();
        size_t pos = range.first;
        const size_t end = range.first + range.second;
        while (pos < end && nodes.size() < kMaxNodes) {
            auto tlv = asn1::read_tlv(der.subspan(pos, end - pos));
            if (!tlv.ok()) break;
            nodes.push_back({pos, tlv->header_len, tlv->total_len, tlv->identifier});
            if (tlv->is_constructed() && depth < kMaxDepth && !tlv->content.empty()) {
                work.push_back({{pos + tlv->header_len, tlv->content.size()}, depth + 1});
            }
            pos += tlv->total_len;
        }
    }
    return nodes;
}

const uint8_t kStringTags[] = {
    static_cast<uint8_t>(asn1::Tag::kUtf8String),
    static_cast<uint8_t>(asn1::Tag::kPrintableString),
    static_cast<uint8_t>(asn1::Tag::kIa5String),
    static_cast<uint8_t>(asn1::Tag::kNumericString),
    static_cast<uint8_t>(asn1::Tag::kTeletexString),
    static_cast<uint8_t>(asn1::Tag::kVisibleString),
    static_cast<uint8_t>(asn1::Tag::kBmpString),
    static_cast<uint8_t>(asn1::Tag::kUniversalString),
};

Bytes byte_noise(BytesView der, uint64_t state) {
    Bytes out(der.begin(), der.end());
    if (out.empty()) return {0x3F, 0x03, 0x01};  // reserved high-tag fragment
    auto next = [&state]() {
        state = mix64(state);
        return state;
    };
    size_t flips = 1 + next() % 4;
    for (size_t i = 0; i < flips; ++i) {
        out[next() % out.size()] ^= static_cast<uint8_t>(1u << (next() % 8));
    }
    if (next() % 5 == 0) out.resize(1 + next() % out.size());
    if (next() % 8 == 0) out.push_back(static_cast<uint8_t>(next() % 256));
    return out;
}

}  // namespace

const char* der_mutation_name(DerMutation m) noexcept {
    switch (m) {
        case DerMutation::kTagFlip: return "tag_flip";
        case DerMutation::kStringTypeSwap: return "string_type_swap";
        case DerMutation::kLengthBomb: return "length_bomb";
        case DerMutation::kTruncate: return "truncate";
        case DerMutation::kNestingInflate: return "nesting_inflate";
        case DerMutation::kByteNoise: return "byte_noise";
    }
    return "?";
}

DerMutation DerMutator::pick(uint64_t salt) const noexcept {
    uint64_t h = mix64(seed_ ^ mix64(salt ^ 0xD15EA5E0ULL));
    return kAllDerMutations[h % kAllDerMutations.size()];
}

Bytes DerMutator::mutate(BytesView der, uint64_t salt) const {
    return apply(pick(salt), der, salt);
}

Bytes DerMutator::apply(DerMutation m, BytesView der, uint64_t salt) const {
    uint64_t state = mix64(seed_ ^ mix64(salt));
    auto next = [&state]() {
        state = mix64(state);
        return state;
    };

    std::vector<Node> nodes = collect_nodes(der);
    if (nodes.empty() || m == DerMutation::kByteNoise) return byte_noise(der, next());

    Bytes out(der.begin(), der.end());
    switch (m) {
        case DerMutation::kTagFlip: {
            const Node& n = nodes[next() % nodes.size()];
            // New tag number in the same class; constructed bit kept so
            // lengths stay plausible. Tag number 31 (0x1F) announces a
            // multi-byte tag, which the reader rejects — also a case.
            out[n.offset] = static_cast<uint8_t>((n.identifier & 0xE0) | (next() % 32));
            return out;
        }

        case DerMutation::kStringTypeSwap: {
            // Retag a character-string TLV as a different string type:
            // the exact declared-type-vs-content mismatch the paper's
            // Table 4 scenarios probe.
            std::vector<const Node*> strings;
            for (const Node& n : nodes) {
                if (n.identifier == (n.identifier & 0x1F) &&
                    asn1::string_type_from_tag(n.identifier & 0x1F).has_value()) {
                    strings.push_back(&n);
                }
            }
            if (strings.empty()) return byte_noise(der, next());
            const Node& n = *strings[next() % strings.size()];
            uint8_t replacement = kStringTags[next() % std::size(kStringTags)];
            if (replacement == (n.identifier & 0x1F)) {
                replacement = kStringTags[(next() + 1) % std::size(kStringTags)];
            }
            out[n.offset] = replacement;
            return out;
        }

        case DerMutation::kLengthBomb: {
            // Replace the node's length octets with a long-form length
            // claiming vastly more content than the buffer holds.
            const Node& n = nodes[next() % nodes.size()];
            Bytes bomb;
            bomb.push_back(out[n.offset]);  // keep identifier
            if (next() % 2 == 0) {
                // 4-byte length near 4 GiB.
                bomb.insert(bomb.end(), {0x84, 0xFF, 0xFF, 0xFF, 0xF1});
            } else {
                // 8-byte length: exercises the size_t overflow path.
                bomb.insert(bomb.end(), {0x88, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xF1});
            }
            Bytes result(out.begin(), out.begin() + static_cast<long>(n.offset));
            result.insert(result.end(), bomb.begin(), bomb.end());
            result.insert(result.end(), out.begin() + static_cast<long>(n.offset + n.header_len),
                          out.end());
            return result;
        }

        case DerMutation::kTruncate: {
            const Node& n = nodes[next() % nodes.size()];
            // Cut strictly inside the TLV: header survives, content is
            // short — the der_truncated family.
            size_t keep = n.offset + 1 + next() % std::max<size_t>(1, n.total_len - 1);
            out.resize(keep);
            return out;
        }

        case DerMutation::kNestingInflate: {
            // Wrap a node in K extra constructed SEQUENCE layers.
            // K straddles the parser's 64-deep guard so the fuzzer
            // exercises both the accept and reject side of it.
            const Node& n = nodes[next() % nodes.size()];
            size_t layers = 48 + next() % 48;  // 48..95
            Bytes wrapped(out.begin() + static_cast<long>(n.offset),
                          out.begin() + static_cast<long>(n.offset + n.total_len));
            for (size_t i = 0; i < layers; ++i) {
                Bytes shell;
                shell.push_back(0x30);
                Bytes len = asn1::encode_length(wrapped.size());
                shell.insert(shell.end(), len.begin(), len.end());
                shell.insert(shell.end(), wrapped.begin(), wrapped.end());
                wrapped = std::move(shell);
            }
            Bytes result(out.begin(), out.begin() + static_cast<long>(n.offset));
            result.insert(result.end(), wrapped.begin(), wrapped.end());
            result.insert(result.end(), out.begin() + static_cast<long>(n.offset + n.total_len),
                          out.end());
            return result;
        }

        case DerMutation::kByteNoise:
            break;  // handled above
    }
    return byte_noise(der, next());
}

}  // namespace unicert::faultsim
