// unicert/faultsim/faulty_log_source.h
//
// LogSource decorator that replays a FaultPlan against monitor sync:
// transient unavailable/timeout errors, dropped entries that recover,
// stale (duplicate) deliveries, corrupted leaf DER, flaky tree-head
// reads and one-shot tree-head regressions. Recoverable faults vanish
// under the consumer's retry policy; corruption is quarantined. All
// state is per-instance, so the same plan replayed against a fresh
// decorator produces the identical fault sequence.
//
// Thread-safe: the bookkeeping is per-index and guarded by an internal
// mutex, so sharded parallel ingestion can fetch entries concurrently
// and still observe exactly the per-index schedule the plan dictates.
#pragma once

#include <map>
#include <mutex>

#include "ctlog/log_source.h"
#include "faultsim/fault_plan.h"

namespace unicert::faultsim {

class FaultyLogSource final : public ctlog::LogSource {
public:
    FaultyLogSource(ctlog::LogSource& inner, FaultPlan plan)
        : inner_(&inner), plan_(std::move(plan)) {}

    std::string name() const override { return inner_->name() + "+faults"; }

    Expected<ctlog::SignedTreeHead> latest_tree_head() override;
    Expected<ctlog::RawLogEntry> entry_at(size_t index) override;
    Expected<crypto::Digest> root_at(size_t tree_size) override;

    // Fault accounting, for assertions.
    size_t injected_faults() const noexcept {
        std::lock_guard<std::mutex> lk(mu_);
        return injected_;
    }

private:
    ctlog::LogSource* inner_;
    FaultPlan plan_;
    mutable std::mutex mu_;  // guards every mutable member below
    std::map<size_t, int> entry_failures_;   // consecutive failures served per index
    std::map<size_t, bool> stale_served_;    // duplicate delivery done?
    std::map<size_t, bool> poison_served_;   // corrupted copy delivered?
    size_t head_reads_ = 0;
    int head_failures_ = 0;
    size_t injected_ = 0;
};

}  // namespace unicert::faultsim
