// unicert/faultsim/fault_plan.h
//
// Deterministic fault-injection substrate. A FaultPlan turns a seed and
// a handful of rates into an order-independent schedule: the decision
// for (channel, index) is a pure hash of the seed, so two runs with the
// same seed produce byte-identical fault schedules regardless of retry
// interleaving — the property the chaos tests assert. The plan only
// decides *where* faults land; the FaultyLogSource / FaultyCertSource
// decorators decide what a fault looks like on their interface.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace unicert::faultsim {

// Fault channels, one deterministic decision stream each.
enum class FaultKind {
    kTransient,       // entry fetch fails with unavailable/timeout, then recovers
    kDrop,            // entry initially missing (entry_dropped), then recovers
    kDuplicate,       // entry redelivered / stale view served once
    kPoison,          // a corrupted copy of the entry is injected
    kHeadFlake,       // tree-head read fails transiently
    kHeadRegression,  // tree-head read serves a stale (smaller) view once
    // Filesystem channels, consumed by FaultyFs (indexed by I/O op):
    kShortWrite,      // write() persists only a prefix and reports it
    kSyncFail,        // fsync fails; written data stays volatile
    kNoSpace,         // write() fails with fs_no_space
    kTornTail,        // post-crash: part of a file's unsynced tail survives
    kBitFlip,         // post-crash: one bit of the surviving torn tail flips
};

struct FaultPlanOptions {
    uint64_t seed = 1;

    double transient_rate = 0.0;
    double drop_rate = 0.0;
    double duplicate_rate = 0.0;
    double poison_rate = 0.0;
    double head_flake_rate = 0.0;
    double head_regression_rate = 0.0;

    // Filesystem channel rates (FaultyFs).
    double short_write_rate = 0.0;
    double sync_fail_rate = 0.0;
    double no_space_rate = 0.0;
    double torn_tail_rate = 0.0;
    double bit_flip_rate = 0.0;

    // Consecutive failures a transient/drop fault produces before the
    // operation recovers. Must stay below the consumer's retry budget
    // for a schedule to be recoverable.
    int transient_failures = 2;
};

class FaultPlan {
public:
    explicit FaultPlan(FaultPlanOptions options) : options_(options) {}

    const FaultPlanOptions& options() const noexcept { return options_; }

    // Does the channel fire at this index? Pure function of (seed,
    // kind, index) — stable across runs and call orders.
    bool fires(FaultKind kind, size_t index) const noexcept;

    // Deterministic draw in [0, bound) for a fault that needs a size —
    // how short a short write is, how much of a torn tail survives.
    // Pure function of (seed, kind, index); bound 0 returns 0.
    size_t choose(FaultKind kind, size_t index, size_t bound) const noexcept;

    // Corruption guaranteed to be unparseable: truncates inside the
    // outer TLV or stamps a reserved high-tag identifier octet, chosen
    // deterministically per index. Used for poison copies so a corrupt
    // delivery can never masquerade as a valid certificate.
    Bytes corrupt_der(BytesView der, size_t index) const;

    // General randomized mutation — bit flips, truncation, extension —
    // for fuzz-style robustness tests. NOT guaranteed fatal; the parser
    // must survive either way.
    Bytes mutate_der(BytesView der, uint64_t salt) const;

private:
    FaultPlanOptions options_;
};

}  // namespace unicert::faultsim
