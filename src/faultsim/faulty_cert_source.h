// unicert/faultsim/faulty_cert_source.h
//
// CertSource decorator that replays a FaultPlan against the compliance
// pipeline's streaming ingestion. Faults are recoverable-or-additive by
// construction: transient errors retry away, duplicate deliveries dedup
// away, and poison is always an EXTRA corrupted copy delivered before
// the intact original — so a resilient consumer produces aggregates
// byte-identical to the fault-free run, with the faults visible only in
// its stats and quarantine report.
#pragma once

#include <vector>

#include "core/pipeline.h"
#include "faultsim/fault_plan.h"

namespace unicert::faultsim {

class FaultyCertSource final : public core::CertSource {
public:
    FaultyCertSource(const std::vector<ctlog::CorpusCert>& corpus, FaultPlan plan)
        : corpus_(&corpus), plan_(std::move(plan)) {}

    size_t size_hint() const override { return corpus_->size(); }

    Expected<std::optional<core::CertEntry>> next() override;

    // Fault accounting, for assertions.
    size_t injected_faults() const noexcept { return injected_; }

private:
    // Delivery ladder per corpus position; recoverable faults come
    // before the intact original so the original always lands.
    enum class Step { kPoison, kTransient, kDeliver, kDuplicate };

    const std::vector<ctlog::CorpusCert>* corpus_;
    FaultPlan plan_;
    size_t pos_ = 0;
    Step step_ = Step::kPoison;
    int failures_served_ = 0;
    size_t injected_ = 0;
};

}  // namespace unicert::faultsim
