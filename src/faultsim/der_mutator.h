// unicert/faultsim/der_mutator.h
//
// Structure-aware X.509/DER mutator for the differential fuzz loop.
// Where FaultPlan::mutate_der flips random bits, the DerMutator first
// walks the TLV tree and then mutates *structurally*: tag flips,
// string-type swaps, length bombs, truncations inside a chosen TLV,
// and nesting inflation (wrapping a node in dozens of extra SEQUENCE
// layers, which is exactly what the asn1 nesting-depth guard must
// absorb). Like FaultPlan, every decision is a pure hash of
// (seed, salt): the same seed replays the same mutation stream
// regardless of call order.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "asn1/der.h"
#include "common/bytes.h"

namespace unicert::faultsim {

enum class DerMutation {
    kTagFlip,         // rewrite one identifier octet's tag number
    kStringTypeSwap,  // retag a character-string TLV as another string type
    kLengthBomb,      // length field claiming far more content than exists
    kTruncate,        // cut the buffer inside a chosen TLV
    kNestingInflate,  // wrap a node in many extra SEQUENCE layers
    kByteNoise,       // unstructured bit flips / resize fallback
    kBerize,          // semantics-preserving BER re-encoding of one TLV
};

const char* der_mutation_name(DerMutation m) noexcept;

// The corruption kinds. kBerize is deliberately NOT in this list: the
// list drives `pick`'s hash distribution for existing seed-pinned
// campaigns, and BER-izing is opt-in via the ber_axis constructor flag
// so those replays stay byte-stable.
inline constexpr std::array<DerMutation, 6> kAllDerMutations = {
    DerMutation::kTagFlip,   DerMutation::kStringTypeSwap, DerMutation::kLengthBomb,
    DerMutation::kTruncate,  DerMutation::kNestingInflate, DerMutation::kByteNoise,
};

class DerMutator {
public:
    // `ber_axis` adds kBerize to the kinds `pick` draws from, widening
    // the campaign onto the encoding-rule axis. Off by default: it
    // changes the pick distribution, so existing seeds replay unchanged.
    explicit DerMutator(uint64_t seed, bool ber_axis = false)
        : seed_(seed), ber_axis_(ber_axis) {}

    uint64_t seed() const noexcept { return seed_; }
    bool ber_axis() const noexcept { return ber_axis_; }

    // The mutation `mutate` would pick for this salt.
    DerMutation pick(uint64_t salt) const noexcept;

    // Pick a mutation kind by hash and apply it. Output is NOT
    // guaranteed parseable (that is the point); it is guaranteed
    // deterministic in (seed, salt, der).
    Bytes mutate(BytesView der, uint64_t salt) const;

    // Apply one specific mutation kind (for targeted tests). Falls
    // back to kByteNoise when the structure the kind needs is absent
    // (e.g. no string-typed TLV for kStringTypeSwap).
    Bytes apply(DerMutation m, BytesView der, uint64_t salt) const;

    // Semantics-preserving BER-izing: re-encode one hash-chosen TLV of a
    // well-formed DER document under the given non-DER rule (long-form
    // length, constructed split, indefinite wrap, bit-string pad,
    // integer widen). The result decodes tolerantly to the same values
    // and asn1::normalize_to_der maps it back byte-identically. Returns
    // nullopt when the document is not clean DER, the rule is kDer, or
    // no TLV is eligible (e.g. no BIT STRING with spare pad bits).
    std::optional<Bytes> berize(asn1::EncodingRule rule, BytesView der, uint64_t salt) const;

private:
    uint64_t seed_;
    bool ber_axis_ = false;
};

}  // namespace unicert::faultsim
