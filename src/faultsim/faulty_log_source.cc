#include "faultsim/faulty_log_source.h"

#include <string>

namespace unicert::faultsim {

Expected<ctlog::SignedTreeHead> FaultyLogSource::latest_tree_head() {
    std::lock_guard<std::mutex> lk(mu_);
    const size_t read = head_reads_++;
    if (plan_.fires(FaultKind::kHeadFlake, read)) {
        ++injected_;
        return Error{"unavailable", "tree head read " + std::to_string(read) + " failed"};
    }
    auto sth = inner_->latest_tree_head();
    if (!sth.ok()) return sth;
    if (plan_.fires(FaultKind::kHeadRegression, read) && sth->tree_size > 1) {
        // Serve a stale view: a consistent but smaller tree, the shape a
        // lagging (or equivocating) frontend presents. The consumer must
        // treat it as a regression signal, not silently re-index.
        ++injected_;
        ctlog::SignedTreeHead stale = sth.value();
        stale.tree_size /= 2;
        auto old_root = inner_->root_at(stale.tree_size);
        if (old_root.ok()) {
            stale.root_hash = old_root.value();
            return stale;
        }
    }
    return sth;
}

Expected<ctlog::RawLogEntry> FaultyLogSource::entry_at(size_t index) {
    // Holding the lock across the inner fetch serializes concurrent
    // shard reads, which keeps the per-index fault schedule exact;
    // throughput is irrelevant for a fault-injection decorator.
    std::lock_guard<std::mutex> lk(mu_);
    const bool transient = plan_.fires(FaultKind::kTransient, index);
    const bool dropped = plan_.fires(FaultKind::kDrop, index);
    if (transient || dropped) {
        int& failures = entry_failures_[index];
        if (failures < plan_.options().transient_failures) {
            ++failures;
            ++injected_;
            if (dropped) {
                return Error{"entry_dropped",
                             "entry " + std::to_string(index) + " not yet available"};
            }
            return Error{failures % 2 == 1 ? "timeout" : "unavailable",
                         "entry " + std::to_string(index) + " fetch failed"};
        }
    }
    if (index > 0 && plan_.fires(FaultKind::kDuplicate, index) && !stale_served_[index]) {
        // Stale delivery: the previous entry again, index and all.
        stale_served_[index] = true;
        ++injected_;
        return inner_->entry_at(index - 1);
    }
    auto entry = inner_->entry_at(index);
    if (!entry.ok()) return entry;
    if (plan_.fires(FaultKind::kPoison, index) && !poison_served_[index]) {
        poison_served_[index] = true;
        ++injected_;
        entry->leaf_der = plan_.corrupt_der(entry->leaf_der, index);
    }
    return entry;
}

Expected<crypto::Digest> FaultyLogSource::root_at(size_t tree_size) {
    return inner_->root_at(tree_size);
}

}  // namespace unicert::faultsim
