// unicert/threat/log_audit.h
//
// Section 5.1's "field information misrecognition" impact on log
// auditing: network monitors write line-based TLS logs (Zeek-style
// TSV) from certificate fields. Certificates carrying separator or
// newline characters corrupt those logs — injecting phantom entries or
// breaking column alignment — which is the "make the network logs hard
// to analyze" outcome the paper cites ([69]'s malformed OpenVPN logs).
#pragma once

#include <string>
#include <vector>

#include "threat/middlebox.h"
#include "x509/certificate.h"

namespace unicert::threat {

// A minimal Zeek-style TSV log writer for TLS connections.
class TlsLogWriter {
public:
    // Writing policy: a hardened writer escapes separators; a naive one
    // interpolates field values verbatim (the vulnerable practice).
    explicit TlsLogWriter(bool escape_fields) : escape_fields_(escape_fields) {}

    // Append one connection record: timestamp, peer IP, and the entity
    // fields a middlebox would extract from the served certificate.
    void log_connection(int64_t timestamp, const std::string& peer_ip, Middlebox extractor,
                        const x509::Certificate& cert);

    const std::string& contents() const noexcept { return log_; }
    size_t records_written() const noexcept { return records_; }

    // What a line-based analyzer sees: number of log *lines* and how
    // many parse into the expected column count.
    struct AuditView {
        size_t lines = 0;
        size_t well_formed = 0;   // correct column count
        size_t malformed = 0;
    };
    AuditView audit() const;

private:
    bool escape_fields_;
    std::string log_;
    size_t records_ = 0;
};

// The scenario: serve crafted certificates through naive and hardened
// log writers and report the divergence between records written and
// lines an auditor can parse.
struct LogInjectionResult {
    bool hardened_writer = false;
    size_t records = 0;
    size_t lines = 0;
    size_t malformed_lines = 0;
    bool log_corrupted = false;  // lines != records or malformed > 0
};

std::vector<LogInjectionResult> run_log_injection();

}  // namespace unicert::threat
