#include "threat/browser.h"

#include <algorithm>

#include "unicode/codec.h"
#include "unicode/properties.h"

namespace unicert::threat {
namespace {

using unicode::CodePoint;
using unicode::CodePoints;

// The equivalent-character substitution table browsers apply —
// including the incorrect mapping Table 14 flags (Greek question mark
// U+037E becomes ';' rather than '?', violating the Unicode charts).
CodePoint substitute(CodePoint cp) {
    switch (cp) {
        case 0x037E: return ';';   // WRONG per Unicode, but what engines do
        case 0x2024: return '.';   // ONE DOT LEADER
        case 0xFF0E: return '.';   // FULLWIDTH FULL STOP
        default: return cp;
    }
}

}  // namespace

const char* browser_name(Browser b) noexcept {
    switch (b) {
        case Browser::kFirefox: return "Firefox";
        case Browser::kSafari: return "Safari";
        case Browser::kChromiumFamily: return "Chromium-based";
    }
    return "?";
}

const char* browser_engine(Browser b) noexcept {
    switch (b) {
        case Browser::kFirefox: return "Gecko";
        case Browser::kSafari: return "Webkit";
        case Browser::kChromiumFamily: return "Blink";
    }
    return "?";
}

BrowserPolicy browser_policy(Browser b) noexcept {
    switch (b) {
        case Browser::kFirefox:
            // G1.1: only Firefox renders C0/C1 "robustly but potentially
            // insecurely" (no visible marking).
            return {.marks_c0_c1 = false,
                    .layout_controls_visible = false,
                    .detects_homographs = false,
                    .correct_substitutions = false,
                    .asn1_range_checking = true,   // flawed but present
                    .warning_page_spoofable = true,
                    .warning_uses_san = true};
        case Browser::kSafari:
            return {.marks_c0_c1 = true,
                    .layout_controls_visible = false,
                    .detects_homographs = false,
                    .correct_substitutions = false,
                    .asn1_range_checking = true,
                    .warning_page_spoofable = false,
                    .warning_uses_san = false};
        case Browser::kChromiumFamily:
            return {.marks_c0_c1 = true,
                    .layout_controls_visible = false,
                    .detects_homographs = false,
                    .correct_substitutions = false,
                    .asn1_range_checking = false,  // Table 14: ✗
                    .warning_page_spoofable = true,
                    .warning_uses_san = false};
    }
    return {};
}

std::string apply_bidi_overrides(const CodePoints& cps) {
    // Simplified UBA: RLO (U+202E) reverses everything until PDF
    // (U+202C) or end-of-string; the controls themselves are removed.
    CodePoints out;
    size_t i = 0;
    while (i < cps.size()) {
        CodePoint cp = cps[i];
        if (cp == 0x202E) {
            // Collect the overridden run up to the matching PDF. Nested
            // RLO inside an RTL run is redundant; the embedded controls
            // are invisible either way, so they are dropped and the run
            // is reversed once.
            CodePoints run;
            ++i;
            int depth = 1;
            while (i < cps.size()) {
                if (cps[i] == 0x202E) {
                    ++depth;
                } else if (cps[i] == 0x202C) {
                    --depth;
                    if (depth == 0) break;
                } else {
                    run.push_back(cps[i]);
                }
                ++i;
            }
            if (i < cps.size()) ++i;  // consume the matching PDF
            out.insert(out.end(), run.rbegin(), run.rend());
            continue;
        }
        if (unicode::is_bidi_control(cp)) {
            ++i;  // other bidi controls: invisible, no reordering modelled
            continue;
        }
        out.push_back(cp);
        ++i;
    }
    return unicode::codepoints_to_utf8(out);
}

std::string render_for_display(Browser b, std::string_view value_utf8) {
    BrowserPolicy policy = browser_policy(b);
    CodePoints cps =
        unicode::decode_lossy(to_bytes(value_utf8), unicode::Encoding::kUtf8,
                              unicode::ErrorPolicy::kReplace);

    // Apply bidi overrides first: they shape what the user *sees*.
    std::string reordered = apply_bidi_overrides(cps);
    CodePoints visual =
        unicode::decode_lossy(to_bytes(reordered), unicode::Encoding::kUtf8,
                              unicode::ErrorPolicy::kReplace);

    CodePoints out;
    for (CodePoint cp : visual) {
        if (unicode::is_layout_control(cp)) {
            if (policy.layout_controls_visible) out.push_back(0x2423);  // ␣-style marker
            // else: invisible — G1.1's attack surface.
            continue;
        }
        if (unicode::is_control(cp)) {
            if (policy.marks_c0_c1) {
                // URL-encoding style visible marker, e.g. %00.
                static constexpr char kHex[] = "0123456789ABCDEF";
                out.push_back('%');
                out.push_back(static_cast<CodePoint>(kHex[(cp >> 4) & 0xF]));
                out.push_back(static_cast<CodePoint>(kHex[cp & 0xF]));
            } else {
                out.push_back(cp);  // rendered raw (Firefox)
            }
            continue;
        }
        if (!policy.correct_substitutions) {
            cp = substitute(cp);
        }
        out.push_back(cp);
    }
    return unicode::codepoints_to_utf8(out);
}

bool can_spoof(Browser b, std::string_view crafted_utf8, std::string_view target_utf8) {
    if (crafted_utf8 == target_utf8) return false;  // nothing to spoof
    return render_for_display(b, crafted_utf8) == render_for_display(b, target_utf8);
}

std::string warning_page_identity(Browser b, const x509::Certificate& cert) {
    BrowserPolicy policy = browser_policy(b);
    if (policy.warning_uses_san) {
        // Firefox: SAN DNSNames drive the alert text.
        std::string out;
        for (const x509::GeneralName& gn : cert.subject_alt_names()) {
            if (gn.type != x509::GeneralNameType::kDnsName) continue;
            if (!out.empty()) out += ", ";
            out += render_for_display(b, gn.to_utf8_lossy());
        }
        return out;
    }
    // Chromium/Safari: Subject CN (falling back to O).
    auto cns = cert.subject_common_names();
    if (!cns.empty()) return render_for_display(b, cns.front()->to_utf8_lossy());
    const x509::AttributeValue* o = cert.subject.find_first(asn1::oids::organization_name());
    return o != nullptr ? render_for_display(b, o->to_utf8_lossy()) : std::string{};
}

}  // namespace unicert::threat
