// unicert/threat/scenario/stats.h
//
// Wilson score confidence intervals for the scenario engine's
// detection/evasion rates, with quarantine-aware conservative bounds:
// a user the retry/quarantine ladder dropped could have been either a
// success or a failure, so the reported interval is widened to cover
// both extremes instead of silently absorbing the dropped work. The
// point estimate stays the evaluated-only rate; the bounds are honest
// about what was not measured.
#pragma once

#include <cstdint>

namespace unicert::threat::scenario {

// Wilson score interval bounds for `successes` out of `trials`, at
// normal quantile `z` (1.96 = 95%). Degenerate inputs (trials == 0)
// yield [0, 1].
double wilson_low(uint64_t successes, uint64_t trials, double z = 1.96);
double wilson_high(uint64_t successes, uint64_t trials, double z = 1.96);

struct RateEstimate {
    double rate = 0.0;     // successes / trials (0 when trials == 0)
    double ci_low = 0.0;   // quarantined counted as failures
    double ci_high = 1.0;  // quarantined counted as successes
    uint64_t successes = 0;
    uint64_t trials = 0;       // evaluated users only
    uint64_t quarantined = 0;  // dropped by the ladder, excluded from rate
};

// Estimate with the quarantine-conservative interval:
//   ci_low  = wilson_low(successes, trials + quarantined)
//   ci_high = wilson_high(successes + quarantined, trials + quarantined)
RateEstimate estimate_rate(uint64_t successes, uint64_t trials, uint64_t quarantined,
                           double z = 1.96);

}  // namespace unicert::threat::scenario
