// unicert/threat/scenario/fleet.h
//
// The profile fleets the scenario engine drives — the §6.2 middlebox
// and HTTP-client models, the Appendix F browser renderers, and the
// Table 6 CT-monitor profiles — evaluated once per (victim, technique)
// cell into a DetectionMatrix. Because a crafted certificate is a pure
// function of (victim, technique), every fleet verdict is too; the
// per-user hot path then costs a few hash draws plus counter
// increments, which is what makes population scale (millions of users)
// tractable without materializing any traffic.
//
// Two monitor backends produce the concealment column and must agree
// byte-for-byte (the parity tests pin this):
//   * in-memory — a fresh ctlog::Monitor per profile, indexes the
//     crafted certs directly;
//   * service   — the forged certs are ingested into a durable
//     ctlog::store::Store and queried through the self-healing
//     index::QueryService, exercising PR 7's fresh -> rebuilt ->
//     linear-scan degradation ladder; when the index files are damaged
//     the answers are identical, only `degraded_queries` grows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.h"
#include "core/fs.h"
#include "threat/scenario/traffic.h"

namespace unicert::threat::scenario {

// Fleet verdicts for one (victim, technique) cell.
struct TechniqueCell {
    // Per-middlebox: does a blocklist rule on the victim name fire?
    std::vector<bool> mb_flagged;        // kAllMiddleboxes order
    // Per-client: is the crafted SAN entry accepted?
    std::vector<bool> client_accepted;   // kAllClients order
    // Per-browser: does the crafted value display as the target?
    std::vector<bool> browser_spoofed;   // kAllBrowsers order
    // Per-monitor: does the owner's query for their own domain MISS the
    // logged forgery?
    std::vector<bool> monitor_concealed; // monitor_profiles() order
    bool caa_applicable = false;

    bool operator==(const TechniqueCell&) const = default;
};

struct DetectionMatrix {
    size_t victims = 0;
    size_t techniques = 0;
    std::vector<TechniqueCell> cells;   // victim-major
    std::vector<bool> victim_caa;       // per-victim CAA adoption draw
    // Service-backend bookkeeping (not part of the parity comparison —
    // and never checkpointed: a damaged index changes cost, not state).
    bool via_service = false;
    size_t degraded_queries = 0;

    const TechniqueCell& cell(size_t victim, size_t technique) const {
        return cells[victim * techniques + technique];
    }
    bool same_verdicts(const DetectionMatrix& other) const {
        return victims == other.victims && techniques == other.techniques &&
               cells == other.cells && victim_caa == other.victim_caa;
    }
};

// Evaluate all fleets over the crafted-cert grid with in-memory
// monitors. Pure function of the (resolved) model.
DetectionMatrix build_matrix(const TrafficModel& model);

// Same verdicts, but the monitor column is answered through the durable
// store + QueryService in `dir` under `fs` (created there when absent).
// Damage the files between calls to exercise the degradation ladder.
Expected<DetectionMatrix> build_matrix_via_service(const TrafficModel& model, core::Fs& fs,
                                                   const std::string& dir);

// The fixed tally vocabulary: every counter the engine can emit, with
// stable string names (used in checkpoints, reports and goldens) and
// dense ids (used on the hot path).
class KeyTable {
public:
    explicit KeyTable(const TrafficModel& model);

    size_t size() const noexcept { return names_.size(); }
    const std::vector<std::string>& names() const noexcept { return names_; }

    // Dense ids, grouped for observe()'s direct indexing.
    size_t users_benign;
    size_t users_adversarial;
    size_t benign_idn;
    std::vector<size_t> technique;          // kAllTechniques order
    std::vector<size_t> mb_flagged;         // kAllMiddleboxes order
    size_t mb_any_flagged;
    size_t mb_all_evaded;
    std::vector<size_t> client_accepted;    // kAllClients order
    std::vector<size_t> browser_spoofed;    // kAllBrowsers order
    size_t browser_any_spoofed;
    std::vector<size_t> monitor_concealed;  // monitor_profiles() order
    size_t monitor_any_surfaced;
    size_t caa_applicable;
    size_t caa_flagged;
    size_t joint_detected;   // monitor OR CAA caught it (the interlink question)
    size_t detected_any;     // any fleet dimension caught it

private:
    size_t intern(std::string name);
    std::vector<std::string> names_;
};

// Dense per-shard tally, merged into the state's name -> count map in
// shard submission order.
using Tally = std::vector<uint64_t>;

// Fold one synthesized handshake into `tally` using the precomputed
// verdicts. Pure: same sample + matrix -> same increments.
void observe(const HandshakeSample& sample, const TrafficModel& model,
             const DetectionMatrix& matrix, const KeyTable& keys, Tally& tally);

}  // namespace unicert::threat::scenario
