#include "threat/scenario/fleet.h"

#include <algorithm>
#include <cctype>

#include "asn1/oid.h"
#include "ctlog/index/query.h"
#include "ctlog/monitor.h"
#include "ctlog/store/store.h"
#include "threat/browser.h"
#include "threat/middlebox.h"
#include "x509/general_name.h"
#include "x509/name.h"

namespace unicert::threat::scenario {
namespace {

namespace oids = asn1::oids;

// Tally-key-safe profile name: lowercase, non-alphanumerics collapsed
// to '_' ("SSLMate Spotter" -> "sslmate_spotter", "Crt.sh" -> "crt_sh").
std::string sanitize(std::string_view name) {
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        out += std::isalnum(static_cast<unsigned char>(c))
                   ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                   : '_';
    }
    return out;
}

// The SAN entry the crafted cert would serve to an HTTP client: the
// non-IA5 technique rides a raw U-label; everything else is ASCII.
x509::GeneralName client_san_entry(const std::string& victim, AttackTechnique t) {
    if (t == AttackTechnique::kNonIa5San) return x509::dns_name("münchen." + victim);
    return x509::dns_name(victim);
}

// The crafted subject string a browser would display (CN of the
// crafted cert), read back from the certificate itself so the fleet
// and the traffic model can never diverge.
std::string crafted_cn(const x509::Certificate& cert) {
    const x509::AttributeValue* cn = cert.subject.find_first(oids::common_name());
    return cn == nullptr ? std::string() : cn->to_utf8_lossy();
}

// Everything except the monitor column: pure profile-model calls.
void fill_non_monitor(const TrafficModel& model, DetectionMatrix& matrix) {
    const size_t T = kTechniqueCount;
    matrix.victims = model.victims.size();
    matrix.techniques = T;
    matrix.cells.assign(matrix.victims * T, TechniqueCell{});
    matrix.victim_caa.resize(matrix.victims);
    for (size_t v = 0; v < matrix.victims; ++v) {
        matrix.victim_caa[v] = victim_has_caa(model, v);
        const std::string& victim = model.victims[v];
        for (size_t t = 0; t < T; ++t) {
            AttackTechnique technique = kAllTechniques[t];
            TechniqueCell& cell = matrix.cells[v * T + t];
            x509::Certificate cert = craft_attack_cert(victim, technique);

            for (Middlebox mb : kAllMiddleboxes) {
                cell.mb_flagged.push_back(blocklist_matches(mb, cert, victim));
            }
            x509::GeneralName san = client_san_entry(victim, technique);
            for (HttpClient client : kAllClients) {
                cell.client_accepted.push_back(validate_san_entry(client, san).accepted);
            }
            std::string target = spoof_target(victim, technique);
            std::string crafted = crafted_cn(cert);
            for (Browser b : kAllBrowsers) {
                bool spoofed = false;
                if (technique == AttackTechnique::kHomograph) {
                    // Table 14: no engine detects single-script
                    // lookalikes; the spoof is policy-level, not a
                    // rendering collision.
                    spoofed = !browser_policy(b).detects_homographs;
                } else if (!target.empty()) {
                    spoofed = can_spoof(b, crafted, target);
                }
                cell.browser_spoofed.push_back(spoofed);
            }
            cell.caa_applicable = technique_caa_applicable(technique);
        }
    }
}

}  // namespace

DetectionMatrix build_matrix(const TrafficModel& raw) {
    TrafficModel model = resolved(raw);
    DetectionMatrix matrix;
    fill_non_monitor(model, matrix);
    const size_t T = kTechniqueCount;

    // In-memory monitor column: each profile indexes the full forged
    // grid (the compromised CA dutifully logs everything — CT subverts
    // discoverability, not logging), then the owner queries their own
    // domain.
    for (const ctlog::MonitorProfile& profile : ctlog::monitor_profiles()) {
        ctlog::Monitor monitor(profile);
        std::vector<size_t> ids;
        ids.reserve(matrix.cells.size());
        for (size_t v = 0; v < matrix.victims; ++v) {
            for (size_t t = 0; t < T; ++t) {
                ids.push_back(
                    monitor.index(craft_attack_cert(model.victims[v], kAllTechniques[t])));
            }
        }
        for (size_t v = 0; v < matrix.victims; ++v) {
            for (size_t t = 0; t < T; ++t) {
                matrix.cells[v * T + t].monitor_concealed.push_back(
                    !monitor.would_find(model.victims[v], ids[v * T + t]));
            }
        }
    }
    return matrix;
}

Expected<DetectionMatrix> build_matrix_via_service(const TrafficModel& raw, core::Fs& fs,
                                                   const std::string& dir) {
    TrafficModel model = resolved(raw);
    DetectionMatrix matrix;
    fill_non_monitor(model, matrix);
    matrix.via_service = true;
    const size_t T = kTechniqueCount;

    ctlog::store::StoreOptions store_options;
    store_options.create_if_missing = true;
    auto store = ctlog::store::Store::open(fs, dir, store_options);
    if (!store.ok()) return store.error();

    // Ingest the forged grid once; reopening an already-populated store
    // (a damaged-index retry, say) skips the append.
    const bool fresh_store = (*store)->size() == 0;
    if (fresh_store) {
        std::vector<ctlog::store::PendingEntry> batch;
        batch.reserve(matrix.cells.size());
        for (size_t v = 0; v < matrix.victims; ++v) {
            for (size_t t = 0; t < T; ++t) {
                ctlog::store::PendingEntry entry;
                entry.leaf_der =
                    craft_attack_cert(model.victims[v], kAllTechniques[t], /*sign=*/true).der;
                entry.timestamp = static_cast<int64_t>(v * T + t);
                batch.push_back(std::move(entry));
            }
        }
        if (Status st = (*store)->append_batch(batch); !st.ok()) return st.error();
    }

    ctlog::index::QueryService service(fs, **store);
    if (fresh_store) {
        // First run: publish the initial index generation. On reopen
        // the queries below load whatever is on disk instead — a
        // damaged generation descends the ladder (rebuild or scan,
        // counted in degraded_queries) with identical answers.
        if (Status st = service.refresh(); !st.ok()) {
            // A failed publish degrades cost, not answers: the
            // in-memory snapshot still serves.
            ++matrix.degraded_queries;
        }
    }

    // Store entry ids are ascending append order: id == v * T + t.
    std::span<const ctlog::MonitorProfile> profiles = ctlog::monitor_profiles();
    for (const ctlog::MonitorProfile& profile : profiles) {
        for (size_t v = 0; v < matrix.victims; ++v) {
            ctlog::index::ServedQuery served = service.query(profile, model.victims[v]);
            if (served.degraded) ++matrix.degraded_queries;
            for (size_t t = 0; t < T; ++t) {
                size_t id = v * T + t;
                bool found = served.result.query_accepted &&
                             std::binary_search(served.result.cert_ids.begin(),
                                                served.result.cert_ids.end(), id);
                matrix.cells[v * T + t].monitor_concealed.push_back(!found);
            }
        }
    }
    return matrix;
}

KeyTable::KeyTable(const TrafficModel& raw) {
    TrafficModel model = resolved(raw);
    users_benign = intern("users_benign");
    users_adversarial = intern("users_adversarial");
    benign_idn = intern("benign_idn");
    for (AttackTechnique t : kAllTechniques) {
        technique.push_back(intern(std::string("technique_") + technique_name(t)));
    }
    for (Middlebox mb : kAllMiddleboxes) {
        mb_flagged.push_back(intern("mb_" + sanitize(middlebox_name(mb)) + "_flagged"));
    }
    mb_any_flagged = intern("mb_any_flagged");
    mb_all_evaded = intern("mb_all_evaded");
    for (HttpClient c : kAllClients) {
        client_accepted.push_back(intern("client_" + sanitize(http_client_name(c)) +
                                         "_accepted"));
    }
    for (Browser b : kAllBrowsers) {
        browser_spoofed.push_back(intern("browser_" + sanitize(browser_name(b)) +
                                         "_spoofed"));
    }
    browser_any_spoofed = intern("browser_any_spoofed");
    for (const ctlog::MonitorProfile& profile : ctlog::monitor_profiles()) {
        monitor_concealed.push_back(intern("monitor_" + sanitize(profile.name) +
                                           "_concealed"));
    }
    monitor_any_surfaced = intern("monitor_any_surfaced");
    caa_applicable = intern("caa_applicable");
    caa_flagged = intern("caa_flagged");
    joint_detected = intern("joint_detected");
    detected_any = intern("detected_any");
    (void)model;
}

size_t KeyTable::intern(std::string name) {
    names_.push_back(std::move(name));
    return names_.size() - 1;
}

void observe(const HandshakeSample& sample, const TrafficModel& model,
             const DetectionMatrix& matrix, const KeyTable& keys, Tally& tally) {
    if (tally.size() < keys.size()) tally.resize(keys.size(), 0);
    if (!sample.adversarial) {
        ++tally[keys.users_benign];
        if (sample.idn) ++tally[keys.benign_idn];
        return;
    }
    ++tally[keys.users_adversarial];
    size_t t_index = 0;
    for (size_t i = 0; i < kTechniqueCount; ++i) {
        if (kAllTechniques[i] == sample.technique) t_index = i;
    }
    ++tally[keys.technique[t_index]];
    const TechniqueCell& cell = matrix.cell(sample.victim, t_index);

    bool mb_any = false;
    for (size_t i = 0; i < cell.mb_flagged.size(); ++i) {
        if (cell.mb_flagged[i]) {
            ++tally[keys.mb_flagged[i]];
            mb_any = true;
        }
    }
    if (mb_any) {
        ++tally[keys.mb_any_flagged];
    } else {
        ++tally[keys.mb_all_evaded];
    }
    for (size_t i = 0; i < cell.client_accepted.size(); ++i) {
        if (cell.client_accepted[i]) ++tally[keys.client_accepted[i]];
    }
    bool browser_any = false;
    for (size_t i = 0; i < cell.browser_spoofed.size(); ++i) {
        if (cell.browser_spoofed[i]) {
            ++tally[keys.browser_spoofed[i]];
            browser_any = true;
        }
    }
    if (browser_any) ++tally[keys.browser_any_spoofed];

    bool surfaced_any = false;
    for (size_t i = 0; i < cell.monitor_concealed.size(); ++i) {
        if (cell.monitor_concealed[i]) {
            ++tally[keys.monitor_concealed[i]];
        } else {
            surfaced_any = true;
        }
    }
    if (surfaced_any) ++tally[keys.monitor_any_surfaced];

    bool caa_hit = false;
    if (cell.caa_applicable) {
        ++tally[keys.caa_applicable];
        if (matrix.victim_caa[sample.victim]) {
            caa_hit = true;
            ++tally[keys.caa_flagged];
        }
    }
    if (surfaced_any || caa_hit) ++tally[keys.joint_detected];
    if (surfaced_any || caa_hit || mb_any) ++tally[keys.detected_any];
    (void)model;
}

}  // namespace unicert::threat::scenario
