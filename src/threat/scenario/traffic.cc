#include "threat/scenario/traffic.h"

#include <algorithm>

#include "asn1/time.h"
#include "crypto/simsig.h"
#include "ctlog/corpus.h"
#include "x509/builder.h"
#include "x509/extensions.h"
#include "x509/general_name.h"
#include "x509/name.h"

namespace unicert::threat::scenario {
namespace {

namespace oids = asn1::oids;
using x509::Certificate;
using x509::dns_name;
using x509::make_attribute;
using x509::make_dn;

constexpr char kRlo[] = "\xE2\x80\xAE";   // U+202E RIGHT-TO-LEFT OVERRIDE
constexpr char kPdf[] = "\xE2\x80\xAC";   // U+202C POP DIRECTIONAL FORMATTING
constexpr char kZwsp[] = "\xE2\x80\x8B";  // U+200B ZERO WIDTH SPACE

Certificate base_cert(const std::string& cn) {
    Certificate cert;
    cert.version = 2;
    cert.serial = {0x66};
    cert.subject = make_dn({make_attribute(oids::common_name(), cn)});
    cert.issuer = make_dn({make_attribute(oids::organization_name(), "Compromised CA")});
    cert.validity = {asn1::make_time(2025, 1, 1), asn1::make_time(2025, 4, 1)};
    cert.subject_public_key = crypto::SimSigner::from_name(cn).public_key();
    return cert;
}

// Full-script Cyrillic lookalike of an ASCII label: every mappable
// Latin letter replaced by its confusable Cyrillic counterpart.
std::string cyrillic_lookalike(std::string_view ascii) {
    std::string out;
    out.reserve(ascii.size() * 2);
    for (char c : ascii) {
        switch (c) {
            case 'a': out += "\xD0\xB0"; break;  // а
            case 'c': out += "\xD1\x81"; break;  // с
            case 'e': out += "\xD0\xB5"; break;  // е
            case 'i': out += "\xD1\x96"; break;  // і
            case 'o': out += "\xD0\xBE"; break;  // о
            case 'p': out += "\xD1\x80"; break;  // р
            case 'x': out += "\xD1\x85"; break;  // х
            case 'y': out += "\xD1\x83"; break;  // у
            default: out += c; break;
        }
    }
    return out;
}

std::string first_label(const std::string& domain) {
    return domain.substr(0, domain.find('.'));
}

std::string after_first_label(const std::string& domain) {
    size_t dot = domain.find('.');
    return dot == std::string::npos ? std::string() : domain.substr(dot);
}

const std::vector<double>& issuer_weights() {
    static const std::vector<double> weights = [] {
        std::vector<double> w;
        for (const ctlog::IssuerSpec& spec : ctlog::issuer_specs()) {
            w.push_back(spec.unicert_weight);
        }
        return w;
    }();
    return weights;
}

}  // namespace

uint64_t mix64(uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

const char* technique_name(AttackTechnique t) noexcept {
    switch (t) {
        case AttackTechnique::kNulCn: return "nul_cn";
        case AttackTechnique::kSpaceCn: return "space_cn";
        case AttackTechnique::kZwspCn: return "zwsp_cn";
        case AttackTechnique::kSlashCn: return "slash_cn";
        case AttackTechnique::kDupCnMaliciousFirst: return "dup_cn_first";
        case AttackTechnique::kDupCnMaliciousLast: return "dup_cn_last";
        case AttackTechnique::kNonIa5San: return "non_ia5_san";
        case AttackTechnique::kBidiSpoof: return "bidi_spoof";
        case AttackTechnique::kHomograph: return "homograph";
    }
    return "unknown";
}

bool technique_caa_applicable(AttackTechnique t) noexcept {
    switch (t) {
        // These claim the victim's own domain (mangled): a CA honoring
        // the victim's CAA record would have refused the issuance.
        case AttackTechnique::kNulCn:
        case AttackTechnique::kSpaceCn:
        case AttackTechnique::kZwspCn:
        case AttackTechnique::kSlashCn:
        case AttackTechnique::kDupCnMaliciousFirst:
        case AttackTechnique::kDupCnMaliciousLast:
        case AttackTechnique::kNonIa5San:
            return true;
        // Attacker-registered lookalikes: the victim's CAA record has
        // no authority over someone else's domain.
        case AttackTechnique::kBidiSpoof:
        case AttackTechnique::kHomograph:
            return false;
    }
    return false;
}

const std::vector<std::string>& default_victims() {
    static const std::vector<std::string> victims = {
        "paypal.com",      "apple.com",        "epic.com",
        "amazon.example",  "bank.example",     "login.example",
        "secure-pay.example", "munich.example", "victim.example",
        "shop.example",    "mail.example",     "news.example",
        "cloud.example",   "pay.example",      "id.example",
        "health.example",
    };
    return victims;
}

TrafficModel resolved(TrafficModel model) {
    if (model.victims.empty()) model.victims = default_victims();
    return model;
}

HandshakeSample synthesize_handshake(const TrafficModel& model, uint64_t user_index) {
    HandshakeSample sample;
    sample.user_index = user_index;
    ctlog::Rng rng(mix64(model.seed ^ mix64(user_index + 0x5EEDF00DULL)));
    sample.adversarial = rng.chance(model.dose);
    if (sample.adversarial) {
        sample.victim = static_cast<size_t>(rng.below(model.victims.size()));
        sample.technique = kAllTechniques[static_cast<size_t>(rng.below(kTechniqueCount))];
        return sample;
    }
    sample.issuer = rng.pick_weighted(issuer_weights());
    // Internationalized content per the Figure 4 marginal; DV-automation
    // issuers (idn_only) always serve IDN certificates.
    sample.idn = ctlog::issuer_specs()[sample.issuer].idn_only || rng.chance(0.12);
    return sample;
}

bool victim_has_caa(const TrafficModel& model, size_t victim_index) {
    uint64_t h = mix64(model.seed ^ (0xCAA0000000000000ULL + victim_index));
    double unit = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    return unit < model.caa_adoption;
}

std::string spoof_target(const std::string& victim, AttackTechnique t) {
    switch (t) {
        case AttackTechnique::kBidiSpoof: return "www." + victim;
        case AttackTechnique::kZwspCn:
        case AttackTechnique::kHomograph: return victim;
        default: return std::string();
    }
}

x509::Certificate craft_attack_cert(const std::string& victim, AttackTechnique t, bool sign) {
    Certificate cert;
    switch (t) {
        case AttackTechnique::kNulCn:
            cert = base_cert(victim + '\0' + ".evil");
            break;
        case AttackTechnique::kSpaceCn:
            cert = base_cert(victim + " ");
            break;
        case AttackTechnique::kZwspCn: {
            std::string zwsp = victim;
            zwsp.insert(zwsp.find('.'), kZwsp);
            cert = base_cert(zwsp);
            break;
        }
        case AttackTechnique::kSlashCn:
            cert = base_cert(victim + "/x");
            break;
        case AttackTechnique::kDupCnMaliciousFirst:
            // Snort (first CN) sees the victim name; Zeek (last) does not.
            cert = base_cert(victim);
            cert.subject = make_dn({
                make_attribute(oids::common_name(), victim),
                make_attribute(oids::common_name(), "benign.example"),
            });
            break;
        case AttackTechnique::kDupCnMaliciousLast:
            cert = base_cert("benign.example");
            cert.subject = make_dn({
                make_attribute(oids::common_name(), "benign.example"),
                make_attribute(oids::common_name(), victim),
            });
            break;
        case AttackTechnique::kNonIa5San:
            // The blocked name rides in a non-IA5 SAN entry Zeek drops
            // and lenient clients accept as a raw U-label.
            cert = base_cert(victim);
            cert.extensions.push_back(
                x509::make_san({dns_name("münchen." + victim)}));
            break;
        case AttackTechnique::kBidiSpoof: {
            // "www.<RLO>lapyap<PDF>.com" displays as "www.paypal.com".
            std::string label = first_label(victim);
            std::reverse(label.begin(), label.end());
            cert = base_cert(std::string("www.") + kRlo + label + kPdf +
                             after_first_label(victim));
            break;
        }
        case AttackTechnique::kHomograph:
            cert = base_cert(cyrillic_lookalike(first_label(victim)) +
                             after_first_label(victim));
            break;
    }
    if (sign) {
        crypto::SimSigner ca = crypto::SimSigner::from_name("Compromised CA");
        x509::sign_certificate(cert, ca);
    }
    return cert;
}

}  // namespace unicert::threat::scenario
