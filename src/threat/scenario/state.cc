#include "threat/scenario/state.h"

#include <charconv>
#include <sstream>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace unicert::threat::scenario {
namespace {

constexpr std::string_view kChecksumKey = "checksum: ";

bool parse_u64_field(std::string_view text, uint64_t* out) {
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
    return ec == std::errc{} && ptr == text.data() + text.size();
}

}  // namespace

std::string serialize_state(const ScenarioState& state) {
    std::ostringstream out;
    out << kScenarioMagic << "\n";
    out << "seed: " << state.seed << "\n";
    out << "dose_ppm: " << state.dose_ppm << "\n";
    out << "caa_ppm: " << state.caa_ppm << "\n";
    out << "next_user: " << state.next_user << "\n";
    out << "shards_done: " << state.shards_done << "\n";
    out << "evaluated: " << state.evaluated << "\n";
    out << "quarantined: " << state.quarantined << "\n";
    for (const auto& [name, count] : state.tallies) {
        out << "tally: " << name << " " << count << "\n";
    }
    std::string body = out.str();
    crypto::Digest digest = crypto::sha256(
        BytesView(reinterpret_cast<const uint8_t*>(body.data()), body.size()));
    body += std::string(kChecksumKey) + hex_encode(digest) + "\n";
    return body;
}

Expected<ScenarioState> parse_state(std::string_view text) {
    // Magic first, so a wrong-format file reads as such rather than as
    // a torn checkpoint.
    if (!text.starts_with(kScenarioMagic) ||
        (text.size() > kScenarioMagic.size() && text[kScenarioMagic.size()] != '\n')) {
        return Error{"scenario_bad_magic", "not a unicert-scenario-v1 checkpoint"};
    }
    // The checksum line must be the last line and must cover everything
    // before it — a file cut anywhere (even mid-checksum) fails here.
    size_t trailer = text.rfind(kChecksumKey);
    if (trailer == std::string_view::npos || trailer + kChecksumKey.size() + 65 != text.size() ||
        text.back() != '\n') {
        return Error{"scenario_truncated", "checkpoint has no complete checksum trailer"};
    }
    std::string_view body = text.substr(0, trailer);
    std::string_view stored = text.substr(trailer + kChecksumKey.size(), 64);
    crypto::Digest digest = crypto::sha256(
        BytesView(reinterpret_cast<const uint8_t*>(body.data()), body.size()));
    if (hex_encode(digest) != stored) {
        return Error{"scenario_checksum", "checkpoint checksum mismatch"};
    }

    std::istringstream in{std::string(body)};
    std::string line;
    if (!std::getline(in, line) || line != kScenarioMagic) {
        return Error{"scenario_bad_magic", "not a unicert-scenario-v1 checkpoint"};
    }
    ScenarioState state;
    while (std::getline(in, line)) {
        size_t colon = line.find(": ");
        if (colon == std::string::npos) {
            return Error{"scenario_bad_field", "malformed line: " + line};
        }
        std::string_view key(line.data(), colon);
        std::string_view value(line.data() + colon + 2, line.size() - colon - 2);
        bool ok = true;
        if (key == "seed") {
            ok = parse_u64_field(value, &state.seed);
        } else if (key == "dose_ppm") {
            ok = parse_u64_field(value, &state.dose_ppm);
        } else if (key == "caa_ppm") {
            ok = parse_u64_field(value, &state.caa_ppm);
        } else if (key == "next_user") {
            ok = parse_u64_field(value, &state.next_user);
        } else if (key == "shards_done") {
            ok = parse_u64_field(value, &state.shards_done);
        } else if (key == "evaluated") {
            ok = parse_u64_field(value, &state.evaluated);
        } else if (key == "quarantined") {
            ok = parse_u64_field(value, &state.quarantined);
        } else if (key == "tally") {
            size_t space = value.rfind(' ');
            uint64_t count = 0;
            ok = space != std::string_view::npos && space > 0 &&
                 parse_u64_field(value.substr(space + 1), &count);
            if (ok) state.tallies[std::string(value.substr(0, space))] = count;
        }
        // Unknown keys are ignored for forward compatibility; the
        // checksum already vouches for their integrity.
        if (!ok) {
            return Error{"scenario_bad_field", "malformed line: " + line};
        }
    }
    return state;
}

}  // namespace unicert::threat::scenario
