// unicert/threat/scenario/traffic.h
//
// The population traffic model behind the scenario engine: mixed
// TLS-handshake traffic for millions of simulated users, synthesized as
// a pure function of (seed, user_index) over the CorpusGenerator
// marginals plus a configurable adversarial Unicert injection rate (the
// "dose"). Nothing is materialized — a crashed run replays any user it
// was processing by hashing the same indexes again, which is what makes
// the checkpoint cursor (`next_user`) a complete in-flight ledger.
//
// Adversarial handshakes serve certificates crafted with the §6
// techniques (the monitor-misleading forgeries, the traffic-obfuscation
// tricks, the user-spoofing payloads and the homograph class), each
// aimed at a victim domain drawn from a fixed roster; the per-victim
// CAA-adoption decision (Tehrani et al.'s Web-PKI interlink dimension)
// is likewise a pure hash of the seed.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "x509/certificate.h"

namespace unicert::threat::scenario {

// The §6 technique taxonomy the adversarial traffic mixes over.
enum class AttackTechnique {
    kNulCn,              // NUL byte appended to the CN (P1.4 / P2.1)
    kSpaceCn,            // trailing space (SSLMate drops the CN)
    kZwspCn,             // zero-width space inside the name
    kSlashCn,            // slash suffix (SSLMate substring-before-'/')
    kDupCnMaliciousFirst,  // duplicate CN dodging last-CN extractors (Zeek)
    kDupCnMaliciousLast,   // duplicate CN dodging first-CN extractors (Snort)
    kNonIa5San,          // non-IA5 SAN entry invisible to Zeek, lenient clients
    kBidiSpoof,          // RLO/PDF payload ("www.paypal.com" display spoof)
    kHomograph,          // Cyrillic full-script lookalike label
};

inline constexpr size_t kTechniqueCount = 9;

inline constexpr std::array<AttackTechnique, kTechniqueCount> kAllTechniques = {
    AttackTechnique::kNulCn,           AttackTechnique::kSpaceCn,
    AttackTechnique::kZwspCn,          AttackTechnique::kSlashCn,
    AttackTechnique::kDupCnMaliciousFirst, AttackTechnique::kDupCnMaliciousLast,
    AttackTechnique::kNonIa5San,       AttackTechnique::kBidiSpoof,
    AttackTechnique::kHomograph,
};

// Stable snake_case name, used in tally keys and reports.
const char* technique_name(AttackTechnique t) noexcept;

// Does the technique present the VICTIM'S OWN domain to the CA (a
// misissuance a CAA record could have refused), as opposed to an
// attacker-registered lookalike CAA cannot speak for?
bool technique_caa_applicable(AttackTechnique t) noexcept;

struct TrafficModel {
    uint64_t seed = 42;
    // Fraction of simulated users served an adversarial handshake.
    double dose = 0.01;
    // Per-victim probability of a CAA record (Web-PKI interlink study's
    // adoption marginal).
    double caa_adoption = 0.055;
    // Victim roster adversarial traffic targets. Defaults to
    // default_victims(); kept in the model so the detection matrix and
    // the per-user draws always agree.
    std::vector<std::string> victims;
};

// The fixed victim roster (brand + generic domains).
const std::vector<std::string>& default_victims();

// `model` with victims defaulted when empty.
TrafficModel resolved(TrafficModel model);

// One synthesized handshake. Pure function of (model, user_index):
// contains only draw outcomes — the crafted certificate itself is a
// pure function of (victim, technique) and lives in the precomputed
// detection matrix, which is what keeps the per-user hot path at a few
// hash draws.
struct HandshakeSample {
    uint64_t user_index = 0;
    bool adversarial = false;
    AttackTechnique technique = AttackTechnique::kNulCn;  // valid when adversarial
    size_t victim = 0;                                    // index into model.victims
    // Benign side: issuer drawn from the Table 2 oligopoly marginal and
    // whether the cert is internationalized (drives client U-label
    // acceptance tallies).
    size_t issuer = 0;
    bool idn = false;
};

HandshakeSample synthesize_handshake(const TrafficModel& model, uint64_t user_index);

// Deterministic per-victim CAA adoption decision (pure in seed/victim).
bool victim_has_caa(const TrafficModel& model, size_t victim_index);

// The crafted certificate an adversarial handshake serves: pure
// function of (victim, technique), DER-signed when `sign` is set (the
// monitor service backend stores leaf DER; the in-memory backend does
// not need it).
x509::Certificate craft_attack_cert(const std::string& victim, AttackTechnique t,
                                    bool sign = false);

// The display-spoof target string for the technique's crafted value
// (what can_spoof compares against); empty for non-spoof techniques.
std::string spoof_target(const std::string& victim, AttackTechnique t);

// splitmix64, the repo's standard decision hash.
uint64_t mix64(uint64_t x) noexcept;

}  // namespace unicert::threat::scenario
