// unicert/threat/scenario/engine.h
//
// The crash-survivable population-scale scenario engine (DESIGN.md
// section 15). One run streams `users` simulated TLS handshakes through
// the profile fleets: users are planned into fixed-size shards from the
// checkpoint cursor, shards fan out on core::Executor, and per-shard
// tallies merge back in submission order — so detection/evasion counts
// are byte-identical at any job count. Every per-user decision is a
// pure hash of (seed, user_index); the cursor is the only in-flight
// ledger a resume needs.
//
// Robustness contract (the kill-point sweep asserts all of it):
//   * state lands as checksummed `unicert-scenario-v1` generations
//     through core::GenerationStore — SIGKILL at any filesystem op
//     resumes from the newest valid generation to a byte-identical
//     final state;
//   * per-user profile evaluation runs under core::resilience retry
//     with FaultPlan flake/poison channels — transient faults are
//     absorbed, poisoned users are quarantined exactly once and
//     reported separately (the Wilson intervals in stats.h widen for
//     them rather than absorbing the loss);
//   * a damaged monitor index only degrades cost: the service backend
//     descends PR 7's fresh -> rebuilt -> linear-scan ladder and the
//     tallies stay identical, with `degraded_queries` reported.
#pragma once

#include <string>

#include "core/generation_store.h"
#include "core/resilience.h"
#include "threat/scenario/fleet.h"
#include "threat/scenario/state.h"
#include "threat/scenario/traffic.h"

namespace unicert::threat::scenario {

struct ScenarioOptions {
    TrafficModel traffic;
    uint64_t users = 0;       // stop condition: total user indexes to consume
    size_t jobs = 1;
    size_t shard_size = 512;  // users per executor task
    size_t round_shards = 8;  // shards planned per fan-out round
    // Commit a generation every N shards (generation number ==
    // shards_done, so boundaries are independent of job count).
    uint64_t checkpoint_every = 8;

    // Harness fault channels (FaultPlan kTransient / kPoison, keyed by
    // user index so the schedule is identical at any job count).
    double flake_rate = 0.0;
    double poison_rate = 0.0;
    int flake_failures = 2;   // transient failures before recovery
    core::RetryPolicy retry{.max_attempts = 4, .initial_backoff_ms = 1,
                            .max_backoff_ms = 8};

    // Answer the monitor column through the durable store +
    // QueryService in `service_dir` (under the engine's Fs) instead of
    // in-memory monitors. Verdicts are identical either way (parity-
    // tested); the service path additionally exercises the index
    // degradation ladder.
    bool use_service_matrix = false;
    std::string service_dir = "scenario-monitor";
};

// What recover()/resume() found (mirrors the generation store's shape
// with the payload parsed).
struct RecoveredScenario {
    ScenarioState state;
    uint64_t generation = 0;
    bool found = false;
    size_t corrupt_skipped = 0;
    size_t stray_temp_files = 0;
    std::vector<std::string> notes;
};

struct ScenarioReport {
    uint64_t users_processed = 0;  // consumed this run (incl. quarantined)
    uint64_t retried = 0;          // transient faults absorbed by backoff
    uint64_t quarantined = 0;      // users dropped this run
    uint64_t checkpoints = 0;      // generations committed this run
    size_t degraded_queries = 0;   // monitor ladder descents (service backend)
    bool matrix_via_service = false;
    bool stopped_by_users = false;
    Status io;                     // first I/O failure, if any
};

class ScenarioEngine {
public:
    // The engine writes checkpoint generations into `state_dir` under
    // `fs`; `clock` drives retry backoff (inject a ManualClock to keep
    // fault schedules deterministic and fast).
    ScenarioEngine(ScenarioOptions options, core::Fs& fs, std::string state_dir,
                   core::Clock& clock);

    // Begin a new run: generation 0 is committed before any work so a
    // crash at the first user still resumes.
    Status start_fresh();

    // Continue from the newest valid generation. Error code
    // scenario_no_checkpoint when the state directory holds none. The
    // recovered seed/dose/CAA parameters override the options' traffic
    // model — a resumed run must replay the original draws.
    Expected<RecoveredScenario> resume();

    // Consume users until the `users` bound; checkpoint per the options.
    ScenarioReport run();

    const ScenarioState& state() const noexcept { return state_; }
    core::GenerationStore& store() noexcept { return store_; }

private:
    struct Shard;
    void evaluate_shard(Shard& shard, const TrafficModel& model,
                        const DetectionMatrix& matrix, const KeyTable& keys) const;
    TrafficModel effective_model() const;

    ScenarioOptions options_;
    core::Fs* fs_;
    core::Clock* clock_;
    core::GenerationStore store_;
    ScenarioState state_;
    bool started_ = false;
};

// One-line summary for --status output and the CI tally-parity grep.
std::string describe_state(const ScenarioState& state, uint64_t generation);

}  // namespace unicert::threat::scenario
