#include "threat/scenario/engine.h"

#include <algorithm>
#include <sstream>

#include "core/executor.h"
#include "faultsim/fault_plan.h"

namespace unicert::threat::scenario {
namespace {

constexpr uint64_t kPpm = 1000000;

uint64_t to_ppm(double rate) {
    return static_cast<uint64_t>(rate * static_cast<double>(kPpm) + 0.5);
}

double from_ppm(uint64_t ppm) {
    return static_cast<double>(ppm) / static_cast<double>(kPpm);
}

faultsim::FaultPlanOptions harness_plan_options(const ScenarioOptions& options,
                                                uint64_t seed) {
    faultsim::FaultPlanOptions plan;
    plan.seed = seed ^ 0xF1EE7CA5ULL;  // decoupled from the traffic stream
    plan.transient_rate = options.flake_rate;
    plan.poison_rate = options.poison_rate;
    plan.transient_failures = options.flake_failures;
    return plan;
}

}  // namespace

// One planned shard of users: filled sequentially from the cursor,
// evaluated on a worker, merged back in plan order.
struct ScenarioEngine::Shard {
    uint64_t begin = 0;
    uint64_t end = 0;
    Tally tally;
    uint64_t evaluated = 0;
    uint64_t quarantined = 0;
    uint64_t retries = 0;
};

ScenarioEngine::ScenarioEngine(ScenarioOptions options, core::Fs& fs, std::string state_dir,
                               core::Clock& clock)
    : options_(std::move(options)),
      fs_(&fs),
      clock_(&clock),
      store_(fs, std::move(state_dir), "scenario") {}

TrafficModel ScenarioEngine::effective_model() const {
    TrafficModel model = resolved(options_.traffic);
    model.seed = state_.seed;
    model.dose = from_ppm(state_.dose_ppm);
    model.caa_adoption = from_ppm(state_.caa_ppm);
    return model;
}

Status ScenarioEngine::start_fresh() {
    state_ = ScenarioState{};
    state_.seed = options_.traffic.seed;
    state_.dose_ppm = to_ppm(options_.traffic.dose);
    state_.caa_ppm = to_ppm(options_.traffic.caa_adoption);
    if (Status st = store_.init(); !st.ok()) return st;
    started_ = true;
    return store_.commit(serialize_state(state_), 0);
}

Expected<RecoveredScenario> ScenarioEngine::resume() {
    auto raw = store_.recover([](std::string_view payload) -> Status {
        auto state = parse_state(payload);
        if (!state.ok()) return state.error();
        return Status::success();
    });
    if (!raw.ok()) return raw.error();
    if (!raw->found) {
        return Error{"scenario_no_checkpoint", "no checkpoint in " + store_.dir()};
    }
    RecoveredScenario recovered;
    recovered.generation = raw->generation;
    recovered.found = true;
    recovered.corrupt_skipped = raw->corrupt_skipped;
    recovered.stray_temp_files = raw->stray_temp_files;
    recovered.notes = std::move(raw->notes);
    auto state = parse_state(raw->payload);
    if (!state.ok()) return state.error();  // validated above; unreachable
    recovered.state = std::move(state).value();
    state_ = recovered.state;
    started_ = true;
    return recovered;
}

void ScenarioEngine::evaluate_shard(Shard& shard, const TrafficModel& model,
                                    const DetectionMatrix& matrix,
                                    const KeyTable& keys) const {
    faultsim::FaultPlan plan(harness_plan_options(options_, model.seed));
    shard.tally.assign(keys.size(), 0);
    for (uint64_t user = shard.begin; user < shard.end; ++user) {
        int attempt_no = 0;
        auto attempt = [&]() -> Expected<HandshakeSample> {
            int attempt_index = attempt_no++;
            // Harness-level fault injection, keyed by user index so the
            // schedule is identical at any job count or retry
            // interleaving.
            if (plan.fires(faultsim::FaultKind::kPoison, user)) {
                return Error{"profile_poisoned", "injected permanent profile failure"};
            }
            if (plan.fires(faultsim::FaultKind::kTransient, user) &&
                attempt_index < options_.flake_failures) {
                return Error{"timeout", "injected transient profile failure"};
            }
            // Hard fence: a profile-model bug must not take the
            // simulation down.
            try {
                return synthesize_handshake(model, user);
            } catch (const std::exception& e) {
                return Error{"profile_crashed", e.what()};
            } catch (...) {
                return Error{"profile_crashed", "non-standard exception"};
            }
        };
        core::RetryOutcome outcome;
        auto result =
            core::retry<HandshakeSample>(options_.retry, *clock_, attempt, &outcome);
        shard.retries += outcome.retries;
        if (!result.ok()) {
            // The ladder gave up (classify_failure: quarantine, not
            // abort) — the user index is consumed, the schedule moves
            // on undisturbed.
            ++shard.quarantined;
            continue;
        }
        observe(*result, model, matrix, keys, shard.tally);
        ++shard.evaluated;
    }
}

ScenarioReport ScenarioEngine::run() {
    ScenarioReport report;
    if (!started_) {
        report.io = Error{"scenario_not_started", "call start_fresh() or resume() first"};
        return report;
    }
    if (options_.users == 0) {
        report.io = Error{"scenario_no_stop_condition",
                          "set a user count; unbounded runs are refused"};
        return report;
    }

    const TrafficModel model = effective_model();
    const KeyTable keys(model);
    DetectionMatrix matrix;
    if (options_.use_service_matrix) {
        auto built = build_matrix_via_service(model, *fs_, options_.service_dir);
        if (!built.ok()) {
            report.io = built.error();
            return report;
        }
        matrix = std::move(built).value();
        report.matrix_via_service = true;
        report.degraded_queries = matrix.degraded_queries;
    } else {
        matrix = build_matrix(model);
    }

    core::Executor executor(std::max<size_t>(options_.jobs, 1));
    const size_t shard_size = std::max<size_t>(options_.shard_size, 1);
    const size_t round_shards = std::max<size_t>(options_.round_shards, 1);

    for (;;) {
        if (state_.next_user >= options_.users) {
            report.stopped_by_users = true;
            break;
        }
        // Plan the round sequentially against the cursor; shard
        // boundaries depend only on the options, never on job count.
        std::vector<Shard> shards;
        uint64_t cursor = state_.next_user;
        while (shards.size() < round_shards && cursor < options_.users) {
            Shard shard;
            shard.begin = cursor;
            shard.end = std::min<uint64_t>(cursor + shard_size, options_.users);
            cursor = shard.end;
            shards.push_back(std::move(shard));
        }

        // Fan out, then merge in plan order: byte-identical state at
        // any job count.
        for (Shard& shard : shards) {
            executor.submit([this, &shard, &model, &matrix, &keys] {
                evaluate_shard(shard, model, matrix, keys);
            });
        }
        executor.wait_idle();
        for (const Shard& shard : shards) {
            for (size_t i = 0; i < shard.tally.size(); ++i) {
                if (shard.tally[i] != 0) state_.tallies[keys.names()[i]] += shard.tally[i];
            }
            state_.evaluated += shard.evaluated;
            state_.quarantined += shard.quarantined;
            report.retried += shard.retries;
            report.quarantined += shard.quarantined;
            report.users_processed += shard.end - shard.begin;
            state_.next_user = shard.end;
            ++state_.shards_done;

            if (options_.checkpoint_every > 0 &&
                state_.shards_done % options_.checkpoint_every == 0) {
                if (Status st = store_.commit(serialize_state(state_), state_.shards_done);
                    !st.ok()) {
                    report.io = st;
                    return report;
                }
                ++report.checkpoints;
            }
        }
    }

    // Commit whatever progress the stop condition left uncheckpointed.
    if (report.io.ok() &&
        (!store_.last_committed() || *store_.last_committed() != state_.shards_done)) {
        if (Status st = store_.commit(serialize_state(state_), state_.shards_done); st.ok()) {
            ++report.checkpoints;
        } else {
            report.io = st;
        }
    }
    return report;
}

std::string describe_state(const ScenarioState& state, uint64_t generation) {
    auto tally = [&state](const char* key) -> uint64_t {
        auto it = state.tallies.find(key);
        return it == state.tallies.end() ? 0 : it->second;
    };
    std::ostringstream out;
    out << "gen " << generation << " | users " << state.next_user << " | evaluated "
        << state.evaluated << " | adversarial " << tally("users_adversarial")
        << " | detected " << tally("detected_any") << " | joint " << tally("joint_detected")
        << " | quarantined " << state.quarantined;
    return out.str();
}

}  // namespace unicert::threat::scenario
