#include "threat/scenario/stats.h"

#include <algorithm>
#include <cmath>

namespace unicert::threat::scenario {
namespace {

// Wilson score interval: center ± halfwidth in the reparameterized
// space, clamped to [0, 1].
double wilson_bound(uint64_t successes, uint64_t trials, double z, bool upper) {
    if (trials == 0) return upper ? 1.0 : 0.0;
    double n = static_cast<double>(trials);
    double p = static_cast<double>(successes) / n;
    double z2 = z * z;
    double denom = 1.0 + z2 / n;
    double center = (p + z2 / (2.0 * n)) / denom;
    double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    double bound = upper ? center + half : center - half;
    return std::clamp(bound, 0.0, 1.0);
}

}  // namespace

double wilson_low(uint64_t successes, uint64_t trials, double z) {
    return wilson_bound(successes, trials, z, /*upper=*/false);
}

double wilson_high(uint64_t successes, uint64_t trials, double z) {
    return wilson_bound(successes, trials, z, /*upper=*/true);
}

RateEstimate estimate_rate(uint64_t successes, uint64_t trials, uint64_t quarantined,
                           double z) {
    RateEstimate est;
    est.successes = successes;
    est.trials = trials;
    est.quarantined = quarantined;
    est.rate = trials == 0 ? 0.0 : static_cast<double>(successes) / static_cast<double>(trials);
    est.ci_low = wilson_low(successes, trials + quarantined, z);
    est.ci_high = wilson_high(successes + quarantined, trials + quarantined, z);
    return est;
}

}  // namespace unicert::threat::scenario
