// unicert/threat/scenario/state.h
//
// The complete persistent state of one scenario run, and its
// checksummed on-disk serialization (format `unicert-scenario-v1`,
// DESIGN.md section 15). Because every per-user decision is a pure hash
// of (seed, user_index), the cursor `next_user` doubles as the
// in-flight ledger: replaying users past the cursor reproduces any work
// that was in flight when the process died, so no redo log is needed.
// Tallies are a sorted name -> count map, which keeps the serialization
// byte-for-byte deterministic — the property the resume-parity sweep
// compares.
//
// Serialization is line-oriented text with a trailing SHA-256 line
// covering every preceding byte, so a torn tail or a flipped bit is
// always detected (parse fails, recovery falls back to the previous
// committed generation).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/expected.h"

namespace unicert::threat::scenario {

inline constexpr std::string_view kScenarioMagic = "unicert-scenario-v1";

struct ScenarioState {
    uint64_t seed = 42;
    // Rates are persisted as parts-per-million so the text round-trip
    // is exact (resume must reproduce the original draws bit-for-bit).
    uint64_t dose_ppm = 10000;
    uint64_t caa_ppm = 55000;
    uint64_t next_user = 0;     // first user index not yet consumed (the cursor)
    uint64_t shards_done = 0;   // checkpoint generation counter
    uint64_t evaluated = 0;     // users whose observations are in the tallies
    uint64_t quarantined = 0;   // users abandoned by the retry ladder
    std::map<std::string, uint64_t> tallies;

    bool operator==(const ScenarioState&) const = default;
};

// Text serialization with the SHA-256 trailer. Byte-for-byte
// deterministic in the state.
std::string serialize_state(const ScenarioState& state);

// Error codes: scenario_bad_magic, scenario_truncated (checksum line
// missing — torn tail), scenario_checksum (trailer mismatch — bit
// rot), scenario_bad_field.
Expected<ScenarioState> parse_state(std::string_view text);

}  // namespace unicert::threat::scenario
