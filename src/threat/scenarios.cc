#include "threat/scenarios.h"

#include "asn1/time.h"
#include "ctlog/log.h"
#include "ctlog/monitor.h"
#include "idna/labels.h"
#include "unicode/properties.h"
#include "threat/browser.h"
#include "threat/middlebox.h"
#include "tlslib/profile.h"
#include "x509/builder.h"

namespace unicert::threat {
namespace {

namespace oids = asn1::oids;
using x509::Certificate;
using x509::dns_name;
using x509::make_attribute;
using x509::make_dn;

Certificate base_cert(const std::string& cn) {
    Certificate cert;
    cert.version = 2;
    cert.serial = {0x66};
    cert.subject = make_dn({make_attribute(oids::common_name(), cn)});
    cert.issuer = make_dn({make_attribute(oids::organization_name(), "Compromised CA")});
    cert.validity = {asn1::make_time(2025, 1, 1), asn1::make_time(2025, 4, 1)};
    cert.subject_public_key = crypto::SimSigner::from_name(cn).public_key();
    return cert;
}

struct Forgery {
    std::string technique;
    Certificate cert;
};

std::vector<Forgery> craft_forgeries(const std::string& victim) {
    std::vector<Forgery> out;

    // NUL byte appended to the CN: exact-match indexes never see the
    // victim's name.
    out.push_back({"NUL byte in CN", base_cert(std::string(victim) + '\0' + ".evil")});

    // Trailing space: SSLMate drops the CN, others index a variant.
    out.push_back({"space in CN", base_cert(victim + " ")});

    // Zero-width space inside the name.
    std::string zwsp = victim;
    zwsp.insert(zwsp.find('.'), "\xE2\x80\x8B");
    out.push_back({"zero-width space in CN", base_cert(zwsp)});

    // Slash suffix (SSLMate's substring-before-'/' quirk).
    out.push_back({"slash suffix in CN", base_cert(victim + "/x")});

    return out;
}

}  // namespace

std::vector<MonitorMisleadingResult> run_monitor_misleading(const std::string& victim_domain) {
    std::vector<MonitorMisleadingResult> results;
    std::vector<Forgery> forgeries = craft_forgeries(victim_domain);

    // The compromised CA dutifully logs everything (the CT guarantee
    // the attack subverts is *discoverability*, not logging).
    ctlog::CtLog log("misleading-scenario");
    for (const Forgery& f : forgeries) {
        Certificate cert = f.cert;
        crypto::SimSigner ca = crypto::SimSigner::from_name("Compromised CA");
        x509::sign_certificate(cert, ca);
        log.submit(cert, asn1::make_time(2025, 2, 1));
    }

    for (const ctlog::MonitorProfile& profile : ctlog::monitor_profiles()) {
        ctlog::Monitor monitor(profile);
        std::vector<size_t> ids;
        for (const ctlog::LogEntry& entry : log.entries()) {
            ids.push_back(monitor.index(entry.certificate));
        }
        for (size_t i = 0; i < forgeries.size(); ++i) {
            MonitorMisleadingResult r;
            r.monitor = profile.name;
            r.technique = forgeries[i].technique;
            r.logged = true;
            // The owner queries their own domain name.
            r.concealed = !monitor.would_find(victim_domain, ids[i]);
            results.push_back(std::move(r));
        }
    }
    return results;
}

std::vector<ObfuscationResult> run_traffic_obfuscation() {
    std::vector<ObfuscationResult> results;
    const std::string blocked = "Evil Entity";

    // --- P2.1: middlebox blocklist evasion -----------------------------
    struct Trick {
        std::string technique;
        Certificate cert;
    };
    std::vector<Trick> tricks;

    // NUL inside the blocked CN.
    tricks.push_back({"NUL byte in CN",
                      base_cert(std::string("Evil\0 Entity", 12))});
    // Trailing dot / extra whitespace variant.
    tricks.push_back({"trailing dot in CN", base_cert("Evil Entity.")});
    // Case variant (bypasses Suricata's case-sensitive match only).
    tricks.push_back({"case variant in CN", base_cert("EVIL ENTITY")});
    // Duplicate CN: malicious value positioned to dodge first/last
    // extraction policies.
    {
        Certificate dup = base_cert("benign.example");
        dup.subject = make_dn({
            make_attribute(oids::common_name(), "benign.example"),  // Snort sees this
            make_attribute(oids::common_name(), blocked),           // Zeek sees this
        });
        tricks.push_back({"duplicate CN, malicious last", dup});
        Certificate dup2 = base_cert(blocked);
        dup2.subject = make_dn({
            make_attribute(oids::common_name(), blocked),           // Snort sees this
            make_attribute(oids::common_name(), "benign.example"),  // Zeek sees this
        });
        tricks.push_back({"duplicate CN, malicious first", dup2});
    }
    // Non-IA5 SAN: invisible to Zeek's SAN extraction.
    {
        Certificate cert = base_cert(blocked);
        cert.extensions.push_back(x509::make_san({dns_name("münchen.evil.example")}));
        tricks.push_back({"non-IA5 SAN entry", cert});
    }

    for (Middlebox mb : kAllMiddleboxes) {
        for (const Trick& trick : tricks) {
            ObfuscationResult r;
            r.component = middlebox_name(mb);
            r.technique = trick.technique;
            if (trick.technique == "non-IA5 SAN entry") {
                // Evaded when the malicious SAN never reaches the rule set.
                r.evaded = extract_entities(mb, trick.cert).san_dns.empty();
            } else {
                r.evaded = !blocklist_matches(mb, trick.cert, blocked);
            }
            results.push_back(std::move(r));
        }
    }

    // --- P2.2: client SAN format leniency ---------------------------------
    x509::GeneralName ulabel_san = dns_name("münchen.example");  // U-label, not Punycode
    for (HttpClient client : kAllClients) {
        ObfuscationResult r;
        r.component = http_client_name(client);
        r.technique = "U-label SAN accepted without Punycode validation";
        r.evaded = validate_san_entry(client, ulabel_san).accepted;
        results.push_back(std::move(r));
    }
    return results;
}

CrlSpoofResult run_crl_spoof() {
    CrlSpoofResult result;
    result.crafted_url = std::string("http://ssl\x01test.com/revoked.crl", 31);

    x509::GeneralName gn = x509::uri_name(result.crafted_url);
    tlslib::ParseOutcome parsed =
        tlslib::parse_general_name(tlslib::Library::kPyOpenSsl, gn,
                                   tlslib::FieldContext::kCrlDp);
    result.parsed_url = parsed.ok ? parsed.value_utf8 : "";
    result.redirected = parsed.ok && result.parsed_url != result.crafted_url;
    return result;
}

std::vector<SanForgeryResult> run_san_forgery() {
    std::vector<SanForgeryResult> results;
    x509::GeneralNames names = {dns_name("a.com, DNS:b.com")};
    for (tlslib::Library lib : tlslib::kAllLibraries) {
        SanForgeryResult r;
        r.library = tlslib::library_name(lib);
        tlslib::ParseOutcome out = tlslib::format_san(lib, names);
        if (!out.ok) {
            r.rendered = "(structured output)";
            r.forged = false;
        } else {
            r.rendered = out.value_utf8;
            size_t pos = r.rendered.find(", DNS:b.com");
            r.forged = pos != std::string::npos && (pos == 0 || r.rendered[pos - 1] != '\\');
        }
        results.push_back(std::move(r));
    }
    return results;
}

std::vector<UserSpoofResult> run_user_spoofing() {
    std::vector<UserSpoofResult> results;

    // The Figure 7 payload: "www.<RLO>lapyap<PDF>.com" displays as
    // "www.paypal.com".
    std::string crafted = "www.\xE2\x80\xAElapyap\xE2\x80\xAC.com";
    std::string target = "www.paypal.com";

    for (Browser b : kAllBrowsers) {
        UserSpoofResult r;
        r.browser = browser_name(b);
        r.crafted_value = crafted;
        r.displayed = render_for_display(b, crafted);
        r.spoof_success = can_spoof(b, crafted, target);
        results.push_back(std::move(r));
    }

    // Zero-width-space spoof (invisible in every browser).
    std::string zwsp_crafted = "pay\xE2\x80\x8Bpal.com";
    for (Browser b : kAllBrowsers) {
        UserSpoofResult r;
        r.browser = browser_name(b);
        r.crafted_value = zwsp_crafted;
        r.displayed = render_for_display(b, zwsp_crafted);
        r.spoof_success = can_spoof(b, zwsp_crafted, "paypal.com");
        results.push_back(std::move(r));
    }
    return results;
}

std::vector<HomographResult> run_homograph_study() {
    struct Case {
        const char* target;
        const char* homograph_utf8;  // single-script lookalike label
    };
    // Cyrillic full-script lookalikes: every letter PVALID, no mixed
    // script — exactly the class IDNA cannot refuse and monitors accept.
    const Case cases[] = {
        {"paypal.com", "раураl"},   // р,а,у Cyrillic + Latin l — mixed, detectable
        {"apple.com", "аррlе"},     // mixed
        {"epic.com", "еріс"},       // fully Cyrillic е,р,і,с
    };

    std::vector<HomographResult> results;
    for (const Case& c : cases) {
        HomographResult r;
        r.target_domain = c.target;
        r.homograph_ulabel = std::string(c.homograph_utf8) + ".com";

        auto cps = unicode::utf8_to_codepoints(c.homograph_utf8);
        if (!cps.ok()) continue;

        // Registrability: U-label -> A-label conversion with IDNA checks.
        auto a_label = idna::to_a_label(cps.value());
        r.idna_valid = a_label.ok();
        if (a_label.ok()) r.homograph_alabel = a_label.value() + ".com";

        // Visual collision with the target's first label.
        std::string target_label = r.target_domain.substr(0, r.target_domain.find('.'));
        auto target_cps = unicode::utf8_to_codepoints(target_label);
        r.skeleton_collision =
            target_cps.ok() && unicode::are_confusable(cps.value(), target_cps.value());

        // Monitor surface: would the A-label query be accepted (P1.3)?
        if (!r.homograph_alabel.empty()) {
            for (const ctlog::MonitorProfile& profile : ctlog::monitor_profiles()) {
                ctlog::Monitor monitor(profile);
                if (monitor.query(r.homograph_alabel).query_accepted) {
                    ++r.monitors_accepting_query;
                }
            }
        }

        // Browser surface: engines without homograph detection (all of
        // them, per Table 14) render the lookalike undisturbed.
        for (Browser b : kAllBrowsers) {
            if (!browser_policy(b).detects_homographs) ++r.browsers_vulnerable;
        }
        results.push_back(std::move(r));
    }
    return results;
}

}  // namespace unicert::threat
