// unicert/threat/browser.h
//
// Browser certificate-rendering models (Appendix F.1 / Table 14).
// Each profile maps decoded certificate strings to *display* strings
// the way its engine's certificate viewer and warning pages do:
// C0/C1 marking policy, invisible layout controls, bidirectional
// override application (the "www.paypal.com" spoof), and the
// substitution table (Greek question mark -> semicolon).
#pragma once

#include <array>
#include <string>

#include "unicode/codepoint.h"
#include "x509/certificate.h"

namespace unicert::threat {

enum class Browser { kFirefox, kSafari, kChromiumFamily };

inline constexpr std::array<Browser, 3> kAllBrowsers = {
    Browser::kFirefox, Browser::kSafari, Browser::kChromiumFamily};

const char* browser_name(Browser b) noexcept;
const char* browser_engine(Browser b) noexcept;

struct BrowserPolicy {
    bool marks_c0_c1;             // visible indicator for control codes
    bool layout_controls_visible; // false everywhere (Table 14's Ø)
    bool detects_homographs;      // false everywhere ("✓ vulnerable")
    bool correct_substitutions;   // false: U+037E -> ';' instead of '?'
    bool asn1_range_checking;     // flawed where true is absent
    bool warning_page_spoofable;  // Chromium ✓, Firefox ✓(SAN-based), Safari ✗
    bool warning_uses_san;        // Firefox builds warnings from SAN DNSNames
};

BrowserPolicy browser_policy(Browser b) noexcept;

// Render a certificate field value (UTF-8) to the string a user would
// *see* in this browser's certificate UI: applies control marking or
// invisibility, drops/reorders per bidi overrides, and applies the
// (incorrect) substitution table.
std::string render_for_display(Browser b, std::string_view value_utf8);

// Pure visual simulation of bidirectional override characters: RLO
// reverses the enclosed run, PDF terminates it, and the control
// characters themselves vanish. This is what turns
// "www.<RLO>lapyap<PDF>.com" into the displayed "www.paypal.com".
std::string apply_bidi_overrides(const unicode::CodePoints& cps);

// Would this browser's rendering of `crafted` be visually identical to
// `target` (i.e. can the crafted value spoof the target)?
bool can_spoof(Browser b, std::string_view crafted_utf8, std::string_view target_utf8);

// The entity string this browser's WARNING PAGE shows for a failed
// connection (Chromium: Subject CN/O; Firefox: SAN DNSNames).
std::string warning_page_identity(Browser b, const x509::Certificate& cert);

}  // namespace unicert::threat
