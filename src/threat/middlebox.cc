#include "threat/middlebox.h"

#include <algorithm>

#include "tlslib/profile.h"
#include "unicode/codec.h"
#include "unicode/properties.h"

namespace unicert::threat {
namespace {

std::string fold_ascii(std::string_view s) {
    std::string out(s);
    for (char& c : out) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + 0x20);
    }
    return out;
}

bool all_ascii_bytes(BytesView bytes) {
    return std::all_of(bytes.begin(), bytes.end(), [](uint8_t b) { return b <= 0x7F; });
}

}  // namespace

const char* middlebox_name(Middlebox mb) noexcept {
    switch (mb) {
        case Middlebox::kSnort: return "Snort";
        case Middlebox::kSuricata: return "Suricata";
        case Middlebox::kZeek: return "Zeek";
    }
    return "?";
}

ExtractedEntities extract_entities(Middlebox mb, const x509::Certificate& cert) {
    ExtractedEntities out;
    auto cns = cert.subject_common_names();

    // CN policy (P2.1): Snort takes the first duplicated CN/OU, Zeek
    // the last; Suricata records all.
    if (!cns.empty()) {
        switch (mb) {
            case Middlebox::kSnort:
                out.common_names.push_back(cns.front()->to_utf8_lossy());
                break;
            case Middlebox::kZeek:
                out.common_names.push_back(cns.back()->to_utf8_lossy());
                break;
            case Middlebox::kSuricata:
                for (const x509::AttributeValue* cn : cns) {
                    out.common_names.push_back(cn->to_utf8_lossy());
                }
                break;
        }
    }

    for (const x509::AttributeValue* o :
         cert.subject.find_all(asn1::oids::organization_name())) {
        out.organizations.push_back(o->to_utf8_lossy());
    }

    for (const x509::GeneralName& gn : cert.subject_alt_names()) {
        if (gn.type != x509::GeneralNameType::kDnsName) continue;
        if (mb == Middlebox::kZeek && !all_ascii_bytes(gn.value_bytes)) {
            // Zeek ignores SANs not encoded as IA5String.
            continue;
        }
        out.san_dns.push_back(gn.to_utf8_lossy());
    }
    return out;
}

bool blocklist_matches(Middlebox mb, const x509::Certificate& cert,
                       const std::string& blocked_cn) {
    ExtractedEntities entities = extract_entities(mb, cert);
    for (const std::string& cn : entities.common_names) {
        if (mb == Middlebox::kSuricata) {
            // Case-sensitive exact compare — bypassable via case
            // variants (P2.1's Suricata finding).
            if (cn == blocked_cn) return true;
        } else {
            if (fold_ascii(cn) == fold_ascii(blocked_cn)) return true;
        }
    }
    return false;
}

const char* http_client_name(HttpClient c) noexcept {
    switch (c) {
        case HttpClient::kLibcurl: return "libcurl";
        case HttpClient::kUrllib3: return "urllib3";
        case HttpClient::kRequests: return "requests";
        case HttpClient::kHttpClient: return "HttpClient";
    }
    return "?";
}

SanCheck validate_san_entry(HttpClient client, const x509::GeneralName& dns_entry) {
    switch (client) {
        case HttpClient::kLibcurl:
        case HttpClient::kHttpClient: {
            // Strict: DNSNames must be ASCII (A-labels for IDNs).
            if (!all_ascii_bytes(dns_entry.value_bytes)) {
                return {false, "non-ASCII bytes in DNSName; expected A-label encoding"};
            }
            return {true, ""};
        }
        case HttpClient::kUrllib3:
        case HttpClient::kRequests: {
            // P2.2: urllib3 (and requests on top of it) restricts SANs
            // to Latin-1 without validating Punycode, so a noncompliant
            // certificate carrying U-labels passes validation.
            std::string value = unicode::transcode_to_utf8(
                dns_entry.value_bytes, unicode::Encoding::kLatin1,
                unicode::ErrorPolicy::kStrict);
            (void)value;  // Latin-1 always decodes; no further checks applied
            return {true, "latin-1 tolerated; punycode not validated"};
        }
    }
    return {true, ""};
}

}  // namespace unicert::threat
