// unicert/threat/tls_wire.h
//
// Minimal TLS 1.2 wire framing for the traffic-obfuscation scenario:
// the Certificate handshake message (RFC 5246 section 7.4.2) inside a
// handshake record. Section 6.2's threat model has an in-path
// middlebox parsing exactly these bytes to extract the server
// certificate — and TLS 1.3 removing that visibility is why the paper
// scopes the attack to "TLS 1.2 and earlier".
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/expected.h"
#include "x509/certificate.h"

namespace unicert::threat {

enum class TlsVersion : uint16_t {
    kTls12 = 0x0303,
    kTls13 = 0x0304,  // certificates are encrypted; passive extraction fails
};

// Encode a Certificate handshake message (type 11) carrying the chain,
// wrapped in a handshake record (content type 22).
Bytes encode_certificate_record(const std::vector<Bytes>& chain_der,
                                TlsVersion version = TlsVersion::kTls12);

struct CertificateMessage {
    TlsVersion version = TlsVersion::kTls12;
    std::vector<Bytes> chain_der;
};

// Parse one handshake record; fails on framing errors.
Expected<CertificateMessage> parse_certificate_record(BytesView record);

// A passive network inspector: feed it raw records, it extracts the
// leaf certificate when the wire format allows (TLS <= 1.2). Returns
// nullopt for TLS 1.3 flows (the certificate is encrypted after the
// ServerHello, modelled here as an opaque record).
std::optional<x509::Certificate> passively_extract_leaf(BytesView record);

}  // namespace unicert::threat
