// unicert/threat/middlebox.h
//
// Behavioural models of the network-detection components and HTTP
// clients of Section 6.2 (documented substitution): Snort, Suricata
// and Zeek entity extraction, plus libcurl / urllib3 / requests /
// HttpClient SAN format checking. Each model reproduces the published
// quirk: Snort takes the first duplicated CN, Zeek the last and drops
// non-IA5 SANs, Suricata matches case-sensitively, urllib3 accepts
// Latin-1 U-labels in SANs without Punycode validation.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "x509/certificate.h"

namespace unicert::threat {

// ---- Middlebox engines ------------------------------------------------------

enum class Middlebox { kSnort, kSuricata, kZeek };

inline constexpr std::array<Middlebox, 3> kAllMiddleboxes = {
    Middlebox::kSnort, Middlebox::kSuricata, Middlebox::kZeek};

const char* middlebox_name(Middlebox mb) noexcept;

// The entity strings (CN / O / SAN DNS) a middlebox would extract from
// a served certificate for rule matching and logging.
struct ExtractedEntities {
    std::vector<std::string> common_names;   // per the engine's CN policy
    std::vector<std::string> organizations;
    std::vector<std::string> san_dns;        // per the engine's SAN policy
};

ExtractedEntities extract_entities(Middlebox mb, const x509::Certificate& cert);

// Would a blocklist rule on the Subject CN (e.g. "CN=Evil Entity")
// fire for this certificate? The core of the traffic-obfuscation
// scenario: rules use naive string comparison.
bool blocklist_matches(Middlebox mb, const x509::Certificate& cert,
                       const std::string& blocked_cn);

// ---- HTTP clients ------------------------------------------------------------

enum class HttpClient { kLibcurl, kUrllib3, kRequests, kHttpClient };

inline constexpr std::array<HttpClient, 4> kAllClients = {
    HttpClient::kLibcurl, HttpClient::kUrllib3, HttpClient::kRequests,
    HttpClient::kHttpClient};

const char* http_client_name(HttpClient c) noexcept;

struct SanCheck {
    bool accepted = true;
    std::string reason;
};

// Does this client's SAN format validation accept a DNSName entry?
// (P2.2: urllib3/requests tolerate Latin-1 U-labels; libcurl and
// HttpClient require ASCII A-labels.)
SanCheck validate_san_entry(HttpClient client, const x509::GeneralName& dns_entry);

}  // namespace unicert::threat
