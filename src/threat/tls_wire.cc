#include "threat/tls_wire.h"

#include "x509/parser.h"

namespace unicert::threat {
namespace {

constexpr uint8_t kContentHandshake = 22;
constexpr uint8_t kContentApplicationData = 23;  // TLS 1.3 encrypted cert
constexpr uint8_t kHandshakeCertificate = 11;

void put_u16(Bytes& out, size_t v) {
    out.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
    out.push_back(static_cast<uint8_t>(v & 0xFF));
}

void put_u24(Bytes& out, size_t v) {
    out.push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
    out.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
    out.push_back(static_cast<uint8_t>(v & 0xFF));
}

size_t get_u24(BytesView b, size_t pos) {
    return (static_cast<size_t>(b[pos]) << 16) | (static_cast<size_t>(b[pos + 1]) << 8) |
           b[pos + 2];
}

}  // namespace

Bytes encode_certificate_record(const std::vector<Bytes>& chain_der, TlsVersion version) {
    // certificate_list: 3-byte total, then per-cert 3-byte length + DER.
    Bytes list;
    for (const Bytes& der : chain_der) {
        put_u24(list, der.size());
        append(list, der);
    }
    Bytes body;
    put_u24(body, list.size());
    append(body, list);

    Bytes handshake;
    handshake.push_back(kHandshakeCertificate);
    put_u24(handshake, body.size());
    append(handshake, body);

    Bytes record;
    if (version == TlsVersion::kTls13) {
        // Post-ServerHello handshake messages travel as encrypted
        // application_data; a passive observer sees opaque bytes.
        record.push_back(kContentApplicationData);
        put_u16(record, static_cast<uint16_t>(TlsVersion::kTls12));  // legacy_record_version
        put_u16(record, handshake.size());
        // Simulated ciphertext: XOR-scrambled payload (content opaque,
        // length preserved — what a middlebox actually observes).
        for (uint8_t b : handshake) record.push_back(static_cast<uint8_t>(b ^ 0xA5));
        return record;
    }
    record.push_back(kContentHandshake);
    put_u16(record, static_cast<uint16_t>(version));
    put_u16(record, handshake.size());
    append(record, handshake);
    return record;
}

Expected<CertificateMessage> parse_certificate_record(BytesView record) {
    if (record.size() < 5) return Error{"tls_record_truncated", "record header incomplete"};
    uint8_t content_type = record[0];
    uint16_t version = static_cast<uint16_t>((record[1] << 8) | record[2]);
    size_t length = (static_cast<size_t>(record[3]) << 8) | record[4];
    if (record.size() < 5 + length) {
        return Error{"tls_record_truncated", "record body incomplete"};
    }
    if (content_type != kContentHandshake) {
        return Error{"tls_not_handshake",
                     "content type " + std::to_string(content_type) +
                         " is not a cleartext handshake record"};
    }
    BytesView body = record.subspan(5, length);
    if (body.size() < 4) return Error{"tls_handshake_truncated", "handshake header incomplete"};
    if (body[0] != kHandshakeCertificate) {
        return Error{"tls_not_certificate", "handshake message is not Certificate"};
    }
    size_t msg_len = get_u24(body, 1);
    if (body.size() < 4 + msg_len || msg_len < 3) {
        return Error{"tls_handshake_truncated", "certificate message incomplete"};
    }
    BytesView msg = body.subspan(4, msg_len);
    size_t list_len = get_u24(msg, 0);
    if (msg.size() < 3 + list_len) {
        return Error{"tls_cert_list_truncated", "certificate_list overflows message"};
    }

    CertificateMessage out;
    out.version = static_cast<TlsVersion>(version);
    size_t pos = 3;
    while (pos < 3 + list_len) {
        if (pos + 3 > msg.size()) {
            return Error{"tls_cert_list_truncated", "certificate length field incomplete"};
        }
        size_t cert_len = get_u24(msg, pos);
        pos += 3;
        if (pos + cert_len > msg.size()) {
            return Error{"tls_cert_list_truncated", "certificate overflows list"};
        }
        out.chain_der.emplace_back(msg.begin() + pos, msg.begin() + pos + cert_len);
        pos += cert_len;
    }
    return out;
}

std::optional<x509::Certificate> passively_extract_leaf(BytesView record) {
    auto message = parse_certificate_record(record);
    if (!message.ok() || message->chain_der.empty()) return std::nullopt;
    auto parsed = x509::parse_certificate(message->chain_der.front());
    if (!parsed.ok()) return std::nullopt;
    return std::move(parsed).value();
}

}  // namespace unicert::threat
