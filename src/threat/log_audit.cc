#include "threat/log_audit.h"

#include "asn1/time.h"
#include "x509/builder.h"

namespace unicert::threat {
namespace {

constexpr size_t kColumns = 5;  // ts, ip, cn, o, san

std::string escape_tsv(const std::string& value) {
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
            case '\t': out += "\\x09"; break;
            case '\n': out += "\\x0a"; break;
            case '\r': out += "\\x0d"; break;
            case '\0': out += "\\x00"; break;
            default: out.push_back(c);
        }
    }
    return out;
}

}  // namespace

void TlsLogWriter::log_connection(int64_t timestamp, const std::string& peer_ip,
                                  Middlebox extractor, const x509::Certificate& cert) {
    ExtractedEntities entities = extract_entities(extractor, cert);
    auto field = [&](const std::vector<std::string>& values) {
        std::string joined = values.empty() ? "-" : values.front();
        return escape_fields_ ? escape_tsv(joined) : joined;
    };

    log_ += std::to_string(timestamp);
    log_ += "\t" + (escape_fields_ ? escape_tsv(peer_ip) : peer_ip);
    log_ += "\t" + field(entities.common_names);
    log_ += "\t" + field(entities.organizations);
    log_ += "\t" + field(entities.san_dns);
    log_ += "\n";
    ++records_;
}

TlsLogWriter::AuditView TlsLogWriter::audit() const {
    AuditView view;
    size_t start = 0;
    while (start < log_.size()) {
        size_t end = log_.find('\n', start);
        if (end == std::string::npos) end = log_.size();
        std::string_view line(log_.data() + start, end - start);
        if (!line.empty()) {
            ++view.lines;
            size_t tabs = 0;
            for (char c : line) {
                if (c == '\t') ++tabs;
            }
            if (tabs == kColumns - 1) {
                ++view.well_formed;
            } else {
                ++view.malformed;
            }
        }
        start = end + 1;
    }
    return view;
}

std::vector<LogInjectionResult> run_log_injection() {
    namespace oids = asn1::oids;

    auto make_cert = [](const std::string& cn, const std::string& o) {
        x509::Certificate cert;
        cert.version = 2;
        cert.serial = {0x4C};
        cert.subject = x509::make_dn({
            x509::make_attribute(oids::common_name(), cn),
            x509::make_attribute(oids::organization_name(), o),
        });
        cert.issuer = cert.subject;
        cert.validity = {asn1::make_time(2025, 1, 1), asn1::make_time(2025, 4, 1)};
        return cert;
    };

    std::vector<x509::Certificate> traffic = {
        make_cert("benign.example", "Benign Org"),
        // Newline injection: forges a phantom log entry claiming a
        // connection to an allow-listed host.
        make_cert("evil.example\n1700000000\t10.0.0.9\tallowed.example\tTrusted Org\t-",
                  "Evil Org"),
        // Tab injection: shifts every subsequent column.
        make_cert("shift.example", "Tab\tSeparated\tOrg"),
    };

    std::vector<LogInjectionResult> results;
    for (bool hardened : {false, true}) {
        TlsLogWriter writer(hardened);
        int64_t ts = asn1::make_time(2025, 2, 1);
        for (const x509::Certificate& cert : traffic) {
            writer.log_connection(ts++, "192.0.2.7", Middlebox::kSnort, cert);
        }
        TlsLogWriter::AuditView view = writer.audit();
        LogInjectionResult r;
        r.hardened_writer = hardened;
        r.records = writer.records_written();
        r.lines = view.lines;
        r.malformed_lines = view.malformed;
        r.log_corrupted = view.lines != writer.records_written() || view.malformed > 0;
        results.push_back(r);
    }
    return results;
}

}  // namespace unicert::threat
