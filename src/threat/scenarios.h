// unicert/threat/scenarios.h
//
// End-to-end threat scenario runners reproducing Section 6 and
// Appendix F.1 empirically against the behavioural substrates:
//   * CT monitor misleading (6.1): conceal a forged cert from field
//     queries while it is correctly logged.
//   * Traffic obfuscation (6.2): evade middlebox blocklists with
//     Unicode variants, duplicate-CN positioning and non-IA5 SANs.
//   * CRL spoofing (5.2-2): redirect revocation fetches through
//     PyOpenSSL's control-character rewriting.
//   * SAN subfield forgery (5.2-1): inject extra DNS entries into
//     X.509-text output.
//   * User spoofing (F.1): bidi-override warning-page deception.
#pragma once

#include <string>
#include <vector>

#include "x509/certificate.h"

namespace unicert::threat {

// ---- 6.1 CT monitor misleading ----------------------------------------------

struct MonitorMisleadingResult {
    std::string monitor;
    std::string technique;   // the crafting trick applied
    bool logged = true;      // always: the CA logs honestly
    bool concealed = false;  // the owner's query fails to surface it
};

// Forge certificates for `victim_domain` with per-technique crafted
// fields, index them into every monitor profile, then run the queries
// a domain owner would run.
std::vector<MonitorMisleadingResult> run_monitor_misleading(const std::string& victim_domain);

// ---- 6.2 traffic obfuscation ---------------------------------------------------

struct ObfuscationResult {
    std::string component;   // middlebox or client
    std::string technique;
    bool evaded = false;     // detection rule failed / bad cert accepted
};

// Middlebox blocklist evasion (P2.1) + client SAN leniency (P2.2).
std::vector<ObfuscationResult> run_traffic_obfuscation();

// ---- 5.2(2) CRL spoofing ---------------------------------------------------------

struct CrlSpoofResult {
    std::string crafted_url;   // what the CA signed
    std::string parsed_url;    // what the vulnerable client fetches
    bool redirected = false;   // they differ => revocation disabled
};

CrlSpoofResult run_crl_spoof();

// ---- 5.2(1) SAN subfield forgery ----------------------------------------------

struct SanForgeryResult {
    std::string library;
    std::string rendered;    // the X.509-text the library emits
    bool forged = false;     // a second DNS entry materialized
};

std::vector<SanForgeryResult> run_san_forgery();

// ---- F.1 user spoofing ------------------------------------------------------------

struct UserSpoofResult {
    std::string browser;
    std::string crafted_value;   // raw certificate field
    std::string displayed;       // what the user sees
    bool spoof_success = false;  // displayed equals the spoof target
};

std::vector<UserSpoofResult> run_user_spoofing();

// ---- F.1 homograph study -----------------------------------------------------

struct HomographResult {
    std::string target_domain;     // e.g. paypal.com
    std::string homograph_ulabel;  // Cyrillic/Greek lookalike (UTF-8)
    std::string homograph_alabel;  // its registrable xn-- form
    bool idna_valid = false;       // passes per-label IDNA2008 checks
    bool skeleton_collision = false;  // confusable-skeleton equality
    size_t monitors_accepting_query = 0;  // of the 5 profiles
    size_t browsers_vulnerable = 0;       // lacking homograph detection
};

// Register lookalike domains for well-known targets, check that they
// are certifiable (IDNA-valid single-script labels), and measure the
// monitoring/rendering surface (Table 14's "Homograph feasibility").
std::vector<HomographResult> run_homograph_study();

}  // namespace unicert::threat
