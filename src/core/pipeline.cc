#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <set>

#include "asn1/der.h"
#include "asn1/time.h"
#include "core/arena.h"
#include "unicode/normalize.h"
#include "unicode/properties.h"
#include "x509/lazy.h"
#include "x509/parser.h"

namespace unicert::core {
namespace {

const int64_t kRecentStart = asn1::make_time(2024, 1, 1);

constexpr std::array<lint::NcType, 6> kTypeOrder = {
    lint::NcType::kInvalidCharacter, lint::NcType::kBadNormalization,
    lint::NcType::kIllegalFormat,    lint::NcType::kInvalidEncoding,
    lint::NcType::kInvalidStructure, lint::NcType::kDiscouragedField,
};

bool is_recent(const ctlog::CorpusCert& c) { return c.year >= 2024; }
bool is_alive(const ctlog::CorpusCert& c) {
    return c.cert.validity.not_after >= kRecentStart;
}

// Normalization chain for the Table 3 variant detector: NFC, case
// fold, confusable skeleton (dashes/fullwidth/homoglyphs), then strip
// whitespace, punctuation and trailing legal-form tokens.
std::string variant_key(const std::string& utf8) {
    auto cps = unicode::utf8_to_codepoints(utf8);
    if (!cps.ok()) return utf8;
    unicode::CodePoints n = unicode::nfc(cps.value());
    n = unicode::fold_case(n);
    n = unicode::skeleton(n);
    std::string key;
    for (unicode::CodePoint cp : n) {
        if (unicode::is_space(cp)) continue;
        if (cp < 0x80 && !unicode::is_ascii_alpha(cp) && !unicode::is_ascii_digit(cp)) continue;
        if (cp == 0xFFFD) continue;
        key += unicode::codepoints_to_utf8({cp});
    }
    static const char* kLegalForms[] = {"group", "gmbh", "ltd", "llc", "inc", "sro",
                                        "as",    "sa",   "sp",  "zoo", "ooo"};
    bool stripped = true;
    while (stripped) {
        stripped = false;
        for (const char* form : kLegalForms) {
            size_t len = std::string_view(form).size();
            if (key.size() > len + 2 && key.ends_with(form)) {
                key.resize(key.size() - len);
                stripped = true;
            }
        }
    }
    return key;
}

VariantStrategy classify_variants(const std::vector<std::string>& values) {
    auto decode = [](const std::string& s) {
        return unicode::utf8_to_codepoints(s).value_or(unicode::CodePoints{});
    };

    bool any_fffd = false, any_invisible = false, any_nonstd_space = false;
    for (const std::string& v : values) {
        for (unicode::CodePoint cp : decode(v)) {
            if (cp == 0xFFFD) any_fffd = true;
            if (unicode::is_layout_control(cp)) any_invisible = true;
            if (unicode::is_nonstandard_space(cp)) any_nonstd_space = true;
        }
    }
    if (any_fffd) return VariantStrategy::kReplacementCharacter;
    if (any_invisible) return VariantStrategy::kNonPrintableInsertion;

    // Case-only variants: case folding merges them.
    {
        std::set<std::string> folded;
        for (const std::string& v : values) {
            folded.insert(unicode::codepoints_to_utf8(unicode::fold_case(decode(v))));
        }
        if (folded.size() == 1) return VariantStrategy::kCaseConversion;
    }
    if (any_nonstd_space) return VariantStrategy::kNonPrintableInsertion;

    // Whitespace-only variants: removing spaces merges them.
    {
        std::set<std::string> spaceless;
        for (const std::string& v : values) {
            unicode::CodePoints out;
            for (unicode::CodePoint cp : unicode::fold_case(decode(v))) {
                if (!unicode::is_space(cp)) out.push_back(cp);
            }
            spaceless.insert(unicode::codepoints_to_utf8(out));
        }
        if (spaceless.size() == 1) return VariantStrategy::kWhitespaceVariant;
    }

    // Symbol substitution: the confusable skeleton merges them.
    {
        std::set<std::string> skeletons;
        for (const std::string& v : values) {
            unicode::CodePoints out;
            for (unicode::CodePoint cp : unicode::skeleton(decode(v))) {
                if (!unicode::is_space(cp)) out.push_back(cp);
            }
            skeletons.insert(unicode::codepoints_to_utf8(out));
        }
        if (skeletons.size() == 1) return VariantStrategy::kSymbolSubstitution;
    }
    return VariantStrategy::kAbbreviationVariant;
}

}  // namespace

const char* variant_strategy_name(VariantStrategy s) noexcept {
    switch (s) {
        case VariantStrategy::kCaseConversion: return "Character case conversion";
        case VariantStrategy::kWhitespaceVariant: return "Use of different whitespace";
        case VariantStrategy::kNonPrintableInsertion: return "Addition of non-printable chars";
        case VariantStrategy::kSymbolSubstitution: return "Substitution of resembling chars";
        case VariantStrategy::kAbbreviationVariant: return "Abbreviation variations";
        case VariantStrategy::kReplacementCharacter: return "Replacement of illegal chars";
    }
    return "?";
}

double ValidityCdf::quantile(const std::vector<int64_t>& sorted, double q) {
    // Defined (0, NaN-free) for empty input and degenerate q: an empty
    // class in a downscaled corpus must not poison figure output.
    if (sorted.empty() || std::isnan(q)) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double idx = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return static_cast<double>(sorted[lo]) * (1.0 - frac) +
           static_cast<double>(sorted[hi]) * frac;
}

double ValidityCdf::cdf_at(const std::vector<int64_t>& sorted, int64_t days) {
    if (sorted.empty()) return 0.0;
    auto it = std::upper_bound(sorted.begin(), sorted.end(), days);
    return static_cast<double>(it - sorted.begin()) / static_cast<double>(sorted.size());
}

const char* quarantine_stage_name(QuarantineStage s) noexcept {
    switch (s) {
        case QuarantineStage::kFetch: return "fetch";
        case QuarantineStage::kParse: return "parse";
        case QuarantineStage::kLint: return "lint";
    }
    return "?";
}

DerFileCertSource::DerFileCertSource(BytesView data) : data_(data) {
    // Prescan for size_hint: count well-delimited TLVs. The scan stops
    // at the first bad boundary — next() will surface that as a stream
    // error when it gets there, so the hint only ever undercounts on
    // inputs that abort anyway.
    size_t pos = 0;
    while (pos < data_.size()) {
        auto tlv = asn1::read_tlv(data_.subspan(pos));
        if (!tlv.ok()) break;
        pos += tlv->total_len;
        ++count_;
    }
}

Expected<std::optional<CertEntry>> DerFileCertSource::next() {
    if (pos_ >= data_.size()) return std::optional<CertEntry>{};
    auto tlv = asn1::read_tlv(data_.subspan(pos_));
    if (!tlv.ok()) return tlv.error().shift_offset(pos_);
    CertEntry entry;
    entry.index = index_++;
    entry.view = data_.subspan(pos_, tlv->total_len);
    pos_ += tlv->total_len;
    return std::optional<CertEntry>(std::move(entry));
}

void CompliancePipeline::ingest(const ctlog::CorpusCert& cert, const lint::Registry& registry,
                                const lint::RunOptions& options) {
    AnalyzedCert a;
    a.cert = &cert;
    a.report = lint::run_lints(cert.cert, registry, options);
    a.noncompliant = a.report.noncompliant();
    if (a.noncompliant) ++nc_count_;
    analyzed_.push_back(std::move(a));
    ++stats_.processed;
}

CompliancePipeline::CompliancePipeline(const std::vector<ctlog::CorpusCert>& corpus,
                                       lint::RunOptions options) {
    analyzed_.reserve(corpus.size());
    for (const ctlog::CorpusCert& c : corpus) {
        ingest(c, lint::default_registry(), options);
    }
}

namespace internal {

void run_stream(CertSource& source, const PipelineOptions& options,
                const lint::Registry& registry, Clock& clock, StreamState& state) {
    const size_t size_hint = source.size_hint();
    state.analyzed.reserve(size_hint);

    std::unordered_set<size_t> processed_indices;
    auto quarantine = [&](size_t index, QuarantineStage stage, Error error) {
        state.quarantine.records.push_back({index, stage, std::move(error)});
        ++state.stats.quarantined;
    };
    auto record = [&](const ctlog::CorpusCert& cert, lint::CertReport report) {
        AnalyzedCert a;
        a.cert = &cert;
        a.report = std::move(report);
        a.noncompliant = a.report.noncompliant();
        if (a.noncompliant) ++state.nc_count;
        state.analyzed.push_back(std::move(a));
        ++state.stats.processed;
        if (options.progress && options.progress_interval > 0 &&
            state.stats.processed % options.progress_interval == 0) {
            options.progress(state.stats.processed, size_hint);
        }
    };
    // Per-run arena: one scope per wire certificate, so after the first
    // few entries the zero-copy index allocates nothing.
    core::Arena arena;

    for (;;) {
        RetryOutcome outcome;
        auto item = core::retry<std::optional<CertEntry>>(
            options.retry, clock, [&] { return source.next(); }, &outcome);
        state.stats.retries += outcome.retries;
        if (!item.ok()) {
            // Bottom of the ladder: the stream itself failed past the
            // retry budget — abort with the partial stats preserved.
            state.stats.completed = false;
            state.stats.abort_error = item.error();
            state.quarantine.records.push_back(
                {processed_indices.size(), QuarantineStage::kFetch, item.error()});
            break;
        }
        if (outcome.retries > 0) ++state.stats.recovered;
        if (!item->has_value()) break;  // end of stream
        CertEntry entry = std::move(**item);

        if (processed_indices.contains(entry.index)) {
            // Redelivery of an already-aggregated entry (duplicate or
            // regressed stream view): suppress, never double-count.
            ++state.stats.duplicates;
            ++state.stats.recovered;
            continue;
        }

        if (entry.meta == nullptr) {
            // Wire entry: zero-copy index + lazy lint over the raw
            // bytes; the owning Certificate is only materialized after
            // the lint pass succeeds, from the same index (identical
            // bytes by construction — the parity suite pins this).
            ArenaScope scope(arena);
            auto lazy = x509::LazyCertificate::index(entry.bytes(), &arena);
            if (!lazy.ok()) {
                quarantine(entry.index, QuarantineStage::kParse, lazy.error());
                continue;
            }
            try {
                lint::CertReport report =
                    lint::run_lints(*lazy, registry, options.lint_options);
                ctlog::CorpusCert materialized;
                materialized.cert = lazy->materialize();
                state.owned.push_back(std::move(materialized));
                record(state.owned.back(), std::move(report));
            } catch (const std::exception& ex) {
                quarantine(entry.index, QuarantineStage::kLint,
                           Error{"lint_exception", ex.what()});
                continue;
            } catch (...) {
                quarantine(entry.index, QuarantineStage::kLint,
                           Error{"lint_exception", "non-standard exception from lint rule"});
                continue;
            }
        } else {
            try {
                record(*entry.meta,
                       lint::run_lints(entry.meta->cert, registry, options.lint_options));
            } catch (const std::exception& ex) {
                quarantine(entry.index, QuarantineStage::kLint,
                           Error{"lint_exception", ex.what()});
                continue;
            } catch (...) {
                quarantine(entry.index, QuarantineStage::kLint,
                           Error{"lint_exception", "non-standard exception from lint rule"});
                continue;
            }
        }
        processed_indices.insert(entry.index);
    }
}

}  // namespace internal

CompliancePipeline::CompliancePipeline(CertSource& source, PipelineOptions options) {
    const lint::Registry& registry =
        options.registry != nullptr ? *options.registry : lint::default_registry();
    core::Clock& clock = options.clock != nullptr ? *options.clock : core::system_clock();

    internal::StreamState state;
    internal::run_stream(source, options, registry, clock, state);
    analyzed_ = std::move(state.analyzed);
    owned_ = std::move(state.owned);  // deque move keeps element addresses stable
    nc_count_ = state.nc_count;
    stats_ = std::move(state.stats);
    quarantine_ = std::move(state.quarantine);
}

double CompliancePipeline::noncompliance_rate() const noexcept {
    return analyzed_.empty()
               ? 0.0
               : static_cast<double>(nc_count_) / static_cast<double>(analyzed_.size());
}

TaxonomyReport CompliancePipeline::taxonomy_report() const {
    TaxonomyReport report;
    report.total_certs = analyzed_.size();

    const lint::Registry& registry = lint::default_registry();

    for (lint::NcType type : kTypeOrder) {
        TaxonomyRow row;
        row.type = type;
        row.lints_all = registry.count_type(type);
        for (const lint::Rule& rule : registry.rules()) {
            if (rule.info.type == type && rule.info.is_new) ++row.lints_new;
        }

        std::set<std::string> firing_lints;
        for (const AnalyzedCert& a : analyzed_) {
            bool has_type = false, has_new = false, has_err = false, has_warn = false;
            for (const lint::Finding& f : a.report.findings) {
                if (f.lint->type != type) continue;
                has_type = true;
                firing_lints.insert(f.lint->name);
                if (f.lint->is_new) has_new = true;
                if (f.lint->severity == lint::Severity::kError) has_err = true;
                if (f.lint->severity == lint::Severity::kWarning) has_warn = true;
            }
            if (!has_type) continue;
            ++row.nc_certs;
            if (has_new) ++row.nc_certs_new;
            if (has_err) ++row.error_certs;
            if (has_warn) ++row.warning_certs;
            if (a.cert->trusted_at_issuance) ++row.trusted_certs;
            if (is_recent(*a.cert)) ++row.recent_certs;
            if (is_alive(*a.cert)) ++row.alive_certs;
        }
        row.nc_lints = firing_lints.size();
        report.rows.push_back(row);
    }

    for (const AnalyzedCert& a : analyzed_) {
        if (!a.noncompliant) continue;
        ++report.total_nc;
        if (a.cert->trusted_at_issuance) ++report.total_nc_trusted;
    }
    return report;
}

std::vector<IssuerRow> CompliancePipeline::issuer_report(size_t top_n) const {
    std::map<std::string, IssuerRow> by_issuer;
    for (const AnalyzedCert& a : analyzed_) {
        IssuerRow& row = by_issuer[a.cert->issuer_org];
        if (row.total == 0) {
            row.organization = a.cert->issuer_org;
            row.trust = a.cert->trust;
            for (const ctlog::IssuerSpec& spec : ctlog::issuer_specs()) {
                if (spec.organization == a.cert->issuer_org) row.region = spec.region;
            }
        }
        ++row.total;
        if (a.noncompliant) {
            ++row.noncompliant;
            if (is_recent(*a.cert)) ++row.recent_nc;
        }
    }
    std::vector<IssuerRow> rows;
    rows.reserve(by_issuer.size());
    for (auto& [name, row] : by_issuer) rows.push_back(std::move(row));
    // Tie-break on the organization name so the ranking is a total
    // order: golden-file diffs must not depend on std::sort tie
    // placement.
    std::sort(rows.begin(), rows.end(), [](const IssuerRow& a, const IssuerRow& b) {
        return a.noncompliant != b.noncompliant ? a.noncompliant > b.noncompliant
                                                : a.organization < b.organization;
    });
    if (rows.size() > top_n) rows.resize(top_n);
    return rows;
}

std::vector<LintRow> CompliancePipeline::top_lints(size_t top_n) const {
    std::map<std::string, LintRow> by_lint;
    for (const AnalyzedCert& a : analyzed_) {
        std::set<std::string> seen;  // count each lint once per cert
        for (const lint::Finding& f : a.report.findings) {
            if (!seen.insert(f.lint->name).second) continue;
            LintRow& row = by_lint[f.lint->name];
            if (row.nc_certs == 0) {
                row.name = f.lint->name;
                row.type = f.lint->type;
                row.is_new = f.lint->is_new;
                row.severity = f.lint->severity;
            }
            ++row.nc_certs;
        }
    }
    std::vector<LintRow> rows;
    for (auto& [name, row] : by_lint) rows.push_back(std::move(row));
    std::sort(rows.begin(), rows.end(), [](const LintRow& a, const LintRow& b) {
        return a.nc_certs != b.nc_certs ? a.nc_certs > b.nc_certs : a.name < b.name;
    });
    if (rows.size() > top_n) rows.resize(top_n);
    return rows;
}

std::vector<YearRow> CompliancePipeline::yearly_trend() const {
    std::map<int, YearRow> by_year;
    for (const AnalyzedCert& a : analyzed_) {
        YearRow& row = by_year[a.cert->year];
        row.year = a.cert->year;
        ++row.all;
        if (a.cert->trusted_at_issuance) ++row.trusted;
        if (a.noncompliant) ++row.noncompliant;
    }
    // Alive per year: validity extends past December 31 of that year.
    for (auto& [year, row] : by_year) {
        int64_t year_end = asn1::make_time(year + 1, 1, 1);
        for (const AnalyzedCert& a : analyzed_) {
            if (a.cert->cert.validity.not_before < year_end &&
                a.cert->cert.validity.not_after >= year_end) {
                ++row.alive;
            }
        }
    }
    std::vector<YearRow> rows;
    for (auto& [year, row] : by_year) rows.push_back(row);
    return rows;
}

ValidityCdf CompliancePipeline::validity_cdf() const {
    ValidityCdf cdf;
    for (const AnalyzedCert& a : analyzed_) {
        int64_t days = a.cert->cert.validity.lifetime_days();
        if (a.noncompliant) cdf.noncompliant.push_back(days);
        if (a.cert->is_idn_cert) {
            cdf.idn_certs.push_back(days);
        } else {
            cdf.other_unicerts.push_back(days);
        }
    }
    std::sort(cdf.idn_certs.begin(), cdf.idn_certs.end());
    std::sort(cdf.other_unicerts.begin(), cdf.other_unicerts.end());
    std::sort(cdf.noncompliant.begin(), cdf.noncompliant.end());
    return cdf;
}

FieldHeatmap CompliancePipeline::field_heatmap() const {
    FieldHeatmap heatmap;
    for (const AnalyzedCert& a : analyzed_) {
        auto& fields = heatmap[a.cert->issuer_org];
        for (const x509::Rdn& rdn : a.cert->cert.subject.rdns) {
            for (const x509::AttributeValue& av : rdn.attributes) {
                std::string label = asn1::attribute_short_name(av.type);
                std::string value = av.to_utf8_lossy();
                if (!unicode::has_non_printable_ascii(value)) continue;
                FieldUsageCell& cell = fields[label];
                ++cell.unicode_count;
                bool deviates =
                    !asn1::validate_value_bytes(av.string_type, av.value_bytes).ok() ||
                    (av.string_type != asn1::StringType::kPrintableString &&
                     av.string_type != asn1::StringType::kUtf8String);
                if (deviates) ++cell.deviation_count;
            }
        }
        for (const x509::GeneralName& gn : a.cert->cert.subject_alt_names()) {
            if (gn.type == x509::GeneralNameType::kDnsName) {
                bool non_ascii = false;
                for (uint8_t b : gn.value_bytes) {
                    if (b > 0x7F || b < 0x20) non_ascii = true;
                }
                std::string value = gn.to_utf8_lossy();
                bool idn = value.find("xn--") != std::string::npos;
                if (!non_ascii && !idn) continue;
                FieldUsageCell& cell = fields["SAN"];
                ++cell.unicode_count;
                if (non_ascii) ++cell.deviation_count;
            } else if (gn.type == x509::GeneralNameType::kRfc822Name) {
                bool non_ascii = false;
                for (uint8_t b : gn.value_bytes) {
                    if (b > 0x7F) non_ascii = true;
                }
                if (!non_ascii) continue;
                FieldUsageCell& cell = fields["email"];
                ++cell.unicode_count;
                ++cell.deviation_count;  // rfc822Name must be ASCII (RFC 9598)
            } else if (gn.type == x509::GeneralNameType::kOtherName &&
                       gn.other_name_oid == asn1::oids::smtp_utf8_mailbox()) {
                // SmtpUTF8Mailbox is the *compliant* internationalized
                // email carrier.
                ++fields["email"].unicode_count;
            }
        }
    }
    return heatmap;
}

std::vector<VariantGroup> CompliancePipeline::subject_variants() const {
    std::map<std::string, std::set<std::string>> groups;
    for (const AnalyzedCert& a : analyzed_) {
        const x509::AttributeValue* o =
            a.cert->cert.subject.find_first(asn1::oids::organization_name());
        if (o == nullptr) continue;
        std::string value = o->to_utf8_lossy();
        std::string key = variant_key(value);
        if (key.size() < 3) continue;
        groups[key].insert(value);
    }
    // One VariantGroup per (reference, variant) pair so mixed groups
    // report every strategy they contain (a single org name can have
    // case, whitespace and symbol variants simultaneously).
    std::vector<VariantGroup> out;
    for (auto& [key, values] : groups) {
        if (values.size() < 2) continue;
        std::vector<std::string> list(values.begin(), values.end());
        // Use the shortest value as the reference form.
        std::sort(list.begin(), list.end(), [](const std::string& a, const std::string& b) {
            return a.size() != b.size() ? a.size() < b.size() : a < b;
        });
        for (size_t i = 1; i < list.size(); ++i) {
            VariantGroup group;
            group.values = {list[0], list[i]};
            group.strategy = classify_variants(group.values);
            out.push_back(std::move(group));
        }
    }
    return out;
}

}  // namespace unicert::core
