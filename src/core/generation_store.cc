#include "core/generation_store.h"

#include <algorithm>
#include <cstdio>

namespace unicert::core {
namespace {

constexpr std::string_view kPrefix = "ckpt-";
constexpr std::string_view kSuffix = ".ckpt";

bool is_hex_lower(char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

}  // namespace

GenerationStore::GenerationStore(Fs& fs, std::string dir, std::string code_prefix, size_t keep)
    : fs_(&fs),
      dir_(std::move(dir)),
      code_prefix_(std::move(code_prefix)),
      keep_(std::max<size_t>(keep, 1)) {}

std::string GenerationStore::file_name(uint64_t generation) {
    char buf[38];
    std::snprintf(buf, sizeof(buf), "ckpt-%016llx.ckpt",
                  static_cast<unsigned long long>(generation));
    return buf;
}

std::optional<uint64_t> GenerationStore::parse_file_name(std::string_view name) {
    if (name.size() != kPrefix.size() + 16 + kSuffix.size()) return std::nullopt;
    if (!name.starts_with(kPrefix) || !name.ends_with(kSuffix)) return std::nullopt;
    uint64_t generation = 0;
    for (size_t i = 0; i < 16; ++i) {
        char c = name[kPrefix.size() + i];
        if (!is_hex_lower(c)) return std::nullopt;
        generation = (generation << 4) | static_cast<uint64_t>(
                                             c <= '9' ? c - '0' : c - 'a' + 10);
    }
    return generation;
}

Status GenerationStore::init() { return fs_->make_dirs(dir_); }

Status GenerationStore::commit(std::string_view payload, uint64_t generation) {
    if (last_committed_ && *last_committed_ == generation) return Status::success();
    Status st = atomic_write_file(*fs_, dir_ + "/" + file_name(generation), payload, dir_);
    if (!st.ok()) return st;
    last_committed_ = generation;

    // Best-effort prune of generations older than the newest `keep_`.
    auto names = fs_->list_dir(dir_);
    if (!names.ok()) return Status::success();
    std::vector<uint64_t> generations;
    for (const std::string& name : *names) {
        if (auto gen = parse_file_name(name)) generations.push_back(*gen);
    }
    std::sort(generations.begin(), generations.end());
    if (generations.size() <= keep_) return Status::success();
    for (size_t i = 0; i + keep_ < generations.size(); ++i) {
        (void)fs_->remove(dir_ + "/" + file_name(generations[i]));
    }
    return Status::success();
}

Expected<RecoveredGeneration> GenerationStore::recover(const Validator& validate) {
    RecoveredGeneration recovered;
    auto names = fs_->list_dir(dir_);
    if (!names.ok()) {
        // An absent directory is an engine that never started, not an
        // error. (Fs::exists is file-only on some implementations, so
        // the listing itself is the existence probe.)
        if (names.error().code == "fs_not_found") return recovered;
        return Error{code_prefix_ + "_state_unreadable", "cannot read state dir " + dir_};
    }

    std::vector<uint64_t> generations;
    for (const std::string& name : *names) {
        if (auto gen = parse_file_name(name)) {
            generations.push_back(*gen);
        } else if (name.ends_with(".tmp")) {
            // An interrupted commit; the generation it was writing was
            // never acknowledged, so dropping it loses nothing.
            (void)fs_->remove(dir_ + "/" + name);
            ++recovered.stray_temp_files;
            recovered.notes.push_back("removed stray temp file " + name);
        }
    }
    std::sort(generations.rbegin(), generations.rend());

    for (uint64_t generation : generations) {
        std::string name = file_name(generation);
        auto bytes = fs_->read_file(dir_ + "/" + name);
        if (!bytes.ok()) {
            ++recovered.corrupt_skipped;
            recovered.notes.push_back(name + ": " + bytes.error().message);
            continue;
        }
        std::string payload(reinterpret_cast<const char*>(bytes->data()), bytes->size());
        Status valid = validate(payload);
        if (!valid.ok()) {
            ++recovered.corrupt_skipped;
            recovered.notes.push_back(name + ": " + valid.error().message);
            continue;
        }
        recovered.payload = std::move(payload);
        recovered.generation = generation;
        recovered.found = true;
        last_committed_ = generation;
        return recovered;
    }

    if (!generations.empty()) {
        // Commits are atomic, so a directory full of invalid
        // generations means an acknowledged commit was destroyed.
        return Error{code_prefix_ + "_unrecoverable",
                     "no checkpoint in " + dir_ + " validates (" +
                         std::to_string(generations.size()) + " present)"};
    }
    return recovered;
}

}  // namespace unicert::core
