// unicert/core/executor.h
//
// Work-stealing thread-pool executor — the repo's first concurrency
// layer, shared by ParallelPipeline and any future sharded consumer.
// Each worker owns a deque: the owner pushes and pops at the back
// (LIFO, cache-warm), idle workers steal from the front of a victim's
// deque (FIFO, oldest work first). External threads submit round-robin
// and may drain queued work themselves via try_run_one()/wait_idle(),
// so a blocked producer still makes progress on a saturated pool.
//
// The executor provides NO ordering guarantees — tasks run in whatever
// order stealing produces. Determinism is the caller's job: tag work
// with sequence numbers and merge results in tag order (the
// deterministic-merge invariant ParallelPipeline is built on).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace unicert::core {

class Executor {
public:
    // threads == 0 picks default_concurrency(). At least one worker
    // thread always exists, so waiting callers can never deadlock.
    explicit Executor(size_t threads = 0);

    // Drains every submitted task, then joins the workers.
    ~Executor();

    Executor(const Executor&) = delete;
    Executor& operator=(const Executor&) = delete;

    size_t worker_count() const noexcept { return workers_.size(); }

    // Enqueue one task. Tasks must not throw (a throwing task
    // terminates); recoverable failures belong in the task's own
    // result channel. Tasks may submit further tasks.
    void submit(std::function<void()> task);

    // Run one queued task on the calling thread, if any is ready.
    // Returns false when every queue was empty.
    bool try_run_one();

    // Block until every submitted task (including tasks submitted by
    // tasks) has finished. The calling thread participates by draining
    // queued work instead of idling.
    void wait_idle();

    // Tasks submitted and not yet finished.
    size_t inflight() const noexcept { return inflight_.load(std::memory_order_acquire); }

    // std::thread::hardware_concurrency with a floor of 1.
    static size_t default_concurrency() noexcept;

private:
    struct Worker {
        std::mutex mu;
        std::deque<std::function<void()>> queue;
    };

    void worker_loop(size_t id);
    // Pop from own back (id < worker_count) or steal from a victim's
    // front. `id == npos` means an external thread: steal only.
    bool take_task(size_t id, std::function<void()>& out);
    void run_task(std::function<void()>& task);

    static constexpr size_t npos = static_cast<size_t>(-1);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    // Wake protocol: queued_ counts tasks enqueued but not yet taken;
    // submit bumps it and signals wake_cv_ under wake_mu_ so a worker
    // checking the predicate cannot miss the wakeup.
    std::mutex wake_mu_;
    std::condition_variable wake_cv_;
    std::atomic<size_t> queued_{0};

    // Idle protocol: inflight_ counts tasks submitted but not finished;
    // the last finisher signals idle_cv_.
    std::mutex idle_mu_;
    std::condition_variable idle_cv_;
    std::atomic<size_t> inflight_{0};

    std::atomic<size_t> rr_{0};  // round-robin submit cursor
    std::atomic<bool> stop_{false};
};

}  // namespace unicert::core
