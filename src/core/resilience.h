// unicert/core/resilience.h
//
// Retry/backoff, deadline budgets and the failure-degradation ladder
// shared by the ingestion consumers (CompliancePipeline, Monitor::sync,
// the CLI tools). Everything is deterministic under test: the clock is
// injected and backoff jitter derives from a seeded hash, so a fault
// schedule replays identically run after run.
//
// Built as its own target (unicert_resilience) below ctlog in the
// layering so the CT modules can depend on it without a cycle.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/expected.h"

namespace unicert::core {

// Monotonic millisecond clock. Injectable so backoff is testable and
// chaos runs stay deterministic.
class Clock {
public:
    virtual ~Clock() = default;
    virtual int64_t now_ms() = 0;
    virtual void sleep_ms(int64_t ms) = 0;
};

// The process-wide wall clock (std::chrono::steady_clock).
Clock& system_clock();

// Manually advanced clock: sleep_ms() moves the epoch forward without
// blocking. Backoff schedules become pure arithmetic under test.
// Thread-safe: parallel shard tasks back off against a shared instance,
// and the slept total stays deterministic (a commutative sum) however
// the sleeps interleave.
class ManualClock final : public Clock {
public:
    ManualClock() = default;
    // Movable for value members; the atomics only make concurrent
    // sleeps safe, moving a clock mid-use was never supported.
    ManualClock(ManualClock&& other) noexcept
        : now_(other.now_.load(std::memory_order_relaxed)),
          slept_(other.slept_.load(std::memory_order_relaxed)) {}
    ManualClock& operator=(ManualClock&& other) noexcept {
        now_.store(other.now_.load(std::memory_order_relaxed), std::memory_order_relaxed);
        slept_.store(other.slept_.load(std::memory_order_relaxed), std::memory_order_relaxed);
        return *this;
    }

    int64_t now_ms() override { return now_.load(std::memory_order_relaxed); }
    void sleep_ms(int64_t ms) override {
        now_.fetch_add(ms, std::memory_order_relaxed);
        slept_.fetch_add(ms, std::memory_order_relaxed);
    }
    int64_t total_slept_ms() const noexcept { return slept_.load(std::memory_order_relaxed); }

private:
    std::atomic<int64_t> now_{0};
    std::atomic<int64_t> slept_{0};
};

// Errors worth retrying: the operation may succeed on a later attempt
// (flaky frontend, dropped response, stale read of a moving log).
bool is_transient_error(const Error& e) noexcept;

// The degradation ladder: retry transient faults; quarantine faults
// scoped to a single entry (bad DER, a lint that threw); abort only on
// stream-level failures the caller cannot skip past.
enum class FailureAction { kRetry, kQuarantine, kAbort };

const char* failure_action_name(FailureAction a) noexcept;

// Ladder verdict for an entry-scoped failure. Stream-scoped escalation
// (retry budget exhausted, deadline blown) is the caller's decision.
FailureAction classify_failure(const Error& e) noexcept;

// Capped exponential backoff with deterministic jitter.
struct RetryPolicy {
    int max_attempts = 4;            // total tries, including the first
    int64_t initial_backoff_ms = 10;
    double multiplier = 2.0;
    int64_t max_backoff_ms = 2000;   // cap before jitter
    // Jitter in [0, jitter_fraction] of the base delay, derived from
    // hash(jitter_seed, attempt) — no global RNG, replayable.
    double jitter_fraction = 0.25;
    uint64_t jitter_seed = 0;
    // Total time budget for one operation, spanning all attempts and
    // sleeps. 0 = unbounded. Retrying stops once the next sleep would
    // exceed the budget.
    int64_t deadline_ms = 0;

    // Delay after the `attempt`-th failure (1-based).
    int64_t backoff_ms(int attempt) const noexcept;
};

// Cooperative execution budget for one supervised operation: a
// wall-clock deadline plus a step limit, both measured against the
// injectable Clock so budget tests burn simulated time only. The
// supervised differential engine charges one step per profile call and
// aborts the evaluation when tick() reports a blown budget.
class BudgetGuard {
public:
    struct Limits {
        int64_t wall_ms = 0;     // 0 = unbounded
        uint64_t max_steps = 0;  // 0 = unbounded
    };

    BudgetGuard(Limits limits, Clock& clock)
        : limits_(limits), clock_(&clock), start_ms_(clock.now_ms()) {}

    // Account `steps` units of work, then check both budgets. Error
    // codes: "budget_deadline" (wall clock) / "budget_steps".
    Status tick(uint64_t steps = 1);

    // Re-check without consuming steps (e.g. after a call returns).
    Status check() const;

    uint64_t steps_used() const noexcept { return steps_; }
    int64_t elapsed_ms() const { return clock_->now_ms() - start_ms_; }

private:
    Limits limits_;
    Clock* clock_;
    int64_t start_ms_;
    uint64_t steps_ = 0;
};

// Attempt accounting for one retried operation.
struct RetryOutcome {
    int attempts = 1;     // tries made (>= 1)
    size_t retries = 0;   // attempts - 1
};

// Run `op` until it succeeds, fails permanently, or the policy's
// attempt/deadline budget runs out. Only transient errors are retried;
// the last error is returned verbatim when retries stop.
template <typename T>
Expected<T> retry(const RetryPolicy& policy, Clock& clock,
                  const std::function<Expected<T>()>& op, RetryOutcome* outcome = nullptr) {
    const int64_t start = clock.now_ms();
    int attempt = 1;
    for (;;) {
        Expected<T> result = op();
        if (outcome != nullptr) {
            outcome->attempts = attempt;
            outcome->retries = static_cast<size_t>(attempt - 1);
        }
        if (result.ok()) return result;
        if (!is_transient_error(result.error())) return result;
        if (attempt >= policy.max_attempts) return result;
        int64_t delay = policy.backoff_ms(attempt);
        if (policy.deadline_ms > 0 &&
            clock.now_ms() - start + delay > policy.deadline_ms) {
            return result;  // deadline budget exhausted
        }
        clock.sleep_ms(delay);
        ++attempt;
    }
}

}  // namespace unicert::core
