// unicert/core/generation_store.h
//
// Generic atomically-committed generation store: the checkpointing
// discipline the fuzzing campaigns established (DESIGN.md section 11),
// hoisted out of difffuzz so every long-running engine (campaigns, the
// threat-scenario engine, future ingestion jobs) lands its checksummed
// state the same way. Each generation is one opaque payload written
// with the write-temp-fsync-rename pattern through the core::Fs seam,
// so a crash at any filesystem operation leaves either the previous
// generation or the new one fully intact, never a mix. Recovery scans
// the directory newest-first and returns the first generation whose
// payload the caller-supplied validator accepts; torn or bit-rotted
// files are skipped (and noted), stray temp files from an interrupted
// commit are removed.
//
// The store is format-agnostic: payload integrity (the checksum
// trailer) belongs to the caller's serialization, which is what the
// validator checks during recovery.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/fs.h"

namespace unicert::core {

// What recover() found. `found == false` means an empty (or absent)
// state directory — a fresh engine, not an error.
struct RecoveredGeneration {
    std::string payload;
    uint64_t generation = 0;
    bool found = false;
    size_t corrupt_skipped = 0;       // generations the validator rejected
    size_t stray_temp_files = 0;      // interrupted-commit leftovers removed
    std::vector<std::string> notes;   // one line per skipped/cleaned file
};

class GenerationStore {
public:
    // Accepts a serialized payload during recovery; an error skips the
    // generation (with its message recorded in the notes).
    using Validator = std::function<Status(std::string_view payload)>;

    // `code_prefix` brands the error codes this store surfaces —
    // "<prefix>_state_unreadable" when the directory cannot be listed,
    // "<prefix>_unrecoverable" when generations exist but none
    // validates — so callers keep their domain-specific codes. Keeps
    // the newest `keep` generations on disk; older ones are pruned
    // (best-effort) after each successful commit.
    GenerationStore(Fs& fs, std::string dir, std::string code_prefix, size_t keep = 3);

    const std::string& dir() const noexcept { return dir_; }

    // mkdir -p the state directory.
    Status init();

    // Atomically commit `payload` as generation `generation`.
    // Idempotent per generation number: re-committing the same
    // generation is a no-op. Prune failures are swallowed — an old
    // generation left behind is garbage, not corruption.
    Status commit(std::string_view payload, uint64_t generation);

    // Newest generation `validate` accepts. Error code
    // <prefix>_unrecoverable when generation files exist but none
    // validates (an acknowledged commit was lost — the invariant the
    // kill-point sweeps assert never fires).
    Expected<RecoveredGeneration> recover(const Validator& validate);

    // Highest generation commit() has acknowledged this process run.
    std::optional<uint64_t> last_committed() const noexcept { return last_committed_; }

    // ckpt-<16 hex digits>.ckpt
    static std::string file_name(uint64_t generation);
    static std::optional<uint64_t> parse_file_name(std::string_view name);

private:
    Fs* fs_;
    std::string dir_;
    std::string code_prefix_;
    size_t keep_;
    std::optional<uint64_t> last_committed_;
};

}  // namespace unicert::core
