// unicert/core/log_ingest.h
//
// Adapter that turns one shard of a ctlog::LogSource into a
// core::CertSource so the compliance pipeline (serial or parallel)
// ingests CT logs directly. Entries are delivered as wire DER in log
// order; the cursor only advances on a delivery the pipeline received,
// so a transient fetch failure retries the same entry and the exposed
// ShardCheckpoint makes an aborted pass resumable without re-fetching
// or double-counting (the shard-level analogue of Monitor::sync's
// checkpoint).
#pragma once

#include "core/pipeline.h"
#include "ctlog/shard.h"

namespace unicert::core {

class LogCertSource final : public CertSource {
public:
    // Consume [range.begin, range.end) of `log`. `resume_at` rewinds or
    // fast-forwards the cursor inside the range (clamped), for resuming
    // from a prior checkpoint.
    LogCertSource(ctlog::LogSource& log, ctlog::ShardRange range);
    LogCertSource(ctlog::LogSource& log, const ctlog::ShardCheckpoint& resume);

    size_t size_hint() const override { return cursor_ >= range_.end ? 0 : range_.end - cursor_; }

    // Delivers the entry at the cursor as CertEntry{index, der}. A
    // response carrying a different index than requested is a stale
    // delivery, surfaced as the transient "stale_read" error so the
    // pipeline's retry ladder re-fetches; the cursor never advances on
    // an error.
    Expected<std::optional<CertEntry>> next() override;

    // Current durable position. `completed` is true once the cursor
    // reached range.end.
    ctlog::ShardCheckpoint checkpoint() const noexcept;

private:
    ctlog::LogSource* log_;
    ctlog::ShardRange range_;
    size_t cursor_;
};

}  // namespace unicert::core
