// unicert/core/json.h
//
// Minimal JSON emission for machine-readable linter output (the
// unicert_lint --json mode) and report export. Writer-only: the
// library never needs to parse JSON.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "lint/lint.h"

namespace unicert::core {

// JSON string escaping (control characters, quotes, backslash; UTF-8
// passes through verbatim).
std::string json_escape(std::string_view s);

// One certificate's lint report:
// {"noncompliant":true,"findings":[{"lint":...,"severity":...,
//  "type":...,"source":...,"new":...,"detail":...}]}
std::string lint_report_to_json(const lint::CertReport& report);

// The Table 1 taxonomy as JSON (for dashboards / diffing runs).
std::string taxonomy_to_json(const TaxonomyReport& report);

}  // namespace unicert::core
