// unicert/core/json.h
//
// Minimal JSON emission for machine-readable linter output (the
// unicert_lint --json mode) and report export. Writer-only: the
// library never needs to parse JSON.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "lint/lint.h"

namespace unicert::core {

// JSON string escaping (control characters, quotes, backslash; UTF-8
// passes through verbatim).
std::string json_escape(std::string_view s);

// One certificate's lint report:
// {"noncompliant":true,"findings":[{"lint":...,"severity":...,
//  "type":...,"source":...,"new":...,"detail":...}]}
std::string lint_report_to_json(const lint::CertReport& report);

// The Table 1 taxonomy as JSON (for dashboards / diffing runs).
std::string taxonomy_to_json(const TaxonomyReport& report);

// The Table 2 issuer ranking as JSON, in report order.
std::string issuer_report_to_json(const std::vector<IssuerRow>& rows);

// The Figure 3 validity CDFs as JSON: per-class counts, quantiles and
// the CDF sampled at the lifetime limits the paper discusses (90/365/
// 398/825 days…). Doubles are emitted with fixed precision so the
// output is byte-stable across runs — the golden-file tests diff it.
std::string validity_cdf_to_json(const ValidityCdf& cdf);

}  // namespace unicert::core
