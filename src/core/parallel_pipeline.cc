#include "core/parallel_pipeline.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <unordered_map>

#include "core/arena.h"
#include "core/executor.h"
#include "core/log_ingest.h"
#include "x509/lazy.h"
#include "x509/parser.h"

namespace unicert::core {
namespace {

// One dispatched delivery on the batched path.
struct WorkItem {
    size_t index = 0;                         // stream entry index (dedup identity)
    const ctlog::CorpusCert* meta = nullptr;  // corpus-backed entry
    Bytes der;                                // owned wire entry when meta == nullptr
    BytesView view;                           // borrowed wire entry (mmap-backed source)

    BytesView bytes() const noexcept { return view.empty() ? BytesView(der) : view; }
};

// Outcome of one delivery, in batch-local delivery order.
struct ItemResult {
    size_t index = 0;
    bool success = false;
    AnalyzedCert analyzed;         // valid when success
    QuarantineRecord quarantined;  // valid when !success
};

struct BatchResult {
    std::vector<ItemResult> items;
    std::deque<ctlog::CorpusCert> owned;  // wire-parsed certs for this batch
};

// Dedup state per entry index. Serial semantics: an index is only
// suppressed as a duplicate once an earlier delivery of it SUCCEEDED;
// failed deliveries (poison copies, throwing lints) are retried by the
// stream and must be re-processed.
enum class EntryOutcome { kInFlight, kSucceeded, kFailed };

struct MergeState {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<size_t, EntryOutcome> outcome;
    size_t successes_total = 0;  // linted certs across all finished batches
    size_t next_report = 0;      // last interval multiple surfaced via the hook
};

// Parse + lint one delivery: the per-entry half of the serial ladder,
// reproduced verbatim so batch workers make identical decisions.
ItemResult process_item(WorkItem& item, BatchResult& slot, const lint::Registry& registry,
                        const lint::RunOptions& lint_options) {
    ItemResult res;
    res.index = item.index;
    if (item.meta == nullptr) {
        // Wire entry: zero-copy index + lazy lint, materializing the
        // owning Certificate only on success — the batch worker mirror
        // of the serial ladder's wire path. One arena per worker
        // thread; a scope per item hands the memory back immediately.
        static thread_local core::Arena arena;
        ArenaScope scope(arena);
        auto lazy = x509::LazyCertificate::index(item.bytes(), &arena);
        if (!lazy.ok()) {
            res.quarantined = {item.index, QuarantineStage::kParse, lazy.error()};
            return res;
        }
        try {
            lint::CertReport report = lint::run_lints(*lazy, registry, lint_options);
            ctlog::CorpusCert materialized;
            materialized.cert = lazy->materialize();
            slot.owned.push_back(std::move(materialized));
            AnalyzedCert a;
            a.cert = &slot.owned.back();
            a.report = std::move(report);
            a.noncompliant = a.report.noncompliant();
            res.analyzed = std::move(a);
            res.success = true;
        } catch (const std::exception& ex) {
            res.quarantined = {item.index, QuarantineStage::kLint,
                               Error{"lint_exception", ex.what()}};
        } catch (...) {
            res.quarantined = {item.index, QuarantineStage::kLint,
                               Error{"lint_exception", "non-standard exception from lint rule"}};
        }
        return res;
    }
    try {
        AnalyzedCert a;
        a.cert = item.meta;
        a.report = lint::run_lints(item.meta->cert, registry, lint_options);
        a.noncompliant = a.report.noncompliant();
        res.analyzed = std::move(a);
        res.success = true;
    } catch (const std::exception& ex) {
        res.quarantined = {item.index, QuarantineStage::kLint, Error{"lint_exception", ex.what()}};
    } catch (...) {
        res.quarantined = {item.index, QuarantineStage::kLint,
                           Error{"lint_exception", "non-standard exception from lint rule"}};
    }
    return res;
}

size_t auto_batch_size(size_t size_hint, size_t jobs) {
    if (size_hint == 0) return 64;
    // Several batches per worker so stealing can balance skew.
    return std::clamp<size_t>(size_hint / (jobs * 8), 1, 1024);
}

}  // namespace

ParallelPipeline::ParallelPipeline(CertSource& source, PipelineOptions options,
                                   ParallelOptions parallel) {
    run_batched(source, options, parallel);
}

ParallelPipeline::ParallelPipeline(ctlog::LogSource& log, PipelineOptions options,
                                   ParallelOptions parallel) {
    run_sharded(log, {}, options, parallel);
}

ParallelPipeline::ParallelPipeline(ctlog::LogSource& log,
                                   std::vector<ctlog::ShardCheckpoint> resume,
                                   PipelineOptions options, ParallelOptions parallel) {
    run_sharded(log, std::move(resume), options, parallel);
}

void ParallelPipeline::run_batched(CertSource& source, const PipelineOptions& options,
                                   const ParallelOptions& parallel) {
    const lint::Registry& registry =
        options.registry != nullptr ? *options.registry : lint::default_registry();
    core::Clock& clock = options.clock != nullptr ? *options.clock : core::system_clock();

    jobs_ = parallel.jobs != 0 ? parallel.jobs : Executor::default_concurrency();
    const size_t size_hint = source.size_hint();
    const size_t batch_size =
        parallel.batch_size != 0 ? parallel.batch_size : auto_batch_size(size_hint, jobs_);

    Executor pool(jobs_);
    MergeState state;
    // Completed batches, in submission (= delivery) order. A deque so
    // the fetch thread appends while workers hold references to their
    // own slots; only this thread touches the container itself.
    std::deque<BatchResult> batches;
    std::vector<WorkItem> current;
    current.reserve(batch_size);

    auto flush = [&] {
        if (current.empty()) return;
        batches.emplace_back();
        BatchResult& slot = batches.back();
        pool.submit([items = std::move(current), &slot, &state, &registry, &options,
                     size_hint]() mutable {
            size_t successes = 0;
            for (WorkItem& item : items) {
                ItemResult res = process_item(item, slot, registry, options.lint_options);
                if (res.success) ++successes;
                slot.items.push_back(std::move(res));
            }
            std::lock_guard<std::mutex> lk(state.mu);
            for (const ItemResult& res : slot.items) {
                state.outcome[res.index] =
                    res.success ? EntryOutcome::kSucceeded : EntryOutcome::kFailed;
            }
            // Progress hook, serialized under the merge mutex: report
            // every crossed interval multiple once, like the serial
            // ladder does.
            state.successes_total += successes;
            if (options.progress && options.progress_interval > 0) {
                while (state.next_report + options.progress_interval <= state.successes_total) {
                    state.next_report += options.progress_interval;
                    options.progress(state.next_report, size_hint);
                }
            }
            state.cv.notify_all();
        });
        current = {};
        current.reserve(batch_size);
    };

    // Should a delivery of `index` be dispatched (true) or suppressed
    // as a duplicate (false)? Exactly the serial decision: suppress iff
    // an earlier delivery of the index succeeded. When that earlier
    // delivery is still in flight, flush and wait for its outcome.
    auto should_process = [&](size_t index) {
        std::unique_lock<std::mutex> lk(state.mu);
        auto it = state.outcome.find(index);
        if (it == state.outcome.end()) return true;
        if (it->second == EntryOutcome::kInFlight) {
            lk.unlock();
            flush();  // the in-flight copy may still sit in the open batch
            lk.lock();
            state.cv.wait(lk, [&] {
                return state.outcome.at(index) != EntryOutcome::kInFlight;
            });
            it = state.outcome.find(index);
        }
        return it->second == EntryOutcome::kFailed;
    };

    // The serial fetch ladder, verbatim — only the parse/lint work is
    // deferred to batches.
    bool aborted = false;
    Error abort_error;
    for (;;) {
        RetryOutcome outcome;
        auto item = core::retry<std::optional<CertEntry>>(
            options.retry, clock, [&] { return source.next(); }, &outcome);
        stats_.retries += outcome.retries;
        if (!item.ok()) {
            stats_.completed = false;
            stats_.abort_error = item.error();
            aborted = true;
            abort_error = item.error();
            break;
        }
        if (outcome.retries > 0) ++stats_.recovered;
        if (!item->has_value()) break;  // end of stream
        CertEntry entry = std::move(**item);

        if (!should_process(entry.index)) {
            ++stats_.duplicates;
            ++stats_.recovered;
            continue;
        }
        {
            std::lock_guard<std::mutex> lk(state.mu);
            state.outcome[entry.index] = EntryOutcome::kInFlight;
        }
        current.push_back({entry.index, entry.meta, std::move(entry.der), entry.view});
        if (current.size() >= batch_size) flush();
    }
    flush();
    pool.wait_idle();

    // Deterministic merge: batches in submission order, items in
    // delivery order — the exact interleaving the serial run emits.
    analyzed_.reserve(size_hint);
    for (BatchResult& batch : batches) {
        for (ItemResult& res : batch.items) {
            if (res.success) {
                if (res.analyzed.noncompliant) ++nc_count_;
                analyzed_.push_back(std::move(res.analyzed));
                ++stats_.processed;
            } else {
                quarantine_.records.push_back(std::move(res.quarantined));
                ++stats_.quarantined;
            }
        }
        if (!batch.owned.empty()) owned_shards_.push_back(std::move(batch.owned));
    }
    if (aborted) {
        // Serial appends the abort record after everything delivered so
        // far was resolved; its index is the unique-success count.
        size_t succeeded = 0;
        for (const auto& [index, outcome] : state.outcome) {
            if (outcome == EntryOutcome::kSucceeded) ++succeeded;
        }
        quarantine_.records.push_back({succeeded, QuarantineStage::kFetch, abort_error});
    }
}

void ParallelPipeline::run_sharded(ctlog::LogSource& log,
                                   std::vector<ctlog::ShardCheckpoint> shards,
                                   const PipelineOptions& options,
                                   const ParallelOptions& parallel) {
    const lint::Registry& registry =
        options.registry != nullptr ? *options.registry : lint::default_registry();
    core::Clock& clock = options.clock != nullptr ? *options.clock : core::system_clock();
    jobs_ = parallel.jobs != 0 ? parallel.jobs : Executor::default_concurrency();

    if (shards.empty()) {
        RetryOutcome outcome;
        auto sth = core::retry<ctlog::SignedTreeHead>(
            options.retry, clock, [&] { return log.latest_tree_head(); }, &outcome);
        stats_.retries += outcome.retries;
        if (!sth.ok()) {
            stats_.completed = false;
            stats_.abort_error = sth.error();
            quarantine_.records.push_back({0, QuarantineStage::kFetch, sth.error()});
            return;
        }
        if (outcome.retries > 0) ++stats_.recovered;
        const size_t shard_count = parallel.shards != 0 ? parallel.shards : jobs_;
        for (const ctlog::ShardRange& range : ctlog::shard_ranges(sth->tree_size, shard_count)) {
            shards.push_back({range, range.begin, false});
        }
    }
    shard_checkpoints_ = std::move(shards);

    // Serialize the progress hook across shards; each shard reports
    // whole intervals, accumulated into one global counter.
    std::mutex progress_mu;
    size_t progress_total = 0;
    size_t total_remaining = 0;
    for (const ctlog::ShardCheckpoint& cp : shard_checkpoints_) total_remaining += cp.remaining();
    PipelineOptions shard_options = options;
    if (options.progress && options.progress_interval > 0) {
        shard_options.progress = [&](size_t, size_t) {
            std::lock_guard<std::mutex> lk(progress_mu);
            progress_total += options.progress_interval;
            options.progress(progress_total, total_remaining);
        };
    }

    std::vector<internal::StreamState> states(shard_checkpoints_.size());
    {
        Executor pool(jobs_);
        for (size_t i = 0; i < shard_checkpoints_.size(); ++i) {
            if (shard_checkpoints_[i].completed) continue;
            pool.submit([this, i, &log, &states, &shard_options, &registry, &clock] {
                LogCertSource source(log, shard_checkpoints_[i]);
                internal::run_stream(source, shard_options, registry, clock, states[i]);
                // An aborted stream leaves the cursor at the failing
                // entry, so completed stays false and resume retries it.
                shard_checkpoints_[i] = source.checkpoint();
            });
        }
        pool.wait_idle();
    }

    // Deterministic merge: shards are contiguous index ranges, so
    // concatenating them in range order reproduces global log order.
    for (internal::StreamState& s : states) {
        for (AnalyzedCert& a : s.analyzed) analyzed_.push_back(std::move(a));
        if (!s.owned.empty()) owned_shards_.push_back(std::move(s.owned));
        for (QuarantineRecord& r : s.quarantine.records) {
            quarantine_.records.push_back(std::move(r));
        }
        nc_count_ += s.nc_count;
        stats_.processed += s.stats.processed;
        stats_.recovered += s.stats.recovered;
        stats_.quarantined += s.stats.quarantined;
        stats_.retries += s.stats.retries;
        stats_.duplicates += s.stats.duplicates;
        if (!s.stats.completed) {
            stats_.completed = false;
            if (stats_.abort_error.code.empty()) stats_.abort_error = s.stats.abort_error;
        }
    }
}

}  // namespace unicert::core
