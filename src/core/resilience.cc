#include "core/resilience.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <thread>

namespace unicert::core {
namespace {

class SystemClock final : public Clock {
public:
    int64_t now_ms() override {
        using namespace std::chrono;
        return duration_cast<milliseconds>(steady_clock::now().time_since_epoch()).count();
    }
    void sleep_ms(int64_t ms) override {
        if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
};

// splitmix64: the one-shot mixer behind the deterministic jitter.
uint64_t mix64(uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

}  // namespace

Clock& system_clock() {
    static SystemClock clock;
    return clock;
}

bool is_transient_error(const Error& e) noexcept {
    std::string_view code = e.code;
    return code == "unavailable" || code == "timeout" || code == "stale_read" ||
           code == "entry_dropped";
}

const char* failure_action_name(FailureAction a) noexcept {
    switch (a) {
        case FailureAction::kRetry: return "retry";
        case FailureAction::kQuarantine: return "quarantine";
        case FailureAction::kAbort: return "abort";
    }
    return "?";
}

FailureAction classify_failure(const Error& e) noexcept {
    if (is_transient_error(e)) return FailureAction::kRetry;
    std::string_view code = e.code;
    // Stream-level integrity failures: skipping past them would silently
    // corrupt the measurement, so the consumer must stop and report.
    if (code == "split_view" || code == "source_closed" || code == "aborted") {
        return FailureAction::kAbort;
    }
    // Everything else is scoped to one entry (malformed DER, a rule that
    // threw, an out-of-range proof request): isolate and continue.
    return FailureAction::kQuarantine;
}

Status BudgetGuard::tick(uint64_t steps) {
    steps_ += steps;
    if (limits_.max_steps > 0 && steps_ > limits_.max_steps) {
        return Error{"budget_steps",
                     "step budget exceeded: " + std::to_string(steps_) + " > " +
                         std::to_string(limits_.max_steps)};
    }
    return check();
}

Status BudgetGuard::check() const {
    if (limits_.wall_ms > 0) {
        int64_t elapsed = elapsed_ms();
        if (elapsed > limits_.wall_ms) {
            return Error{"budget_deadline",
                         "wall budget exceeded: " + std::to_string(elapsed) + "ms > " +
                             std::to_string(limits_.wall_ms) + "ms"};
        }
    }
    return Status::success();
}

int64_t RetryPolicy::backoff_ms(int attempt) const noexcept {
    if (attempt < 1) attempt = 1;
    double base = static_cast<double>(initial_backoff_ms);
    for (int i = 1; i < attempt; ++i) {
        base *= multiplier;
        if (base >= static_cast<double>(max_backoff_ms)) break;
    }
    base = std::min(base, static_cast<double>(max_backoff_ms));
    // Deterministic jitter in [0, jitter_fraction] of the base delay.
    uint64_t h = mix64(jitter_seed ^ (0xA5A5A5A5ULL + static_cast<uint64_t>(attempt)));
    double unit = static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
    double jitter = jitter_fraction > 0 ? base * jitter_fraction * unit : 0.0;
    return static_cast<int64_t>(base + jitter);
}

}  // namespace unicert::core
