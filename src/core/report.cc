#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace unicert::core {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
        for (size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
    }

    auto render_row = [&](const std::vector<std::string>& cells) {
        std::string line = "|";
        for (size_t i = 0; i < headers_.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
        }
        return line + "\n";
    };

    std::string sep = "+";
    for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
    sep += "\n";

    std::string out = sep + render_row(headers_) + sep;
    for (const auto& row : rows_) out += render_row(row);
    out += sep;
    return out;
}

std::string percent(double fraction, int decimals) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string with_commas(size_t value) {
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count > 0 && count % 3 == 0) out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string compact(size_t value) {
    char buf[32];
    if (value >= 1000000) {
        std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(value) / 1e6);
    } else if (value >= 1000) {
        std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(value) / 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%zu", value);
    }
    return buf;
}

std::string log_bar(size_t value, size_t scale) {
    if (value == 0) return "";
    double len = std::log10(static_cast<double>(value) + 1.0) * static_cast<double>(scale);
    return std::string(static_cast<size_t>(len), '#');
}

}  // namespace unicert::core
