#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace unicert::core {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
        for (size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
    }

    auto render_row = [&](const std::vector<std::string>& cells) {
        std::string line = "|";
        for (size_t i = 0; i < headers_.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
        }
        return line + "\n";
    };

    std::string sep = "+";
    for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
    sep += "\n";

    std::string out = sep + render_row(headers_) + sep;
    for (const auto& row : rows_) out += render_row(row);
    out += sep;
    return out;
}

std::string percent(double fraction, int decimals) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string with_commas(size_t value) {
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count > 0 && count % 3 == 0) out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string compact(size_t value) {
    char buf[32];
    if (value >= 1000000) {
        std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(value) / 1e6);
    } else if (value >= 1000) {
        std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(value) / 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%zu", value);
    }
    return buf;
}

std::string log_bar(size_t value, size_t scale) {
    if (value == 0) return "";
    double len = std::log10(static_cast<double>(value) + 1.0) * static_cast<double>(scale);
    return std::string(static_cast<size_t>(len), '#');
}

std::string render_pipeline_stats(const PipelineStats& stats) {
    TextTable table({"processed", "recovered", "quarantined", "retries", "duplicates"});
    table.add_row({with_commas(stats.processed), with_commas(stats.recovered),
                   with_commas(stats.quarantined), with_commas(stats.retries),
                   with_commas(stats.duplicates)});
    std::string out = table.to_string();
    if (!stats.completed) {
        out += "ABORTED: [" + stats.abort_error.code + "] " + stats.abort_error.message + "\n";
    }
    return out;
}

std::string render_quarantine_report(const QuarantineReport& report, size_t max_rows) {
    if (report.records.empty()) return "quarantine: empty\n";
    TextTable table({"entry", "stage", "code", "byte offset", "detail"});
    size_t shown = 0;
    for (const QuarantineRecord& record : report.records) {
        if (shown == max_rows) break;
        table.add_row({std::to_string(record.entry_index),
                       quarantine_stage_name(record.stage), record.error.code,
                       record.error.has_offset() ? std::to_string(record.error.offset) : "-",
                       record.error.message});
        ++shown;
    }
    std::string out = table.to_string();
    if (report.records.size() > shown) {
        out += "… " + with_commas(report.records.size() - shown) + " more quarantined\n";
    }
    return out;
}

}  // namespace unicert::core
