#include "core/executor.h"

#include <chrono>

namespace unicert::core {

size_t Executor::default_concurrency() noexcept {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
}

Executor::Executor(size_t threads) {
    if (threads == 0) threads = default_concurrency();
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
    }
}

Executor::~Executor() {
    wait_idle();
    stop_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lk(wake_mu_);
    }
    wake_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void Executor::submit(std::function<void()> task) {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    size_t slot = rr_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
    {
        std::lock_guard<std::mutex> lk(workers_[slot]->mu);
        workers_[slot]->queue.push_back(std::move(task));
    }
    queued_.fetch_add(1, std::memory_order_acq_rel);
    {
        // Empty critical section orders the queued_ increment before any
        // worker's predicate re-check, closing the lost-wakeup window.
        std::lock_guard<std::mutex> lk(wake_mu_);
    }
    wake_cv_.notify_one();
}

bool Executor::take_task(size_t id, std::function<void()>& out) {
    const size_t n = workers_.size();
    // Own queue first, newest work (back): it is the cache-warm end.
    if (id != npos) {
        Worker& own = *workers_[id];
        std::lock_guard<std::mutex> lk(own.mu);
        if (!own.queue.empty()) {
            out = std::move(own.queue.back());
            own.queue.pop_back();
            return true;
        }
    }
    // Steal oldest work (front) from the next victims in ring order.
    const size_t start = id == npos ? 0 : id + 1;
    for (size_t k = 0; k < n; ++k) {
        size_t victim = (start + k) % n;
        if (victim == id) continue;
        Worker& w = *workers_[victim];
        std::lock_guard<std::mutex> lk(w.mu);
        if (!w.queue.empty()) {
            out = std::move(w.queue.front());
            w.queue.pop_front();
            return true;
        }
    }
    return false;
}

void Executor::run_task(std::function<void()>& task) {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    task();
    task = nullptr;  // release captures before signalling idle
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        {
            std::lock_guard<std::mutex> lk(idle_mu_);
        }
        idle_cv_.notify_all();
    }
}

bool Executor::try_run_one() {
    std::function<void()> task;
    if (!take_task(npos, task)) return false;
    run_task(task);
    return true;
}

void Executor::worker_loop(size_t id) {
    for (;;) {
        std::function<void()> task;
        if (take_task(id, task)) {
            run_task(task);
            continue;
        }
        std::unique_lock<std::mutex> lk(wake_mu_);
        wake_cv_.wait(lk, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   queued_.load(std::memory_order_acquire) > 0;
        });
        if (stop_.load(std::memory_order_acquire) &&
            queued_.load(std::memory_order_acquire) == 0) {
            return;
        }
    }
}

void Executor::wait_idle() {
    while (inflight_.load(std::memory_order_acquire) > 0) {
        if (try_run_one()) continue;
        // Nothing stealable: either all remaining work is running on
        // workers, or a running task is about to submit more. Sleep on
        // the idle signal with a short recheck so helper draining
        // resumes if new tasks appear.
        std::unique_lock<std::mutex> lk(idle_mu_);
        idle_cv_.wait_for(lk, std::chrono::milliseconds(1), [this] {
            return inflight_.load(std::memory_order_acquire) == 0;
        });
    }
}

}  // namespace unicert::core
