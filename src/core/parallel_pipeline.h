// unicert/core/parallel_pipeline.h
//
// The parallel compliance pipeline: shard a certificate stream across
// the work-stealing Executor and merge shard results with a
// deterministic, input-order-respecting reducer, so that for every
// (corpus, lint set, thread count, fault plan) the emitted report,
// stats, and quarantine list are byte-identical to the serial
// CompliancePipeline. Two ingestion shapes:
//
//  * CertSource: a generic pull stream is inherently serial, so the
//    constructor thread runs the exact serial fetch/retry/dedup ladder
//    and fans parse + lint (the hot path) out in bounded batches.
//    Batches carry sequence tags; the reducer reassembles results in
//    delivery order. Because dedup decisions depend on whether an
//    earlier delivery of the same index succeeded (a poison copy fails
//    parse; the intact original must then be processed), the fetch
//    thread stalls on the rare in-flight-index collision until that
//    entry's outcome is known — the serial decision, reproduced.
//
//  * ctlog::LogSource: entry fetches are random-access, so the log
//    shards into contiguous ranges (ctlog::shard_ranges) and each
//    shard runs the full streaming ladder — fetch, retry, parse, lint,
//    quarantine — concurrently via internal::run_stream over its own
//    LogCertSource. Shards merge in range order (= log order), and
//    each exposes a ShardCheckpoint so an aborted pass resumes per
//    shard (PR 1's resumable-sync property, survived into parallel
//    ingestion). Requires the LogSource to tolerate concurrent reads
//    when jobs > 1 (InMemoryLogSource and FaultyLogSource both do).
//
// See DESIGN.md §8 for the concurrency model and the reentrancy
// contract lint rules must satisfy.
#pragma once

#include <vector>

#include "core/pipeline.h"
#include "ctlog/shard.h"

namespace unicert::core {

struct ParallelOptions {
    // Worker threads. 0 = Executor::default_concurrency().
    size_t jobs = 0;
    // Entries per lint batch on the CertSource path. 0 = auto (sized
    // so every worker sees several batches).
    size_t batch_size = 0;
    // Shard count on the LogSource path. 0 = jobs.
    size_t shards = 0;
};

class ParallelPipeline : public CompliancePipeline {
public:
    // Generic stream: serial fetch ladder + parallel parse/lint.
    explicit ParallelPipeline(CertSource& source, PipelineOptions options = {},
                              ParallelOptions parallel = {});

    // Sharded CT-log ingestion over [0, latest_tree_head().tree_size).
    explicit ParallelPipeline(ctlog::LogSource& log, PipelineOptions options = {},
                              ParallelOptions parallel = {});

    // Resume a previous sharded ingestion: completed shards are
    // skipped, aborted shards continue from their cursor. The merged
    // result covers only entries processed by THIS pass.
    ParallelPipeline(ctlog::LogSource& log, std::vector<ctlog::ShardCheckpoint> resume,
                     PipelineOptions options = {}, ParallelOptions parallel = {});

    size_t jobs() const noexcept { return jobs_; }

    // LogSource path only: one checkpoint per shard, in range order.
    // Empty for CertSource runs.
    const std::vector<ctlog::ShardCheckpoint>& shard_checkpoints() const noexcept {
        return shard_checkpoints_;
    }

private:
    void run_batched(CertSource& source, const PipelineOptions& options,
                     const ParallelOptions& parallel);
    void run_sharded(ctlog::LogSource& log, std::vector<ctlog::ShardCheckpoint> shards,
                     const PipelineOptions& options, const ParallelOptions& parallel);

    size_t jobs_ = 1;
    std::vector<ctlog::ShardCheckpoint> shard_checkpoints_;
};

}  // namespace unicert::core
