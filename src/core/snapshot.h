// unicert/core/snapshot.h
//
// MVCC-style snapshot pinning: a single-slot publisher/reader seam for
// immutable generations. A publisher installs a new shared_ptr'd
// generation; readers pin the current one and keep using it for as
// long as they hold the pointer, no matter how many newer generations
// are published (or how the files behind them are pruned) in the
// meantime. This is the concurrency contract of the monitor query
// service: index generations are epoch-tagged immutable values, and a
// reader mid-query never observes a generation change.
//
// The slot is deliberately tiny — a mutex around a shared_ptr plus a
// monotonically increasing version — because correctness under TSan
// matters more here than lock-free cleverness; pin() is two atomic
// refcount ops and a mutex hop, far below the cost of any query.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace unicert::core {

template <typename T>
class VersionedSlot {
public:
    // Pin the current generation (nullptr when none was ever
    // published). The caller owns a reference: the generation stays
    // alive until every pin is dropped, even across publish().
    std::shared_ptr<const T> pin() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return current_;
    }

    // Install a new generation; readers pinned to the old one are
    // unaffected. Returns the slot version after the publish.
    uint64_t publish(std::shared_ptr<const T> next) {
        std::lock_guard<std::mutex> lock(mutex_);
        current_ = std::move(next);
        return ++version_;
    }

    // Drop the current generation (readers holding pins keep theirs).
    void clear() {
        std::lock_guard<std::mutex> lock(mutex_);
        current_.reset();
        ++version_;
    }

    // Number of publish()/clear() calls so far; 0 = never published.
    uint64_t version() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return version_;
    }

    bool empty() const { return pin() == nullptr; }

private:
    mutable std::mutex mutex_;
    std::shared_ptr<const T> current_;
    uint64_t version_ = 0;
};

}  // namespace unicert::core
