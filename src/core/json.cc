#include "core/json.h"

#include <cstdio>

namespace unicert::core {

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(static_cast<char>(c));
                }
        }
    }
    return out;
}

std::string lint_report_to_json(const lint::CertReport& report) {
    std::string out = "{\"noncompliant\":";
    out += report.noncompliant() ? "true" : "false";
    out += ",\"errors\":";
    out += report.has_error() ? "true" : "false";
    out += ",\"findings\":[";
    bool first = true;
    for (const lint::Finding& f : report.findings) {
        if (!first) out += ",";
        first = false;
        out += "{\"lint\":\"" + json_escape(f.lint->name) + "\"";
        out += ",\"severity\":\"" + std::string(lint::severity_name(f.lint->severity)) + "\"";
        out += ",\"type\":\"" + std::string(lint::nc_type_name(f.lint->type)) + "\"";
        out += ",\"source\":\"" + std::string(lint::source_name(f.lint->source)) + "\"";
        out += ",\"new\":";
        out += f.lint->is_new ? "true" : "false";
        out += ",\"detail\":\"" + json_escape(f.detail) + "\"}";
    }
    out += "]}";
    return out;
}

std::string taxonomy_to_json(const TaxonomyReport& report) {
    std::string out = "{\"total_certs\":" + std::to_string(report.total_certs);
    out += ",\"total_noncompliant\":" + std::to_string(report.total_nc);
    out += ",\"noncompliant_trusted\":" + std::to_string(report.total_nc_trusted);
    out += ",\"types\":[";
    bool first = true;
    for (const TaxonomyRow& row : report.rows) {
        if (!first) out += ",";
        first = false;
        out += "{\"type\":\"" + std::string(lint::nc_type_name(row.type)) + "\"";
        out += ",\"lints\":" + std::to_string(row.lints_all);
        out += ",\"lints_new\":" + std::to_string(row.lints_new);
        out += ",\"nc_certs\":" + std::to_string(row.nc_certs);
        out += ",\"nc_certs_by_new\":" + std::to_string(row.nc_certs_new);
        out += ",\"error_certs\":" + std::to_string(row.error_certs);
        out += ",\"warning_certs\":" + std::to_string(row.warning_certs);
        out += ",\"trusted_certs\":" + std::to_string(row.trusted_certs);
        out += ",\"recent_certs\":" + std::to_string(row.recent_certs);
        out += ",\"alive_certs\":" + std::to_string(row.alive_certs) + "}";
    }
    out += "]}";
    return out;
}

}  // namespace unicert::core
