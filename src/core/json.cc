#include "core/json.h"

#include <cstdio>

namespace unicert::core {

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(static_cast<char>(c));
                }
        }
    }
    return out;
}

std::string lint_report_to_json(const lint::CertReport& report) {
    std::string out = "{\"noncompliant\":";
    out += report.noncompliant() ? "true" : "false";
    out += ",\"errors\":";
    out += report.has_error() ? "true" : "false";
    out += ",\"findings\":[";
    bool first = true;
    for (const lint::Finding& f : report.findings) {
        if (!first) out += ",";
        first = false;
        out += "{\"lint\":\"" + json_escape(f.lint->name) + "\"";
        out += ",\"severity\":\"" + std::string(lint::severity_name(f.lint->severity)) + "\"";
        out += ",\"type\":\"" + std::string(lint::nc_type_name(f.lint->type)) + "\"";
        out += ",\"source\":\"" + std::string(lint::source_name(f.lint->source)) + "\"";
        out += ",\"new\":";
        out += f.lint->is_new ? "true" : "false";
        out += ",\"detail\":\"" + json_escape(f.detail) + "\"}";
    }
    out += "]}";
    return out;
}

std::string taxonomy_to_json(const TaxonomyReport& report) {
    std::string out = "{\"total_certs\":" + std::to_string(report.total_certs);
    out += ",\"total_noncompliant\":" + std::to_string(report.total_nc);
    out += ",\"noncompliant_trusted\":" + std::to_string(report.total_nc_trusted);
    out += ",\"types\":[";
    bool first = true;
    for (const TaxonomyRow& row : report.rows) {
        if (!first) out += ",";
        first = false;
        out += "{\"type\":\"" + std::string(lint::nc_type_name(row.type)) + "\"";
        out += ",\"lints\":" + std::to_string(row.lints_all);
        out += ",\"lints_new\":" + std::to_string(row.lints_new);
        out += ",\"nc_certs\":" + std::to_string(row.nc_certs);
        out += ",\"nc_certs_by_new\":" + std::to_string(row.nc_certs_new);
        out += ",\"error_certs\":" + std::to_string(row.error_certs);
        out += ",\"warning_certs\":" + std::to_string(row.warning_certs);
        out += ",\"trusted_certs\":" + std::to_string(row.trusted_certs);
        out += ",\"recent_certs\":" + std::to_string(row.recent_certs);
        out += ",\"alive_certs\":" + std::to_string(row.alive_certs) + "}";
    }
    out += "]}";
    return out;
}

std::string issuer_report_to_json(const std::vector<IssuerRow>& rows) {
    std::string out = "{\"issuers\":[";
    bool first = true;
    for (const IssuerRow& row : rows) {
        if (!first) out += ",";
        first = false;
        out += "{\"organization\":\"" + json_escape(row.organization) + "\"";
        out += ",\"trust\":\"" + std::string(ctlog::trust_status_label(row.trust)) + "\"";
        out += ",\"region\":\"" + json_escape(row.region) + "\"";
        out += ",\"total\":" + std::to_string(row.total);
        out += ",\"noncompliant\":" + std::to_string(row.noncompliant);
        out += ",\"recent_noncompliant\":" + std::to_string(row.recent_nc) + "}";
    }
    out += "]}";
    return out;
}

namespace {

std::string fixed(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return buf;
}

std::string cdf_class_to_json(const std::vector<int64_t>& sorted) {
    std::string out = "{\"count\":" + std::to_string(sorted.size());
    out += ",\"quantiles\":{";
    bool first = true;
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
        if (!first) out += ",";
        first = false;
        out += "\"p" + std::to_string(static_cast<int>(q * 100)) + "\":" +
               fixed(ValidityCdf::quantile(sorted, q));
    }
    out += "},\"cdf_at_days\":{";
    first = true;
    for (int64_t days : {90, 180, 365, 398, 730, 825, 1185}) {
        if (!first) out += ",";
        first = false;
        out += "\"" + std::to_string(days) + "\":" +
               fixed(ValidityCdf::cdf_at(sorted, days));
    }
    out += "}}";
    return out;
}

}  // namespace

std::string validity_cdf_to_json(const ValidityCdf& cdf) {
    std::string out = "{\"idn_certs\":" + cdf_class_to_json(cdf.idn_certs);
    out += ",\"other_unicerts\":" + cdf_class_to_json(cdf.other_unicerts);
    out += ",\"noncompliant\":" + cdf_class_to_json(cdf.noncompliant);
    out += "}";
    return out;
}

}  // namespace unicert::core
