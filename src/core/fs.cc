#include "core/fs.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace unicert::core {
namespace {

namespace stdfs = std::filesystem;

Error errno_error(std::string code, const std::string& path) {
    return Error{std::move(code), path + ": " + std::strerror(errno)};
}

// POSIX-fd file so sync() is a real fsync. ofstream cannot express
// that (flush only drains the stream buffer into the page cache).
class PosixFile final : public File {
public:
    explicit PosixFile(int fd) : fd_(fd) {}
    ~PosixFile() override { (void)close(); }

    Expected<size_t> write(BytesView data) override {
        if (fd_ < 0) return Error{"fs_write_failed", "write on closed file"};
        size_t written = 0;
        while (written < data.size()) {
            ssize_t n = ::write(fd_, data.data() + written, data.size() - written);
            if (n < 0) {
                if (errno == EINTR) continue;
                if (errno == ENOSPC) return Error{"fs_no_space", std::strerror(errno)};
                return Error{"fs_write_failed", std::strerror(errno)};
            }
            if (n == 0) break;
            written += static_cast<size_t>(n);
        }
        return written;
    }

    Status sync() override {
        if (fd_ < 0) return Error{"fs_sync_failed", "sync on closed file"};
        if (::fsync(fd_) != 0) return Error{"fs_sync_failed", std::strerror(errno)};
        return Status::success();
    }

    Status close() override {
        if (fd_ < 0) return Status::success();
        int fd = fd_;
        fd_ = -1;
        if (::close(fd) != 0) return Error{"fs_close_failed", std::strerror(errno)};
        return Status::success();
    }

private:
    int fd_;
};

// Heap-owned buffer: the default map_readonly result and the empty-file
// case of the real one.
class OwnedBuffer final : public MappedBuffer {
public:
    explicit OwnedBuffer(Bytes data) : data_(std::move(data)) {}

    BytesView view() const noexcept override { return data_; }

private:
    Bytes data_;
};

// A real PROT_READ/MAP_PRIVATE mapping.
class MmapBuffer final : public MappedBuffer {
public:
    MmapBuffer(void* addr, size_t len) : addr_(addr), len_(len) {}
    ~MmapBuffer() override { ::munmap(addr_, len_); }

    MmapBuffer(const MmapBuffer&) = delete;
    MmapBuffer& operator=(const MmapBuffer&) = delete;

    BytesView view() const noexcept override {
        return {static_cast<const uint8_t*>(addr_), len_};
    }

private:
    void* addr_;
    size_t len_;
};

class RealFs final : public Fs {
public:
    Expected<FilePtr> open_append(const std::string& path) override {
        int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd < 0) return errno_error("fs_open_failed", path);
        return FilePtr(new PosixFile(fd));
    }

    Expected<FilePtr> create(const std::string& path) override {
        int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd < 0) return errno_error("fs_open_failed", path);
        return FilePtr(new PosixFile(fd));
    }

    Expected<Bytes> read_file(const std::string& path) override {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) {
            return errno == ENOENT ? errno_error("fs_not_found", path)
                                   : errno_error("fs_read_failed", path);
        }
        Bytes out;
        uint8_t buf[1 << 16];
        for (;;) {
            ssize_t n = ::read(fd, buf, sizeof(buf));
            if (n < 0) {
                if (errno == EINTR) continue;
                Error e = errno_error("fs_read_failed", path);
                ::close(fd);
                return e;
            }
            if (n == 0) break;
            out.insert(out.end(), buf, buf + n);
        }
        ::close(fd);
        return out;
    }

    Expected<bool> exists(const std::string& path) override {
        std::error_code ec;
        bool found = stdfs::exists(path, ec);
        if (ec) return Error{"fs_read_failed", path + ": " + ec.message()};
        return found;
    }

    Status rename(const std::string& from, const std::string& to) override {
        if (::rename(from.c_str(), to.c_str()) != 0) {
            return errno_error("fs_rename_failed", from + " -> " + to);
        }
        return Status::success();
    }

    Status remove(const std::string& path) override {
        if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
            return errno_error("fs_remove_failed", path);
        }
        return Status::success();
    }

    Status make_dirs(const std::string& path) override {
        std::error_code ec;
        stdfs::create_directories(path, ec);
        if (ec) return Error{"fs_mkdir_failed", path + ": " + ec.message()};
        return Status::success();
    }

    Expected<std::vector<std::string>> list_dir(const std::string& path) override {
        std::error_code ec;
        stdfs::directory_iterator it(path, ec);
        if (ec) return Error{"fs_not_found", path + ": " + ec.message()};
        std::vector<std::string> names;
        for (const stdfs::directory_entry& entry : it) {
            if (entry.is_regular_file(ec)) names.push_back(entry.path().filename().string());
        }
        std::sort(names.begin(), names.end());
        return names;
    }

    Status sync_dir(const std::string& path) override {
        int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
        if (fd < 0) return errno_error("fs_sync_failed", path);
        int rc = ::fsync(fd);
        ::close(fd);
        if (rc != 0) return errno_error("fs_sync_failed", path);
        return Status::success();
    }

    Expected<MappedPtr> map_readonly(const std::string& path) override {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) {
            return errno == ENOENT ? errno_error("fs_not_found", path)
                                   : errno_error("fs_read_failed", path);
        }
        struct stat st{};
        if (::fstat(fd, &st) != 0) {
            Error e = errno_error("fs_read_failed", path);
            ::close(fd);
            return e;
        }
        size_t len = static_cast<size_t>(st.st_size);
        if (len == 0) {
            ::close(fd);
            return MappedPtr(new OwnedBuffer({}));
        }
        void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);  // the mapping keeps its own reference
        if (addr == MAP_FAILED) return errno_error("fs_read_failed", path);
        return MappedPtr(new MmapBuffer(addr, len));
    }
};

std::string parent_dir(const std::string& path) {
    size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

Expected<MappedPtr> Fs::map_readonly(const std::string& path) {
    auto data = read_file(path);
    if (!data.ok()) return data.error();
    return MappedPtr(new OwnedBuffer(std::move(data).value()));
}

Fs& real_fs() {
    static RealFs fs;
    return fs;
}

// ---- MemFs -----------------------------------------------------------------

// Handle into a MemFs file. Generation-checked so simulate_crash() and
// remove() invalidate outstanding handles instead of resurrecting state.
class MemFile final : public File {
public:
    MemFile(MemFs* fs, std::string path, uint64_t generation)
        : fs_(fs), path_(std::move(path)), generation_(generation) {}

    Expected<size_t> write(BytesView data) override {
        MemFs::FileState* state = resolve();
        if (state == nullptr) return Error{"fs_write_failed", path_ + ": stale handle"};
        append(state->content, data);
        return data.size();
    }

    Status sync() override {
        MemFs::FileState* state = resolve();
        if (state == nullptr) return Error{"fs_sync_failed", path_ + ": stale handle"};
        state->durable = state->content;
        state->ever_synced = true;
        return Status::success();
    }

    Status close() override {
        closed_ = true;
        return Status::success();
    }

private:
    MemFs::FileState* resolve() {
        if (closed_) return nullptr;
        auto it = fs_->files_.find(path_);
        if (it == fs_->files_.end() || it->second.generation != generation_) return nullptr;
        return &it->second;
    }

    MemFs* fs_;
    std::string path_;
    uint64_t generation_;
    bool closed_ = false;
};

Expected<FilePtr> MemFs::open_append(const std::string& path) {
    FileState& state = files_[path];  // creates when absent
    return FilePtr(new MemFile(this, path, state.generation));
}

Expected<FilePtr> MemFs::create(const std::string& path) {
    FileState& state = files_[path];
    state.content.clear();
    // Truncation of a previously durable file is itself volatile until
    // the next sync; the durable snapshot survives a crash.
    return FilePtr(new MemFile(this, path, state.generation));
}

Expected<Bytes> MemFs::read_file(const std::string& path) {
    auto it = files_.find(path);
    if (it == files_.end()) return Error{"fs_not_found", path + ": no such file"};
    return it->second.content;
}

Expected<bool> MemFs::exists(const std::string& path) {
    return files_.count(path) > 0;
}

Status MemFs::rename(const std::string& from, const std::string& to) {
    auto it = files_.find(from);
    if (it == files_.end()) return Error{"fs_rename_failed", from + ": no such file"};
    FileState state = std::move(it->second);
    files_.erase(it);
    ++state.generation;  // invalidate handles under both names
    files_[to] = std::move(state);
    return Status::success();
}

Status MemFs::remove(const std::string& path) {
    files_.erase(path);
    return Status::success();
}

Status MemFs::make_dirs(const std::string& path) {
    std::string prefix;
    for (size_t i = 0; i <= path.size(); ++i) {
        if (i == path.size() || path[i] == '/') {
            if (!prefix.empty()) dirs_[prefix] = true;
        }
        if (i < path.size()) prefix.push_back(path[i]);
    }
    return Status::success();
}

Expected<std::vector<std::string>> MemFs::list_dir(const std::string& path) {
    std::string prefix = path;
    if (!prefix.empty() && prefix.back() != '/') prefix.push_back('/');
    std::vector<std::string> names;
    bool dir_known = dirs_.count(path) > 0;
    for (const auto& [file_path, state] : files_) {
        if (file_path.size() <= prefix.size() || file_path.compare(0, prefix.size(), prefix) != 0) {
            continue;
        }
        std::string rest = file_path.substr(prefix.size());
        if (rest.find('/') != std::string::npos) continue;  // nested deeper
        names.push_back(std::move(rest));
        dir_known = true;
    }
    if (!dir_known) return Error{"fs_not_found", path + ": no such directory"};
    std::sort(names.begin(), names.end());
    return names;
}

Status MemFs::sync_dir(const std::string&) {
    // Directory entries are modelled as durable once the file itself
    // has been synced (see the class comment); nothing further to do.
    return Status::success();
}

void MemFs::simulate_crash(const TornTailFn& keep) {
    for (auto it = files_.begin(); it != files_.end();) {
        FileState& state = it->second;
        size_t durable_len = state.durable.size();
        size_t unsynced = state.content.size() > durable_len
                              ? state.content.size() - durable_len
                              : 0;
        size_t kept = keep ? std::min(keep(it->first, durable_len, unsynced), unsynced) : 0;
        Bytes next = state.durable;
        if (kept > 0) {
            next.insert(next.end(), state.content.begin() + static_cast<ptrdiff_t>(durable_len),
                        state.content.begin() + static_cast<ptrdiff_t>(durable_len + kept));
        }
        if (!state.ever_synced && next.empty()) {
            it = files_.erase(it);  // never reached disk at all
            continue;
        }
        // Whatever survived the crash is, by definition, on disk now.
        state.content = std::move(next);
        state.durable = state.content;
        state.ever_synced = true;
        ++state.generation;  // open handles are gone after a reboot
        ++it;
    }
}

bool MemFs::flip_bit(const std::string& path, size_t byte_offset, unsigned bit) {
    auto it = files_.find(path);
    if (it == files_.end() || byte_offset >= it->second.content.size()) return false;
    uint8_t mask = static_cast<uint8_t>(1u << (bit & 7));
    it->second.content[byte_offset] ^= mask;
    if (byte_offset < it->second.durable.size()) it->second.durable[byte_offset] ^= mask;
    return true;
}

size_t MemFs::unsynced_bytes() const {
    size_t total = 0;
    for (const auto& [path, state] : files_) {
        if (state.content.size() > state.durable.size()) {
            total += state.content.size() - state.durable.size();
        }
    }
    return total;
}

// ---- atomic_write_file -----------------------------------------------------

Status atomic_write_file(Fs& fs, const std::string& path, BytesView data,
                         const std::string& dir) {
    const std::string tmp = path + ".tmp";
    auto file = fs.create(tmp);
    if (!file.ok()) return file.error();
    auto written = (*file)->write(data);
    if (!written.ok() || *written != data.size()) {
        (void)(*file)->close();
        (void)fs.remove(tmp);
        if (!written.ok()) return written.error();
        return Error{"fs_short_write", tmp + ": wrote " + std::to_string(*written) + " of " +
                                           std::to_string(data.size()) + " bytes"};
    }
    // fsync BEFORE rename: otherwise the rename can become durable
    // while the content is not, and a crash leaves an empty/torn file
    // under the final name — the exact corruption this helper exists
    // to rule out.
    if (Status st = (*file)->sync(); !st.ok()) {
        (void)(*file)->close();
        (void)fs.remove(tmp);
        return st;
    }
    if (Status st = (*file)->close(); !st.ok()) {
        (void)fs.remove(tmp);
        return st;
    }
    if (Status st = fs.rename(tmp, path); !st.ok()) {
        (void)fs.remove(tmp);
        return st;
    }
    std::string sync_target = dir.empty() ? parent_dir(path) : dir;
    if (!sync_target.empty()) {
        if (Status st = fs.sync_dir(sync_target); !st.ok()) return st;
    }
    return Status::success();
}

Status atomic_write_file(Fs& fs, const std::string& path, std::string_view data,
                         const std::string& dir) {
    return atomic_write_file(
        fs, path, BytesView(reinterpret_cast<const uint8_t*>(data.data()), data.size()), dir);
}

}  // namespace unicert::core
