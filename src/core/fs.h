// unicert/core/fs.h
//
// The filesystem seam every durable component writes through. Direct
// std::ofstream / std::filesystem calls cannot be fault-injected, so
// anything that must survive crashes (the CT-log store, checkpoint
// snapshots, the crash corpus) takes an Fs& and the tests swap in
// faultsim::FaultyFs over a MemFs to inject short writes, failed
// fsyncs, ENOSPC and post-crash torn tails deterministically.
//
// The contract is deliberately POSIX-shaped:
//   * File::write may be short (returns bytes actually written) and
//     written data lives in the page cache until File::sync succeeds;
//   * rename is atomic (readers see the old or the new file, never a
//     mix), which is what the write-temp-then-rename snapshot pattern
//     relies on;
//   * MemFs models the durable/volatile split explicitly: only synced
//     bytes survive simulate_crash(), so crash tests measure exactly
//     what a kernel would have kept after power loss.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/expected.h"

namespace unicert::core {

// One open file handle, append-positioned. Error codes surfaced by
// implementations (and injected by FaultyFs): fs_open_failed,
// fs_write_failed, fs_short_write*, fs_no_space, fs_sync_failed,
// fs_crashed.  (*short writes are returned as a short count, not an
// error — callers must check, exactly like POSIX write(2).)
class File {
public:
    virtual ~File() = default;

    // Append `data`; returns the number of bytes actually written,
    // which may be less than data.size() on a short write.
    virtual Expected<size_t> write(BytesView data) = 0;

    // Flush to durable storage (fsync). Until this succeeds, written
    // bytes may vanish in a crash.
    virtual Status sync() = 0;

    // Close the handle. Idempotent; further writes are errors.
    virtual Status close() = 0;
};

using FilePtr = std::unique_ptr<File>;

// A read-only byte buffer backing a whole file — an mmap'd region on
// the real filesystem, an owned copy elsewhere. The view stays valid
// for the buffer's lifetime regardless of later writes to the path
// (private mapping / snapshot semantics); holders of sub-views (e.g. a
// zero-copy pipeline run over a corpus segment) must keep the
// MappedBuffer alive for as long as the views are dereferenced.
class MappedBuffer {
public:
    virtual ~MappedBuffer() = default;

    virtual BytesView view() const noexcept = 0;
};

using MappedPtr = std::unique_ptr<MappedBuffer>;

// Minimal filesystem surface the durability layer needs. Paths are
// plain strings ('/'-separated); implementations may interpret them
// relative to a root.
class Fs {
public:
    virtual ~Fs() = default;

    // Open for appending, creating the file when absent.
    virtual Expected<FilePtr> open_append(const std::string& path) = 0;

    // Create or truncate, then open for writing.
    virtual Expected<FilePtr> create(const std::string& path) = 0;

    // Whole-file read. Errors: fs_not_found, fs_read_failed.
    virtual Expected<Bytes> read_file(const std::string& path) = 0;

    virtual Expected<bool> exists(const std::string& path) = 0;

    // Atomic replace: `to` is either the old or the new file, never a
    // partial mix.
    virtual Status rename(const std::string& from, const std::string& to) = 0;

    virtual Status remove(const std::string& path) = 0;

    // mkdir -p.
    virtual Status make_dirs(const std::string& path) = 0;

    // Entry names (not full paths) in `path`, sorted, files only.
    virtual Expected<std::vector<std::string>> list_dir(const std::string& path) = 0;

    // fsync the directory so renames/creates within it are durable.
    virtual Status sync_dir(const std::string& path) = 0;

    // Map a whole file read-only. The default implementation is a
    // read_file copy (correct everywhere, including MemFs); the real
    // filesystem overrides it with mmap so a multi-GB corpus segment
    // costs page-cache references instead of heap. Errors mirror
    // read_file (fs_not_found, fs_read_failed).
    virtual Expected<MappedPtr> map_readonly(const std::string& path);
};

// The process-wide real filesystem (POSIX fds so sync() is a real
// fsync, not an ofstream flush).
Fs& real_fs();

// In-memory filesystem with an explicit durable/volatile split, the
// substrate for deterministic crash tests. Every file tracks the bytes
// made durable by the last successful sync separately from its live
// content; simulate_crash() rewinds the live view to durable state,
// optionally keeping a caller-chosen prefix of each unsynced tail (how
// FaultyFs models torn writes).
//
// Simplifications, documented so tests know what is and is not
// modelled: rename of a synced file is immediately durable (real
// kernels need a directory fsync; the store performs one anyway so the
// fault channel still gets exercised), and remove is immediate.
class MemFs final : public Fs {
public:
    Expected<FilePtr> open_append(const std::string& path) override;
    Expected<FilePtr> create(const std::string& path) override;
    Expected<Bytes> read_file(const std::string& path) override;
    Expected<bool> exists(const std::string& path) override;
    Status rename(const std::string& from, const std::string& to) override;
    Status remove(const std::string& path) override;
    Status make_dirs(const std::string& path) override;
    Expected<std::vector<std::string>> list_dir(const std::string& path) override;
    Status sync_dir(const std::string& path) override;

    // --- crash-test surface ------------------------------------------------

    // Decides, per crashed file, how many bytes of the unsynced tail
    // survive (0 = clean rewind to the durable snapshot). The return
    // value is clamped to [0, unsynced_len].
    using TornTailFn = std::function<size_t(const std::string& path, size_t durable_len,
                                            size_t unsynced_len)>;

    // Power loss: every file reverts to its durable snapshot plus a
    // `keep`-chosen prefix of the unsynced tail. Files never synced (and
    // whose tail is fully dropped) disappear entirely. Open handles are
    // invalidated.
    void simulate_crash(const TornTailFn& keep = nullptr);

    // Flip one bit in place — bit-rot injection for fsck tests. Returns
    // false when the file is missing or offset is out of range. Mutates
    // both live and durable state (rot survives crashes).
    bool flip_bit(const std::string& path, size_t byte_offset, unsigned bit = 0);

    // Bytes not yet made durable across all files (0 after a sync-everything).
    size_t unsynced_bytes() const;

private:
    friend class MemFile;

    struct FileState {
        Bytes content;            // live view (page cache + disk)
        Bytes durable;            // what survives a crash
        bool ever_synced = false;
        uint64_t generation = 0;  // bumped by crash/remove to invalidate handles
    };

    std::map<std::string, FileState> files_;
    std::map<std::string, bool> dirs_;  // path -> exists (value unused)
};

// Write-temp-then-rename: the whole buffer lands at `path` atomically
// and durably, or the old content (if any) is untouched. The temp file
// is `path` + ".tmp"; stray temp files from an earlier crash are
// overwritten. `dir` (when non-empty) is fsynced after the rename.
Status atomic_write_file(Fs& fs, const std::string& path, BytesView data,
                         const std::string& dir = "");
Status atomic_write_file(Fs& fs, const std::string& path, std::string_view data,
                         const std::string& dir = "");

}  // namespace unicert::core
