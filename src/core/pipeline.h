// unicert/core/pipeline.h
//
// The paper's measurement pipeline as a public API: run the 95-lint
// registry over a (synthetic) CT corpus and aggregate the Section 4
// results — the noncompliance taxonomy (Table 1), issuer rankings
// (Table 2), top lints (Table 11), the issuance/noncompliance trend
// (Figure 2), validity CDFs (Figure 3) and the field-usage heatmap
// (Figure 4) — plus the Subject-variant detector behind Table 3.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/expected.h"
#include "core/resilience.h"
#include "ctlog/corpus.h"
#include "lint/lint.h"

namespace unicert::core {

// Per-certificate lint outcome joined with corpus metadata.
struct AnalyzedCert {
    const ctlog::CorpusCert* cert = nullptr;
    lint::CertReport report;
    bool noncompliant = false;
};

// ---- Table 1 ---------------------------------------------------------------

struct TaxonomyRow {
    lint::NcType type;
    size_t lints_all = 0;
    size_t lints_new = 0;
    size_t nc_lints = 0;       // lints of this type that fired at least once
    size_t nc_certs = 0;       // unique noncompliant certs with a finding of this type
    size_t nc_certs_new = 0;   // …only detected by new lints
    size_t error_certs = 0;
    size_t warning_certs = 0;
    size_t trusted_certs = 0;
    size_t recent_certs = 0;   // issued 2024-2025
    size_t alive_certs = 0;    // valid into 2024-2025
};

struct TaxonomyReport {
    std::vector<TaxonomyRow> rows;  // one per NcType, Table 1 order
    size_t total_certs = 0;
    size_t total_nc = 0;
    size_t total_nc_trusted = 0;
};

// ---- Table 2 ----------------------------------------------------------------

struct IssuerRow {
    std::string organization;
    ctlog::TrustStatus trust;
    std::string region;
    size_t total = 0;
    size_t noncompliant = 0;
    size_t recent_nc = 0;  // NC certs issued 2024-2025
};

// ---- Table 11 ---------------------------------------------------------------

struct LintRow {
    std::string name;
    lint::NcType type;
    bool is_new = false;
    lint::Severity severity;
    size_t nc_certs = 0;
};

// ---- Figure 2 ---------------------------------------------------------------

struct YearRow {
    int year = 0;
    size_t all = 0;
    size_t trusted = 0;
    size_t noncompliant = 0;
    size_t alive = 0;  // still valid at the end of that year
};

// ---- Figure 3 ---------------------------------------------------------------

struct ValidityCdf {
    // Sorted lifetime days per class; quantile(q) interpolates.
    std::vector<int64_t> idn_certs;
    std::vector<int64_t> other_unicerts;
    std::vector<int64_t> noncompliant;

    static double quantile(const std::vector<int64_t>& sorted, double q);
    // Fraction of values <= days.
    static double cdf_at(const std::vector<int64_t>& sorted, int64_t days);
};

// ---- Figure 4 ---------------------------------------------------------------

struct FieldUsageCell {
    size_t unicode_count = 0;    // certs with non-ASCII content in the field
    size_t deviation_count = 0;  // …that violate the standard there
};

// issuer organization -> field label -> usage.
using FieldHeatmap = std::map<std::string, std::map<std::string, FieldUsageCell>>;

// ---- Table 3 -----------------------------------------------------------------

enum class VariantStrategy {
    kCaseConversion,
    kWhitespaceVariant,
    kNonPrintableInsertion,
    kSymbolSubstitution,
    kAbbreviationVariant,
    kReplacementCharacter,
};

const char* variant_strategy_name(VariantStrategy s) noexcept;

struct VariantGroup {
    VariantStrategy strategy;
    std::vector<std::string> values;  // the distinct raw Subject O values
};

// ---- Streaming ingestion ------------------------------------------------------

// One certificate as delivered by a (possibly faulty) stream. Intact
// corpus entries carry `meta`; wire-form entries carry raw DER the
// pipeline must parse (and may have to quarantine).
struct CertEntry {
    size_t index = 0;                         // stable identity for dedup
    const ctlog::CorpusCert* meta = nullptr;  // parsed corpus record, if available
    Bytes der;                                // owned wire bytes, parsed when meta == nullptr
    // Borrowed wire bytes, e.g. a slice of an mmap'd corpus file. The
    // backing buffer must outlive the pipeline run; sources that cannot
    // guarantee that fill `der` instead.
    BytesView view;

    BytesView bytes() const noexcept { return view.empty() ? BytesView(der) : view; }
};

// Pull-based certificate stream. next() may fail transiently (the
// pipeline retries per its RetryPolicy) and may deliver duplicates or
// garbage; end-of-stream is a successful nullopt.
class CertSource {
public:
    virtual ~CertSource() = default;

    virtual size_t size_hint() const { return 0; }
    virtual Expected<std::optional<CertEntry>> next() = 0;
};

// Fault-free adapter over an in-memory corpus.
class VectorCertSource final : public CertSource {
public:
    explicit VectorCertSource(const std::vector<ctlog::CorpusCert>& corpus)
        : corpus_(&corpus) {}

    size_t size_hint() const override { return corpus_->size(); }
    Expected<std::optional<CertEntry>> next() override {
        if (pos_ >= corpus_->size()) return std::optional<CertEntry>{};
        CertEntry entry;
        entry.index = pos_;
        entry.meta = &(*corpus_)[pos_];
        ++pos_;
        return std::optional<CertEntry>(std::move(entry));
    }

private:
    const std::vector<ctlog::CorpusCert>* corpus_;
    size_t pos_ = 0;
};

// Wire-form source over one contiguous buffer of back-to-back DER
// certificates (the layout of an mmap'd corpus segment; see
// core::Fs::map_readonly). Entries borrow from the buffer — the stream
// itself never copies a certificate — so the buffer must outlive the
// pipeline run. A malformed TLV boundary is a permanent stream error
// (the pipeline aborts with the offset into the file); garbage *inside*
// a well-delimited certificate is quarantined per cert as usual.
class DerFileCertSource final : public CertSource {
public:
    explicit DerFileCertSource(BytesView data);

    size_t size_hint() const override { return count_; }
    Expected<std::optional<CertEntry>> next() override;

private:
    BytesView data_;
    size_t pos_ = 0;
    size_t index_ = 0;
    size_t count_ = 0;  // prescanned entry count
};

// ---- Quarantine & stats -------------------------------------------------------

// Where in the per-cert ladder an entry failed.
enum class QuarantineStage { kFetch, kParse, kLint };

const char* quarantine_stage_name(QuarantineStage s) noexcept;

// One isolated entry: the stage it failed at plus the recoverable error
// (code, message, byte offset for parse failures).
struct QuarantineRecord {
    size_t entry_index = 0;
    QuarantineStage stage = QuarantineStage::kParse;
    Error error;

    bool operator==(const QuarantineRecord&) const = default;
};

struct QuarantineReport {
    std::vector<QuarantineRecord> records;

    bool operator==(const QuarantineReport&) const = default;
};

// Ingestion accounting surfaced through core::report and unicert_lint.
struct PipelineStats {
    size_t processed = 0;    // entries aggregated into the tables
    size_t recovered = 0;    // faults absorbed: retried fetches + deduped deliveries
    size_t quarantined = 0;  // entries isolated instead of propagating
    size_t retries = 0;      // individual retry attempts
    size_t duplicates = 0;   // redelivered entries suppressed by index dedup
    bool completed = true;   // false when the stream aborted (see abort_error)
    Error abort_error;

    bool operator==(const PipelineStats&) const = default;
};

struct PipelineOptions {
    lint::RunOptions lint_options;
    // Registry override (tests inject hostile rules); default registry
    // when null.
    const lint::Registry* registry = nullptr;
    core::RetryPolicy retry;
    core::Clock* clock = nullptr;  // system clock when null
    // Observability hook: invoked after every `progress_interval`
    // successfully linted certificates (and never concurrently — the
    // pipeline serializes calls, including from parallel runs). Purely
    // observational; it must not mutate pipeline state.
    std::function<void(size_t processed, size_t size_hint)> progress;
    size_t progress_interval = 5000;
};

// ---- Pipeline -----------------------------------------------------------------

namespace internal {

// Everything one streaming ingestion run produces. The serial pipeline
// fills one of these; the parallel pipeline fills one per shard and
// merges them deterministically (parallel_pipeline.cc).
struct StreamState {
    std::vector<AnalyzedCert> analyzed;
    std::deque<ctlog::CorpusCert> owned;  // wire-parsed certs (stable addresses)
    size_t nc_count = 0;
    PipelineStats stats;
    QuarantineReport quarantine;
};

// The streaming ingestion ladder — retry transient fetch faults, dedup
// redeliveries by entry index, parse wire entries, quarantine per-cert
// failures, abort on permanent stream failure — shared verbatim by
// CompliancePipeline's streaming constructor and by each shard task of
// the parallel log-ingestion path, so both make identical decisions.
void run_stream(CertSource& source, const PipelineOptions& options,
                const lint::Registry& registry, Clock& clock, StreamState& state);

}  // namespace internal

class CompliancePipeline {
public:
    explicit CompliancePipeline(const std::vector<ctlog::CorpusCert>& corpus,
                                lint::RunOptions options = {});

    // Streaming constructor with per-cert isolation: transient stream
    // faults are retried, unparseable or lint-crashing entries land in
    // the quarantine report, duplicate deliveries are deduped by entry
    // index, and a permanent stream failure aborts with the partial
    // stats preserved (stats().completed == false). Resilience never
    // changes measured results: a recoverable fault schedule yields
    // aggregates identical to the fault-free run.
    explicit CompliancePipeline(CertSource& source, PipelineOptions options = {});

    const std::vector<AnalyzedCert>& analyzed() const noexcept { return analyzed_; }

    size_t noncompliant_count() const noexcept { return nc_count_; }
    double noncompliance_rate() const noexcept;

    const PipelineStats& stats() const noexcept { return stats_; }
    const QuarantineReport& quarantine_report() const noexcept { return quarantine_; }

    TaxonomyReport taxonomy_report() const;                  // Table 1
    std::vector<IssuerRow> issuer_report(size_t top_n) const;  // Table 2
    std::vector<LintRow> top_lints(size_t top_n) const;      // Table 11
    std::vector<YearRow> yearly_trend() const;               // Figure 2
    ValidityCdf validity_cdf() const;                        // Figure 3
    FieldHeatmap field_heatmap() const;                      // Figure 4
    std::vector<VariantGroup> subject_variants() const;      // Table 3

protected:
    // For ParallelPipeline: construct empty, then fill the state via a
    // deterministic merge of shard results.
    CompliancePipeline() = default;

    void ingest(const ctlog::CorpusCert& cert, const lint::Registry& registry,
                const lint::RunOptions& options);

    std::vector<AnalyzedCert> analyzed_;
    std::deque<ctlog::CorpusCert> owned_;  // wire-parsed certs (stable addresses)
    // Parallel runs park each shard/batch's wire-parsed certs here;
    // moving a deque preserves element addresses, so AnalyzedCert::cert
    // pointers stay valid across the merge.
    std::vector<std::deque<ctlog::CorpusCert>> owned_shards_;
    size_t nc_count_ = 0;
    PipelineStats stats_;
    QuarantineReport quarantine_;
};

}  // namespace unicert::core
