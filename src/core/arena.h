// unicert/core/arena.h
//
// Bump allocator with scope marks — the allocation substrate of the
// zero-copy parse + lint hot path (DESIGN.md section 13). A streaming
// loop takes one Arena per worker, opens an ArenaScope per certificate,
// and every per-cert side table (LazyCertificate's extension index,
// scratch spans) bumps a pointer instead of hitting the global
// allocator; closing the scope hands the memory straight back to the
// next certificate. Blocks grow geometrically and are retained across
// release_to()/reset(), so a million-cert run settles into a steady
// state with zero malloc traffic.
//
// Header-only and deliberately below the x509 layer in the include
// graph (no link dependency on unicert_core) so the parser can use it.
//
// Lifetime rules: memory returned by alloc()/copy() is valid until the
// enclosing scope mark is released (or the Arena dies). Under ASan the
// released region is poisoned, so a dangling BytesView into a closed
// scope faults deterministically instead of silently reading reused
// bytes — this is what the lifetime tests lean on.
//
// Not thread-safe by design: one Arena per worker thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/bytes.h"

#if defined(__SANITIZE_ADDRESS__)
#define UNICERT_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define UNICERT_ARENA_ASAN 1
#endif
#endif

#ifdef UNICERT_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace unicert::core {

class Arena {
public:
    explicit Arena(size_t first_block_bytes = 16 * 1024)
        : first_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    // Position in the block chain; release_to() rewinds to it.
    struct Mark {
        size_t block = 0;
        size_t used = 0;
    };

    // Raw allocation, aligned to `align` (a power of two). Alignment is
    // applied to the returned address, not the block offset — block
    // bases are only new-aligned, so offset alignment alone would break
    // for over-aligned requests.
    void* alloc(size_t size, size_t align = alignof(std::max_align_t)) {
        if (size == 0) size = 1;
        size_t aligned = aligned_cursor(align);
        if (block_ >= blocks_.size() || aligned + size > blocks_[block_].size) {
            grow(size + align);
            aligned = aligned_cursor(align);
        }
        Block& b = blocks_[block_];
        uint8_t* p = b.data.get() + aligned;
        cursor_ = aligned + size;
        bytes_allocated_ += size;
        ++allocation_count_;
        unpoison(p, size);
        return p;
    }

    // Typed array allocation (default-initialized PODs).
    template <typename T>
    T* alloc_array(size_t n) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is reclaimed without running destructors");
        return static_cast<T*>(alloc(n * sizeof(T), alignof(T)));
    }

    // Arena-owned copy of a byte range.
    BytesView copy(BytesView src) {
        if (src.empty()) return {};
        auto* dst = static_cast<uint8_t*>(alloc(src.size(), 1));
        for (size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
        return {dst, src.size()};
    }

    Mark mark() const noexcept { return {block_, cursor_}; }

    // Rewind to `m`. Everything allocated after the mark becomes
    // invalid (and poisoned under ASan); the blocks stay cached for
    // reuse, which is what makes per-cert scopes allocation-free once
    // the arena has warmed up.
    void release_to(Mark m) {
        if (m.block >= blocks_.size() && !(m.block == 0 && blocks_.empty())) return;
        for (size_t i = m.block; i < blocks_.size(); ++i) {
            size_t from = (i == m.block) ? m.used : 0;
            poison(blocks_[i].data.get() + from, blocks_[i].size - from);
        }
        block_ = m.block;
        cursor_ = m.used;
    }

    // Release everything; retains the block cache.
    void reset() { release_to({0, 0}); }

    // ---- Introspection (bench + tests) --------------------------------

    size_t bytes_allocated() const noexcept { return bytes_allocated_; }   // lifetime total
    size_t allocation_count() const noexcept { return allocation_count_; }  // lifetime total
    size_t block_count() const noexcept { return blocks_.size(); }
    size_t capacity() const noexcept {
        size_t total = 0;
        for (const Block& b : blocks_) total += b.size;
        return total;
    }

private:
    struct Block {
        std::unique_ptr<uint8_t[]> data;
        size_t size = 0;
    };

    static uintptr_t align_up(uintptr_t v, size_t align) noexcept {
        return (v + align - 1) & ~(uintptr_t{align} - 1);
    }

    // Smallest cursor >= cursor_ whose address in the current block is
    // `align`-aligned.
    size_t aligned_cursor(size_t align) const noexcept {
        if (block_ >= blocks_.size()) return cursor_;
        auto base = reinterpret_cast<uintptr_t>(blocks_[block_].data.get());
        return static_cast<size_t>(align_up(base + cursor_, align) - base);
    }

    void grow(size_t min_size) {
        // Reuse a cached successor block when rewound; otherwise append
        // a geometrically larger one.
        while (block_ + 1 < blocks_.size()) {
            ++block_;
            cursor_ = 0;
            if (blocks_[block_].size >= min_size) return;
        }
        size_t next_size = blocks_.empty() ? first_block_bytes_ : blocks_.back().size * 2;
        while (next_size < min_size) next_size *= 2;
        Block b;
        b.data = std::make_unique<uint8_t[]>(next_size);
        b.size = next_size;
        poison(b.data.get(), b.size);
        blocks_.push_back(std::move(b));
        block_ = blocks_.size() - 1;
        cursor_ = 0;
    }

    static void poison(const void* p, size_t n) {
#ifdef UNICERT_ARENA_ASAN
        if (n != 0) __asan_poison_memory_region(p, n);
#else
        (void)p;
        (void)n;
#endif
    }
    static void unpoison(const void* p, size_t n) {
#ifdef UNICERT_ARENA_ASAN
        if (n != 0) __asan_unpoison_memory_region(p, n);
#else
        (void)p;
        (void)n;
#endif
    }

    size_t first_block_bytes_;
    std::vector<Block> blocks_;
    size_t block_ = 0;   // current block index
    size_t cursor_ = 0;  // used bytes in the current block
    size_t bytes_allocated_ = 0;
    size_t allocation_count_ = 0;
};

// RAII scope mark: everything the arena hands out while the scope is
// open is reclaimed when it closes.
class ArenaScope {
public:
    explicit ArenaScope(Arena& arena) : arena_(&arena), mark_(arena.mark()) {}
    ~ArenaScope() { arena_->release_to(mark_); }

    ArenaScope(const ArenaScope&) = delete;
    ArenaScope& operator=(const ArenaScope&) = delete;

private:
    Arena* arena_;
    Arena::Mark mark_;
};

}  // namespace unicert::core
