#include "core/log_ingest.h"

#include <algorithm>

namespace unicert::core {

LogCertSource::LogCertSource(ctlog::LogSource& log, ctlog::ShardRange range)
    : log_(&log), range_(range), cursor_(range.begin) {}

LogCertSource::LogCertSource(ctlog::LogSource& log, const ctlog::ShardCheckpoint& resume)
    : log_(&log), range_(resume.range),
      cursor_(std::clamp(resume.next_index, resume.range.begin, resume.range.end)) {}

Expected<std::optional<CertEntry>> LogCertSource::next() {
    if (cursor_ >= range_.end) return std::optional<CertEntry>{};
    auto fetched = log_->entry_at(cursor_);
    if (!fetched.ok()) return fetched.error();
    if (fetched->index != cursor_) {
        // Stale/duplicate delivery: transient by the resilience
        // taxonomy, so the pipeline retries this cursor position.
        return Error{"stale_read", "requested entry " + std::to_string(cursor_) +
                                       ", log served " + std::to_string(fetched->index)};
    }
    CertEntry entry;
    entry.index = cursor_;
    entry.der = std::move(fetched->leaf_der);
    ++cursor_;
    return std::optional<CertEntry>(std::move(entry));
}

ctlog::ShardCheckpoint LogCertSource::checkpoint() const noexcept {
    ctlog::ShardCheckpoint cp;
    cp.range = range_;
    cp.next_index = cursor_;
    cp.completed = cursor_ >= range_.end;
    return cp;
}

}  // namespace unicert::core
