// unicert/core/report.h
//
// Plain-text table rendering for the bench binaries: fixed-width
// columns, percentage formatting, and simple log-scale sparklines for
// the figure reproductions.
#pragma once

#include <string>
#include <vector>

namespace unicert::core {

// A simple fixed-width text table.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    // Render with column widths fitted to content.
    std::string to_string() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

// "12.3%" style formatting.
std::string percent(double fraction, int decimals = 1);

// Thousands-separated count ("249,281").
std::string with_commas(size_t value);

// "249.3K" / "34.8M" style compact counts.
std::string compact(size_t value);

// A log-scale bar for figure-style output (length ~ log10(value)).
std::string log_bar(size_t value, size_t scale = 4);

}  // namespace unicert::core
