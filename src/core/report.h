// unicert/core/report.h
//
// Plain-text table rendering for the bench binaries: fixed-width
// columns, percentage formatting, and simple log-scale sparklines for
// the figure reproductions.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.h"

namespace unicert::core {

// A simple fixed-width text table.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    // Render with column widths fitted to content.
    std::string to_string() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

// "12.3%" style formatting.
std::string percent(double fraction, int decimals = 1);

// Thousands-separated count ("249,281").
std::string with_commas(size_t value);

// "249.3K" / "34.8M" style compact counts.
std::string compact(size_t value);

// A log-scale bar for figure-style output (length ~ log10(value)).
std::string log_bar(size_t value, size_t scale = 4);

// One-block ingestion summary: processed / recovered / quarantined /
// retries (+ the abort reason when the stream did not complete).
std::string render_pipeline_stats(const PipelineStats& stats);

// Quarantine evidence table: entry index, failure stage, error code,
// byte offset. Truncated to `max_rows` with a trailing count.
std::string render_quarantine_report(const QuarantineReport& report, size_t max_rows = 10);

}  // namespace unicert::core
