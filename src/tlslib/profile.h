// unicert/tlslib/profile.h
//
// Executable behaviour models of the nine TLS libraries' certificate
// parsers (documented substitution, DESIGN.md section 1). Each profile
// decodes real DER value bytes with the decoding matrix the paper
// reports in Table 4 and applies the character-handling / escaping
// behaviour of Table 5. The differential harness then *re-derives*
// those tables from observed behaviour, mirroring Section 3.2's
// inference methodology.
#pragma once

#include <optional>
#include <string>

#include "asn1/strings.h"
#include "tlslib/library.h"
#include "unicode/codec.h"
#include "x509/certificate.h"
#include "x509/dn_text.h"

namespace unicert::tlslib {

// How a library decodes the value bytes of one string type in one
// context.
struct DecodeBehavior {
    bool supported = true;                  // '-' cells in Table 4
    unicode::Encoding method = unicode::Encoding::kUtf8;
    unicode::ErrorPolicy policy = unicode::ErrorPolicy::kStrict;
    // When policy is kReplace, the substitution character (U+FFFD for
    // Java, '.' for PyOpenSSL's CRLDP handling, …).
    unicode::CodePoint replacement = unicode::kReplacementChar;
    // True when the library additionally replaces *control characters*
    // (not just undecodable bytes) — PyOpenSSL's CRLDP behaviour.
    bool controls_to_replacement = false;
    // True when a strict decode failure aborts parsing with an error
    // (Go's "asn1: syntax error"); false when the library silently
    // substitutes per `policy`.
    bool error_on_malformed = false;
    // True when the library enforces the ASN.1 standard charset after
    // decoding (e.g. Go rejecting '@' in PrintableString).
    bool enforces_charset = false;
};

// How a library renders parsed names to X.509-text.
struct TextBehavior {
    bool supported = true;             // '-' in Table 5 (no string output)
    // The RFC dialect the library *claims*; structured-output libraries
    // (Go) have none.
    std::optional<x509::DnDialect> dialect;
    bool applies_escaping = true;      // false -> Table 5 escaping violation
};

// Look up behaviour for (library, string type, context).
DecodeBehavior decode_behavior(Library lib, asn1::StringType st, FieldContext ctx);

// Look up text/escaping behaviour for (library, context).
TextBehavior text_behavior(Library lib, FieldContext ctx);

// ---- Simulated parsing APIs ---------------------------------------------

// Result of parsing one field value through a library profile.
struct ParseOutcome {
    bool ok = true;            // false: library raised a parse error
    std::string value_utf8;    // extracted value (UTF-8)
    std::string error;         // error text when !ok
};

// Parse one DN attribute value the way `lib` would.
ParseOutcome parse_attribute(Library lib, const x509::AttributeValue& av);

// Parse one string-kind GeneralName the way `lib` would; `ctx`
// distinguishes SAN/IAN (kGeneralName) from CRLDP handling.
ParseOutcome parse_general_name(Library lib, const x509::GeneralName& gn, FieldContext ctx);

// Render a whole DN to the library's subject/issuer string form
// (X509_NAME_oneline, rfc4514_string, getName(), …).
ParseOutcome format_dn(Library lib, const x509::DistinguishedName& dn);

// Render a SAN to the library's text form ("DNS:a.com, DNS:b.com").
ParseOutcome format_san(Library lib, const x509::GeneralNames& names);

// First or last CN selection differs across libraries (Section 4.3.1:
// PyOpenSSL takes the first duplicated Subject CN, Go the last).
enum class CnSelection { kFirst, kLast, kAll };
CnSelection cn_selection(Library lib) noexcept;

// The CN value `lib` would report for hostname-ish use.
std::optional<std::string> extract_common_name(Library lib, const x509::Certificate& cert);

}  // namespace unicert::tlslib
