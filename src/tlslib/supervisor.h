// unicert/tlslib/supervisor.h
//
// Supervised execution layer for the differential engine. The plain
// DifferentialRunner assumes every profile evaluation returns cleanly;
// at fuzzing scale that assumption breaks — a throwing, hanging or
// runaway model would abort a whole Table 4/5 sweep. The Supervisor
// runs each (library, scenario) evaluation under a per-call budget
// (wall-clock watchdog plus a model-call step limit, charged against
// the injectable core::Clock via core::BudgetGuard) and converts every
// misbehaviour into a structured EvalOutcome, so failures become data
// in the sweep output instead of aborts. A library model that crashes,
// hangs or floods its output is quarantined — marked kUnsupported for
// the remainder of the sweep — and the healthy models' cells are
// reproduced exactly as an unsupervised run would.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "core/resilience.h"
#include "tlslib/differential.h"

namespace unicert::tlslib {

// Failure taxonomy for one supervised evaluation.
enum class EvalOutcome {
    kOk,              // evaluation completed, a reference decoding matched
    kUnsupported,     // profile declares no support ('-') or is quarantined
    kParseRefusal,    // the library refused every test payload
    kDivergence,      // outputs observed but no reference decoding matched
    kCrash,           // the model threw out of a profile call
    kHang,            // wall-clock or step budget exhausted mid-evaluation
    kOversizeOutput,  // a single output exceeded the byte budget
};

const char* eval_outcome_name(EvalOutcome o) noexcept;

// Failure outcomes are data for the crash corpus; quarantining outcomes
// additionally disable the model for the remaining sweep.
bool eval_outcome_is_failure(EvalOutcome o) noexcept;     // divergence/crash/hang/oversize
bool eval_outcome_quarantines(EvalOutcome o) noexcept;    // crash/hang/oversize

// Per-evaluation budget. Zero disables the corresponding limit.
struct EvalBudget {
    int64_t wall_ms = 5000;            // watchdog across one evaluation
    uint64_t max_model_calls = 1 << 20;  // step/allocation proxy limit
    size_t max_output_bytes = 1 << 20;   // per profile-call output cap
};

// One supervised Table 4 cell.
struct SupervisedEval {
    Library lib{};
    Scenario scenario{};
    EvalOutcome outcome = EvalOutcome::kOk;
    InferredDecoding inferred;
    DecodeClass decode_class = DecodeClass::kUnsupported;
    std::string detail;        // error text for failure outcomes
    uint64_t model_calls = 0;  // budget accounting
    int64_t wall_ms = 0;
};

// One supervised Table 5 cell (illegal-character or escaping row).
enum class ViolationKind { kIllegalChar, kEscaping };

struct SupervisedViolation {
    Library lib{};
    ViolationKind kind = ViolationKind::kIllegalChar;
    asn1::StringType declared = asn1::StringType::kPrintableString;  // kIllegalChar rows
    FieldContext context = FieldContext::kDnName;
    x509::DnDialect standard = x509::DnDialect::kRfc2253;            // kEscaping rows
    ViolationClass violation = ViolationClass::kUnsupported;
    EvalOutcome outcome = EvalOutcome::kOk;
    std::string detail;
};

// The full Table 4/5 sweep, with failures embedded as cells.
struct SweepReport {
    std::vector<SupervisedEval> decode_cells;          // Table 4
    std::vector<SupervisedViolation> violation_cells;  // Table 5
    std::vector<Library> quarantined;                  // models disabled mid-sweep
    size_t failures = 0;  // cells with eval_outcome_is_failure()
};

class Supervisor {
public:
    explicit Supervisor(LibraryModel& model = builtin_model(), EvalBudget budget = {},
                        core::Clock& clock = core::system_clock());

    // Run one Table 4 inference under budget; never throws — every
    // model misbehaviour is contained and classified.
    SupervisedEval evaluate(Library lib, const Scenario& scenario);

    // Table 5 cells under the same containment.
    SupervisedViolation evaluate_illegal_char(Library lib, asn1::StringType declared,
                                              FieldContext ctx);
    SupervisedViolation evaluate_escaping(Library lib, FieldContext ctx,
                                          x509::DnDialect standard);

    // The complete Table 4/5 sweep over all nine libraries. Completes
    // regardless of model behaviour; misbehaving models appear as
    // failure cells and are quarantined for their remaining cells.
    SweepReport sweep() { return sweep(table4_scenarios()); }
    SweepReport sweep(const std::vector<Scenario>& scenarios);

    bool quarantined(Library lib) const noexcept;
    // The outcome that quarantined the library, when it is.
    std::optional<EvalOutcome> quarantine_reason(Library lib) const noexcept;
    void reset_quarantine() noexcept;

    const EvalBudget& budget() const noexcept { return budget_; }

    // The canonical Table 4 scenario rows.
    static std::vector<Scenario> table4_scenarios();

private:
    template <typename Fn>
    EvalOutcome contain(Library lib, Fn&& fn, std::string& detail, uint64_t* calls,
                        int64_t* wall);

    LibraryModel* model_;
    EvalBudget budget_;
    core::Clock* clock_;
    std::array<std::optional<EvalOutcome>, kAllLibraries.size()> quarantine_{};
};

}  // namespace unicert::tlslib
