#include "tlslib/encoding_profile.h"

namespace unicert::tlslib {
namespace {

using asn1::EncodingRule;

// Shorthand for the table below.
constexpr RuleResponse R = RuleResponse::kReject;
constexpr RuleResponse A = RuleResponse::kAccept;
constexpr RuleResponse N = RuleResponse::kNormalize;

constexpr EncodingProfile make_profile(RuleResponse long_form, RuleResponse constructed,
                                       RuleResponse indefinite, RuleResponse padded,
                                       RuleResponse nonminimal_int) {
    EncodingProfile p{};
    p.responses[static_cast<uint8_t>(EncodingRule::kDer)] = RuleResponse::kAccept;
    p.responses[static_cast<uint8_t>(EncodingRule::kLongFormLength)] = long_form;
    p.responses[static_cast<uint8_t>(EncodingRule::kConstructedString)] = constructed;
    p.responses[static_cast<uint8_t>(EncodingRule::kIndefiniteLength)] = indefinite;
    p.responses[static_cast<uint8_t>(EncodingRule::kPaddedBitString)] = padded;
    p.responses[static_cast<uint8_t>(EncodingRule::kNonMinimalInteger)] = nonminimal_int;
    return p;
}

// Declared tolerance per library, indexed like kAllLibraries. The C/Go
// lineage parses strictly; Java's DerValue canonicalizes most BER forms
// (DerIndefLenConverter) but refuses dirty pad bits; Bouncy Castle's
// ASN1InputStream canonicalizes everything; forge parses whatever it
// can and re-emits the original bytes; GnuTLS (libtasn1) historically
// swallowed long-form and indefinite lengths.
//                                        long  cons  indef pad   int
constexpr EncodingProfile kProfiles[] = {
    /* OpenSSL       */ make_profile(R,    R,    R,    R,    R),
    /* GnuTLS        */ make_profile(N,    R,    N,    R,    R),
    /* PyOpenSSL     */ make_profile(R,    R,    R,    R,    R),
    /* Cryptography  */ make_profile(R,    R,    R,    R,    R),
    /* GoCrypto      */ make_profile(R,    R,    R,    R,    R),
    /* JavaSecurity  */ make_profile(N,    N,    N,    R,    N),
    /* BouncyCastle  */ make_profile(N,    N,    N,    N,    N),
    /* NodeCrypto    */ make_profile(R,    R,    R,    R,    R),
    /* Forge         */ make_profile(A,    A,    A,    A,    A),
};

}  // namespace

const char* rule_response_name(RuleResponse r) noexcept {
    switch (r) {
        case RuleResponse::kReject: return "reject";
        case RuleResponse::kAccept: return "accept";
        case RuleResponse::kNormalize: return "normalize";
    }
    return "?";
}

uint32_t EncodingProfile::rejected_mask() const noexcept {
    uint32_t mask = 0;
    for (EncodingRule r : asn1::kAllBerRules) {
        if (response(r) == RuleResponse::kReject) mask |= asn1::encoding_rule_bit(r);
    }
    return mask;
}

uint32_t EncodingProfile::normalized_mask() const noexcept {
    uint32_t mask = 0;
    for (EncodingRule r : asn1::kAllBerRules) {
        if (response(r) == RuleResponse::kNormalize) mask |= asn1::encoding_rule_bit(r);
    }
    return mask;
}

const EncodingProfile& encoding_profile(Library lib) noexcept {
    return kProfiles[static_cast<size_t>(lib)];
}

EncodingOutcome parse_encoding(Library lib, BytesView der) {
    EncodingOutcome out;
    auto scan = asn1::scan_encoding(der, asn1::kToleranceAllBer);
    if (!scan.ok()) {
        // Not decodable even tolerantly: every library refuses.
        out.error = scan.error().code;
        return out;
    }
    out.deviations = scan->mask;
    const EncodingProfile& profile = encoding_profile(lib);
    for (EncodingRule r : asn1::kAllBerRules) {
        if (scan->exercised(r) && profile.response(r) == RuleResponse::kReject) {
            out.refused = r;
            out.error = std::string("refused_") + asn1::encoding_rule_name(r);
            return out;
        }
    }
    out.accepted = true;

    uint32_t normalized = profile.normalized_mask();
    // Deliberate modelled implementation quirk (curated in
    // tools/enccheck_baseline.txt): forge's re-emit path zeroes
    // bit-string pad bits even though its declared profile claims it
    // surfaces the raw encoding — declared kAccept, observed normalize.
    if (lib == Library::kForge) {
        normalized |= asn1::encoding_rule_bit(EncodingRule::kPaddedBitString);
    }
    if (out.deviations != 0 && (out.deviations & ~normalized) == 0) {
        auto fixed = asn1::normalize_to_der(der, asn1::kToleranceAllBer);
        if (fixed.ok()) {
            out.wire = std::move(fixed.value().der);
        } else {
            out.wire.assign(der.begin(), der.end());
        }
    } else {
        // Either pure DER or at least one tolerated rule the library
        // leaves as-is: the re-emitted bytes are the input.
        out.wire.assign(der.begin(), der.end());
    }
    return out;
}

}  // namespace unicert::tlslib
