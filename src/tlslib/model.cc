#include "tlslib/model.h"

namespace unicert::tlslib {

DecodeBehavior LibraryModel::probe_decode(Library lib, asn1::StringType st, FieldContext ctx) {
    return decode_behavior(lib, st, ctx);
}

TextBehavior LibraryModel::probe_text(Library lib, FieldContext ctx) {
    return text_behavior(lib, ctx);
}

ParseOutcome LibraryModel::parse_attribute(Library lib, const x509::AttributeValue& av) {
    return tlslib::parse_attribute(lib, av);
}

ParseOutcome LibraryModel::parse_general_name(Library lib, const x509::GeneralName& gn,
                                              FieldContext ctx) {
    return tlslib::parse_general_name(lib, gn, ctx);
}

ParseOutcome LibraryModel::format_dn(Library lib, const x509::DistinguishedName& dn) {
    return tlslib::format_dn(lib, dn);
}

ParseOutcome LibraryModel::format_san(Library lib, const x509::GeneralNames& names) {
    return tlslib::format_san(lib, names);
}

EncodingOutcome LibraryModel::parse_encoding(Library lib, BytesView der) {
    return tlslib::parse_encoding(lib, der);
}

LibraryModel& builtin_model() {
    static LibraryModel model;
    return model;
}

}  // namespace unicert::tlslib
