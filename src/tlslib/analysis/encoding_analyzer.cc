#include "tlslib/analysis/encoding_analyzer.h"

#include <set>

#include "crypto/simsig.h"
#include "ctlog/corpus.h"
#include "faultsim/der_mutator.h"
#include "lint/analysis/analyzer.h"
#include "lint/rules.h"
#include "tlslib/encoding_profile.h"
#include "x509/builder.h"
#include "x509/parser.h"

namespace unicert::tlslib::analysis {
namespace {

using asn1::EncodingRule;

// The deviation lints paired with the encoding rule each one detects
// (the ground truth the kLintMismatch check compares against).
struct LintRulePair {
    const char* lint;
    EncodingRule rule;
};
constexpr LintRulePair kLintRules[] = {
    {"e_ber_long_form_length", EncodingRule::kLongFormLength},
    {"e_ber_indefinite_length", EncodingRule::kIndefiniteLength},
    {"e_ber_constructed_string", EncodingRule::kConstructedString},
    {"w_nonminimal_integer", EncodingRule::kNonMinimalInteger},
    {"e_bit_string_pad_nonzero", EncodingRule::kPaddedBitString},
};

// Outcome fields the determinism / order-independence replays compare.
struct OutcomeKey {
    bool accepted = false;
    int refused = -1;
    Bytes wire;

    bool operator==(const OutcomeKey&) const = default;
};

OutcomeKey key_of(const EncodingOutcome& o) {
    OutcomeKey k;
    k.accepted = o.accepted;
    k.refused = o.refused ? static_cast<int>(*o.refused) : -1;
    k.wire = o.wire;
    return k;
}

// Findings are deduplicated on (class, subject, rule): one probe class
// can trip the same contract hundreds of times and the gate needs one
// line per defect, not per probe.
class FindingSink {
public:
    explicit FindingSink(std::vector<EncFinding>& out) : out_(out) {}

    void add(EncCheckClass cls, std::string subject, std::string rule, std::string detail) {
        EncFinding f{cls, std::move(subject), std::move(rule), std::move(detail)};
        if (seen_.insert(baseline_line(f)).second) out_.push_back(std::move(f));
    }

private:
    std::vector<EncFinding>& out_;
    std::set<std::string> seen_;
};

// First BER rule present in `mask` that `profile` marks with `response`.
std::optional<EncodingRule> first_rule(uint32_t mask, const EncodingProfile& profile,
                                       RuleResponse response) {
    for (EncodingRule r : asn1::kAllBerRules) {
        if ((mask & asn1::encoding_rule_bit(r)) != 0 && profile.response(r) == response) {
            return r;
        }
    }
    return std::nullopt;
}

// A certificate whose keyUsage BIT STRING has 5 spare (zero) pad bits:
// generated corpora always emit unused_bits == 0, so the padded-rule
// probes need this handcrafted carrier to be derivable at all.
void add_padded_bit_string_carrier(std::vector<x509::Certificate>& certs) {
    if (certs.empty()) return;
    x509::Certificate cert = certs.front();
    // BIT STRING, length 2: 5 unused bits, value bits 101 (0xA0 with the
    // low five bits clear) — keyUsage digitalSignature|keyEncipherment.
    cert.extensions.push_back(
        x509::Extension{asn1::oids::key_usage(), true, Bytes{0x03, 0x02, 0x05, 0xA0}});
    certs.push_back(std::move(cert));
}

}  // namespace

const char* enc_check_class_name(EncCheckClass c) noexcept {
    switch (c) {
        case EncCheckClass::kDerRejected: return "der_rejected";
        case EncCheckClass::kProfileViolation: return "profile_violation";
        case EncCheckClass::kNormalizeMismatch: return "normalize_mismatch";
        case EncCheckClass::kNondeterminism: return "nondeterminism";
        case EncCheckClass::kOrderDependence: return "order_dependence";
        case EncCheckClass::kRuleUncovered: return "rule_uncovered";
        case EncCheckClass::kLintMismatch: return "lint_mismatch";
        case EncCheckClass::kRuleDefect: return "rule_defect";
    }
    return "?";
}

std::vector<DeviationProbe> EncodingAnalyzer::build_corpus(
    const EncodingAnalyzerOptions& options) {
    ctlog::CorpusOptions copts;
    copts.seed = options.seed;
    copts.scale = options.corpus_scale;
    ctlog::CorpusGenerator gen(copts);
    std::vector<ctlog::CorpusCert> corpus = gen.generate();

    std::vector<x509::Certificate> bases;
    bases.reserve(corpus.size() + 1);
    for (ctlog::CorpusCert& cc : corpus) bases.push_back(std::move(cc.cert));
    add_padded_bit_string_carrier(bases);

    crypto::SimSigner signer = crypto::SimSigner::from_name("Enccheck CA");
    faultsim::DerMutator mutator(options.seed);

    std::vector<DeviationProbe> probes;
    probes.reserve(bases.size() * (1 + std::size(asn1::kAllBerRules) *
                                           options.variants_per_rule));
    for (size_t i = 0; i < bases.size(); ++i) {
        Bytes origin = x509::sign_certificate(bases[i], signer);

        DeviationProbe control;
        control.der = origin;
        control.origin = origin;
        probes.push_back(std::move(control));

        for (size_t ri = 0; ri < std::size(asn1::kAllBerRules); ++ri) {
            EncodingRule rule = asn1::kAllBerRules[ri];
            for (size_t v = 0; v < options.variants_per_rule; ++v) {
                uint64_t salt = (static_cast<uint64_t>(i) << 16) | (ri << 8) | v;
                auto mutated = mutator.berize(rule, origin, salt);
                if (!mutated) break;  // no eligible site for this rule
                auto scan = asn1::scan_encoding(BytesView(*mutated), asn1::kToleranceAllBer);
                if (!scan.ok()) continue;  // defensive; berize output always scans
                DeviationProbe probe;
                probe.der = std::move(*mutated);
                probe.origin = origin;
                probe.mask = scan->mask;
                probe.target = rule;
                probes.push_back(std::move(probe));
            }
        }
    }
    return probes;
}

EncodingReport EncodingAnalyzer::analyze(LibraryModel& model) const {
    EncodingReport report;
    FindingSink sink(report.findings);

    std::vector<DeviationProbe> probes = build_corpus(options_);
    report.probe_count = probes.size();
    report.libraries_checked = kAllLibraries.size();

    // ---- Corpus coverage ---------------------------------------------------
    for (const DeviationProbe& p : probes) {
        if (p.mask == 0) {
            report.per_rule_probes[0]++;
        } else {
            report.deviant_probe_count++;
            for (EncodingRule r : asn1::kAllBerRules) {
                if ((p.mask & asn1::encoding_rule_bit(r)) != 0) {
                    report.per_rule_probes[static_cast<size_t>(r)]++;
                }
            }
        }
    }
    for (EncodingRule r : asn1::kAllBerRules) {
        if (report.per_rule_probes[static_cast<size_t>(r)] == 0) {
            sink.add(EncCheckClass::kRuleUncovered, "corpus", asn1::encoding_rule_name(r),
                     "no probe exercises this rule; profile checks would be vacuous");
        }
    }

    // ---- Declared-profile sanity + replay ----------------------------------
    for (Library lib : kAllLibraries) {
        if (encoding_profile(lib).response(EncodingRule::kDer) != RuleResponse::kAccept) {
            sink.add(EncCheckClass::kProfileViolation, library_name(lib), "der",
                     "declared profile does not accept canonical DER");
        }
    }

    std::vector<std::vector<OutcomeKey>> observed(probes.size());
    for (size_t pi = 0; pi < probes.size(); ++pi) {
        const DeviationProbe& probe = probes[pi];
        observed[pi].reserve(kAllLibraries.size());
        for (Library lib : kAllLibraries) {
            const EncodingProfile& profile = encoding_profile(lib);
            EncodingOutcome outcome = model.parse_encoding(lib, BytesView(probe.der));
            observed[pi].push_back(key_of(outcome));

            const char* name = library_name(lib);
            if (probe.mask == 0) {
                if (!outcome.accepted) {
                    sink.add(EncCheckClass::kDerRejected, name, "der",
                             "pure-DER control refused: " + outcome.error);
                }
                continue;
            }
            const bool expect_accept = (probe.mask & profile.rejected_mask()) == 0;
            if (outcome.accepted != expect_accept) {
                auto culprit = expect_accept
                                   ? (outcome.refused ? outcome.refused
                                                      : first_rule(probe.mask, profile,
                                                                   RuleResponse::kAccept))
                                   : first_rule(probe.mask, profile, RuleResponse::kReject);
                sink.add(EncCheckClass::kProfileViolation, name,
                         culprit ? asn1::encoding_rule_name(*culprit) : "-",
                         std::string("declared ") + (expect_accept ? "tolerant" : "reject") +
                             " but observed " + (outcome.accepted ? "accept" : "reject"));
                continue;
            }
            if (!outcome.accepted) continue;

            // Wire conformance: canonical DER exactly when every present
            // deviation is declared kNormalize; the raw input otherwise.
            const bool expect_normalized = (probe.mask & ~profile.normalized_mask()) == 0;
            Bytes expected_wire;
            if (expect_normalized) {
                auto fixed = asn1::normalize_to_der(BytesView(probe.der),
                                                    asn1::kToleranceAllBer);
                if (fixed.ok()) expected_wire = std::move(fixed.value().der);
            } else {
                expected_wire = probe.der;
            }
            if (outcome.wire != expected_wire) {
                auto culprit =
                    expect_normalized
                        ? first_rule(probe.mask, profile, RuleResponse::kNormalize)
                        : first_rule(probe.mask, profile, RuleResponse::kAccept);
                sink.add(EncCheckClass::kNormalizeMismatch, name,
                         culprit ? asn1::encoding_rule_name(*culprit) : "-",
                         std::string("declared ") +
                             (expect_normalized ? "normalize" : "raw echo") +
                             " but re-emitted bytes differ (" +
                             std::to_string(outcome.wire.size()) + " vs " +
                             std::to_string(expected_wire.size()) + " bytes)");
            }
        }
    }

    // ---- Determinism -------------------------------------------------------
    for (size_t rep = 0; rep < options_.determinism_repeats; ++rep) {
        for (size_t pi = 0; pi < probes.size(); ++pi) {
            for (size_t li = 0; li < kAllLibraries.size(); ++li) {
                EncodingOutcome again =
                    model.parse_encoding(kAllLibraries[li], BytesView(probes[pi].der));
                if (!(key_of(again) == observed[pi][li])) {
                    sink.add(EncCheckClass::kNondeterminism,
                             library_name(kAllLibraries[li]),
                             probes[pi].target
                                 ? asn1::encoding_rule_name(*probes[pi].target)
                                 : "der",
                             "outcome changed on repeat " + std::to_string(rep + 1));
                }
            }
        }
    }

    // ---- Order independence ------------------------------------------------
    for (size_t pi = probes.size(); pi-- > 0;) {
        for (size_t li = kAllLibraries.size(); li-- > 0;) {
            EncodingOutcome again =
                model.parse_encoding(kAllLibraries[li], BytesView(probes[pi].der));
            if (!(key_of(again) == observed[pi][li])) {
                sink.add(EncCheckClass::kOrderDependence, library_name(kAllLibraries[li]),
                         probes[pi].target ? asn1::encoding_rule_name(*probes[pi].target)
                                           : "der",
                         "outcome changed under reversed replay order");
            }
        }
    }

    // ---- Lint ground truth -------------------------------------------------
    if (options_.check_lints) {
        const lint::Registry& registry = lint::encoding_deviation_registry();
        for (const DeviationProbe& probe : probes) {
            auto parsed = x509::parse_certificate(BytesView(probe.origin));
            if (!parsed.ok()) continue;
            x509::Certificate cert = std::move(parsed).value();
            cert.der.assign(probe.der.begin(), probe.der.end());
            lint::CertView view(cert);
            for (const LintRulePair& pair : kLintRules) {
                const lint::Rule* rule = registry.find(pair.lint);
                if (rule == nullptr) {
                    sink.add(EncCheckClass::kLintMismatch, pair.lint,
                             asn1::encoding_rule_name(pair.rule),
                             "lint missing from encoding_deviation_registry");
                    continue;
                }
                const bool fired = rule->check(view).has_value();
                const bool expected =
                    (probe.mask & asn1::encoding_rule_bit(pair.rule)) != 0;
                if (fired != expected) {
                    sink.add(EncCheckClass::kLintMismatch, pair.lint,
                             asn1::encoding_rule_name(pair.rule),
                             std::string("scan ground truth says ") +
                                 (expected ? "deviant" : "clean") + " but lint " +
                                 (fired ? "fired" : "stayed silent"));
                }
            }
        }
    }

    // ---- Deviation-registry metadata hygiene -------------------------------
    if (options_.check_rule_metadata) {
        lint::analysis::AnalyzerOptions lopts;
        lopts.seed = options_.seed;
        lopts.corpus_scale = 64000.0;
        lopts.mutant_probes = 16;
        lopts.check_relations = false;
        lopts.check_table1_counts = false;
        lint::analysis::Analyzer lint_analyzer(lopts);
        lint::analysis::AnalysisReport lint_report =
            lint_analyzer.analyze(lint::encoding_deviation_registry());
        for (const lint::analysis::AnalysisFinding& f : lint_report.findings) {
            sink.add(EncCheckClass::kRuleDefect, f.rule, "-",
                     std::string(lint::analysis::check_class_name(f.cls)) + ": " + f.detail);
        }
    }

    return report;
}

// ---- Baseline ---------------------------------------------------------------

std::string baseline_line(const EncFinding& f) {
    std::string line = enc_check_class_name(f.cls);
    line += ' ';
    line += f.subject.empty() ? "-" : f.subject;
    line += ' ';
    line += f.rule.empty() ? "-" : f.rule;
    return line;
}

size_t apply_baseline(EncodingReport& report, std::string_view baseline_text) {
    std::set<std::string> acknowledged;
    size_t start = 0;
    while (start <= baseline_text.size()) {
        size_t end = baseline_text.find('\n', start);
        std::string_view line = baseline_text.substr(
            start, end == std::string_view::npos ? std::string_view::npos : end - start);
        while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
            line.remove_suffix(1);
        }
        while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
        if (!line.empty() && line.front() != '#') acknowledged.emplace(line);
        if (end == std::string_view::npos) break;
        start = end + 1;
    }

    size_t moved = 0;
    std::vector<EncFinding> remaining;
    for (EncFinding& f : report.findings) {
        if (acknowledged.count(baseline_line(f)) != 0) {
            report.baselined.push_back(std::move(f));
            ++moved;
        } else {
            remaining.push_back(std::move(f));
        }
    }
    report.findings = std::move(remaining);
    return moved;
}

// ---- JSON -------------------------------------------------------------------

namespace {

std::string escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* kHex = "0123456789abcdef";
                    out += "\\u00";
                    out += kHex[(c >> 4) & 0xF];
                    out += kHex[c & 0xF];
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void append_findings(std::string& json, const std::vector<EncFinding>& findings) {
    json += '[';
    for (size_t i = 0; i < findings.size(); ++i) {
        const EncFinding& f = findings[i];
        if (i != 0) json += ',';
        json += "{\"class\":\"";
        json += enc_check_class_name(f.cls);
        json += "\",\"subject\":\"";
        json += escape(f.subject);
        json += "\",\"rule\":\"";
        json += escape(f.rule);
        json += "\",\"detail\":\"";
        json += escape(f.detail);
        json += "\"}";
    }
    json += ']';
}

}  // namespace

std::string encoding_report_to_json(const EncodingReport& report) {
    std::string json = "{\"libraries_checked\":" + std::to_string(report.libraries_checked) +
                       ",\"probes\":" + std::to_string(report.probe_count) +
                       ",\"deviant_probes\":" + std::to_string(report.deviant_probe_count) +
                       ",\"per_rule_probes\":{";
    bool first = true;
    for (asn1::EncodingRule r : asn1::kAllBerRules) {
        if (!first) json += ',';
        first = false;
        json += '"';
        json += asn1::encoding_rule_name(r);
        json += "\":";
        json += std::to_string(report.per_rule_probes[static_cast<size_t>(r)]);
    }
    json += "},\"clean\":";
    json += report.clean() ? "true" : "false";
    json += ",\"findings\":";
    append_findings(json, report.findings);
    json += ",\"baselined\":";
    append_findings(json, report.baselined);
    json += "}\n";
    return json;
}

int exit_code(const EncodingReport& report) noexcept { return report.clean() ? 0 : 1; }

}  // namespace unicert::tlslib::analysis
