// unicert/tlslib/analysis/encoding_analyzer.h
//
// Analyzer for the encoding-rule tolerance contracts (the tlslib
// counterpart of lint::analysis::Analyzer, PR 4's rule-set checker).
// Every LibraryModel declares a static EncodingProfile; this analyzer
// generates a deviation corpus — probe certificates crossed with the
// semantics-preserving BER-izing DerMutator transforms — replays it
// through all nine models, and verifies:
//
//   * DER controls — every library accepts the untouched DER originals;
//   * profile conformance — observed accept/reject per probe matches
//     the mask of rules the declared profile rejects;
//   * normalize conformance — the bytes a library re-emits are
//     canonical DER exactly when its profile says it normalizes every
//     deviation present, and the raw input otherwise;
//   * determinism and order independence — the outcome matrix is stable
//     across repeats and across reversed probe/library order (the PR 4
//     replay contract);
//   * corpus coverage — each of the five BER rules is exercised by at
//     least one probe, so the checks above cannot pass vacuously;
//   * lint ground truth — each encoding-deviation lint fires on exactly
//     the probes whose scan mask contains its rule;
//   * rule metadata — lint::analysis::Analyzer hygiene checks over the
//     deviation lint registry.
//
// Known-intentional findings are acknowledged via a plain-text baseline
// (tools/enccheck_baseline.txt), mirroring unicert_rulecheck.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asn1/encoding.h"
#include "tlslib/model.h"

namespace unicert::tlslib::analysis {

enum class EncCheckClass {
    kDerRejected,        // a pure-DER control probe was refused
    kProfileViolation,   // observed accept/reject disagrees with profile
    kNormalizeMismatch,  // re-emitted bytes disagree with the declaration
    kNondeterminism,     // same probe, different outcome on repeat
    kOrderDependence,    // outcome depends on probe/library order
    kRuleUncovered,      // no probe exercises this encoding rule
    kLintMismatch,       // deviation lint disagrees with scan ground truth
    kRuleDefect,         // lint::analysis finding on the deviation registry
};

const char* enc_check_class_name(EncCheckClass c) noexcept;

struct EncFinding {
    EncCheckClass cls = EncCheckClass::kProfileViolation;
    std::string subject;  // library or lint name, or "corpus"
    std::string rule;     // encoding-rule name, or "-"
    std::string detail;   // human-readable evidence
};

// One entry of the deviation corpus.
struct DeviationProbe {
    Bytes der;     // probe bytes (BER-ized, or the DER control itself)
    Bytes origin;  // the strict-DER document the probe came from
    uint32_t mask = 0;  // ground-truth deviation mask (tolerant scan)
    std::optional<asn1::EncodingRule> target;  // nullopt: control probe
};

struct EncodingAnalyzerOptions {
    uint64_t seed = 42;
    // CorpusGenerator downscale for the base documents (larger = fewer
    // certificates; the default yields roughly 60).
    double corpus_scale = 600000.0;
    // BER-ized variants per (base document, rule).
    size_t variants_per_rule = 3;
    // Extra outcome-matrix repetitions for the determinism check.
    size_t determinism_repeats = 2;
    bool check_lints = true;
    bool check_rule_metadata = true;
};

struct EncodingReport {
    size_t libraries_checked = 0;
    size_t probe_count = 0;
    size_t deviant_probe_count = 0;
    // [0] counts DER controls; [1..5] probes exercising each BER rule.
    std::array<size_t, asn1::kEncodingRuleCount> per_rule_probes{};
    std::vector<EncFinding> findings;   // violations (gate-blocking)
    std::vector<EncFinding> baselined;  // acknowledged via baseline

    bool clean() const noexcept { return findings.empty(); }
};

class EncodingAnalyzer {
public:
    explicit EncodingAnalyzer(EncodingAnalyzerOptions options = {}) : options_(options) {}

    // Run every check against `model`. Deterministic for a given
    // (options.seed, model behaviour). Findings are deduplicated by
    // (class, subject, rule) keeping the first evidence.
    EncodingReport analyze(LibraryModel& model) const;

    // The deviation corpus the analyzer replays (exposed for the bench
    // and tests). Deterministic in options.seed.
    static std::vector<DeviationProbe> build_corpus(const EncodingAnalyzerOptions& options);

private:
    EncodingAnalyzerOptions options_;
};

// Baseline handling, same format as lint::analysis:
//   <class> <subject> <rule>
// with `-` for an empty rule; blank lines and `#` comments ignored.
// Returns the number of findings moved to report.baselined.
size_t apply_baseline(EncodingReport& report, std::string_view baseline_text);

// The canonical baseline line for a finding (no trailing newline).
std::string baseline_line(const EncFinding& f);

// Machine-readable report (the unicert_enccheck --json shape).
std::string encoding_report_to_json(const EncodingReport& report);

// Process exit code the CI gate uses: 0 clean, 1 findings remain.
int exit_code(const EncodingReport& report) noexcept;

}  // namespace unicert::tlslib::analysis
