// unicert/tlslib/encoding_profile.h
//
// Per-library encoding-rule tolerance contracts. Where profile.h models
// what each of the nine libraries does with *decoded values* (Tables
// 4/5), this file models what each library does with the *encoding
// itself*: for every non-DER rule in asn1::EncodingRule, does the
// library reject the document, accept it and expose the raw BER bytes,
// or accept it and canonicalize to DER? The declarations mirror
// lint::RuleFootprint — static claims that `unicert_enccheck` verifies
// dynamically against a BER-ized deviation corpus.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "asn1/encoding.h"
#include "tlslib/library.h"

namespace unicert::tlslib {

// What a library does when a document exercises one non-DER rule.
enum class RuleResponse : uint8_t {
    kReject,     // parse error
    kAccept,     // parses; re-emitted bytes keep the BER encoding
    kNormalize,  // parses; re-emitted bytes are canonical DER
};

const char* rule_response_name(RuleResponse r) noexcept;

// A library's declared tolerance, indexed by EncodingRule. The kDer
// slot must be kAccept: every library accepts canonical DER.
struct EncodingProfile {
    std::array<RuleResponse, asn1::kEncodingRuleCount> responses{};

    RuleResponse response(asn1::EncodingRule r) const noexcept {
        return responses[static_cast<uint8_t>(r)];
    }
    uint32_t rejected_mask() const noexcept;
    uint32_t normalized_mask() const noexcept;
};

// The declared profile for each of the nine libraries (static table,
// the contract unicert_enccheck checks observed behaviour against).
const EncodingProfile& encoding_profile(Library lib) noexcept;

// Observed behaviour of one simulated encoding-parse.
struct EncodingOutcome {
    bool accepted = false;
    uint32_t deviations = 0;  // mask of encoding_rule_bit()s in the input
    // First rule (in kAllBerRules order) that made the library refuse.
    std::optional<asn1::EncodingRule> refused;
    // Bytes the library would re-emit after parsing: canonical DER when
    // it normalizes everything it tolerated, the input verbatim when it
    // surfaces raw BER. Empty on reject.
    Bytes wire;
    std::string error;  // stable code when !accepted
};

// Simulate `lib` parsing `der` (which may be BER) per its profile.
// Free-function form of the LibraryModel::parse_encoding seam.
EncodingOutcome parse_encoding(Library lib, BytesView der);

}  // namespace unicert::tlslib
