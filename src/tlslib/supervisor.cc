#include "tlslib/supervisor.h"

#include <exception>
#include <utility>

namespace unicert::tlslib {
namespace {

size_t lib_index(Library lib) noexcept { return static_cast<size_t>(lib); }

// Internal control-flow signals thrown by the guarded model and caught
// by Supervisor::contain. Deliberately NOT derived from std::exception
// so a profile double throwing std::runtime_error is classified as a
// crash, not a budget violation.
struct HangSignal {
    std::string detail;
};
struct OversizeSignal {
    std::string detail;
};

// Wraps the model under evaluation: charges one budget step per
// profile call, re-checks the wall clock when a call returns (a
// cooperative hang burns simulated clock inside the call), and caps
// the output size of every ParseOutcome.
class GuardedModel final : public LibraryModel {
public:
    GuardedModel(LibraryModel& base, const EvalBudget& budget, core::Clock& clock)
        : base_(&base),
          budget_(budget),
          guard_({.wall_ms = budget.wall_ms, .max_steps = budget.max_model_calls}, clock) {}

    uint64_t calls() const noexcept { return guard_.steps_used(); }

    DecodeBehavior probe_decode(Library lib, asn1::StringType st, FieldContext ctx) override {
        pre();
        return base_->probe_decode(lib, st, ctx);
    }
    TextBehavior probe_text(Library lib, FieldContext ctx) override {
        pre();
        return base_->probe_text(lib, ctx);
    }
    ParseOutcome parse_attribute(Library lib, const x509::AttributeValue& av) override {
        pre();
        return post(base_->parse_attribute(lib, av));
    }
    ParseOutcome parse_general_name(Library lib, const x509::GeneralName& gn,
                                    FieldContext ctx) override {
        pre();
        return post(base_->parse_general_name(lib, gn, ctx));
    }
    ParseOutcome format_dn(Library lib, const x509::DistinguishedName& dn) override {
        pre();
        return post(base_->format_dn(lib, dn));
    }
    ParseOutcome format_san(Library lib, const x509::GeneralNames& names) override {
        pre();
        return post(base_->format_san(lib, names));
    }

private:
    void pre() { raise_if(guard_.tick()); }

    ParseOutcome post(ParseOutcome out) {
        raise_if(guard_.check());
        if (budget_.max_output_bytes > 0 && out.value_utf8.size() > budget_.max_output_bytes) {
            throw OversizeSignal{"output of " + std::to_string(out.value_utf8.size()) +
                                 " bytes exceeds budget of " +
                                 std::to_string(budget_.max_output_bytes)};
        }
        return out;
    }

    static void raise_if(const Status& s) {
        if (!s.ok()) throw HangSignal{s.error().message};
    }

    LibraryModel* base_;
    EvalBudget budget_;
    core::BudgetGuard guard_;
};

}  // namespace

const char* eval_outcome_name(EvalOutcome o) noexcept {
    switch (o) {
        case EvalOutcome::kOk: return "ok";
        case EvalOutcome::kUnsupported: return "unsupported";
        case EvalOutcome::kParseRefusal: return "parse_refusal";
        case EvalOutcome::kDivergence: return "divergence";
        case EvalOutcome::kCrash: return "crash";
        case EvalOutcome::kHang: return "hang";
        case EvalOutcome::kOversizeOutput: return "oversize_output";
    }
    return "?";
}

bool eval_outcome_is_failure(EvalOutcome o) noexcept {
    return o == EvalOutcome::kDivergence || o == EvalOutcome::kCrash ||
           o == EvalOutcome::kHang || o == EvalOutcome::kOversizeOutput;
}

bool eval_outcome_quarantines(EvalOutcome o) noexcept {
    return o == EvalOutcome::kCrash || o == EvalOutcome::kHang ||
           o == EvalOutcome::kOversizeOutput;
}

Supervisor::Supervisor(LibraryModel& model, EvalBudget budget, core::Clock& clock)
    : model_(&model), budget_(budget), clock_(&clock) {}

bool Supervisor::quarantined(Library lib) const noexcept {
    return quarantine_[lib_index(lib)].has_value();
}

std::optional<EvalOutcome> Supervisor::quarantine_reason(Library lib) const noexcept {
    return quarantine_[lib_index(lib)];
}

void Supervisor::reset_quarantine() noexcept { quarantine_.fill(std::nullopt); }

std::vector<Scenario> Supervisor::table4_scenarios() {
    using asn1::StringType;
    return {
        {StringType::kPrintableString, FieldContext::kDnName},
        {StringType::kIa5String, FieldContext::kDnName},
        {StringType::kBmpString, FieldContext::kDnName},
        {StringType::kUtf8String, FieldContext::kDnName},
        {StringType::kIa5String, FieldContext::kGeneralName},
    };
}

template <typename Fn>
EvalOutcome Supervisor::contain(Library lib, Fn&& fn, std::string& detail, uint64_t* calls,
                                int64_t* wall) {
    GuardedModel guarded(*model_, budget_, *clock_);
    DifferentialRunner runner(guarded);
    int64_t t0 = clock_->now_ms();
    EvalOutcome outcome = EvalOutcome::kOk;
    try {
        fn(runner);
    } catch (const HangSignal& h) {
        outcome = EvalOutcome::kHang;
        detail = h.detail;
    } catch (const OversizeSignal& o) {
        outcome = EvalOutcome::kOversizeOutput;
        detail = o.detail;
    } catch (const std::exception& e) {
        outcome = EvalOutcome::kCrash;
        detail = e.what();
    } catch (...) {
        outcome = EvalOutcome::kCrash;
        detail = "non-standard exception";
    }
    if (calls != nullptr) *calls = guarded.calls();
    if (wall != nullptr) *wall = clock_->now_ms() - t0;
    if (eval_outcome_quarantines(outcome) && !quarantine_[lib_index(lib)]) {
        quarantine_[lib_index(lib)] = outcome;
    }
    return outcome;
}

SupervisedEval Supervisor::evaluate(Library lib, const Scenario& scenario) {
    SupervisedEval cell;
    cell.lib = lib;
    cell.scenario = scenario;

    if (auto reason = quarantine_reason(lib)) {
        cell.outcome = EvalOutcome::kUnsupported;
        cell.inferred.supported = false;
        cell.detail = std::string("quarantined after ") + eval_outcome_name(*reason);
        return cell;
    }

    InferredDecoding inferred;
    EvalOutcome contained = contain(
        lib, [&](DifferentialRunner& r) { inferred = r.infer(lib, scenario); }, cell.detail,
        &cell.model_calls, &cell.wall_ms);
    if (contained != EvalOutcome::kOk) {
        cell.outcome = contained;
        cell.inferred.supported = false;
        return cell;  // decode_class stays kUnsupported: cell unresolvable
    }

    cell.inferred = inferred;
    cell.decode_class = classify_decoding(scenario.declared, inferred);
    if (!inferred.supported) {
        cell.outcome = EvalOutcome::kUnsupported;
    } else if (inferred.method.has_value()) {
        cell.outcome = EvalOutcome::kOk;
    } else if (inferred.observations == 0) {
        cell.outcome = EvalOutcome::kParseRefusal;
        cell.detail = "library refused every test payload";
    } else {
        cell.outcome = EvalOutcome::kDivergence;
        cell.detail = "no reference decoding matched " +
                      std::to_string(inferred.observations) + " observed outputs";
    }
    return cell;
}

SupervisedViolation Supervisor::evaluate_illegal_char(Library lib, asn1::StringType declared,
                                                      FieldContext ctx) {
    SupervisedViolation v;
    v.lib = lib;
    v.kind = ViolationKind::kIllegalChar;
    v.declared = declared;
    v.context = ctx;

    if (auto reason = quarantine_reason(lib)) {
        v.outcome = EvalOutcome::kUnsupported;
        v.detail = std::string("quarantined after ") + eval_outcome_name(*reason);
        return v;
    }

    ViolationClass cls = ViolationClass::kUnsupported;
    EvalOutcome contained = contain(
        lib, [&](DifferentialRunner& r) { cls = r.illegal_char_violation(lib, declared, ctx); },
        v.detail, nullptr, nullptr);
    v.outcome = contained;
    if (contained == EvalOutcome::kOk) v.violation = cls;
    return v;
}

SupervisedViolation Supervisor::evaluate_escaping(Library lib, FieldContext ctx,
                                                  x509::DnDialect standard) {
    SupervisedViolation v;
    v.lib = lib;
    v.kind = ViolationKind::kEscaping;
    v.context = ctx;
    v.standard = standard;

    if (auto reason = quarantine_reason(lib)) {
        v.outcome = EvalOutcome::kUnsupported;
        v.detail = std::string("quarantined after ") + eval_outcome_name(*reason);
        return v;
    }

    ViolationClass cls = ViolationClass::kUnsupported;
    EvalOutcome contained = contain(
        lib, [&](DifferentialRunner& r) { cls = r.escaping_violation(lib, ctx, standard); },
        v.detail, nullptr, nullptr);
    v.outcome = contained;
    if (contained == EvalOutcome::kOk) v.violation = cls;
    return v;
}

SweepReport Supervisor::sweep(const std::vector<Scenario>& scenarios) {
    using asn1::StringType;
    SweepReport report;

    for (const Scenario& scenario : scenarios) {
        for (Library lib : kAllLibraries) {
            report.decode_cells.push_back(evaluate(lib, scenario));
        }
    }

    // Table 5 rows 1-4 (illegal characters) and 5-10 (escaping).
    const std::pair<StringType, FieldContext> kCharRows[] = {
        {StringType::kPrintableString, FieldContext::kDnName},
        {StringType::kIa5String, FieldContext::kDnName},
        {StringType::kBmpString, FieldContext::kDnName},
        {StringType::kIa5String, FieldContext::kGeneralName},
    };
    for (Library lib : kAllLibraries) {
        for (const auto& [st, ctx] : kCharRows) {
            report.violation_cells.push_back(evaluate_illegal_char(lib, st, ctx));
        }
        for (x509::DnDialect standard : {x509::DnDialect::kRfc2253, x509::DnDialect::kRfc4514,
                                         x509::DnDialect::kRfc1779}) {
            for (FieldContext ctx : {FieldContext::kDnName, FieldContext::kGeneralName}) {
                report.violation_cells.push_back(evaluate_escaping(lib, ctx, standard));
            }
        }
    }

    for (const SupervisedEval& cell : report.decode_cells) {
        if (eval_outcome_is_failure(cell.outcome)) ++report.failures;
    }
    for (const SupervisedViolation& cell : report.violation_cells) {
        if (eval_outcome_is_failure(cell.outcome)) ++report.failures;
    }
    for (Library lib : kAllLibraries) {
        if (quarantined(lib)) report.quarantined.push_back(lib);
    }
    return report;
}

}  // namespace unicert::tlslib
