// unicert/tlslib/differential.h
//
// The Section 3.2 differential-testing engine, as executable code:
//   (i)  generate test Unicerts — one mutated field per certificate,
//        one RDN per DN, values embedding special Unicode characters
//        (all of U+0000..U+00FF plus one sample per Unicode block) and
//        every permitted ASN.1 string type;
//   (ii) run the field values through each library profile;
//   (iii) infer each library's decoding method by matching outputs
//        against the five reference decodings (ASCII, ISO-8859-1,
//        UTF-8, UCS-2, UTF-16) composed with the three special-
//        character handling modes (truncation, replacement, escaping);
//   (iv) classify the inferred behaviour into Table 4's categories and
//        derive Table 5's character-check / escaping violations.
#pragma once

#include <optional>
#include <vector>

#include "tlslib/model.h"
#include "tlslib/profile.h"

namespace unicert::tlslib {

// Table 4 cell categories.
enum class DecodeClass {
    kNoIssue,       // ○
    kOverTolerant,  // ◑
    kIncompatible,  // ⊗
    kModified,      // ⊙
    kUnsupported,   // -
};

const char* decode_class_symbol(DecodeClass c) noexcept;

// Table 5 cell categories.
enum class ViolationClass {
    kNone,         // ○
    kUnexploited,  // ⊙
    kExploited,    // ⊗
    kUnsupported,  // -
};

const char* violation_class_symbol(ViolationClass c) noexcept;

// What the inference step concluded about one (library, scenario).
struct InferredDecoding {
    bool supported = true;
    bool parse_errors = false;                    // library refused some inputs
    size_t observations = 0;                      // payloads the library parsed
    std::optional<unicode::Encoding> method;      // matched reference decoding
    std::optional<unicode::ErrorPolicy> handling; // matched char-handling mode
    bool modified = false;                        // handling != plain strict
};

// One test scenario: a declared string type in a parsing context.
struct Scenario {
    asn1::StringType declared;
    FieldContext context;
};

// Classify an inferred decoding against the declared type's standard.
DecodeClass classify_decoding(asn1::StringType declared, const InferredDecoding& inferred);

class DifferentialRunner {
public:
    // Evaluates against the built-in profile tables by default; pass a
    // model to test doubles or supervised/guarded wrappers. The model
    // must outlive the runner.
    DifferentialRunner() : model_(&builtin_model()) {}
    explicit DifferentialRunner(LibraryModel& model) : model_(&model) {}

    LibraryModel& model() const noexcept { return *model_; }

    // Test byte payloads per Section 3.2: baseline + every byte value
    // 0x00..0xFF embedded + multi-byte UTF-8 + UCS-2 + block samples.
    static std::vector<Bytes> test_payloads(asn1::StringType declared);

    // Step (ii)+(iii): infer the decoding behaviour of one library for
    // one scenario from observed outputs alone.
    InferredDecoding infer(Library lib, const Scenario& scenario) const;

    // Table 5, rows 1-4: does the library accept standard-violating
    // characters for this string type / context without flagging them?
    ViolationClass illegal_char_violation(Library lib, asn1::StringType declared,
                                          FieldContext ctx) const;

    // Table 5, rows 5-10: escaping compliance of the library's DN / SAN
    // text output against one of the three DN string-representation
    // RFCs. `injection_possible` style exploitation (subfield forgery)
    // yields kExploited.
    ViolationClass escaping_violation(Library lib, FieldContext ctx,
                                      x509::DnDialect standard) const;

    // The concrete forgery checks behind the ⊗ cells:
    // DN: a CN value that injects a second attribute into the rendered
    // string (OpenSSL oneline).
    bool dn_subfield_forgery_possible(Library lib) const;
    // SAN: a DNSName value that injects a second "DNS:" entry into the
    // rendered SAN text (PyOpenSSL).
    bool san_subfield_forgery_possible(Library lib) const;

private:
    LibraryModel* model_;
};

}  // namespace unicert::tlslib
