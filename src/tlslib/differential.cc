#include "tlslib/differential.h"

#include <array>

#include "unicode/blocks.h"
#include "unicode/properties.h"

namespace unicert::tlslib {
namespace {

using asn1::StringType;
using unicode::Encoding;
using unicode::ErrorPolicy;

constexpr std::array<Encoding, 5> kCandidateMethods = {
    Encoding::kAscii, Encoding::kLatin1, Encoding::kUtf8, Encoding::kUcs2, Encoding::kUtf16,
};

constexpr std::array<ErrorPolicy, 4> kCandidateHandling = {
    ErrorPolicy::kStrict, ErrorPolicy::kReplace, ErrorPolicy::kSkip, ErrorPolicy::kHexEscape,
};

// Run one payload through a library model as a DN attribute or GN.
ParseOutcome run_payload(LibraryModel& model, Library lib, const Scenario& s,
                         const Bytes& payload) {
    if (s.context == FieldContext::kDnName) {
        x509::AttributeValue av;
        av.type = asn1::oids::common_name();
        av.string_type = s.declared;
        av.value_bytes = payload;
        return model.parse_attribute(lib, av);
    }
    x509::GeneralName gn;
    gn.type = s.context == FieldContext::kCrlDp ? x509::GeneralNameType::kUri
                                                : x509::GeneralNameType::kDnsName;
    gn.string_type = asn1::StringType::kIa5String;
    gn.value_bytes = payload;
    return model.parse_general_name(lib, gn, s.context);
}

// Reference decoding of a payload: method + handling, rendered to the
// same UTF-8 interchange form the profiles produce. `control_replace`
// models the third special-character mode of Section 3.2 (character
// replacement of *valid* control characters, PyOpenSSL's '.' rewrite).
std::string reference_decode(const Bytes& payload, Encoding method, ErrorPolicy handling,
                             bool control_replace) {
    std::string base;
    if (handling == ErrorPolicy::kStrict) {
        auto strict = unicode::decode(payload, method);
        if (!strict.ok()) return {};  // distinguishable: strict fails
        base = unicode::codepoints_to_utf8(strict.value());
    } else {
        base = unicode::transcode_to_utf8(payload, method, handling);
    }
    if (control_replace) {
        auto cps = unicode::utf8_to_codepoints(base);
        if (cps.ok()) {
            for (unicode::CodePoint& cp : cps.value()) {
                if (unicode::is_c0_control(cp) && cp != '\t') cp = '.';
            }
            base = unicode::codepoints_to_utf8(cps.value());
        }
    }
    return base;
}

}  // namespace

const char* decode_class_symbol(DecodeClass c) noexcept {
    switch (c) {
        case DecodeClass::kNoIssue: return "o";
        case DecodeClass::kOverTolerant: return "OT";
        case DecodeClass::kIncompatible: return "X";
        case DecodeClass::kModified: return "M";
        case DecodeClass::kUnsupported: return "-";
    }
    return "?";
}

const char* violation_class_symbol(ViolationClass c) noexcept {
    switch (c) {
        case ViolationClass::kNone: return "o";
        case ViolationClass::kUnexploited: return "V";
        case ViolationClass::kExploited: return "X";
        case ViolationClass::kUnsupported: return "-";
    }
    return "?";
}

DecodeClass classify_decoding(StringType declared, const InferredDecoding& inferred) {
    if (!inferred.supported) return DecodeClass::kUnsupported;
    if (!inferred.method) return DecodeClass::kNoIssue;  // only errors observed
    Encoding nominal = asn1::nominal_encoding(declared);
    Encoding m = *inferred.method;
    // A wrong *method* dominates the classification; substitution of
    // undecodable bytes under the correct method is "modified".
    if (m == nominal) {
        return inferred.modified ? DecodeClass::kModified : DecodeClass::kNoIssue;
    }

    switch (nominal) {
        case Encoding::kAscii:
            // Wider single-byte / multi-byte reads accept characters the
            // type forbids but agree on the ASCII core: over-tolerant.
            if (m == Encoding::kLatin1 || m == Encoding::kUtf8) {
                return DecodeClass::kOverTolerant;
            }
            return DecodeClass::kIncompatible;
        case Encoding::kUtf8:
            // Reading UTF-8 bytewise produces mojibake: incompatible.
            return DecodeClass::kIncompatible;
        case Encoding::kUcs2:
            if (m == Encoding::kUtf16) return DecodeClass::kOverTolerant;
            return DecodeClass::kIncompatible;
        case Encoding::kLatin1:  // TeletexString-as-Latin-1 baseline
            if (m == Encoding::kUtf8) return DecodeClass::kOverTolerant;
            return DecodeClass::kIncompatible;
        default:
            return DecodeClass::kIncompatible;
    }
}

std::vector<Bytes> DifferentialRunner::test_payloads(StringType declared) {
    std::vector<Bytes> payloads;

    // Baseline, pure ASCII.
    payloads.push_back(to_bytes("test.com"));

    // Every byte value embedded into the baseline (RFC-constrained
    // ranges and historical CVEs live in U+0000..U+00FF).
    for (int b = 0; b < 256; ++b) {
        Bytes p = to_bytes("te");
        p.push_back(static_cast<uint8_t>(b));
        append(p, to_bytes("st.com"));
        payloads.push_back(std::move(p));
    }

    // Well-formed multi-byte UTF-8.
    payloads.push_back(to_bytes("t\xC3\xABst.com"));            // ë
    payloads.push_back(to_bytes("\xE4\xB8\xAD\xE6\x96\x87"));   // 中文
    payloads.push_back(to_bytes("caf\xC3\xA9.example"));

    // UCS-2 big-endian payloads (valid BMPString bytes).
    payloads.push_back(Bytes{0x00, 't', 0x00, 'e', 0x00, 's', 0x00, 't'});
    payloads.push_back(Bytes{0x67, 0x69, 0x74, 0x68, 0x75, 0x62, 0x2E, 0x63, 0x6E});

    // One sample character per Unicode block, as UTF-8, batched into
    // strings of 16 to keep the payload count manageable.
    unicode::CodePoints sample = unicode::sample_per_block();
    for (size_t i = 0; i < sample.size(); i += 16) {
        unicode::CodePoints chunk(sample.begin() + i,
                                  sample.begin() + std::min(i + 16, sample.size()));
        auto utf8 = unicode::encode(chunk, Encoding::kUtf8);
        if (utf8.ok()) payloads.push_back(utf8.value());
    }

    // A valid UTF-16 surrogate pair: the discriminator between UCS-2
    // (replaces both units) and UTF-16 (decodes an astral character).
    payloads.push_back(Bytes{0xD8, 0x34, 0xDD, 0x1E});

    // Payloads tailored to the declared type's nominal width so strict
    // multi-byte decoders see well-formed input too.
    if (asn1::nominal_encoding(declared) == Encoding::kUcs2) {
        auto cps = unicode::utf8_to_codepoints("tëst中");
        auto ucs2 = unicode::encode(cps.value(), Encoding::kUcs2);
        if (ucs2.ok()) payloads.push_back(ucs2.value());
    }
    return payloads;
}

InferredDecoding DifferentialRunner::infer(Library lib, const Scenario& scenario) const {
    InferredDecoding result;

    DecodeBehavior probe = model_->probe_decode(lib, scenario.declared, scenario.context);
    if (!probe.supported) {
        result.supported = false;
        return result;
    }

    std::vector<Bytes> payloads = test_payloads(scenario.declared);

    // Collect observations.
    std::vector<std::optional<std::string>> observed;
    observed.reserve(payloads.size());
    for (const Bytes& payload : payloads) {
        ParseOutcome outcome = run_payload(*model_, lib, scenario, payload);
        if (!outcome.ok) {
            result.parse_errors = true;
            observed.push_back(std::nullopt);
        } else {
            result.observations += 1;
            observed.push_back(outcome.value_utf8);
        }
    }

    // Match against method × handling references. A candidate matches
    // when every *successfully parsed* payload agrees with it; payloads
    // the library refused are excluded (they were "analyzed separately
    // via manual inspection" in the paper).
    for (Encoding method : kCandidateMethods) {
        for (ErrorPolicy handling : kCandidateHandling) {
            for (bool control_replace : {false, true}) {
                bool all_match = true;
                size_t compared = 0;
                for (size_t i = 0; i < payloads.size(); ++i) {
                    if (!observed[i]) continue;
                    std::string ref =
                        reference_decode(payloads[i], method, handling, control_replace);
                    if (handling == ErrorPolicy::kStrict && ref.empty() &&
                        !observed[i]->empty()) {
                        all_match = false;
                        break;
                    }
                    if (*observed[i] != ref) {
                        // Allow libraries with non-FFFD replacement chars:
                        // a reference built with FFFD will not literally
                        // match, so substitute and retry.
                        bool matched_alt = false;
                        if (handling == ErrorPolicy::kReplace) {
                            std::string dotted;
                            for (size_t k = 0; k < ref.size();) {
                                if (ref.compare(k, 3, "\xEF\xBF\xBD") == 0) {
                                    dotted.push_back('.');
                                    k += 3;
                                } else {
                                    dotted.push_back(ref[k]);
                                    ++k;
                                }
                            }
                            matched_alt = dotted == *observed[i];
                        }
                        if (!matched_alt) {
                            all_match = false;
                            break;
                        }
                    }
                    ++compared;
                }
                if (all_match && compared > 0) {
                    result.method = method;
                    result.handling = handling;
                    // "Modified" means the library rewrote undecodable
                    // or special bytes: escaping, skipping, replacement,
                    // or control-character substitution.
                    result.modified =
                        handling != ErrorPolicy::kStrict || control_replace;
                    return result;
                }
            }
        }
    }
    return result;  // no candidate matched (method stays nullopt)
}

ViolationClass DifferentialRunner::illegal_char_violation(Library lib, StringType declared,
                                                          FieldContext ctx) const {
    DecodeBehavior probe = model_->probe_decode(lib, declared, ctx);
    if (!probe.supported) return ViolationClass::kUnsupported;

    // Appendix E exclusion (iv): when the library decodes the type with
    // an incompatible method, the misidentified characters make
    // character handling irrelevant — not assessed.
    {
        InferredDecoding synthetic;
        synthetic.method = probe.method;
        if (classify_decoding(declared, synthetic) == DecodeClass::kIncompatible) {
            return ViolationClass::kUnsupported;
        }
    }

    // Craft charset-violating payloads for the declared type.
    bool ascii_family = asn1::nominal_encoding(declared) == Encoding::kAscii;
    std::vector<Bytes> bad;
    switch (asn1::nominal_encoding(declared)) {
        case Encoding::kAscii: {
            if (declared == StringType::kIa5String) {
                bad.push_back(to_bytes("te\xFFst"));           // raw high byte
                bad.push_back(to_bytes("t\xC3\xABst"));        // well-formed UTF-8 ë
            } else {
                bad.push_back(to_bytes("te@st"));              // '@' outside PrintableString
                Bytes ctrl = to_bytes("te");
                ctrl.push_back(0x01);
                append(ctrl, to_bytes("st"));
                bad.push_back(std::move(ctrl));
            }
            break;
        }
        case Encoding::kUcs2: {
            bad.push_back(Bytes{0xD8, 0x34, 0xDD, 0x1E});  // surrogate pair
            bad.push_back(Bytes{0xD8, 0x00, 0x00, 0x41});  // lone surrogate
            break;
        }
        default: {
            Bytes ill = to_bytes("te");
            ill.push_back(0xC3);  // truncated UTF-8 lead
            bad.push_back(std::move(ill));
            break;
        }
    }

    Scenario scenario{declared, ctx};
    for (const Bytes& payload : bad) {
        ParseOutcome outcome = run_payload(*model_, lib, scenario, payload);
        if (!outcome.ok) continue;  // properly rejected: no violation

        // Violation (a): an out-of-charset character survives verbatim.
        auto cps = unicode::utf8_to_codepoints(outcome.value_utf8);
        bool has_survivor = false;
        bool has_lossy_substitution = false;
        if (cps.ok()) {
            for (unicode::CodePoint cp : cps.value()) {
                if (!asn1::in_standard_charset(declared, cp) &&
                    cp != unicode::kReplacementChar && cp != '\\') {
                    has_survivor = true;
                }
                if (cp == unicode::kReplacementChar) has_lossy_substitution = true;
            }
        }
        if (has_survivor) return ViolationClass::kUnexploited;

        // Violation (b), ASCII-family types only: the library silently
        // *rewrote* undecodable bytes (U+FFFD / '.' substitution) with
        // neither an error nor a visible escape — the lossy behaviour
        // behind PyOpenSSL's '.' rewriting and Java's U+FFFD cells.
        if (ascii_family) {
            auto strict = unicode::decode(payload, asn1::nominal_encoding(declared));
            bool visible_escape = outcome.value_utf8.find("\\x") != std::string::npos;
            bool altered = !strict.ok() &&
                           outcome.value_utf8 != to_string(payload);  // not raw passthrough
            if (altered && !visible_escape) return ViolationClass::kUnexploited;
            if (has_lossy_substitution && !visible_escape) return ViolationClass::kUnexploited;
        }
    }
    return ViolationClass::kNone;
}

bool DifferentialRunner::dn_subfield_forgery_possible(Library lib) const {
    TextBehavior tb = model_->probe_text(lib, FieldContext::kDnName);
    if (!tb.supported) return false;
    // A CN value that *contains* an attribute boundary for the
    // library's own output format.
    std::string payload = tb.dialect == x509::DnDialect::kOpenSslOneline
                              ? "evil.com/CN=good.com"
                              : "evil.com,CN=good.com";
    x509::DistinguishedName dn = x509::make_dn({
        x509::make_attribute(asn1::oids::common_name(), payload),
    });
    ParseOutcome out = model_->format_dn(lib, dn);
    if (!out.ok) return false;
    // Naive splitter: break on unescaped separators, count "CN=" tokens.
    // The DN has exactly one real CN, so >1 token means forgery.
    const std::string& text = out.value_utf8;
    size_t cn_tokens = 0;
    size_t token_start = 0;
    auto check_token = [&](size_t begin, size_t end) {
        while (begin < end && (text[begin] == ' ' || text[begin] == '/')) ++begin;
        if (end - begin >= 3 && text.compare(begin, 3, "CN=") == 0) ++cn_tokens;
    };
    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (c == '\\') {
            ++i;  // skip escaped character
            continue;
        }
        if (c == ',' || c == '/') {
            check_token(token_start, i);
            token_start = i + 1;
        }
    }
    check_token(token_start, text.size());
    return cn_tokens > 1;
}

bool DifferentialRunner::san_subfield_forgery_possible(Library lib) const {
    TextBehavior tb = model_->probe_text(lib, FieldContext::kGeneralName);
    if (!tb.supported) return false;
    x509::GeneralNames names = {x509::dns_name("a.com, DNS:b.com")};
    ParseOutcome out = model_->format_san(lib, names);
    if (!out.ok) return false;
    // A naive splitter on ", " sees two DNS entries iff the separator
    // inside the value was not escaped (a preceding backslash defuses it).
    size_t pos = out.value_utf8.find(", DNS:b.com");
    while (pos != std::string::npos) {
        if (pos == 0 || out.value_utf8[pos - 1] != '\\') return true;
        pos = out.value_utf8.find(", DNS:b.com", pos + 1);
    }
    return false;
}

ViolationClass DifferentialRunner::escaping_violation(Library lib, FieldContext ctx,
                                                      x509::DnDialect standard) const {
    TextBehavior tb = model_->probe_text(lib, ctx);
    if (!tb.supported) return ViolationClass::kUnsupported;

    // Libraries whose API documents an explicit RFC are only assessed
    // against that RFC (Appendix E exclusion (ii)).
    bool documented = lib == Library::kCryptography || lib == Library::kGnuTls;
    if (documented && tb.dialect != standard) return ViolationClass::kUnsupported;

    // Exploitable injection dominates.
    bool exploited = ctx == FieldContext::kDnName ? dn_subfield_forgery_possible(lib)
                                                  : san_subfield_forgery_possible(lib);
    if (exploited) return ViolationClass::kExploited;

    if (!tb.applies_escaping) return ViolationClass::kUnexploited;

    // RFC 4514 output satisfies RFC 2253; the reverse and RFC 1779 are
    // deviations.
    if (!tb.dialect) return ViolationClass::kUnexploited;
    switch (standard) {
        case x509::DnDialect::kRfc2253:
            return (tb.dialect == x509::DnDialect::kRfc2253 ||
                    tb.dialect == x509::DnDialect::kRfc4514)
                       ? ViolationClass::kNone
                       : ViolationClass::kUnexploited;
        case x509::DnDialect::kRfc4514:
            return tb.dialect == x509::DnDialect::kRfc4514 ? ViolationClass::kNone
                                                           : ViolationClass::kUnexploited;
        case x509::DnDialect::kRfc1779:
            return tb.dialect == x509::DnDialect::kRfc1779 ? ViolationClass::kNone
                                                           : ViolationClass::kUnexploited;
        default:
            return ViolationClass::kUnexploited;
    }
}

}  // namespace unicert::tlslib
