// Behaviour tables reconstructed from the paper's Table 4 / Table 5
// classifications and the accompanying text (Sections 5.1-5.2):
//   * GnuTLS decodes every DN/GN string type except BMPString as UTF-8.
//   * Forge decodes UTF8String (and everything else) as ISO-8859-1.
//   * OpenSSL's oneline output hex-escapes undecodable bytes and reads
//     BMPString bytewise as ASCII (the github.cn hostname spoof).
//   * Java replaces non-ASCII bytes with U+FFFD and is ASCII-compatible
//     on BMPString.
//   * PyOpenSSL maps control characters in CRLDP GeneralNames to '.'
//     (the CRL-spoofing primitive) and emits unescaped SAN text.
//   * Go parses strictly, enforces the PrintableString charset, keeps
//     structured output, and takes the LAST duplicated CN; PyOpenSSL
//     takes the FIRST.
#include "tlslib/profile.h"

#include "unicode/properties.h"

namespace unicert::tlslib {
namespace {

using asn1::StringType;
using unicode::Encoding;
using unicode::ErrorPolicy;

DecodeBehavior unsupported() {
    DecodeBehavior b;
    b.supported = false;
    return b;
}

DecodeBehavior behavior(Encoding method, ErrorPolicy policy) {
    DecodeBehavior b;
    b.method = method;
    b.policy = policy;
    return b;
}

// Nominal, standards-faithful decoding with lenient substitution.
DecodeBehavior nominal_lenient(StringType st) {
    return behavior(asn1::nominal_encoding(st), ErrorPolicy::kReplace);
}

// Nominal decoding that *errors* on malformed bytes.
DecodeBehavior nominal_strict(StringType st) {
    DecodeBehavior b = behavior(asn1::nominal_encoding(st), ErrorPolicy::kStrict);
    b.error_on_malformed = true;
    return b;
}

}  // namespace

const char* library_name(Library lib) noexcept {
    switch (lib) {
        case Library::kOpenSsl: return "OpenSSL";
        case Library::kGnuTls: return "GnuTLS";
        case Library::kPyOpenSsl: return "PyOpenSSL";
        case Library::kCryptography: return "Cryptography";
        case Library::kGoCrypto: return "Golang Crypto";
        case Library::kJavaSecurity: return "Java.security.cert";
        case Library::kBouncyCastle: return "BouncyCastle";
        case Library::kNodeCrypto: return "Node.js Crypto";
        case Library::kForge: return "Forge";
    }
    return "?";
}

const char* field_context_name(FieldContext ctx) noexcept {
    switch (ctx) {
        case FieldContext::kDnName: return "Name";
        case FieldContext::kGeneralName: return "GN";
        case FieldContext::kCrlDp: return "CRLDP";
    }
    return "?";
}

DecodeBehavior decode_behavior(Library lib, StringType st, FieldContext ctx) {
    bool in_dn = ctx == FieldContext::kDnName;
    switch (lib) {
        case Library::kOpenSsl: {
            if (!in_dn) return unsupported();  // no high-level GN string APIs tested
            if (st == StringType::kUtf8String || st == StringType::kPrintableString ||
                st == StringType::kIa5String || st == StringType::kNumericString ||
                st == StringType::kVisibleString || st == StringType::kBmpString) {
                // oneline: raw bytes as ASCII, non-ASCII hex-escaped. For
                // BMPString this is the incompatible bytewise read.
                return behavior(Encoding::kAscii, ErrorPolicy::kHexEscape);
            }
            // TeletexString: treated as Latin-1.
            return behavior(Encoding::kLatin1, ErrorPolicy::kReplace);
        }

        case Library::kGnuTls: {
            if (in_dn && st == StringType::kIa5String) return unsupported();
            if (st == StringType::kBmpString) {
                // UTF-16 (surrogate pairs tolerated) rather than UCS-2.
                return behavior(Encoding::kUtf16, ErrorPolicy::kReplace);
            }
            // Everything else is decoded as UTF-8 regardless of tag.
            return behavior(Encoding::kUtf8, ErrorPolicy::kReplace);
        }

        case Library::kPyOpenSsl: {
            if (in_dn) {
                // X509Name components decoded as UTF-8 regardless of tag.
                return behavior(Encoding::kUtf8, ErrorPolicy::kReplace);
            }
            DecodeBehavior b = behavior(Encoding::kAscii, ErrorPolicy::kReplace);
            b.replacement = '.';
            if (ctx == FieldContext::kCrlDp) {
                // Control characters also collapse to '.' — the CRL
                // spoofing primitive of Section 5.2(2).
                b.controls_to_replacement = true;
            }
            return b;
        }

        case Library::kCryptography: {
            if (st == StringType::kPrintableString && in_dn) {
                // Charset is enforced for PrintableString (Table 5 "○").
                DecodeBehavior b = nominal_lenient(st);
                b.enforces_charset = true;
                b.error_on_malformed = true;
                return b;
            }
            if (st == StringType::kIa5String) {
                // "Lax handling of certain ASN.1 string types for
                // compatibility" (the maintainers' disclosure response):
                // IA5 bytes are taken as Latin-1, so illegal high bytes
                // survive (Table 5's IA5 "⊙").
                return behavior(Encoding::kLatin1, ErrorPolicy::kReplace);
            }
            if (st == StringType::kBmpString) {
                // UTF-16 rather than UCS-2: surrogate pairs accepted.
                return behavior(Encoding::kUtf16, ErrorPolicy::kReplace);
            }
            return nominal_lenient(st);
        }

        case Library::kGoCrypto: {
            if (!in_dn) {
                // GeneralName strings are read without IA5 enforcement
                // (Go's historical dNSName leniency) — the one violation
                // Table 5 records for Go.
                return behavior(Encoding::kUtf8, ErrorPolicy::kReplace);
            }
            DecodeBehavior b = nominal_strict(st);
            if (st == StringType::kPrintableString || st == StringType::kNumericString) {
                // "asn1: syntax error: PrintableString contains invalid character"
                b.enforces_charset = true;
            }
            if (st == StringType::kTeletexString) {
                // Go rejects T.61 outside its supported subset; model as
                // Latin-1 without charset checks.
                return behavior(Encoding::kLatin1, ErrorPolicy::kReplace);
            }
            return b;
        }

        case Library::kJavaSecurity: {
            if (st == StringType::kUtf8String) {
                return behavior(Encoding::kUtf8, ErrorPolicy::kReplace);
            }
            if (st == StringType::kBmpString) {
                // ASCII-compatible bytewise read (Table 4 footnote).
                return behavior(Encoding::kAscii, ErrorPolicy::kReplace);
            }
            // ASCII with U+FFFD substitution for non-ASCII bytes.
            return behavior(Encoding::kAscii, ErrorPolicy::kReplace);
        }

        case Library::kBouncyCastle: {
            if (!in_dn) return unsupported();  // extension parsing not exposed
            if (st == StringType::kBmpString) {
                return behavior(Encoding::kUtf16, ErrorPolicy::kReplace);  // over-tolerant
            }
            return nominal_lenient(st);
        }

        case Library::kNodeCrypto: {
            return nominal_lenient(st);
        }

        case Library::kForge: {
            if (st == StringType::kBmpString) {
                if (in_dn) return behavior(Encoding::kUcs2, ErrorPolicy::kReplace);
                return unsupported();
            }
            // Everything — including UTF8String — read as ISO-8859-1,
            // producing mojibake for multibyte UTF-8.
            return behavior(Encoding::kLatin1, ErrorPolicy::kReplace);
        }
    }
    return unsupported();
}

TextBehavior text_behavior(Library lib, FieldContext ctx) {
    bool in_dn = ctx == FieldContext::kDnName;
    switch (lib) {
        case Library::kOpenSsl:
            if (!in_dn) return {.supported = false, .dialect = std::nullopt,
                                .applies_escaping = false};
            // oneline: no RFC-compliant escaping of separators — the DN
            // subfield forgery vector (Table 5 "⊗" rows).
            return {.supported = true, .dialect = x509::DnDialect::kOpenSslOneline,
                    .applies_escaping = false};
        case Library::kGnuTls:
            return {.supported = in_dn, .dialect = x509::DnDialect::kRfc4514,
                    .applies_escaping = true};
        case Library::kPyOpenSsl:
            if (in_dn) {
                return {.supported = false, .dialect = std::nullopt, .applies_escaping = false};
            }
            // str(get_extension()): separators are NOT escaped — SAN
            // subfield forgery (Table 5 GN "⊗" rows).
            return {.supported = true, .dialect = std::nullopt, .applies_escaping = false};
        case Library::kCryptography:
            return {.supported = in_dn, .dialect = x509::DnDialect::kRfc4514,
                    .applies_escaping = true};
        case Library::kGoCrypto:
            // Structured output; no text form to misescape.
            return {.supported = false, .dialect = std::nullopt, .applies_escaping = true};
        case Library::kJavaSecurity:
            return {.supported = true, .dialect = x509::DnDialect::kRfc2253,
                    .applies_escaping = true};
        case Library::kBouncyCastle:
            return {.supported = in_dn, .dialect = x509::DnDialect::kRfc2253,
                    .applies_escaping = true};
        case Library::kNodeCrypto:
            return {.supported = true, .dialect = x509::DnDialect::kRfc2253,
                    .applies_escaping = true};
        case Library::kForge:
            return {.supported = false, .dialect = std::nullopt, .applies_escaping = true};
    }
    return {};
}

namespace {

// Apply a DecodeBehavior to raw value bytes.
ParseOutcome run_decode(const DecodeBehavior& b, BytesView bytes, StringType declared) {
    ParseOutcome out;
    if (!b.supported) {
        out.ok = false;
        out.error = "unsupported field";
        return out;
    }

    if (b.error_on_malformed) {
        auto strict = unicode::decode(bytes, b.method);
        if (!strict.ok()) {
            out.ok = false;
            out.error = "asn1: syntax error: " + strict.error().message;
            return out;
        }
        if (b.enforces_charset) {
            for (unicode::CodePoint cp : strict.value()) {
                if (!asn1::in_standard_charset(declared, cp)) {
                    out.ok = false;
                    out.error = std::string("asn1: syntax error: ") +
                                asn1::string_type_name(declared) +
                                " contains invalid character";
                    return out;
                }
            }
        }
        out.value_utf8 = unicode::codepoints_to_utf8(strict.value());
        return out;
    }

    unicode::CodePoints cps = unicode::decode_lossy(bytes, b.method, b.policy);
    if (b.policy == ErrorPolicy::kReplace && b.replacement != unicode::kReplacementChar) {
        for (unicode::CodePoint& cp : cps) {
            if (cp == unicode::kReplacementChar) cp = b.replacement;
        }
    }
    if (b.controls_to_replacement) {
        for (unicode::CodePoint& cp : cps) {
            if (unicode::is_c0_control(cp) && cp != '\t') cp = b.replacement;
        }
    }
    if (b.enforces_charset) {
        for (unicode::CodePoint cp : cps) {
            if (!asn1::in_standard_charset(declared, cp)) {
                out.ok = false;
                out.error = std::string(asn1::string_type_name(declared)) +
                            " contains invalid character";
                return out;
            }
        }
    }
    out.value_utf8 = unicode::codepoints_to_utf8(cps);
    return out;
}

}  // namespace

ParseOutcome parse_attribute(Library lib, const x509::AttributeValue& av) {
    DecodeBehavior b = decode_behavior(lib, av.string_type, FieldContext::kDnName);
    return run_decode(b, av.value_bytes, av.string_type);
}

ParseOutcome parse_general_name(Library lib, const x509::GeneralName& gn, FieldContext ctx) {
    DecodeBehavior b = decode_behavior(lib, asn1::StringType::kIa5String, ctx);
    return run_decode(b, gn.value_bytes, asn1::StringType::kIa5String);
}

ParseOutcome format_dn(Library lib, const x509::DistinguishedName& dn) {
    TextBehavior tb = text_behavior(lib, FieldContext::kDnName);
    ParseOutcome out;
    if (!tb.supported) {
        out.ok = false;
        out.error = "library exposes structured DN output only";
        return out;
    }
    x509::DnDialect dialect = tb.dialect.value_or(x509::DnDialect::kRfc2253);

    // Render attribute-by-attribute through the library's decoder so
    // decode quirks and escaping quirks compose.
    std::string text;
    bool reverse = dialect == x509::DnDialect::kRfc2253 || dialect == x509::DnDialect::kRfc4514;
    bool oneline = dialect == x509::DnDialect::kOpenSslOneline;

    auto emit_rdn = [&](const x509::Rdn& rdn) {
        bool first = true;
        for (const x509::AttributeValue& av : rdn.attributes) {
            if (!first) text += "+";
            first = false;
            ParseOutcome parsed = parse_attribute(lib, av);
            std::string value = parsed.ok ? parsed.value_utf8 : "";
            text += asn1::attribute_short_name(av.type);
            text += "=";
            text += x509::escape_dn_value(value, dialect, tb.applies_escaping);
        }
    };

    if (oneline) {
        for (const x509::Rdn& rdn : dn.rdns) {
            text += "/";
            emit_rdn(rdn);
        }
    } else if (reverse) {
        for (auto it = dn.rdns.rbegin(); it != dn.rdns.rend(); ++it) {
            if (!text.empty()) text += ",";
            emit_rdn(*it);
        }
    } else {
        for (const x509::Rdn& rdn : dn.rdns) {
            if (!text.empty()) text += ", ";
            emit_rdn(rdn);
        }
    }
    out.value_utf8 = std::move(text);
    return out;
}

ParseOutcome format_san(Library lib, const x509::GeneralNames& names) {
    TextBehavior tb = text_behavior(lib, FieldContext::kGeneralName);
    ParseOutcome out;
    if (!tb.supported) {
        out.ok = false;
        out.error = "library exposes structured SAN output only";
        return out;
    }
    std::string text;
    for (const x509::GeneralName& gn : names) {
        if (!text.empty()) text += ", ";
        if (gn.type == x509::GeneralNameType::kDnsName ||
            gn.type == x509::GeneralNameType::kRfc822Name ||
            gn.type == x509::GeneralNameType::kUri) {
            ParseOutcome parsed = parse_general_name(lib, gn, FieldContext::kGeneralName);
            std::string value = parsed.ok ? parsed.value_utf8 : "";
            if (tb.applies_escaping) {
                x509::GeneralName safe = gn;
                safe.value_bytes = to_bytes(value);
                text += x509::format_general_name(safe, /*apply_escaping=*/true);
            } else {
                text += std::string(x509::general_name_type_label(gn.type)) + ":" + value;
            }
        } else {
            x509::GeneralName copy = gn;
            text += x509::format_general_name(copy, tb.applies_escaping);
        }
    }
    out.value_utf8 = std::move(text);
    return out;
}

CnSelection cn_selection(Library lib) noexcept {
    switch (lib) {
        case Library::kPyOpenSsl:
        case Library::kOpenSsl:
        case Library::kForge:
            return CnSelection::kFirst;
        case Library::kGoCrypto:
            return CnSelection::kLast;
        default:
            return CnSelection::kAll;
    }
}

std::optional<std::string> extract_common_name(Library lib, const x509::Certificate& cert) {
    auto cns = cert.subject_common_names();
    if (cns.empty()) return std::nullopt;
    const x509::AttributeValue* chosen =
        cn_selection(lib) == CnSelection::kLast ? cns.back() : cns.front();
    ParseOutcome parsed = parse_attribute(lib, *chosen);
    if (!parsed.ok) return std::nullopt;
    return parsed.value_utf8;
}

}  // namespace unicert::tlslib
