// unicert/tlslib/library.h
//
// The nine general-purpose TLS/crypto libraries whose certificate
// parsing the paper studies (Section 3.2, Appendix E).
#pragma once

#include <array>
#include <span>

namespace unicert::tlslib {

enum class Library {
    kOpenSsl,
    kGnuTls,
    kPyOpenSsl,
    kCryptography,
    kGoCrypto,
    kJavaSecurity,
    kBouncyCastle,
    kNodeCrypto,
    kForge,
};

inline constexpr std::array<Library, 9> kAllLibraries = {
    Library::kOpenSsl,      Library::kGnuTls,       Library::kPyOpenSsl,
    Library::kCryptography, Library::kGoCrypto,     Library::kJavaSecurity,
    Library::kBouncyCastle, Library::kNodeCrypto,   Library::kForge,
};

const char* library_name(Library lib) noexcept;

// The parsing contexts the paper distinguishes when classifying
// behaviour: DistinguishedName attributes vs GeneralName entries
// (SAN/IAN/AIA/SIA) vs GeneralNames inside CRLDistributionPoints.
enum class FieldContext { kDnName, kGeneralName, kCrlDp };

const char* field_context_name(FieldContext ctx) noexcept;

}  // namespace unicert::tlslib
