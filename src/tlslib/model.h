// unicert/tlslib/model.h
//
// The evaluation seam of the differential engine. A LibraryModel is
// the set of operations the Section 3.2 harness performs against one
// of the nine library profiles; the default implementation forwards to
// the static behaviour tables in profile.cc. Making it a virtual
// interface lets the Supervisor wrap every call in budget checks and
// lets tests substitute misbehaving doubles (throwing, hanging,
// oversize-output models) without touching the inference logic.
#pragma once

#include "tlslib/encoding_profile.h"
#include "tlslib/profile.h"

namespace unicert::tlslib {

class LibraryModel {
public:
    virtual ~LibraryModel() = default;

    // Behaviour probes (cheap; used for support checks, not parsing).
    virtual DecodeBehavior probe_decode(Library lib, asn1::StringType st, FieldContext ctx);
    virtual TextBehavior probe_text(Library lib, FieldContext ctx);

    // Simulated parsing APIs, one virtual per profile entry point.
    virtual ParseOutcome parse_attribute(Library lib, const x509::AttributeValue& av);
    virtual ParseOutcome parse_general_name(Library lib, const x509::GeneralName& gn,
                                            FieldContext ctx);
    virtual ParseOutcome format_dn(Library lib, const x509::DistinguishedName& dn);
    virtual ParseOutcome format_san(Library lib, const x509::GeneralNames& names);

    // Encoding-rule tolerance: how `lib` handles the (possibly BER)
    // document bytes themselves. The default forwards to the declared
    // EncodingProfile table; doubles override this to model a library
    // whose observed behaviour drifts from its declaration — exactly
    // what the EncodingAnalyzer must catch.
    virtual EncodingOutcome parse_encoding(Library lib, BytesView der);
};

// The process-wide default model backed by profile.cc's tables.
LibraryModel& builtin_model();

}  // namespace unicert::tlslib
