// unicert/ctlog/index/format.h
//
// On-disk framing for `unicert-index-v1`, the persistent secondary
// index over the durable CT-log store (DESIGN.md section 12). One
// index generation is one self-checking artifact:
//
//   index file  idx-<epoch, 16 hex digits>.idx
//     "unicertidx1\n"                   magic (12 bytes)
//     u64be epoch                       generation number (monotonic)
//     u64be basis_size                  store entries this index covers
//     32B   basis_root                  store Merkle root at basis_size
//     u32be payload_len | payload      profile sections (below)
//     SHA-256 over every preceding byte
//
//   payload:
//     u32be profile_count
//     per profile:
//       u32be name_len | name
//       u64be record_count              == basis_size
//       per record:
//         u8 flags                      bit0 hidden, bit1 excluded
//         u8 class_mask                 FieldClass bits w/ special Unicode
//         u8 field_mask                 FieldClass bits that derived keys
//         u32be key_count
//         per key: u32be len | bytes   already case-folded
//
// The epoch + basis pair is what makes generations MVCC snapshots: a
// generation is valid for a store iff the store's own Merkle root at
// basis_size equals basis_root (the index was derived from a prefix of
// THIS history), and entries at or beyond basis_size are answered by
// the query service's tail scan. The SHA-256 trailer makes every
// single-bit flip detectable; a torn tail fails the length or digest
// check. Damaged generations are never partially used — the fsck
// taxonomy classifies them and the degradation ladder routes around.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/expected.h"
#include "crypto/sha256.h"

namespace unicert::ctlog::index {

using crypto::Digest;

inline constexpr std::string_view kIndexMagic = "unicertidx1\n";
inline constexpr std::string_view kIndexFilePrefix = "idx-";
inline constexpr std::string_view kIndexFileSuffix = ".idx";

// Guard against absurd length fields when probing damaged files before
// the checksum is verified.
inline constexpr uint32_t kMaxIndexPayload = 1u << 30;  // 1 GiB

// Record flags.
inline constexpr uint8_t kRecordHidden = 1u << 0;    // P1.4: unreachable
inline constexpr uint8_t kRecordExcluded = 1u << 1;  // precert / unparseable leaf

// One store entry as one profile sees it.
struct IndexedRecord {
    std::vector<std::string> keys;  // searchable keys, already folded
    bool hidden = false;
    bool excluded = false;
    uint8_t class_mask = 0;  // FieldClass bits carrying special Unicode
    uint8_t field_mask = 0;  // FieldClass bits that contributed keys

    bool searchable() const noexcept { return !hidden && !excluded && !keys.empty(); }
};

// One profile's section: records plus the acceleration structures the
// query path uses. Only `records` is persisted; the acceleration is a
// pure function of it, rebuilt by finalize() after decode — less
// format surface for corruption to hide in, and the checksum still
// covers everything the lookup result depends on.
struct ProfileIndex {
    std::string profile_name;
    std::vector<IndexedRecord> records;  // position == store entry index

    // -- acceleration (not serialized; built by finalize()) --
    // Sorted unique (key -> ascending record ids): O(log n) exact match.
    std::vector<std::pair<std::string, std::vector<uint32_t>>> exact;
    // Packed byte-trigram -> ascending record ids: fuzzy candidates.
    std::vector<std::pair<uint32_t, std::vector<uint32_t>>> trigrams;
    // Ascending ids of records with at least one key (fuzzy verify pool,
    // short-needle fallback).
    std::vector<uint32_t> searchable_ids;
    // Per-FieldClass-bit posting lists over class_mask (special-Unicode
    // retrieval): postings[b] = ids whose class_mask has bit b.
    std::vector<std::vector<uint32_t>> class_postings;

    void finalize();
};

// One immutable index generation (the unit the MVCC slot publishes).
struct IndexGeneration {
    uint64_t epoch = 0;
    uint64_t basis_size = 0;
    Digest basis_root{};
    std::vector<ProfileIndex> profiles;

    const ProfileIndex* find_profile(std::string_view name) const noexcept;
};

// ---- artifact encode / decode ----------------------------------------------

Bytes encode_index(const IndexGeneration& generation);

// Decode and verify a whole index artifact. The returned generation is
// NOT finalized (call ProfileIndex::finalize, or use load paths that
// do). Error codes:
//   index_truncated   file shorter than its framing claims (torn tail)
//   index_bad_magic   not an index artifact
//   index_bad_length  a length field is absurd or inconsistent
//   index_checksum    SHA-256 trailer mismatch (bit rot / torn write)
//   index_bad_payload checksum passed but the payload grammar is broken
Expected<IndexGeneration> decode_index(BytesView buffer);

std::string index_file_name(uint64_t epoch);
std::optional<uint64_t> parse_index_file_name(std::string_view name);

// Pack 3 bytes into the trigram key used by ProfileIndex::trigrams.
constexpr uint32_t pack_trigram(std::string_view s, size_t at) noexcept {
    return (static_cast<uint32_t>(static_cast<unsigned char>(s[at])) << 16) |
           (static_cast<uint32_t>(static_cast<unsigned char>(s[at + 1])) << 8) |
           static_cast<uint32_t>(static_cast<unsigned char>(s[at + 2]));
}

}  // namespace unicert::ctlog::index
