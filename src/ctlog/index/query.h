// unicert/ctlog/index/query.h
//
// The self-healing monitor query service: Table 6 queries (fuzzy /
// exact search, case folding, U-label validation, special-Unicode
// retrieval) over the durable store, answered through the persistent
// secondary indexes when they are healthy and through progressively
// slower-but-correct paths when they are not. The degradation ladder,
// top to bottom:
//
//   1. fresh index      — pinned MVCC generation, O(log n) exact /
//                         trigram-candidate fuzzy lookup; entries past
//                         the generation's basis are covered by a
//                         bounded tail scan, so answers are exact even
//                         while ingestion keeps appending.
//   2. rebuilt index    — the pinned/on-disk generation is damaged or
//                         stale: the service rebuilds from the store
//                         in memory, republishes, and answers with
//                         `degraded` set.
//   3. linear scan      — the index subsystem is unusable (or disabled
//                         via options): every entry is parsed and
//                         matched directly, `degraded` set.
//
// Every rung routes through the same matcher semantics, so the rungs
// differ ONLY in cost: the kill-point sweep asserts answers are
// byte-identical to the scan path after any crash. Readers pin a
// snapshot (core::VersionedSlot) and are never blocked by — or exposed
// to — a concurrent publish; a single writer ingests through the
// service while readers keep answering.
#pragma once

#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>

#include "core/fs.h"
#include "core/snapshot.h"
#include "ctlog/index/index.h"
#include "ctlog/index/matcher.h"

namespace unicert::ctlog::index {

// Which rung of the ladder served a query.
enum class QueryPath {
    kIndex,         // healthy generation (+ tail scan past its basis)
    kRebuiltIndex,  // generation rebuilt from the store first
    kScan,          // linear scan over every entry
    kRejected,      // input validation refused it; no records consulted
};

const char* query_path_name(QueryPath path) noexcept;

// One served query. `result.cert_ids` are STORE ENTRY INDEXES
// (ascending), not Monitor record ids.
struct ServedQuery {
    QueryResult result;
    QueryPath path = QueryPath::kScan;
    bool degraded = false;            // ladder descended below rung 1
    std::string degradation_reason;
    uint64_t epoch = 0;               // generation that answered (0 = none)
    size_t tail_scanned = 0;          // entries past the basis scanned linearly
};

struct QueryServiceOptions {
    size_t keep_generations = 2;  // publish-time prune depth
    bool auto_rebuild = true;     // rung 2 enabled
};

// Per-query knobs.
struct QueryOptions {
    bool use_index = true;  // false: deliberate scan (not degraded)
};

class QueryService {
public:
    // The service owns neither; both must outlive it. The store is the
    // authority — the service only ever serves index answers whose
    // basis lies on the store's Merkle history.
    QueryService(core::Fs& fs, store::Store& store, QueryServiceOptions options = {});

    // Build a fresh generation at the current store head, publish it
    // durably, and make it the served snapshot. Errors are publish I/O
    // failures; the in-memory snapshot is installed regardless, so
    // queries stay fast even when the disk is failing.
    Status refresh();

    // Append a batch through the service (the single-writer side).
    // Readers keep answering during and after; the index lags until
    // the next refresh and the tail scan covers the gap.
    Status ingest(std::span<const store::PendingEntry> batch);

    using Options = QueryOptions;

    // Answer one Table 6 query for `profile`. Never fails: the ladder
    // bottoms out at the linear scan.
    ServedQuery query(const MonitorProfile& profile, std::string_view pattern,
                      Options options = {});

    // Per-field Unicode-class retrieval: ids of certificates whose
    // `field_mask` fields (FieldClass bits) carry special Unicode, as
    // derived under `profile`'s capabilities.
    ServedQuery special_unicode(const MonitorProfile& profile, uint8_t field_mask,
                                Options options = {});

    // Pin the currently served generation (may be null). Exposed for
    // the MVCC tests; normal callers just query().
    std::shared_ptr<const IndexGeneration> pin() const { return slot_.pin(); }

    // Damage the last ladder descent classified (empty until a query
    // or refresh had to look at the index files).
    IndexFsckReport last_fsck() const;

    size_t store_size() const;
    const store::Store& store() const noexcept { return *store_; }

private:
    // Take the ladder from "no usable pinned generation" to either a
    // loaded/rebuilt generation or null; returns the served path.
    std::shared_ptr<const IndexGeneration> ensure_generation(QueryPath& path,
                                                             bool& degraded,
                                                             std::string& reason);

    // Matching over one profile's acceleration structures (ids < basis).
    static std::vector<size_t> index_lookup(const ProfileIndex& profile,
                                            const MonitorCapabilities& caps,
                                            std::string_view needle);

    // Parse-and-match over store entries [from, to); ids appended.
    void scan_range(const MonitorCapabilities& caps, std::string_view needle, size_t from,
                    size_t to, std::vector<size_t>& out) const;

    void scan_range_classes(const MonitorCapabilities& caps, uint8_t field_mask, size_t from,
                            size_t to, std::vector<size_t>& out) const;

    core::Fs* fs_;
    store::Store* store_;
    QueryServiceOptions options_;

    // Guards store access (entries/tree) and all index-dir I/O: shared
    // for readers, exclusive for ingest/refresh/rebuild. The slot has
    // its own lock so pinned readers never contend with a publish.
    mutable std::shared_mutex mutex_;
    core::VersionedSlot<IndexGeneration> slot_;

    mutable std::mutex fsck_mutex_;
    IndexFsckReport last_fsck_;
};

}  // namespace unicert::ctlog::index
