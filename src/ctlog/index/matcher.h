// unicert/ctlog/index/matcher.h
//
// The single semantic core behind every Table 6 monitor capability:
// key derivation (which searchable strings a certificate contributes,
// per profile), query input validation (Unicode/Punycode/U-label
// refusals), and the exact-vs-fuzzy match predicate. Monitor's scan
// path and the persistent index's lookup path both route through these
// functions, so the two can never drift — the scan-vs-index parity
// suite asserts byte-identical answers and this module is why that
// property is structural rather than coincidental.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ctlog/monitor.h"
#include "x509/certificate.h"

namespace unicert::ctlog::index {

// ---- match predicate -------------------------------------------------------

// ASCII-only case folding, the folding every Table 6 monitor applies.
std::string ascii_fold(std::string_view s);

// Fold a query or key per the profile's case rules.
std::string fold(const MonitorCapabilities& caps, std::string_view s);

// The one fuzzy/exact predicate (previously duplicated between
// Monitor::raise_alerts_for and Monitor::query). `key` and `needle`
// must already be folded by `fold`.
bool key_matches(const MonitorCapabilities& caps, std::string_view key,
                 std::string_view needle) noexcept;

// True when any key of an (un-hidden) record matches.
bool any_key_matches(const MonitorCapabilities& caps, const std::vector<std::string>& keys,
                     std::string_view needle) noexcept;

// ---- key derivation --------------------------------------------------------

// Which certificate field contributed a key / carries special Unicode.
// Bits of DerivedRecord::class_mask; also the per-field Unicode-class
// posting lists in the persistent index.
enum FieldClass : uint8_t {
    kFieldCn = 1u << 0,       // subject CN
    kFieldSan = 1u << 1,      // SAN dNSName / iPAddress
    kFieldAttr = 1u << 2,     // subject O / OU / emailAddress
    kFieldPunycode = 1u << 3, // some key contains an xn-- label
};

// Everything a profile derives from one certificate at indexing time.
struct DerivedRecord {
    std::vector<std::string> keys;  // searchable keys, already folded
    bool hidden = false;            // P1.4: unreachable via any query
    uint8_t class_mask = 0;         // FieldClass bits with special Unicode
    uint8_t field_mask = 0;         // FieldClass bits that contributed keys
};

// Derive the searchable keys for `cert` under `caps` — the exact
// semantics Monitor::index has always applied (CN quirks, SAN names,
// subject attributes, special-Unicode hiding).
DerivedRecord derive_record(const MonitorCapabilities& caps, const x509::Certificate& cert);

// ---- query validation ------------------------------------------------------

// Why a query was refused before any record was consulted.
struct QueryRejection {
    std::string reason;
};

// Input validation for a query pattern under `caps`: Unicode refusal,
// Punycode/ccTLD support, and per-label U-label validation. nullopt
// means the query proceeds to matching.
std::optional<QueryRejection> validate_query(const MonitorCapabilities& caps,
                                             std::string_view pattern);

}  // namespace unicert::ctlog::index
