#include "ctlog/index/matcher.h"

#include <algorithm>

#include "asn1/oid.h"
#include "idna/labels.h"
#include "unicode/properties.h"

namespace unicert::ctlog::index {
namespace {

bool has_special_unicode(std::string_view s) {
    return unicode::has_non_printable_ascii(s);
}

bool is_ascii_only(std::string_view s) {
    return std::all_of(s.begin(), s.end(),
                       [](char c) { return static_cast<unsigned char>(c) < 0x80; });
}

bool contains_xn_label(std::string_view host) {
    return host.find("xn--") != std::string_view::npos;
}

// ccTLD heuristic: the last label is a Punycode TLD.
bool has_punycode_cctld(std::string_view host) {
    size_t dot = host.rfind('.');
    std::string_view tld = dot == std::string_view::npos ? host : host.substr(dot + 1);
    return tld.starts_with("xn--");
}

}  // namespace

std::string ascii_fold(std::string_view s) {
    std::string out(s);
    for (char& c : out) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + 0x20);
    }
    return out;
}

std::string fold(const MonitorCapabilities& caps, std::string_view s) {
    return caps.case_insensitive ? ascii_fold(s) : std::string(s);
}

bool key_matches(const MonitorCapabilities& caps, std::string_view key,
                 std::string_view needle) noexcept {
    return caps.fuzzy_search ? key.find(needle) != std::string_view::npos : key == needle;
}

bool any_key_matches(const MonitorCapabilities& caps, const std::vector<std::string>& keys,
                     std::string_view needle) noexcept {
    for (const std::string& key : keys) {
        if (key_matches(caps, key, needle)) return true;
    }
    return false;
}

DerivedRecord derive_record(const MonitorCapabilities& caps, const x509::Certificate& cert) {
    DerivedRecord record;
    bool suppressed = false;  // some key vanished under P1.4

    auto add_key = [&](std::string value, FieldClass field) {
        if (value.empty()) return;
        if (has_special_unicode(value)) {
            record.class_mask |= field;
            if (!caps.returns_special_unicode) {
                // This monitor cannot surface certs with special Unicode
                // in searchable fields (P1.4): the key is dropped, and a
                // record left with no keys becomes unreachable entirely.
                suppressed = true;
                return;
            }
        }
        if (contains_xn_label(value)) record.field_mask |= kFieldPunycode;
        record.field_mask |= field;
        record.keys.push_back(caps.case_insensitive ? ascii_fold(value) : std::move(value));
    };

    // CN handling, with SSLMate's quirks.
    for (const x509::AttributeValue* cn : cert.subject_common_names()) {
        std::string value = cn->to_utf8_lossy();
        if (caps.cn_ignored_if_space && value.find(' ') != std::string::npos) continue;
        if (caps.cn_substring_before_slash) {
            if (size_t slash = value.find('/'); slash != std::string::npos) {
                value = value.substr(0, slash);
            }
        }
        add_key(std::move(value), kFieldCn);
    }

    // SAN DNSNames (all monitors) and IPs (crt.sh/SSLMate — harmless to
    // include generally).
    for (const x509::GeneralName& gn : cert.subject_alt_names()) {
        if (gn.type == x509::GeneralNameType::kDnsName ||
            gn.type == x509::GeneralNameType::kIpAddress) {
            add_key(gn.to_utf8_lossy(), kFieldSan);
        }
    }

    // Subject O / OU / emailAddress for monitors that index them.
    if (caps.searches_subject_attrs) {
        for (const asn1::Oid* oid :
             {&asn1::oids::organization_name(), &asn1::oids::organizational_unit_name(),
              &asn1::oids::email_address()}) {
            for (const x509::AttributeValue* av : cert.subject.find_all(*oid)) {
                add_key(av->to_utf8_lossy(), kFieldAttr);
            }
        }
    }
    record.hidden = suppressed && record.keys.empty();
    return record;
}

std::optional<QueryRejection> validate_query(const MonitorCapabilities& caps,
                                             std::string_view pattern) {
    if (!is_ascii_only(pattern) && !caps.unicode_search) {
        return QueryRejection{"Unicode queries not supported"};
    }
    if (contains_xn_label(pattern)) {
        if (!caps.punycode_idn) {
            return QueryRejection{"Punycode queries not supported"};
        }
        if (!caps.punycode_idn_cctld && has_punycode_cctld(pattern)) {
            return QueryRejection{"Punycode ccTLDs not supported"};
        }
        if (caps.ulabel_check) {
            // Validate every xn-- label; deceptive IDNs are refused
            // (SSLMate / Facebook behaviour in P1.3).
            std::string host(pattern);
            size_t start = 0;
            while (start <= host.size()) {
                size_t dot = host.find('.', start);
                std::string label = host.substr(
                    start, dot == std::string::npos ? std::string::npos : dot - start);
                if (idna::looks_like_a_label(label) && !idna::check_label(label).ok()) {
                    return QueryRejection{"IDN label fails U-label validation: " + label};
                }
                if (dot == std::string::npos) break;
                start = dot + 1;
            }
        }
    }
    return std::nullopt;
}

}  // namespace unicert::ctlog::index
