#include "ctlog/index/query.h"

#include <algorithm>
#include <mutex>

#include "x509/parser.h"

namespace unicert::ctlog::index {
namespace {

std::string summarize_damage(const IndexFsckReport& report) {
    if (report.damage.empty()) return "no index generation present";
    std::string out;
    for (const IndexDamage& d : report.damage) {
        if (!out.empty()) out += ", ";
        out += d.file + ": " + index_damage_name(d.kind);
    }
    return out;
}

}  // namespace

const char* query_path_name(QueryPath path) noexcept {
    switch (path) {
        case QueryPath::kIndex: return "index";
        case QueryPath::kRebuiltIndex: return "rebuilt-index";
        case QueryPath::kScan: return "scan";
        case QueryPath::kRejected: return "rejected";
    }
    return "unknown";
}

QueryService::QueryService(core::Fs& fs, store::Store& store, QueryServiceOptions options)
    : fs_(&fs), store_(&store), options_(options) {}

Status QueryService::refresh() {
    std::unique_lock lock(mutex_);
    uint64_t epoch = next_epoch(*fs_, store_->dir());
    auto generation = std::make_shared<IndexGeneration>(build_index(*store_, epoch));
    Status published =
        publish_index(*fs_, store_->dir(), *generation, options_.keep_generations);
    // The in-memory snapshot is installed even when the durable publish
    // failed: readers get fast exact answers either way, and the next
    // refresh (or fsck-triggered rebuild) retries the disk.
    slot_.publish(std::move(generation));
    return published;
}

Status QueryService::ingest(std::span<const store::PendingEntry> batch) {
    std::unique_lock lock(mutex_);
    return store_->append_batch(batch);
}

size_t QueryService::store_size() const {
    std::shared_lock lock(mutex_);
    return store_->size();
}

IndexFsckReport QueryService::last_fsck() const {
    std::lock_guard lock(fsck_mutex_);
    return last_fsck_;
}

std::shared_ptr<const IndexGeneration> QueryService::ensure_generation(QueryPath& path,
                                                                       bool& degraded,
                                                                       std::string& reason) {
    std::unique_lock lock(mutex_);

    // Another thread may have healed the slot while we waited.
    if (auto pinned = slot_.pin(); pinned && generation_valid_for(*store_, *pinned)) {
        path = QueryPath::kIndex;
        return pinned;
    }

    IndexFsckReport report;
    auto loaded = load_latest(*fs_, *store_, &report);
    if (loaded) {
        slot_.publish(loaded);
        path = QueryPath::kIndex;
        std::lock_guard fl(fsck_mutex_);
        last_fsck_ = std::move(report);
        return loaded;
    }

    if (!options_.auto_rebuild) {
        reason = summarize_damage(report);
        std::lock_guard fl(fsck_mutex_);
        last_fsck_ = std::move(report);
        return nullptr;
    }

    // Rung 2: rebuild from the authoritative store. The rebuilt
    // generation is correct by construction; the durable republish is
    // best-effort (a failing disk must not block answers).
    uint64_t epoch = next_epoch(*fs_, store_->dir());
    auto rebuilt = std::make_shared<IndexGeneration>(build_index(*store_, epoch));
    Status published =
        publish_index(*fs_, store_->dir(), *rebuilt, options_.keep_generations);
    slot_.publish(rebuilt);
    path = QueryPath::kRebuiltIndex;
    degraded = true;
    reason = summarize_damage(report) +
             (published.ok() ? "; rebuilt from store and republished"
                             : "; rebuilt from store in memory (republish failed: " +
                                   published.error().code + ")");
    std::lock_guard fl(fsck_mutex_);
    last_fsck_ = std::move(report);
    return rebuilt;
}

std::vector<size_t> QueryService::index_lookup(const ProfileIndex& profile,
                                               const MonitorCapabilities& caps,
                                               std::string_view needle) {
    std::vector<size_t> out;
    if (!caps.fuzzy_search) {
        auto it = std::lower_bound(
            profile.exact.begin(), profile.exact.end(), needle,
            [](const auto& kv, std::string_view n) { return kv.first < n; });
        if (it != profile.exact.end() && it->first == needle) {
            out.assign(it->second.begin(), it->second.end());
        }
        return out;
    }
    if (needle.size() < 3) {
        // Too short for trigram pruning: verify over every record with
        // at least one key (an empty fuzzy needle matches all of them).
        for (uint32_t id : profile.searchable_ids) {
            if (any_key_matches(caps, profile.records[id].keys, needle)) out.push_back(id);
        }
        return out;
    }
    // A key containing the needle contains every trigram of the needle,
    // so any trigram's posting list is a complete candidate set; verify
    // the smallest one.
    const std::vector<uint32_t>* smallest = nullptr;
    for (size_t i = 0; i + 3 <= needle.size(); ++i) {
        uint32_t trigram = pack_trigram(needle, i);
        auto it = std::lower_bound(
            profile.trigrams.begin(), profile.trigrams.end(), trigram,
            [](const auto& kv, uint32_t t) { return kv.first < t; });
        if (it == profile.trigrams.end() || it->first != trigram) return out;
        if (smallest == nullptr || it->second.size() < smallest->size()) {
            smallest = &it->second;
        }
    }
    for (uint32_t id : *smallest) {
        if (any_key_matches(caps, profile.records[id].keys, needle)) out.push_back(id);
    }
    return out;
}

void QueryService::scan_range(const MonitorCapabilities& caps, std::string_view needle,
                              size_t from, size_t to, std::vector<size_t>& out) const {
    const auto& entries = store_->entries();
    for (size_t i = from; i < to && i < entries.size(); ++i) {
        auto cert = x509::parse_certificate(entries[i].leaf_der);
        if (!cert.ok() || cert->is_precertificate()) continue;
        DerivedRecord record = derive_record(caps, cert.value());
        if (record.hidden) continue;
        if (any_key_matches(caps, record.keys, needle)) out.push_back(i);
    }
}

void QueryService::scan_range_classes(const MonitorCapabilities& caps, uint8_t field_mask,
                                      size_t from, size_t to,
                                      std::vector<size_t>& out) const {
    const auto& entries = store_->entries();
    for (size_t i = from; i < to && i < entries.size(); ++i) {
        auto cert = x509::parse_certificate(entries[i].leaf_der);
        if (!cert.ok() || cert->is_precertificate()) continue;
        DerivedRecord record = derive_record(caps, cert.value());
        if (record.class_mask & field_mask) out.push_back(i);
    }
}

ServedQuery QueryService::query(const MonitorProfile& profile, std::string_view pattern,
                                Options options) {
    const MonitorCapabilities& caps = profile.caps;
    ServedQuery served;

    // Input validation is shared with the scan path (and with Monitor
    // itself), so a refusal is identical on every rung of the ladder.
    if (auto rejection = validate_query(caps, pattern)) {
        served.result.query_accepted = false;
        served.result.rejection_reason = std::move(rejection->reason);
        served.path = QueryPath::kRejected;
        return served;
    }
    std::string needle = fold(caps, pattern);

    if (!options.use_index) {
        std::shared_lock lock(mutex_);
        scan_range(caps, needle, 0, store_->size(), served.result.cert_ids);
        served.path = QueryPath::kScan;
        served.degradation_reason = "index disabled by caller";
        return served;
    }

    // Rung 1: the pinned MVCC snapshot, if it still lies on the store's
    // history.
    auto generation = slot_.pin();
    {
        std::shared_lock lock(mutex_);
        if (generation && generation_valid_for(*store_, *generation)) {
            const ProfileIndex* section = generation->find_profile(profile.name);
            if (section != nullptr) {
                served.result.cert_ids = index_lookup(*section, caps, needle);
                scan_range(caps, needle, generation->basis_size, store_->size(),
                           served.result.cert_ids);
                served.path = QueryPath::kIndex;
                served.epoch = generation->epoch;
                served.tail_scanned = store_->size() - generation->basis_size;
                return served;
            }
        }
    }

    // Rungs 2/3: load or rebuild, then answer; bottom out at the scan.
    QueryPath path = QueryPath::kIndex;
    bool degraded = false;
    std::string reason;
    generation = ensure_generation(path, degraded, reason);

    std::shared_lock lock(mutex_);
    if (generation && generation_valid_for(*store_, *generation)) {
        if (const ProfileIndex* section = generation->find_profile(profile.name)) {
            served.result.cert_ids = index_lookup(*section, caps, needle);
            scan_range(caps, needle, generation->basis_size, store_->size(),
                       served.result.cert_ids);
            served.path = path;
            served.degraded = degraded;
            served.degradation_reason = std::move(reason);
            served.epoch = generation->epoch;
            served.tail_scanned = store_->size() - generation->basis_size;
            return served;
        }
    }
    scan_range(caps, needle, 0, store_->size(), served.result.cert_ids);
    served.path = QueryPath::kScan;
    served.degraded = true;
    served.degradation_reason =
        reason.empty() ? "no usable index generation" : std::move(reason);
    return served;
}

ServedQuery QueryService::special_unicode(const MonitorProfile& profile, uint8_t field_mask,
                                          Options options) {
    const MonitorCapabilities& caps = profile.caps;
    ServedQuery served;

    auto merge_postings = [&](const ProfileIndex& section) {
        std::vector<size_t> ids;
        for (unsigned bit = 0; bit < 8; ++bit) {
            if (!(field_mask & (1u << bit))) continue;
            const auto& postings = section.class_postings[bit];
            ids.insert(ids.end(), postings.begin(), postings.end());
        }
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        return ids;
    };

    if (!options.use_index) {
        std::shared_lock lock(mutex_);
        scan_range_classes(caps, field_mask, 0, store_->size(), served.result.cert_ids);
        served.path = QueryPath::kScan;
        served.degradation_reason = "index disabled by caller";
        return served;
    }

    auto generation = slot_.pin();
    {
        std::shared_lock lock(mutex_);
        if (generation && generation_valid_for(*store_, *generation)) {
            if (const ProfileIndex* section = generation->find_profile(profile.name)) {
                served.result.cert_ids = merge_postings(*section);
                scan_range_classes(caps, field_mask, generation->basis_size, store_->size(),
                                   served.result.cert_ids);
                served.path = QueryPath::kIndex;
                served.epoch = generation->epoch;
                served.tail_scanned = store_->size() - generation->basis_size;
                return served;
            }
        }
    }

    QueryPath path = QueryPath::kIndex;
    bool degraded = false;
    std::string reason;
    generation = ensure_generation(path, degraded, reason);

    std::shared_lock lock(mutex_);
    if (generation && generation_valid_for(*store_, *generation)) {
        if (const ProfileIndex* section = generation->find_profile(profile.name)) {
            served.result.cert_ids = merge_postings(*section);
            scan_range_classes(caps, field_mask, generation->basis_size, store_->size(),
                               served.result.cert_ids);
            served.path = path;
            served.degraded = degraded;
            served.degradation_reason = std::move(reason);
            served.epoch = generation->epoch;
            served.tail_scanned = store_->size() - generation->basis_size;
            return served;
        }
    }
    scan_range_classes(caps, field_mask, 0, store_->size(), served.result.cert_ids);
    served.path = QueryPath::kScan;
    served.degraded = true;
    served.degradation_reason =
        reason.empty() ? "no usable index generation" : std::move(reason);
    return served;
}

}  // namespace unicert::ctlog::index
