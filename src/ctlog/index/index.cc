#include "ctlog/index/index.h"

#include <algorithm>

#include "ctlog/index/matcher.h"
#include "x509/parser.h"

namespace unicert::ctlog::index {
namespace {

// Basis check: does (basis_size, basis_root) lie on the store's own
// history? This is what stops a stale or foreign index from ever being
// served — the store's Merkle tree is the authority.
bool basis_on_history(const store::Store& store, const IndexGeneration& generation,
                      std::string* why) {
    if (generation.basis_size > store.size()) {
        if (why) {
            *why = "basis " + std::to_string(generation.basis_size) + " exceeds store size " +
                   std::to_string(store.size());
        }
        return false;
    }
    auto root = store.tree().root_at(generation.basis_size);
    if (!root.ok() || *root != generation.basis_root) {
        if (why) *why = "basis root diverges from the store's history";
        return false;
    }
    return true;
}

struct ScannedIndexFile {
    uint64_t epoch;
    std::string name;
};

// Index files sorted newest-first; non-index names classified into the
// report as we go.
std::vector<ScannedIndexFile> list_index_files(core::Fs& fs, const std::string& dir,
                                               IndexFsckReport& report) {
    std::vector<ScannedIndexFile> files;
    auto names = fs.list_dir(dir);
    if (!names.ok()) return files;  // no dir yet: no generations
    for (const std::string& name : *names) {
        if (auto epoch = parse_index_file_name(name)) {
            files.push_back({*epoch, name});
        } else if (name.ends_with(".tmp")) {
            report.damage.push_back(
                {name, IndexDamageKind::kStrayTmp, "leftover from an interrupted publish"});
        } else {
            report.notes.push_back("unrecognized file ignored: " + name);
        }
    }
    std::sort(files.begin(), files.end(),
              [](const auto& a, const auto& b) { return a.epoch > b.epoch; });
    report.files_scanned = files.size();
    return files;
}

IndexDamage classify_decode_failure(const std::string& name, const Error& error) {
    IndexDamageKind kind = IndexDamageKind::kBadPayload;
    if (error.code == "index_truncated") kind = IndexDamageKind::kTornFile;
    else if (error.code == "index_checksum") kind = IndexDamageKind::kBadChecksum;
    else if (error.code == "index_bad_magic") kind = IndexDamageKind::kBadMagic;
    else if (error.code == "index_bad_length") kind = IndexDamageKind::kTornFile;
    return {name, kind, error.message};
}

// Shared scan behind load_latest and fsck_index: walk newest-first,
// classify every file, return the newest valid generation (unless
// `classify_all`, which keeps scanning for a full damage report).
std::shared_ptr<const IndexGeneration> scan_generations(core::Fs& fs,
                                                        const store::Store& store,
                                                        IndexFsckReport& report,
                                                        bool classify_all) {
    std::string dir = index_dir(store.dir());
    std::shared_ptr<const IndexGeneration> newest_valid;
    for (const ScannedIndexFile& file : list_index_files(fs, dir, report)) {
        if (newest_valid && !classify_all) break;
        if (newest_valid) {
            report.damage.push_back({file.name, IndexDamageKind::kSuperseded,
                                     "older than served epoch " +
                                         std::to_string(newest_valid->epoch)});
            continue;
        }
        auto bytes = fs.read_file(dir + "/" + file.name);
        if (!bytes.ok()) {
            report.damage.push_back(
                {file.name, IndexDamageKind::kUnreadable, bytes.error().message});
            continue;
        }
        auto generation = decode_index(*bytes);
        if (!generation.ok()) {
            report.damage.push_back(classify_decode_failure(file.name, generation.error()));
            continue;
        }
        std::string why;
        if (!basis_on_history(store, *generation, &why)) {
            report.damage.push_back({file.name, IndexDamageKind::kStaleBasis, why});
            continue;
        }
        auto owned = std::make_shared<IndexGeneration>(std::move(*generation));
        for (ProfileIndex& profile : owned->profiles) profile.finalize();
        newest_valid = std::move(owned);
        report.valid_epoch = newest_valid->epoch;
        report.valid_basis = newest_valid->basis_size;
        report.fresh = newest_valid->basis_size == store.size();
    }
    return newest_valid;
}

}  // namespace

std::string index_dir(const std::string& store_dir) { return store_dir + "/index"; }

const char* index_damage_name(IndexDamageKind kind) noexcept {
    switch (kind) {
        case IndexDamageKind::kTornFile: return "torn-file";
        case IndexDamageKind::kBadChecksum: return "bad-checksum";
        case IndexDamageKind::kBadMagic: return "bad-magic";
        case IndexDamageKind::kBadPayload: return "bad-payload";
        case IndexDamageKind::kStaleBasis: return "stale-basis";
        case IndexDamageKind::kSuperseded: return "superseded";
        case IndexDamageKind::kStrayTmp: return "stray-tmp";
        case IndexDamageKind::kUnreadable: return "unreadable";
    }
    return "unknown";
}

IndexGeneration build_index(const store::Store& store, uint64_t epoch) {
    IndexGeneration generation;
    generation.epoch = epoch;
    generation.basis_size = store.size();
    generation.basis_root = store.tree_head();

    auto profiles = monitor_profiles();
    generation.profiles.resize(profiles.size());
    for (size_t p = 0; p < profiles.size(); ++p) {
        generation.profiles[p].profile_name = profiles[p].name;
        generation.profiles[p].records.reserve(store.size());
    }

    for (const store::StoredEntry& entry : store.entries()) {
        auto cert = x509::parse_certificate(entry.leaf_der);
        bool excluded = !cert.ok() || cert->is_precertificate();
        for (size_t p = 0; p < profiles.size(); ++p) {
            IndexedRecord record;
            if (excluded) {
                record.excluded = true;
            } else {
                DerivedRecord derived = derive_record(profiles[p].caps, cert.value());
                record.keys = std::move(derived.keys);
                record.hidden = derived.hidden;
                record.class_mask = derived.class_mask;
                record.field_mask = derived.field_mask;
            }
            generation.profiles[p].records.push_back(std::move(record));
        }
    }
    for (ProfileIndex& profile : generation.profiles) profile.finalize();
    return generation;
}

uint64_t next_epoch(core::Fs& fs, const std::string& store_dir) {
    IndexFsckReport scratch;
    uint64_t highest = 0;
    for (const ScannedIndexFile& file :
         list_index_files(fs, index_dir(store_dir), scratch)) {
        highest = std::max(highest, file.epoch);
    }
    return highest + 1;
}

Status publish_index(core::Fs& fs, const std::string& store_dir,
                     const IndexGeneration& generation, size_t keep) {
    std::string dir = index_dir(store_dir);
    if (auto st = fs.make_dirs(dir); !st.ok()) return st;
    Bytes blob = encode_index(generation);
    std::string path = dir + "/" + index_file_name(generation.epoch);
    if (auto st = core::atomic_write_file(fs, path, BytesView(blob.data(), blob.size()), dir);
        !st.ok()) {
        return st;
    }
    // Prune older generations past `keep`. A failed remove leaves
    // garbage a later fsck reports as superseded — never corruption.
    IndexFsckReport scratch;
    auto files = list_index_files(fs, dir, scratch);
    size_t kept = 0;
    for (const ScannedIndexFile& file : files) {
        if (file.epoch > generation.epoch) continue;  // never prune newer
        if (++kept <= keep) continue;
        (void)fs.remove(dir + "/" + file.name);
    }
    // Stray temp files from interrupted publishes are swept here too.
    for (const IndexDamage& d : scratch.damage) {
        if (d.kind == IndexDamageKind::kStrayTmp) (void)fs.remove(dir + "/" + d.file);
    }
    return Status::success();
}

std::shared_ptr<const IndexGeneration> load_latest(core::Fs& fs, const store::Store& store,
                                                   IndexFsckReport* report) {
    IndexFsckReport local;
    IndexFsckReport& rep = report ? *report : local;
    rep = IndexFsckReport{};
    return scan_generations(fs, store, rep, /*classify_all=*/false);
}

IndexFsckReport fsck_index(core::Fs& fs, const store::Store& store) {
    IndexFsckReport report;
    (void)scan_generations(fs, store, report, /*classify_all=*/true);
    return report;
}

bool generation_valid_for(const store::Store& store, const IndexGeneration& generation) {
    return basis_on_history(store, generation, nullptr);
}

}  // namespace unicert::ctlog::index
