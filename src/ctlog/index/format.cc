#include "ctlog/index/format.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <map>

#include "ctlog/store/format.h"

namespace unicert::ctlog::index {
namespace {

using store::get_u32be;
using store::get_u64be;
using store::put_u32be;
using store::put_u64be;

constexpr size_t kHeaderLen = 12 + 8 + 8 + 32 + 4;  // magic..payload_len

// Sequential payload reader with hard bounds checks: the checksum has
// already been verified when this runs, so any failure here means the
// encoder and decoder disagree — surfaced as index_bad_payload, never
// silently wrong data.
struct Reader {
    BytesView buf;
    size_t at = 0;
    bool failed = false;

    bool need(size_t n) {
        if (failed || buf.size() - at < n) {
            failed = true;
            return false;
        }
        return true;
    }
    uint32_t u32() {
        if (!need(4)) return 0;
        uint32_t v = get_u32be(buf, at);
        at += 4;
        return v;
    }
    uint64_t u64() {
        if (!need(8)) return 0;
        uint64_t v = get_u64be(buf, at);
        at += 8;
        return v;
    }
    uint8_t u8() {
        if (!need(1)) return 0;
        return buf[at++];
    }
    std::string str(uint32_t len) {
        if (!need(len)) return {};
        std::string out(reinterpret_cast<const char*>(buf.data() + at), len);
        at += len;
        return out;
    }
};

}  // namespace

void ProfileIndex::finalize() {
    exact.clear();
    trigrams.clear();
    searchable_ids.clear();
    class_postings.assign(8, {});

    std::map<std::string_view, std::vector<uint32_t>> exact_map;
    std::map<uint32_t, std::vector<uint32_t>> trigram_map;
    for (uint32_t id = 0; id < records.size(); ++id) {
        const IndexedRecord& record = records[id];
        for (unsigned bit = 0; bit < 8; ++bit) {
            if (record.class_mask & (1u << bit)) class_postings[bit].push_back(id);
        }
        if (!record.searchable()) continue;
        searchable_ids.push_back(id);
        for (const std::string& key : record.keys) {
            auto& ids = exact_map[key];
            if (ids.empty() || ids.back() != id) ids.push_back(id);
            if (key.size() >= 3) {
                for (size_t i = 0; i + 3 <= key.size(); ++i) {
                    auto& tids = trigram_map[pack_trigram(key, i)];
                    if (tids.empty() || tids.back() != id) tids.push_back(id);
                }
            }
        }
    }
    exact.reserve(exact_map.size());
    for (auto& [key, ids] : exact_map) exact.emplace_back(std::string(key), std::move(ids));
    trigrams.reserve(trigram_map.size());
    for (auto& [tg, ids] : trigram_map) trigrams.emplace_back(tg, std::move(ids));
}

const ProfileIndex* IndexGeneration::find_profile(std::string_view name) const noexcept {
    for (const ProfileIndex& p : profiles) {
        if (p.profile_name == name) return &p;
    }
    return nullptr;
}

Bytes encode_index(const IndexGeneration& generation) {
    Bytes payload;
    put_u32be(payload, static_cast<uint32_t>(generation.profiles.size()));
    for (const ProfileIndex& profile : generation.profiles) {
        put_u32be(payload, static_cast<uint32_t>(profile.profile_name.size()));
        payload.insert(payload.end(), profile.profile_name.begin(),
                       profile.profile_name.end());
        put_u64be(payload, profile.records.size());
        for (const IndexedRecord& record : profile.records) {
            uint8_t flags = (record.hidden ? kRecordHidden : 0) |
                            (record.excluded ? kRecordExcluded : 0);
            payload.push_back(flags);
            payload.push_back(record.class_mask);
            payload.push_back(record.field_mask);
            put_u32be(payload, static_cast<uint32_t>(record.keys.size()));
            for (const std::string& key : record.keys) {
                put_u32be(payload, static_cast<uint32_t>(key.size()));
                payload.insert(payload.end(), key.begin(), key.end());
            }
        }
    }

    Bytes out;
    out.reserve(kHeaderLen + payload.size() + 32);
    out.insert(out.end(), kIndexMagic.begin(), kIndexMagic.end());
    put_u64be(out, generation.epoch);
    put_u64be(out, generation.basis_size);
    out.insert(out.end(), generation.basis_root.begin(), generation.basis_root.end());
    put_u32be(out, static_cast<uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    Digest digest = crypto::sha256(BytesView(out.data(), out.size()));
    out.insert(out.end(), digest.begin(), digest.end());
    return out;
}

Expected<IndexGeneration> decode_index(BytesView buffer) {
    // A wrong magic outranks a short buffer: a torn tail of a real
    // artifact still starts with the magic, a foreign file never does.
    if (buffer.size() >= kIndexMagic.size() &&
        std::string_view(reinterpret_cast<const char*>(buffer.data()), kIndexMagic.size()) !=
            kIndexMagic) {
        return Error{"index_bad_magic", "not a unicert-index-v1 artifact"};
    }
    if (buffer.size() < kHeaderLen + 32) {
        return Error{"index_truncated", "index artifact shorter than its fixed header"};
    }
    IndexGeneration generation;
    size_t at = kIndexMagic.size();
    generation.epoch = get_u64be(buffer, at);
    at += 8;
    generation.basis_size = get_u64be(buffer, at);
    at += 8;
    std::copy(buffer.begin() + static_cast<ptrdiff_t>(at),
              buffer.begin() + static_cast<ptrdiff_t>(at + 32), generation.basis_root.begin());
    at += 32;
    uint32_t payload_len = get_u32be(buffer, at);
    at += 4;
    if (payload_len > kMaxIndexPayload) {
        return Error{"index_bad_length",
                     "payload length " + std::to_string(payload_len) + " exceeds the format cap"};
    }
    if (buffer.size() < at + payload_len + 32) {
        return Error{"index_truncated",
                     "index artifact torn: " + std::to_string(buffer.size()) + " bytes, " +
                         std::to_string(at + payload_len + 32) + " framed"};
    }
    if (buffer.size() > at + payload_len + 32) {
        return Error{"index_bad_length", "trailing garbage after the checksum trailer"};
    }
    Digest want;
    std::copy(buffer.end() - 32, buffer.end(), want.begin());
    Digest got = crypto::sha256(BytesView(buffer.data(), buffer.size() - 32));
    if (want != got) {
        return Error{"index_checksum", "index artifact digest mismatch (bit rot or torn write)"};
    }

    Reader r{BytesView(buffer.data() + at, payload_len)};
    uint32_t profile_count = r.u32();
    if (profile_count > 64) r.failed = true;
    for (uint32_t p = 0; p < profile_count && !r.failed; ++p) {
        ProfileIndex profile;
        profile.profile_name = r.str(r.u32());
        uint64_t record_count = r.u64();
        if (record_count != generation.basis_size) r.failed = true;
        for (uint64_t i = 0; i < record_count && !r.failed; ++i) {
            IndexedRecord record;
            uint8_t flags = r.u8();
            record.hidden = flags & kRecordHidden;
            record.excluded = flags & kRecordExcluded;
            record.class_mask = r.u8();
            record.field_mask = r.u8();
            uint32_t key_count = r.u32();
            record.keys.reserve(std::min<uint32_t>(key_count, 1024));
            for (uint32_t k = 0; k < key_count && !r.failed; ++k) {
                record.keys.push_back(r.str(r.u32()));
            }
            profile.records.push_back(std::move(record));
        }
        generation.profiles.push_back(std::move(profile));
    }
    if (r.failed || r.at != r.buf.size()) {
        return Error{"index_bad_payload", "index payload grammar broken despite valid checksum"};
    }
    return generation;
}

std::string index_file_name(uint64_t epoch) {
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(epoch));
    return std::string(kIndexFilePrefix) + hex + std::string(kIndexFileSuffix);
}

std::optional<uint64_t> parse_index_file_name(std::string_view name) {
    if (!name.starts_with(kIndexFilePrefix) || !name.ends_with(kIndexFileSuffix)) {
        return std::nullopt;
    }
    std::string_view hex =
        name.substr(kIndexFilePrefix.size(),
                    name.size() - kIndexFilePrefix.size() - kIndexFileSuffix.size());
    if (hex.size() != 16) return std::nullopt;
    uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(hex.data(), hex.data() + hex.size(), value, 16);
    if (ec != std::errc() || ptr != hex.data() + hex.size()) return std::nullopt;
    return value;
}

}  // namespace unicert::ctlog::index
