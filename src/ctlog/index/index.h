// unicert/ctlog/index/index.h
//
// Generation management for the persistent secondary indexes: building
// an IndexGeneration from the authoritative store, publishing it
// atomically (write-temp → fsync → rename → dir-fsync through the
// core::Fs seam), recovering the newest valid generation after any
// crash, and the fsck that classifies index damage without ever
// mutating anything. The index is always DERIVED state: nothing here
// is trusted over the store — a generation is only served after its
// checksum verifies AND its (basis_size, basis_root) pair lies on the
// store's own Merkle history, so a corrupt, torn, or foreign index can
// cost time (rebuild) but never a wrong answer.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fs.h"
#include "ctlog/index/format.h"
#include "ctlog/store/store.h"

namespace unicert::ctlog::index {

// Where a store's index generations live.
std::string index_dir(const std::string& store_dir);

// ---- fsck damage taxonomy --------------------------------------------------

enum class IndexDamageKind {
    kTornFile,     // truncated mid-artifact (crash during write)
    kBadChecksum,  // SHA-256 trailer mismatch (bit rot)
    kBadMagic,     // not an index artifact at all
    kBadPayload,   // checksum ok but grammar broken (format bug/forgery)
    kStaleBasis,   // basis does not lie on the store's history: rebuild
    kSuperseded,   // older epoch than the served generation (prunable)
    kStrayTmp,     // leftover .tmp from an interrupted publish
    kUnreadable,   // fs read error
};

const char* index_damage_name(IndexDamageKind kind) noexcept;

struct IndexDamage {
    std::string file;
    IndexDamageKind kind;
    std::string detail;
};

// Outcome of an index fsck / load pass.
struct IndexFsckReport {
    size_t files_scanned = 0;
    std::optional<uint64_t> valid_epoch;  // newest generation that verifies
    uint64_t valid_basis = 0;             // its basis_size
    bool fresh = false;                   // valid && basis == store size
    std::vector<IndexDamage> damage;
    std::vector<std::string> notes;
};

// ---- build / publish / load ------------------------------------------------

// Derive a full index generation (all Table 6 profiles) from the
// store's committed entries. Pure function of the store contents plus
// `epoch`; unparseable leaves and precertificates become excluded
// records in every profile, exactly as the scan path skips them.
// Profiles are finalized (acceleration built) on return.
IndexGeneration build_index(const store::Store& store, uint64_t epoch);

// 1 + the highest epoch present in the index dir (valid or not), so a
// rebuild after corruption never reuses a damaged generation's name.
uint64_t next_epoch(core::Fs& fs, const std::string& store_dir);

// Atomically publish a generation and prune all but the newest `keep`
// files. Prune failures are garbage, not corruption: they are ignored.
Status publish_index(core::Fs& fs, const std::string& store_dir,
                     const IndexGeneration& generation, size_t keep = 2);

// Load the newest generation that (a) decodes with a valid checksum
// and (b) whose basis lies on `store`'s Merkle history. Older valid
// generations are reported kSuperseded; every invalid file is
// classified in `report`. Returns nullptr (not an error) when no
// usable generation exists — the caller's degradation ladder decides
// what happens next. The returned generation is finalized.
std::shared_ptr<const IndexGeneration> load_latest(core::Fs& fs, const store::Store& store,
                                                   IndexFsckReport* report = nullptr);

// Read-only damage classification of every file in the index dir
// against the store (never mutates; safe on a live directory).
IndexFsckReport fsck_index(core::Fs& fs, const store::Store& store);

// True when the generation's (basis_size, basis_root) lies on the
// store's Merkle history — the MVCC validity test a pinned snapshot
// must re-pass before its answers are trusted.
bool generation_valid_for(const store::Store& store, const IndexGeneration& generation);

}  // namespace unicert::ctlog::index
