// unicert/ctlog/log.h
//
// A Certificate Transparency log substrate (RFC 6962 shape): append
// certificates, issue SCTs, expose entries for monitors. Mirrors the
// paper's dataset pipeline: entries may be precertificates (CT poison
// extension), which dataset consumers filter out (Section 4.1 kept 32B
// regular certs out of 70B entries; 54.7% were precerts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/simsig.h"
#include "ctlog/merkle.h"
#include "x509/certificate.h"

namespace unicert::ctlog {

// Signed Certificate Timestamp issued at submission.
struct Sct {
    Bytes log_id;        // SHA-256 of the log's public key
    int64_t timestamp;   // Unix seconds
    Bytes signature;     // SimSig over (log_id || timestamp || leaf DER)
};

struct LogEntry {
    size_t index = 0;
    int64_t timestamp = 0;
    x509::Certificate certificate;
    Sct sct;
};

class CtLog {
public:
    explicit CtLog(const std::string& name);

    // Submit a certificate; appends to the tree and returns the SCT.
    Sct submit(const x509::Certificate& cert, int64_t timestamp);

    const std::string& name() const noexcept { return name_; }
    size_t size() const noexcept { return entries_.size(); }
    const std::vector<LogEntry>& entries() const noexcept { return entries_; }
    const Bytes& log_id() const noexcept { return log_id_; }

    Digest tree_head() const { return tree_.root(); }
    const MerkleTree& tree() const noexcept { return tree_; }

    // Verify an SCT issued by this log.
    bool verify_sct(const x509::Certificate& cert, const Sct& sct) const;

    // Regular (non-precert) leaf certificates — the dataset a Unicert
    // study consumes after precert filtering.
    std::vector<const x509::Certificate*> regular_certificates() const;

    // Share of entries that are precertificates.
    double precert_fraction() const;

private:
    std::string name_;
    crypto::SimSigner key_;
    Bytes log_id_;
    MerkleTree tree_;
    std::vector<LogEntry> entries_;
};

}  // namespace unicert::ctlog
