#include "ctlog/log_source.h"

#include <string>

#include "ctlog/log.h"

namespace unicert::ctlog {

std::string InMemoryLogSource::name() const { return log_->name(); }

Expected<SignedTreeHead> InMemoryLogSource::latest_tree_head() {
    SignedTreeHead sth;
    sth.tree_size = log_->size();
    sth.root_hash = log_->tree_head();
    sth.timestamp = log_->entries().empty() ? 0 : log_->entries().back().timestamp;
    return sth;
}

Expected<RawLogEntry> InMemoryLogSource::entry_at(size_t index) {
    const auto& entries = log_->entries();
    if (index >= entries.size()) {
        return Error{"entry_out_of_range",
                     "entry " + std::to_string(index) + " beyond log size " +
                         std::to_string(entries.size())};
    }
    RawLogEntry out;
    out.index = index;
    out.timestamp = entries[index].timestamp;
    out.leaf_der = entries[index].certificate.der;
    return out;
}

Expected<Digest> InMemoryLogSource::root_at(size_t tree_size) {
    return log_->tree().root_at(tree_size);
}

}  // namespace unicert::ctlog
