#include "ctlog/corpus.h"

#include <array>
#include <cctype>
#include <cmath>

#include "asn1/time.h"
#include "idna/labels.h"
#include "idna/punycode.h"
#include "x509/builder.h"

namespace unicert::ctlog {
namespace {

using asn1::StringType;
using x509::Certificate;
using x509::dns_name;
using x509::make_attribute;
using x509::make_dn;
namespace oids = asn1::oids;

// ---- Static mixture tables ---------------------------------------------------

// Defect weights follow Table 11 hit counts (shape, not absolutes).
constexpr std::array<DefectSpec, 26> kDefects = {{
    {DefectKind::kExplicitTextNotUtf8, 117471, "w_rfc_ext_cp_explicit_text_not_utf8", false},
    {DefectKind::kCnNotInSan, 93664, "w_cab_subject_common_name_not_in_san", false},
    {DefectKind::kIdnA2uUnpermitted, 26701, "e_rfc_dns_idn_a2u_unpermitted_unichar", true},
    {DefectKind::kOrgTeletex, 25751, "e_subject_organization_not_printable_or_utf8", false},
    {DefectKind::kCnBmp, 25081, "e_subject_common_name_not_printable_or_utf8", false},
    {DefectKind::kLocalityTeletex, 17825, "e_subject_locality_not_printable_or_utf8", false},
    {DefectKind::kDnNotPrintable, 13320, "e_rfc_subject_dn_not_printable_characters", false},
    {DefectKind::kOuBmp, 11654, "e_subject_ou_not_printable_or_utf8", false},
    {DefectKind::kJurisdictionLocalityTeletex, 4213,
     "e_subject_jurisdiction_locality_not_printable_or_utf8", false},
    {DefectKind::kExplicitTextTooLong, 2988, "e_rfc_ext_cp_explicit_text_too_long", false},
    {DefectKind::kJurisdictionStateTeletex, 2829,
     "e_subject_jurisdiction_state_not_printable_or_utf8", false},
    {DefectKind::kExplicitTextIa5, 2550, "e_rfc_ext_cp_explicit_text_ia5", false},
    {DefectKind::kJurisdictionCountryUtf8, 1744,
     "e_subject_jurisdiction_country_not_printable", false},
    {DefectKind::kStateTeletex, 1671, "e_subject_state_not_printable_or_utf8", false},
    {DefectKind::kPrintableBadAlpha, 1561, "e_rfc_subject_printable_string_badalpha", false},
    {DefectKind::kTrailingWhitespace, 1356, "w_community_subject_dn_trailing_whitespace", false},
    {DefectKind::kPostalCodeBmp, 1262, "e_subject_postal_code_not_printable_or_utf8", false},
    {DefectKind::kStreetTeletex, 990, "e_subject_street_not_printable_or_utf8", false},
    {DefectKind::kExtraCn, 589, "w_cab_subject_contain_extra_common_name", false},
    {DefectKind::kSerialNotPrintable, 461, "e_subject_dn_serial_number_not_printable", false},
    {DefectKind::kLeadingWhitespace, 437, "w_community_subject_dn_leading_whitespace", false},
    {DefectKind::kCountryUtf8, 409, "e_rfc_subject_country_not_printable", false},
    {DefectKind::kIdnMalformed, 401, "e_rfc_dns_idn_malformed_unicode", true},
    {DefectKind::kDnsBadChar, 326, "e_cab_dns_bad_character_in_label", true},
    {DefectKind::kSanUnpermittedUnichar, 109, "e_ext_san_dns_contain_unpermitted_unichar", true},
    {DefectKind::kIdnNotNfc, 3, "e_rfc_idn_unicode_not_nfc", true},
}};

// Issuer mixture derived from Table 2 and Section 4.2. Weights are in
// thousands of Unicerts; nc_rate is the per-issuer noncompliance rate.
constexpr std::array<IssuerSpec, 20> kIssuers = {{
    {"Let's Encrypt", "US", TrustStatus::kPublic, true, 25100, 0.0006, true, 2015, 2025},
    {"COMODO CA Limited", "GB", TrustStatus::kNone, true, 4800, 0.0025, false, 2013, 2018},
    {"Other (regional)", "-", TrustStatus::kLimited, false, 2600, 0.016, false, 2013, 2025},
    {"cPanel, Inc.", "US", TrustStatus::kPublic, true, 1300, 0.001, false, 2015, 2025},
    {"DigiCert Inc", "US", TrustStatus::kPublic, true, 508, 0.034, false, 2013, 2025},
    {"Other (trusted)", "-", TrustStatus::kPublic, true, 350, 0.24, false, 2013, 2025},
    {"Sectigo", "GB", TrustStatus::kPublic, true, 300, 0.001, false, 2019, 2025},
    {"Cloudflare", "US", TrustStatus::kPublic, true, 150, 0.0001, true, 2015, 2025},
    {"Amazon", "US", TrustStatus::kPublic, true, 100, 0.0001, true, 2016, 2025},
    {"ZeroSSL", "AT", TrustStatus::kPublic, true, 444, 0.0253, false, 2020, 2025},
    {"GEANT Vereniging", "NL", TrustStatus::kPublic, true, 215, 0.01, false, 2016, 2025},
    {"DOMENY.PL sp. z o.o.", "PL", TrustStatus::kPublic, true, 49, 0.02, false, 2016, 2025},
    {"Dreamcommerce S.A.", "PL", TrustStatus::kLimited, false, 60, 0.4483, false, 2014, 2021},
    {"Symantec Corporation", "US", TrustStatus::kNone, true, 280, 0.5147, false, 2013, 2017},
    {"Česká pošta, s.p.", "CZ", TrustStatus::kNone, false, 90, 0.9639, false, 2013, 2019},
    {"StartCom Ltd.", "IL", TrustStatus::kNone, true, 160, 0.7297, false, 2013, 2017},
    {"VeriSign, Inc.", "US", TrustStatus::kPublic, true, 300, 0.5912, false, 2013, 2015},
    {"Government of Korea", "KR", TrustStatus::kNone, false, 35, 0.8733, false, 2013, 2022},
    {"Thawte Consulting", "ZA", TrustStatus::kNone, true, 100, 0.6, false, 2013, 2016},
    {"IPS CA", "ES", TrustStatus::kNone, false, 30, 0.8, false, 2013, 2016},
}};

// Figure 2 issuance trend (relative volume per year 2013..2025).
constexpr std::array<double, 13> kYearWeights = {
    0.02, 0.05, 0.15, 0.4, 0.8, 1.5, 2.2, 3.0, 3.8, 4.5, 5.2, 6.5, 3.5,
};
constexpr int kFirstYear = 2013;

// Organization name pools per region (drives Figure 4's field heatmap).
struct OrgPool {
    const char* region;
    std::array<const char*, 4> names;
};
constexpr std::array<OrgPool, 9> kOrgPools = {{
    {"US", {"Example Corp", "Acme Holdings", "Vegas.XXX®™ (VegasLLC)", "Globex LLC"}},
    {"GB", {"Smith & Sons Ltd", "Albion Trading", "Thames Digital", "Crown Services"}},
    {"CZ", {"Česká pošta, s.p.", "Škoda Díly s.r.o.", "Dřevěné Hračky a.s.", "Příbram Data"}},
    {"PL", {"NOWOCZESNA STODOŁA SP. Z O.O.", "Żabka Usługi", "Łódź Software", "Dąbrowski i Syn"}},
    {"DE", {"Müller GmbH", "Straßenbau AG", "Köln Medien", "Büro für Gestaltung"}},
    {"FR", {"Café de la Gare", "Société Générale d'Électricité", "Château Numérique",
            "Crème & Co"}},
    {"JP", {"株式会社中国銀行", "日本データ株式会社", "東京システム", "さくら情報"}},
    {"KR", {"한국정부", "서울데이터", "부산소프트", "대한기술"}},
    {"ES", {"Compañía Española", "Señal Digital S.A.", "Año Nuevo SL", "Peña Networks"}},
}};

constexpr std::array<const char*, 8> kCityPool = {
    "Praha", "Łódź", "München", "Île-de-France", "東京", "서울", "Málaga", "Springfield",
};

// Valid IDN A-labels for IDNCert generation.
constexpr std::array<const char*, 5> kValidALabels = {
    "xn--mnchen-3ya", "xn--bcher-kva", "xn--fiq228c", "xn--caf-dma", "xn--stroe-9db",
};

constexpr const char* kDisallowedALabel = "xn--www-hn0a";     // decodes to LRM+www
constexpr const char* kMalformedALabel =
    "xn--zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz";            // undecodable Punycode

const char* kTlds[] = {"com", "net", "org", "example", "pl", "cz", "de", "jp", "kr"};

// ---- Helpers -------------------------------------------------------------------

std::string random_host(Rng& rng, bool with_idn_label) {
    std::string label;
    if (with_idn_label) {
        label = kValidALabels[rng.below(kValidALabels.size())];
    } else {
        size_t len = 5 + rng.below(10);
        for (size_t i = 0; i < len; ++i) {
            label.push_back(static_cast<char>('a' + rng.below(26)));
        }
    }
    return label + "." + kTlds[rng.below(std::size(kTlds))];
}

const OrgPool& pool_for_region(const char* region, Rng& rng) {
    for (const OrgPool& p : kOrgPools) {
        if (std::string_view(p.region) == region) return p;
    }
    return kOrgPools[rng.below(kOrgPools.size())];
}

int64_t random_time_in_year(Rng& rng, int year) {
    int64_t start = asn1::make_time(year, 1, 1);
    // Keep within ~360 days so the year attribution is unambiguous.
    return start + static_cast<int64_t>(rng.below(360)) * 86400 +
           static_cast<int64_t>(rng.below(86400));
}

int pick_year(Rng& rng, int first, int last) {
    first = std::max(first, kFirstYear);
    last = std::min(last, kFirstYear + static_cast<int>(kYearWeights.size()) - 1);
    std::vector<double> weights;
    for (int y = first; y <= last; ++y) weights.push_back(kYearWeights[y - kFirstYear]);
    return first + static_cast<int>(rng.pick_weighted(weights));
}

// Validity length per Figure 3's class-conditional distributions.
int validity_days(Rng& rng, bool is_idn_cert, bool noncompliant) {
    if (noncompliant) {
        double r = rng.uniform();
        if (r < 0.30) return 365;
        if (r < 0.50) return 180;
        if (r < 0.80) return 730;
        if (r < 0.93) return 1095;
        return 1825;
    }
    if (is_idn_cert) {
        return rng.chance(0.896) ? 90 : 365;
    }
    double r = rng.uniform();
    if (r < 0.45) return 365;
    if (r < 0.70) return 398;
    if (r < 0.893) return 90;
    return 730;
}

x509::PolicyInformation policy_with_text(StringType st, const std::string& text) {
    x509::PolicyInformation pi;
    pi.policy_id = asn1::Oid{std::vector<uint32_t>{2, 23, 140, 1, 2, 2}};
    x509::PolicyQualifier q;
    q.qualifier_id = oids::user_notice_qualifier();
    x509::DisplayText dt;
    dt.string_type = st;
    auto cps = unicode::utf8_to_codepoints(text);
    if (cps.ok()) {
        auto enc = asn1::encode_unchecked(st, cps.value());
        if (enc.ok()) dt.value_bytes = std::move(enc).value();
    }
    q.explicit_text = dt;
    pi.qualifiers = {q};
    return pi;
}

// Replace the SAN extension with `names`.
void set_san(Certificate& cert, const x509::GeneralNames& names) {
    for (auto it = cert.extensions.begin(); it != cert.extensions.end(); ++it) {
        if (it->oid == oids::subject_alt_name()) {
            cert.extensions.erase(it);
            break;
        }
    }
    cert.extensions.push_back(x509::make_san(names));
}

void add_subject_attr(Certificate& cert, x509::AttributeValue av) {
    x509::Rdn rdn;
    rdn.attributes.push_back(std::move(av));
    cert.subject.rdns.push_back(std::move(rdn));
}

// Replace any existing attribute of the same type (defect injections
// model a CA *mis-encoding* a field, not duplicating it).
void set_subject_attr(Certificate& cert, x509::AttributeValue av) {
    for (auto it = cert.subject.rdns.begin(); it != cert.subject.rdns.end();) {
        auto& attrs = it->attributes;
        attrs.erase(std::remove_if(attrs.begin(), attrs.end(),
                                   [&](const x509::AttributeValue& existing) {
                                       return existing.type == av.type;
                                   }),
                    attrs.end());
        it = attrs.empty() ? cert.subject.rdns.erase(it) : it + 1;
    }
    add_subject_attr(cert, std::move(av));
}

// Point both the CN and the SAN at `host` (DNS-defect injections keep
// the identity consistent the way a real DV issuance would).
void set_host_identity(Certificate& cert, const std::string& host) {
    set_subject_attr(cert, make_attribute(oids::common_name(), host));
    set_san(cert, {dns_name(host)});
}

std::string not_nfc_a_label() {
    // Punycode of {e, COMBINING ACUTE, x}: decodes fine but is not NFC.
    unicode::CodePoints denorm = {'e', 0x0301, 'x'};
    auto puny = idna::punycode_encode(denorm);
    return "xn--" + puny.value();
}

// Inject the chosen defect into an otherwise-compliant certificate.
void apply_defect(Certificate& cert, DefectKind kind, const std::string& host, Rng& rng) {
    switch (kind) {
        case DefectKind::kExplicitTextNotUtf8:
            cert.extensions.push_back(x509::make_certificate_policies(
                {policy_with_text(StringType::kVisibleString, "CPS notice text")}));
            break;
        case DefectKind::kCnNotInSan:
            set_san(cert, {dns_name(random_host(rng, false))});
            break;
        case DefectKind::kIdnA2uUnpermitted:
            set_host_identity(cert, std::string(kDisallowedALabel) + "." + host);
            break;
        case DefectKind::kOrgTeletex:
            set_subject_attr(cert, make_attribute(oids::organization_name(), "Störi AG",
                                                  StringType::kTeletexString));
            break;
        case DefectKind::kCnBmp: {
            cert.subject = make_dn({make_attribute(oids::common_name(), host,
                                                   StringType::kBmpString)});
            break;
        }
        case DefectKind::kLocalityTeletex:
            set_subject_attr(cert, make_attribute(oids::locality_name(), "Zürich",
                                                  StringType::kTeletexString));
            break;
        case DefectKind::kDnNotPrintable: {
            // NUL / ESC / DEL / newline inserted into an O value, with
            // IPS CA-style evenly-interleaved NULs as one variant.
            static const char* kBad[] = {"Ev\x01il Corp", "C\x00&\x00I\x00S", "Esc\x1b Corp",
                                         "Line\nBreak Inc"};
            // Embedded NULs require explicit lengths.
            static const size_t kLens[] = {10, 7, 9, 14};
            size_t idx = rng.below(4);
            set_subject_attr(cert, make_attribute(oids::organization_name(),
                                                  std::string(kBad[idx], kLens[idx])));
            break;
        }
        case DefectKind::kOuBmp:
            set_subject_attr(cert, make_attribute(oids::organizational_unit_name(), "IT-Abteilung",
                                                  StringType::kBmpString));
            break;
        case DefectKind::kJurisdictionLocalityTeletex:
            set_subject_attr(cert, make_attribute(oids::jurisdiction_locality(), "Genève",
                                                  StringType::kTeletexString));
            break;
        case DefectKind::kExplicitTextTooLong:
            cert.extensions.push_back(x509::make_certificate_policies(
                {policy_with_text(StringType::kUtf8String, std::string(240, 'n'))}));
            break;
        case DefectKind::kJurisdictionStateTeletex:
            set_subject_attr(cert, make_attribute(oids::jurisdiction_state(), "Bayern ü",
                                                  StringType::kTeletexString));
            break;
        case DefectKind::kExplicitTextIa5:
            cert.extensions.push_back(x509::make_certificate_policies(
                {policy_with_text(StringType::kIa5String, "Legacy IA5 notice")}));
            break;
        case DefectKind::kJurisdictionCountryUtf8:
            set_subject_attr(cert, make_attribute(oids::jurisdiction_country(), "DE",
                                                  StringType::kUtf8String));
            break;
        case DefectKind::kStateTeletex:
            set_subject_attr(cert, make_attribute(oids::state_or_province_name(), "Baden-Württemberg",
                                                  StringType::kTeletexString));
            break;
        case DefectKind::kPrintableBadAlpha:
            set_subject_attr(cert, make_attribute(oids::organization_name(), "AT&T Network",
                                                  StringType::kPrintableString));
            break;
        case DefectKind::kTrailingWhitespace:
            set_subject_attr(cert, make_attribute(oids::organization_name(), "Peddy Shield "));
            break;
        case DefectKind::kPostalCodeBmp:
            set_subject_attr(cert, make_attribute(oids::postal_code(), "10110",
                                                  StringType::kBmpString));
            break;
        case DefectKind::kStreetTeletex:
            set_subject_attr(cert, make_attribute(oids::street_address(), "Hauptstraße 1",
                                                  StringType::kTeletexString));
            break;
        case DefectKind::kExtraCn:
            add_subject_attr(cert, make_attribute(oids::common_name(), host));
            break;
        case DefectKind::kSerialNotPrintable:
            set_subject_attr(cert, make_attribute(oids::serial_number(), "SN-2024-001",
                                                  StringType::kUtf8String));
            break;
        case DefectKind::kLeadingWhitespace:
            set_subject_attr(cert, make_attribute(oids::organization_name(), " SAMCO Autotechnik"));
            break;
        case DefectKind::kCountryUtf8:
            set_subject_attr(cert, make_attribute(oids::country_name(), "DE",
                                                  StringType::kUtf8String));
            break;
        case DefectKind::kIdnMalformed:
            set_host_identity(cert, std::string(kMalformedALabel) + "." + host);
            break;
        case DefectKind::kDnsBadChar:
            set_host_identity(cert, "bad_label." + host);
            break;
        case DefectKind::kSanUnpermittedUnichar:
            // CN keeps the registered host; only the SAN entry carries the
            // raw Unicode bytes (CN cannot hold them compliantly anyway).
            set_san(cert, {dns_name(host), dns_name("münchen." + host)});
            break;
        case DefectKind::kIdnNotNfc:
            set_host_identity(cert, not_nfc_a_label() + "." + host);
            break;
    }
}

}  // namespace

const char* trust_status_label(TrustStatus t) noexcept {
    switch (t) {
        case TrustStatus::kPublic: return "public";
        case TrustStatus::kLimited: return "limited";
        case TrustStatus::kNone: return "untrusted";
    }
    return "?";
}

std::span<const DefectSpec> defect_specs() noexcept { return kDefects; }
std::span<const IssuerSpec> issuer_specs() noexcept { return kIssuers; }

uint64_t Rng::next() noexcept {
    // xorshift64*.
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
}

double Rng::uniform() noexcept {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

size_t Rng::pick_weighted(std::span<const double> weights) noexcept {
    double total = 0;
    for (double w : weights) total += w;
    double r = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
}

CorpusGenerator::CorpusGenerator(CorpusOptions options) : options_(options) {}

size_t CorpusGenerator::target_count() const noexcept {
    double total_k = 0;
    for (const IssuerSpec& spec : kIssuers) total_k += spec.unicert_weight;
    return static_cast<size_t>(total_k * 1000.0 / options_.scale);
}

std::vector<CorpusCert> CorpusGenerator::generate() {
    Rng rng(options_.seed);
    std::vector<CorpusCert> corpus;
    size_t total = target_count();
    corpus.reserve(total + 8);

    std::vector<double> issuer_weights;
    for (const IssuerSpec& spec : kIssuers) issuer_weights.push_back(spec.unicert_weight);

    std::vector<double> defect_weights;
    std::vector<double> idn_defect_weights;
    for (const DefectSpec& spec : kDefects) {
        defect_weights.push_back(spec.weight);
        idn_defect_weights.push_back(spec.idn_defect ? spec.weight : 0.0);
    }

    uint64_t serial_counter = 1;

    auto build_one = [&](const IssuerSpec& issuer, int year,
                         std::optional<DefectKind> forced_defect) -> CorpusCert {
        CorpusCert out;
        out.issuer_org = issuer.organization;
        // The aggregate "Other" buckets stand for the paper's long tail
        // of 600+ issuer organizations; materialize stable sub-org
        // names so issuer-level reports show the no-oligopoly pattern
        // of Section 4.3.2.
        if (std::string_view(issuer.organization) == "Other (regional)") {
            out.issuer_org = "Regional CA " + std::to_string(1 + rng.below(30));
        } else if (std::string_view(issuer.organization) == "Other (trusted)") {
            out.issuer_org = "Trusted CA " + std::to_string(1 + rng.below(12));
        }
        out.trust = issuer.trust;
        out.trusted_at_issuance = issuer.trusted_at_issuance;
        out.year = year;

        Certificate& cert = out.cert;
        cert.version = 2;
        // Deterministic unique serial.
        for (int i = 7; i >= 0; --i) {
            cert.serial.push_back(static_cast<uint8_t>((serial_counter >> (i * 8)) & 0xFF));
        }
        ++serial_counter;

        cert.issuer = make_dn({
            make_attribute(oids::country_name(), issuer.region, StringType::kPrintableString),
            make_attribute(oids::organization_name(), issuer.organization),
            make_attribute(oids::common_name(), std::string(issuer.organization) + " CA"),
        });

        // Subject + SAN shape depends on the issuer's automation model.
        bool want_idn = issuer.idn_only ? rng.chance(0.6) : rng.chance(0.15);
        std::string host = random_host(rng, want_idn);
        out.is_idn_cert = want_idn;

        if (issuer.idn_only) {
            // Automated DV: CN=host, SAN=host, nothing else (§4.3.2's
            // "restricting customizable fields" observation).
            cert.subject = make_dn({make_attribute(oids::common_name(), host)});
            cert.extensions.push_back(x509::make_san({dns_name(host)}));
        } else if (rng.chance(0.06)) {
            // Internationalized email certificates (IEAs): post-RFC 9598
            // issuance uses SmtpUTF8Mailbox for non-ASCII local parts;
            // earlier certs carry plain rfc822Names.
            const OrgPool& pool = pool_for_region(issuer.region, rng);
            std::string org = pool.names[rng.below(pool.names.size())];
            cert.subject = make_dn({
                make_attribute(oids::country_name(),
                               std::string_view(issuer.region) == "-" ? "XX" : issuer.region,
                               StringType::kPrintableString),
                make_attribute(oids::organization_name(), org),
                make_attribute(oids::email_address(), "admin@" + host,
                               StringType::kIa5String),
                make_attribute(oids::common_name(), host),
            });
            x509::GeneralNames names = {dns_name(host)};
            if (out.year >= 2024 && rng.chance(0.5)) {
                // RFC 9598: SmtpUTF8Mailbox domains carry U-labels.
                names.push_back(x509::smtp_utf8_mailbox(
                    "postmästare@" + idna::hostname_to_display(host)));
            } else {
                names.push_back(x509::rfc822_name("admin@" + host));
            }
            cert.extensions.push_back(x509::make_san(names));
        } else {
            const OrgPool& pool = pool_for_region(issuer.region, rng);
            std::string org = pool.names[rng.below(pool.names.size())];
            std::string city = kCityPool[rng.below(kCityPool.size())];
            cert.subject = make_dn({
                make_attribute(oids::country_name(),
                               std::string_view(issuer.region) == "-" ? "XX" : issuer.region,
                               StringType::kPrintableString),
                make_attribute(oids::organization_name(), org),
                make_attribute(oids::locality_name(), city),
                make_attribute(oids::common_name(), host),
            });
            cert.extensions.push_back(x509::make_san({dns_name(host)}));
        }

        // Defect?
        std::optional<DefectKind> defect = forced_defect;
        if (!defect && rng.chance(issuer.nc_rate)) {
            const auto& weights = issuer.idn_only ? idn_defect_weights : defect_weights;
            defect = kDefects[rng.pick_weighted(weights)].kind;
        }
        bool noncompliant = defect.has_value();
        if (defect) {
            apply_defect(cert, *defect, host, rng);
            out.defect = defect;
        } else if (options_.latent_defect_rate > 0 && out.year < 2024 && !issuer.idn_only &&
                   rng.chance(options_.latent_defect_rate)) {
            // Latent defect: violates only post-2024 rules (RFC 9598's
            // ASCII-only rfc822Name), so effective-date-respecting runs
            // do not count it but footnote-4 runs do.
            x509::GeneralNames names = {dns_name(host),
                                        x509::rfc822_name("usér@" + host)};
            set_san(cert, names);
            out.has_latent_defect = true;
        }

        // Validity window.
        int64_t issued = random_time_in_year(rng, out.year);
        cert.validity = {issued,
                         issued + static_cast<int64_t>(
                                      validity_days(rng, out.is_idn_cert, noncompliant)) *
                                      86400};

        cert.subject_public_key = crypto::sha256_bytes(cert.serial);
        if (options_.sign_certificates) {
            crypto::SimSigner key = crypto::SimSigner::from_name(issuer.organization);
            x509::sign_certificate(cert, key);
        }
        return out;
    };

    // Sample the issuance year from the global Figure 2 trend FIRST,
    // then an issuer among those active that year — this keeps the
    // aggregate trend monotone regardless of issuer lifetimes.
    std::vector<std::vector<double>> issuer_weights_by_year(kYearWeights.size());
    for (size_t y = 0; y < kYearWeights.size(); ++y) {
        int year = kFirstYear + static_cast<int>(y);
        for (const IssuerSpec& spec : kIssuers) {
            issuer_weights_by_year[y].push_back(
                (year >= spec.first_year && year <= spec.last_year) ? spec.unicert_weight
                                                                    : 0.0);
        }
    }
    std::vector<double> year_weights(kYearWeights.begin(), kYearWeights.end());

    for (size_t i = 0; i < total; ++i) {
        size_t year_idx = rng.pick_weighted(year_weights);
        int year = kFirstYear + static_cast<int>(year_idx);
        const IssuerSpec& issuer =
            kIssuers[rng.pick_weighted(issuer_weights_by_year[year_idx])];
        corpus.push_back(build_one(issuer, year, std::nullopt));

        // Subject variants (Table 3): occasionally emit a sibling with a
        // near-identical Subject using one of the variant strategies.
        if (!issuer.idn_only && rng.chance(options_.variant_rate) && !corpus.back().defect) {
            CorpusCert variant = corpus.back();
            variant.cert.serial.back() ^= 0xFF;
            const x509::AttributeValue* org =
                variant.cert.subject.find_first(oids::organization_name());
            if (org != nullptr) {
                std::string v = org->to_utf8_lossy();
                switch (rng.below(4)) {
                    case 0:  // case conversion
                        for (char& c : v) c = static_cast<char>(std::toupper(
                                              static_cast<unsigned char>(c)));
                        break;
                    case 1:  // NBSP insertion
                        v.insert(v.size() / 2, " ");
                        break;
                    case 2:  // dash substitution
                        if (auto pos = v.find('-'); pos != std::string::npos) {
                            v.replace(pos, 1, "–");
                        } else {
                            v += " – Group";
                        }
                        break;
                    case 3:  // trailing legal-form tweak
                        v += " Ltd.";
                        break;
                }
                // Rebuild the subject with the variant O value.
                x509::DistinguishedName dn;
                for (const x509::Rdn& rdn : variant.cert.subject.rdns) {
                    x509::Rdn copy = rdn;
                    for (x509::AttributeValue& av : copy.attributes) {
                        if (av.type == oids::organization_name()) {
                            av = make_attribute(oids::organization_name(), v);
                        }
                    }
                    dn.rdns.push_back(std::move(copy));
                }
                variant.cert.subject = std::move(dn);
                corpus.push_back(std::move(variant));
            }
        }
    }

    // Pin rare defects that would not survive downscaling as absolute
    // counts: the paper's 3 NFC-violating IDNCerts (Table 1's T2 row)
    // and one multi-CN certificate (the Discouraged Field row).
    const IssuerSpec* digicert = nullptr;
    for (const IssuerSpec& spec : kIssuers) {
        if (std::string_view(spec.organization) == "DigiCert Inc") digicert = &spec;
    }
    for (int i = 0; i < 3; ++i) {
        corpus.push_back(build_one(*digicert, pick_year(rng, 2013, 2025),
                                   DefectKind::kIdnNotNfc));
    }
    corpus.push_back(build_one(*digicert, pick_year(rng, 2013, 2025), DefectKind::kExtraCn));

    return corpus;
}

std::vector<CorpusCert> CorpusGenerator::generate_defect_showcase(size_t per_kind) {
    // Independent stream: a distinct seed derivation keeps the showcase
    // from sharing state with (or perturbing) generate()'s pinned RNG.
    Rng rng(options_.seed ^ 0xDEFEC7C0DEULL);
    std::vector<CorpusCert> out;
    out.reserve(kDefects.size() * per_kind);

    uint64_t serial_counter = 1;
    for (const DefectSpec& spec : kDefects) {
        for (size_t i = 0; i < per_kind; ++i) {
            CorpusCert cc;
            cc.issuer_org = "Showcase CA";
            cc.trust = TrustStatus::kPublic;
            cc.trusted_at_issuance = true;
            cc.year = 2024;
            cc.defect = spec.kind;

            Certificate& cert = cc.cert;
            cert.version = 2;
            for (int b = 7; b >= 0; --b) {
                cert.serial.push_back(static_cast<uint8_t>((serial_counter >> (b * 8)) & 0xFF));
            }
            ++serial_counter;

            cert.issuer = make_dn({
                make_attribute(oids::country_name(), "US", StringType::kPrintableString),
                make_attribute(oids::organization_name(), "Showcase CA"),
                make_attribute(oids::common_name(), "Showcase CA Root"),
            });

            std::string host = random_host(rng, false);
            cert.subject = make_dn({
                make_attribute(oids::country_name(), "US", StringType::kPrintableString),
                make_attribute(oids::organization_name(), "Showcase Org"),
                make_attribute(oids::common_name(), host),
            });
            cert.extensions.push_back(x509::make_san({dns_name(host)}));
            apply_defect(cert, spec.kind, host, rng);

            // Issued after RFC 9598 (May 2024) so no rule is date-gated.
            int64_t issued = asn1::make_time(2024, 7, 1) +
                             static_cast<int64_t>(rng.below(120)) * 86400;
            cert.validity = {issued, issued + 365 * 86400};
            cert.subject_public_key = crypto::sha256_bytes(cert.serial);
            out.push_back(std::move(cc));
        }
    }
    return out;
}

}  // namespace unicert::ctlog
