// unicert/ctlog/corpus.h
//
// Synthetic Unicert corpus generator — the documented substitution for
// the paper's 34.8M-certificate CT dataset (DESIGN.md section 1). The
// generator reproduces the study's published marginals at a reduced
// scale:
//   * issuer oligopoly & per-issuer noncompliance rates (Table 2, §4.2)
//   * per-year issuance trend 2013-2025 (Figure 2)
//   * the noncompliance-defect mixture (Table 11 lint counts)
//   * validity-period distributions per certificate class (Figure 3)
//   * per-field internationalized content usage (Figure 4)
//   * "latent" defects that only violate post-2024 rules (footnote 4's
//     249K -> 1.8M jump when effective dates are ignored)
//
// Everything is driven by a seeded deterministic RNG so every bench
// regenerates the same corpus.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "x509/certificate.h"

namespace unicert::ctlog {

enum class TrustStatus { kPublic, kLimited, kNone };

const char* trust_status_label(TrustStatus t) noexcept;

// The defect kinds injected into noncompliant Unicerts; weights follow
// the Table 11 lint hit counts.
enum class DefectKind {
    kExplicitTextNotUtf8,
    kCnNotInSan,
    kIdnA2uUnpermitted,
    kOrgTeletex,
    kCnBmp,
    kLocalityTeletex,
    kDnNotPrintable,
    kOuBmp,
    kJurisdictionLocalityTeletex,
    kExplicitTextTooLong,
    kJurisdictionStateTeletex,
    kExplicitTextIa5,
    kJurisdictionCountryUtf8,
    kStateTeletex,
    kPrintableBadAlpha,
    kTrailingWhitespace,
    kPostalCodeBmp,
    kStreetTeletex,
    kExtraCn,
    kSerialNotPrintable,
    kLeadingWhitespace,
    kCountryUtf8,
    kIdnMalformed,
    kDnsBadChar,
    kSanUnpermittedUnichar,
    kIdnNotNfc,
};

struct DefectSpec {
    DefectKind kind;
    double weight;                 // proportional to the paper's lint hit count
    const char* expected_lint;     // primary lint expected to fire
    bool idn_defect;               // usable by DV-automation (IDN-only) issuers
};

std::span<const DefectSpec> defect_specs() noexcept;

struct IssuerSpec {
    const char* organization;
    const char* region;
    TrustStatus trust;       // CURRENT trust status (Table 2's column)
    // Footnote 3: longitudinal analysis treats certs as trusted if the
    // issuer was trusted when it issued, ignoring later distrust
    // (Symantec, StartCom, COMODO rebranding, …).
    bool trusted_at_issuance;
    double unicert_weight;   // share of all Unicerts (Table 2 / §4.2), in thousands
    double nc_rate;          // per-cert probability of injected defect
    bool idn_only;           // automated DV issuer: DNSNames only
    int first_year;          // active issuing window
    int last_year;
};

std::span<const IssuerSpec> issuer_specs() noexcept;

struct CorpusOptions {
    uint64_t seed = 42;
    // 1:N downscale of the paper's 34.8M Unicerts. The default yields
    // roughly 35K certificates.
    double scale = 1000.0;
    // Fraction of otherwise-compliant certs from NON-automated issuers
    // given a "latent" defect that only violates post-2024 rules
    // (drives footnote 4's 249K -> 1.8M jump).
    double latent_defect_rate = 0.38;
    // Fraction of subjects that get a near-duplicate "variant" sibling
    // (Table 3's evasion strategies).
    double variant_rate = 0.002;
    bool sign_certificates = false;  // DER signing is optional (slower)
};

struct CorpusCert {
    x509::Certificate cert;
    std::string issuer_org;
    TrustStatus trust = TrustStatus::kPublic;  // current status
    bool trusted_at_issuance = true;           // footnote-3 semantics
    int year = 2020;
    bool is_idn_cert = false;
    std::optional<DefectKind> defect;  // counted defect
    // True when the cert carries a defect that only violates rules whose
    // effective date postdates its issuance (footnote 4's latent pool).
    bool has_latent_defect = false;
};

class CorpusGenerator {
public:
    explicit CorpusGenerator(CorpusOptions options = {});

    // Generate the full corpus (deterministic for a given seed/scale).
    std::vector<CorpusCert> generate();

    // Deterministic forced-defect showcase: `per_kind` certificates per
    // DefectKind, each guaranteed to carry exactly that defect, all
    // issued mid-2024 so every rule family (including the post-2024 RFC
    // 9549/9598 lints) is in effect. Runs on an independent RNG stream:
    // calling this never perturbs generate()'s output, which downstream
    // golden files byte-pin. Used by lint::analysis to guarantee probe
    // coverage for rare defect kinds.
    std::vector<CorpusCert> generate_defect_showcase(size_t per_kind = 1);

    // Total cert count the options imply.
    size_t target_count() const noexcept;

private:
    CorpusOptions options_;
};

// xorshift-based deterministic RNG used across the simulation layers.
class Rng {
public:
    explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

    uint64_t next() noexcept;
    // Uniform in [0, n).
    uint64_t below(uint64_t n) noexcept { return n == 0 ? 0 : next() % n; }
    // Uniform double in [0, 1).
    double uniform() noexcept;
    // Index into a weight table, proportional to weights.
    size_t pick_weighted(std::span<const double> weights) noexcept;
    bool chance(double p) noexcept { return uniform() < p; }

private:
    uint64_t state_;
};

}  // namespace unicert::ctlog
