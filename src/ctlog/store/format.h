// unicert/ctlog/store/format.h
//
// On-disk framing for the durable CT-log store (DESIGN.md section 10).
// Three artifact kinds, all self-checking:
//
//   segment file  seg-<base seq, 16 hex digits>.seg
//     header:  "unicertseg1\n" | u64be base_seq | SHA-256(preceding)
//     records: back-to-back frames, sequence numbers strictly
//              monotonic from base_seq
//
//   record frame (both entry and commit records)
//     u8 type | u64be seq | u32be payload_len | payload | SHA-256(frame)
//       type 1 entry:  payload = u64be timestamp | leaf DER
//       type 2 commit: payload = u64be tree_size | 32-byte Merkle root
//
//   snapshot file (tree head, monitor checkpoints; replaced atomically)
//     "unicertsnp1\n" | u32be payload_len | payload | SHA-256(preceding)
//
// Every multi-byte integer is big-endian. The SHA-256 trailer covers
// everything before it in the artifact/frame, so a single flipped bit
// anywhere is detected, and a torn tail fails either the length check
// (frame runs past the buffer) or the digest check.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/expected.h"
#include "crypto/sha256.h"
#include "ctlog/monitor.h"

namespace unicert::ctlog::store {

using crypto::Digest;

inline constexpr std::string_view kSegmentMagic = "unicertseg1\n";
inline constexpr std::string_view kSnapshotMagic = "unicertsnp1\n";
inline constexpr uint8_t kRecordEntry = 1;
inline constexpr uint8_t kRecordCommit = 2;

// Guard against absurd length fields when rescanning damaged files: no
// leaf certificate or commit payload approaches this.
inline constexpr uint32_t kMaxPayloadLen = 1u << 26;  // 64 MiB

// Size of the fixed record prelude (type + seq + payload_len).
inline constexpr size_t kRecordPreludeLen = 1 + 8 + 4;
inline constexpr size_t kDigestLen = 32;
inline constexpr size_t kSegmentHeaderLen = 12 + 8 + kDigestLen;

// ---- primitive big-endian helpers -----------------------------------------

void put_u32be(Bytes& out, uint32_t v);
void put_u64be(Bytes& out, uint64_t v);
uint32_t get_u32be(BytesView in, size_t offset);
uint64_t get_u64be(BytesView in, size_t offset);

// ---- records ---------------------------------------------------------------

struct EntryRecord {
    uint64_t seq = 0;
    int64_t timestamp = 0;
    Bytes leaf_der;
};

struct CommitRecord {
    uint64_t seq = 0;        // sequence number of the commit frame itself
    uint64_t tree_size = 0;  // entries committed so far (all segments)
    Digest root{};           // Merkle root over those entries
};

Bytes encode_entry_record(const EntryRecord& record);
Bytes encode_commit_record(const CommitRecord& record);

// One frame scanned out of a segment buffer.
struct ScannedRecord {
    uint8_t type = 0;
    uint64_t seq = 0;
    BytesView payload;      // view into the scanned buffer
    size_t offset = 0;      // frame start within the buffer
    size_t frame_len = 0;   // total bytes consumed
    bool digest_ok = true;  // false: framing parsed but the SHA-256
                            // trailer mismatched (bit rot) — the frame
                            // is quarantinable and the scan can resume
                            // at offset + frame_len
};

// Decode the frame starting at `offset`. A checksum mismatch is NOT an
// error (the frame boundary is still known): it comes back with
// digest_ok = false. Error codes, all unresumable:
//   record_truncated   frame runs past the end of the buffer (torn tail)
//   record_bad_type    unknown record type byte
//   record_bad_length  length field exceeds kMaxPayloadLen
Expected<ScannedRecord> scan_record(BytesView buffer, size_t offset);

// Interpret a scanned frame's payload.
Expected<EntryRecord> decode_entry(const ScannedRecord& record);
Expected<CommitRecord> decode_commit(const ScannedRecord& record);

// ---- segment header --------------------------------------------------------

Bytes encode_segment_header(uint64_t base_seq);

// Error codes: segment_truncated / segment_bad_magic / segment_checksum.
Expected<uint64_t> decode_segment_header(BytesView buffer);

std::string segment_file_name(uint64_t base_seq);
std::optional<uint64_t> parse_segment_file_name(std::string_view name);

// ---- snapshots -------------------------------------------------------------

Bytes encode_snapshot(BytesView payload);

// Error codes: snapshot_truncated / snapshot_bad_magic / snapshot_checksum.
Expected<Bytes> decode_snapshot(BytesView buffer);

// Tree-head snapshot payload: u64be tree_size | root.
struct HeadSnapshot {
    uint64_t tree_size = 0;
    Digest root{};
};

Bytes encode_head_snapshot(const HeadSnapshot& head);
Expected<HeadSnapshot> decode_head_snapshot(BytesView file_bytes);

// MonitorCheckpoint snapshot payload:
//   u64be next_index | u64be tree_size | root | u8 has_head.
Bytes encode_checkpoint_snapshot(const MonitorCheckpoint& checkpoint);
Expected<MonitorCheckpoint> decode_checkpoint_snapshot(BytesView file_bytes);

}  // namespace unicert::ctlog::store
