// unicert/ctlog/store/store.h
//
// Durable, crash-safe CT-log store (DESIGN.md section 10). The paper's
// pipeline assumes a dataset that survives years of ingestion (Section
// 4.1: 70B entries); ctlog::CtLog is purely in-memory, so this module
// supplies the persistence layer underneath it: append-only checksummed
// segment files with a commit record per batch, atomic
// write-temp-then-rename snapshots for the tree head and
// MonitorCheckpoints, and a recovery path that re-derives the exact
// committed state after any crash the FaultyFs substrate can inject.
//
// Durability contract (the kill-point sweep asserts all of it):
//   * append_batch is atomic: after a crash, a batch is either fully
//     present (its commit record survived) or fully absent;
//   * an acknowledged batch (append_batch returned success, meaning the
//     commit record was fsynced) is never lost;
//   * an unacknowledged batch is never partially resurrected;
//   * the recovered Merkle root always equals the root recomputed over
//     the recovered entries, and matches the last verified commit.
//
// Any I/O error latches the store into a failed state — in-memory and
// on-disk state may have diverged, and the only safe continuation is a
// fresh Store::open (which is exactly what a restarted process does).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/fs.h"
#include "ctlog/log_source.h"
#include "ctlog/merkle.h"
#include "ctlog/monitor.h"

namespace unicert::ctlog::store {

using crypto::Digest;

struct StoreOptions {
    // Frames (entry + commit records) per segment before rolling to a
    // fresh file. Smaller segments bound per-file damage and speed up
    // tail repair; larger ones reduce file count. The recovery bench
    // sweeps this knob.
    size_t segment_max_records = 1024;

    // Refresh head.snap every N commits (1 = every commit). The
    // snapshot is an advisory floor: recovery treats committed state
    // older than it as data loss, so a larger interval trades a wider
    // undetectable-loss window for fewer I/O ops per batch.
    size_t snapshot_every_commits = 1;

    // Create the directory when absent (unicert_store --init path).
    bool create_if_missing = false;
};

// How the last open()/fsck() found the on-disk state.
enum class RecoveryState {
    kClean,               // every frame verified, nothing dropped
    kTailTruncated,       // torn/uncommitted tail after the last commit discarded
    kQuarantinedRecords,  // bit rot inside committed history; store is read-only
    kUnrecoverable,       // committed data provably lost or format breakage
};

const char* recovery_state_name(RecoveryState state) noexcept;

// One damaged frame recovery could isolate but not repair.
struct QuarantinedRecord {
    std::string segment;   // segment file name
    size_t offset = 0;     // frame start within the segment file
    uint64_t seq = 0;      // sequence number expected at that position
    Error error;
};

// Structured outcome of Store::open / fsck.
struct RecoveryReport {
    RecoveryState state = RecoveryState::kClean;
    size_t segments_scanned = 0;
    size_t entries_recovered = 0;     // committed entries now served
    size_t tail_records_dropped = 0;  // frames discarded as uncommitted
    size_t tail_bytes_dropped = 0;    // bytes truncated after the last committed frame
    std::vector<QuarantinedRecord> quarantined;
    bool head_snapshot_present = false;
    bool head_snapshot_matched = false;
    size_t stray_temp_files = 0;      // leftover *.tmp from interrupted snapshots
    std::vector<std::string> notes;   // human-readable detail, one line each
};

// One recovered/committed log entry.
struct StoredEntry {
    uint64_t seq = 0;       // frame sequence number (not the entry index)
    int64_t timestamp = 0;
    Bytes leaf_der;
};

// One entry of a batch to append.
struct PendingEntry {
    Bytes leaf_der;
    int64_t timestamp = 0;
};

// Incremental RFC 6962 root: keeps the roots of the maximal perfect
// subtrees covering the leaves so far (at most log2(n) of them) and
// folds them right-to-left for the MTH. O(log n) per leaf and per
// root() call, which keeps per-commit root verification linear over a
// whole recovery scan where MerkleTree::root() would make it quadratic.
class TreeFrontier {
public:
    void add_leaf(const Digest& leaf);

    // MTH over the leaves added so far; SHA-256("") for the empty tree,
    // identical to MerkleTree::root().
    Digest root() const;

    size_t size() const noexcept { return size_; }

private:
    struct Node {
        size_t level;  // perfect subtree of 2^level leaves
        Digest digest;
    };
    std::vector<Node> nodes_;  // strictly decreasing levels, left to right
    size_t size_ = 0;
};

class Store {
public:
    // Open (and, when needed, recover) the store at `dir`. On success
    // `*report` (when given) describes what recovery found; a clean or
    // tail-truncated store is writable, a quarantined one is read-only.
    // Unrecoverable state returns error code "store_unrecoverable" and
    // still fills `*report` with the evidence.
    static Expected<std::unique_ptr<Store>> open(core::Fs& fs, const std::string& dir,
                                                 StoreOptions options = {},
                                                 RecoveryReport* report = nullptr);

    // Append + commit one batch: entry frames, then a commit frame
    // carrying (tree size, Merkle root), then fsync. Success means the
    // batch is durable. Any failure latches the failed state.
    Status append_batch(std::span<const PendingEntry> batch);

    // One-entry convenience batch.
    Status append(BytesView leaf_der, int64_t timestamp);

    size_t size() const noexcept { return entries_.size(); }
    const std::vector<StoredEntry>& entries() const noexcept { return entries_; }

    // Root over the committed entries (RFC 6962 MTH).
    Digest tree_head() const;
    const MerkleTree& tree() const noexcept { return tree_; }

    // True when appends are refused: quarantined recovery or a latched
    // I/O failure.
    bool read_only() const noexcept { return read_only_ || failed_; }
    const std::string& read_only_reason() const noexcept { return read_only_reason_; }

    const RecoveryReport& recovery() const noexcept { return recovery_; }
    size_t segment_count() const noexcept { return segment_count_; }
    const std::string& dir() const noexcept { return dir_; }

    // ---- durable monitor checkpoints (ckpt-<name>.snap) -------------------

    // Atomically persist a monitor's sync position. `name` must be a
    // [A-Za-z0-9_-]+ slug.
    Status save_checkpoint(const std::string& name, const MonitorCheckpoint& checkpoint);

    // Load a previously saved checkpoint; nullopt when none exists.
    // A corrupt or torn checkpoint file is an error, never a silently
    // wrong cursor.
    Expected<std::optional<MonitorCheckpoint>> load_checkpoint(const std::string& name);

private:
    Store() = default;

    Status write_frames(const std::vector<Bytes>& frames);
    Status roll_segment_if_needed();
    Status write_head_snapshot();
    Status latch_failure(Error error);

    core::Fs* fs_ = nullptr;
    std::string dir_;
    StoreOptions options_;
    RecoveryReport recovery_;

    std::vector<StoredEntry> entries_;  // committed entries, in order
    MerkleTree tree_;                   // over committed entries (proof queries)
    TreeFrontier frontier_;             // same leaves (cheap commit roots)
    uint64_t next_seq_ = 0;             // next frame sequence number
    size_t segment_count_ = 0;
    size_t frames_in_segment_ = 0;      // frames in the open segment
    core::FilePtr segment_;             // open handle onto the last segment
    std::string segment_path_;
    size_t commits_since_snapshot_ = 0;

    bool read_only_ = false;
    bool failed_ = false;
    std::string read_only_reason_;
};

// Read-only integrity scan of a store directory: the same state
// machine as Store::open, but it never mutates anything — safe to run
// against a store another process owns. Errors only when the directory
// itself is unreadable.
Expected<RecoveryReport> fsck(core::Fs& fs, const std::string& dir);

// The documented CLI exit-code mapping for a recovery state:
// 0 clean, 1 tail-truncated, 2 quarantined, 3 unrecoverable.
int recovery_exit_code(RecoveryState state) noexcept;

// LogSource adapter over an open store, so Monitor::sync and the
// compliance pipeline ingest straight from disk.
class StoreLogSource final : public LogSource {
public:
    explicit StoreLogSource(const Store& store) : store_(&store) {}

    std::string name() const override { return "store:" + store_->dir(); }
    Expected<SignedTreeHead> latest_tree_head() override;
    Expected<RawLogEntry> entry_at(size_t index) override;
    Expected<Digest> root_at(size_t tree_size) override;

private:
    const Store* store_;
};

}  // namespace unicert::ctlog::store
