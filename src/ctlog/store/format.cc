#include "ctlog/store/format.h"

#include <cstdio>

namespace unicert::ctlog::store {
namespace {

void put_magic(Bytes& out, std::string_view magic) {
    out.insert(out.end(), magic.begin(), magic.end());
}

bool has_magic(BytesView buffer, std::string_view magic) {
    if (buffer.size() < magic.size()) return false;
    return std::equal(magic.begin(), magic.end(), buffer.begin());
}

void put_digest(Bytes& out, const Digest& d) { out.insert(out.end(), d.begin(), d.end()); }

Digest digest_of(BytesView data) { return crypto::sha256(data); }

bool digest_matches(BytesView data, BytesView trailer) {
    Digest expect = digest_of(data);
    return std::equal(expect.begin(), expect.end(), trailer.begin());
}

}  // namespace

void put_u32be(Bytes& out, uint32_t v) {
    for (int i = 3; i >= 0; --i) out.push_back(static_cast<uint8_t>((v >> (i * 8)) & 0xFF));
}

void put_u64be(Bytes& out, uint64_t v) {
    for (int i = 7; i >= 0; --i) out.push_back(static_cast<uint8_t>((v >> (i * 8)) & 0xFF));
}

uint32_t get_u32be(BytesView in, size_t offset) {
    uint32_t v = 0;
    for (size_t i = 0; i < 4; ++i) v = (v << 8) | in[offset + i];
    return v;
}

uint64_t get_u64be(BytesView in, size_t offset) {
    uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i) v = (v << 8) | in[offset + i];
    return v;
}

// ---- records ---------------------------------------------------------------

namespace {

Bytes encode_record(uint8_t type, uint64_t seq, BytesView payload) {
    Bytes out;
    out.reserve(kRecordPreludeLen + payload.size() + kDigestLen);
    out.push_back(type);
    put_u64be(out, seq);
    put_u32be(out, static_cast<uint32_t>(payload.size()));
    append(out, payload);
    put_digest(out, digest_of(out));
    return out;
}

}  // namespace

Bytes encode_entry_record(const EntryRecord& record) {
    Bytes payload;
    payload.reserve(8 + record.leaf_der.size());
    put_u64be(payload, static_cast<uint64_t>(record.timestamp));
    append(payload, record.leaf_der);
    return encode_record(kRecordEntry, record.seq, payload);
}

Bytes encode_commit_record(const CommitRecord& record) {
    Bytes payload;
    payload.reserve(8 + kDigestLen);
    put_u64be(payload, record.tree_size);
    put_digest(payload, record.root);
    return encode_record(kRecordCommit, record.seq, payload);
}

Expected<ScannedRecord> scan_record(BytesView buffer, size_t offset) {
    if (offset + kRecordPreludeLen > buffer.size()) {
        return Error{"record_truncated", "frame prelude runs past end of segment", offset};
    }
    ScannedRecord rec;
    rec.offset = offset;
    rec.type = buffer[offset];
    if (rec.type != kRecordEntry && rec.type != kRecordCommit) {
        return Error{"record_bad_type", "unknown record type " + std::to_string(rec.type),
                     offset};
    }
    rec.seq = get_u64be(buffer, offset + 1);
    uint32_t payload_len = get_u32be(buffer, offset + 9);
    if (payload_len > kMaxPayloadLen) {
        return Error{"record_bad_length", "payload length " + std::to_string(payload_len) +
                                              " exceeds the format bound", offset};
    }
    rec.frame_len = kRecordPreludeLen + payload_len + kDigestLen;
    if (offset + rec.frame_len > buffer.size()) {
        return Error{"record_truncated", "frame body runs past end of segment", offset};
    }
    BytesView framed = buffer.subspan(offset, kRecordPreludeLen + payload_len);
    BytesView trailer = buffer.subspan(offset + kRecordPreludeLen + payload_len, kDigestLen);
    rec.digest_ok = digest_matches(framed, trailer);
    rec.payload = buffer.subspan(offset + kRecordPreludeLen, payload_len);
    return rec;
}

Expected<EntryRecord> decode_entry(const ScannedRecord& record) {
    if (record.type != kRecordEntry) {
        return Error{"record_bad_type", "not an entry record", record.offset};
    }
    if (record.payload.size() < 8) {
        return Error{"record_bad_length", "entry payload shorter than its timestamp",
                     record.offset};
    }
    EntryRecord out;
    out.seq = record.seq;
    out.timestamp = static_cast<int64_t>(get_u64be(record.payload, 0));
    out.leaf_der.assign(record.payload.begin() + 8, record.payload.end());
    return out;
}

Expected<CommitRecord> decode_commit(const ScannedRecord& record) {
    if (record.type != kRecordCommit) {
        return Error{"record_bad_type", "not a commit record", record.offset};
    }
    if (record.payload.size() != 8 + kDigestLen) {
        return Error{"record_bad_length", "commit payload has the wrong size", record.offset};
    }
    CommitRecord out;
    out.seq = record.seq;
    out.tree_size = get_u64be(record.payload, 0);
    std::copy(record.payload.begin() + 8, record.payload.end(), out.root.begin());
    return out;
}

// ---- segment header --------------------------------------------------------

Bytes encode_segment_header(uint64_t base_seq) {
    Bytes out;
    out.reserve(kSegmentHeaderLen);
    put_magic(out, kSegmentMagic);
    put_u64be(out, base_seq);
    put_digest(out, digest_of(out));
    return out;
}

Expected<uint64_t> decode_segment_header(BytesView buffer) {
    if (buffer.size() < kSegmentHeaderLen) {
        return Error{"segment_truncated", "file shorter than the segment header", 0};
    }
    if (!has_magic(buffer, kSegmentMagic)) {
        return Error{"segment_bad_magic", "not a unicert segment file", 0};
    }
    size_t covered = kSegmentMagic.size() + 8;
    if (!digest_matches(buffer.subspan(0, covered), buffer.subspan(covered, kDigestLen))) {
        return Error{"segment_checksum", "segment header digest mismatch", 0};
    }
    return get_u64be(buffer, kSegmentMagic.size());
}

std::string segment_file_name(uint64_t base_seq) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "seg-%016llx.seg",
                  static_cast<unsigned long long>(base_seq));
    return buf;
}

std::optional<uint64_t> parse_segment_file_name(std::string_view name) {
    if (name.size() != 4 + 16 + 4 || !name.starts_with("seg-") || !name.ends_with(".seg")) {
        return std::nullopt;
    }
    uint64_t v = 0;
    for (char c : name.substr(4, 16)) {
        int nibble;
        if (c >= '0' && c <= '9') nibble = c - '0';
        else if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
        else return std::nullopt;
        v = (v << 4) | static_cast<uint64_t>(nibble);
    }
    return v;
}

// ---- snapshots -------------------------------------------------------------

Bytes encode_snapshot(BytesView payload) {
    Bytes out;
    out.reserve(kSnapshotMagic.size() + 4 + payload.size() + kDigestLen);
    put_magic(out, kSnapshotMagic);
    put_u32be(out, static_cast<uint32_t>(payload.size()));
    append(out, payload);
    put_digest(out, digest_of(out));
    return out;
}

Expected<Bytes> decode_snapshot(BytesView buffer) {
    const size_t prelude = kSnapshotMagic.size() + 4;
    if (buffer.size() < prelude + kDigestLen) {
        return Error{"snapshot_truncated", "file shorter than the snapshot envelope", 0};
    }
    if (!has_magic(buffer, kSnapshotMagic)) {
        return Error{"snapshot_bad_magic", "not a unicert snapshot file", 0};
    }
    uint32_t payload_len = get_u32be(buffer, kSnapshotMagic.size());
    if (payload_len > kMaxPayloadLen || prelude + payload_len + kDigestLen != buffer.size()) {
        return Error{"snapshot_truncated", "snapshot length field disagrees with file size", 0};
    }
    size_t covered = prelude + payload_len;
    if (!digest_matches(buffer.subspan(0, covered), buffer.subspan(covered, kDigestLen))) {
        return Error{"snapshot_checksum", "snapshot digest mismatch", 0};
    }
    return Bytes(buffer.begin() + static_cast<ptrdiff_t>(prelude),
                 buffer.begin() + static_cast<ptrdiff_t>(covered));
}

Bytes encode_head_snapshot(const HeadSnapshot& head) {
    Bytes payload;
    put_u64be(payload, head.tree_size);
    put_digest(payload, head.root);
    return encode_snapshot(payload);
}

Expected<HeadSnapshot> decode_head_snapshot(BytesView file_bytes) {
    auto payload = decode_snapshot(file_bytes);
    if (!payload.ok()) return payload.error();
    if (payload->size() != 8 + kDigestLen) {
        return Error{"snapshot_truncated", "head snapshot payload has the wrong size", 0};
    }
    HeadSnapshot head;
    head.tree_size = get_u64be(*payload, 0);
    std::copy(payload->begin() + 8, payload->end(), head.root.begin());
    return head;
}

Bytes encode_checkpoint_snapshot(const MonitorCheckpoint& checkpoint) {
    Bytes payload;
    put_u64be(payload, checkpoint.next_index);
    put_u64be(payload, checkpoint.tree_size);
    put_digest(payload, checkpoint.root_hash);
    payload.push_back(checkpoint.has_head ? 1 : 0);
    return encode_snapshot(payload);
}

Expected<MonitorCheckpoint> decode_checkpoint_snapshot(BytesView file_bytes) {
    auto payload = decode_snapshot(file_bytes);
    if (!payload.ok()) return payload.error();
    if (payload->size() != 8 + 8 + kDigestLen + 1) {
        return Error{"snapshot_truncated", "checkpoint payload has the wrong size", 0};
    }
    MonitorCheckpoint out;
    out.next_index = get_u64be(*payload, 0);
    out.tree_size = get_u64be(*payload, 8);
    std::copy(payload->begin() + 16, payload->begin() + 16 + kDigestLen,
              out.root_hash.begin());
    out.has_head = (*payload)[16 + kDigestLen] != 0;
    return out;
}

}  // namespace unicert::ctlog::store
