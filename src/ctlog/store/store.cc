#include "ctlog/store/store.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <utility>

#include "ctlog/store/format.h"

namespace unicert::ctlog::store {

// ---- TreeFrontier ----------------------------------------------------------

void TreeFrontier::add_leaf(const Digest& leaf) {
    nodes_.push_back({0, leaf});
    while (nodes_.size() >= 2 &&
           nodes_[nodes_.size() - 1].level == nodes_[nodes_.size() - 2].level) {
        Node right = nodes_.back();
        nodes_.pop_back();
        Node& left = nodes_.back();
        left.digest = node_hash(left.digest, right.digest);
        ++left.level;
    }
    ++size_;
}

Digest TreeFrontier::root() const {
    if (nodes_.empty()) return crypto::sha256(BytesView{});
    Digest acc = nodes_.back().digest;
    for (size_t i = nodes_.size() - 1; i-- > 0;) {
        acc = node_hash(nodes_[i].digest, acc);
    }
    return acc;
}

// ---- recovery scan ---------------------------------------------------------

namespace {

// Everything Store::open needs from a directory scan, plus the tail
// repair plan (fsck reports the plan without executing it).
struct ScanOutcome {
    RecoveryReport report;
    std::vector<StoredEntry> entries;  // committed entries, in order
    MerkleTree tree;
    TreeFrontier frontier;
    uint64_t next_seq = 0;
    size_t segment_count = 0;           // segments remaining after repair
    size_t frames_in_last_segment = 0;  // committed frames in the kept tail segment

    enum class Repair { kNone, kTruncate, kRemove };
    Repair repair = Repair::kNone;
    std::string repair_path;
    size_t repair_keep_len = 0;
};

// The scan is strictly read-only: Store::open executes the repair plan
// afterwards, fsck never does.
Expected<ScanOutcome> scan_store(core::Fs& fs, const std::string& dir) {
    auto names = fs.list_dir(dir);
    if (!names.ok()) return names.error();

    ScanOutcome out;
    RecoveryReport& rep = out.report;

    std::vector<std::pair<uint64_t, std::string>> segments;
    bool head_present = false;
    for (const std::string& name : *names) {
        if (auto base = parse_segment_file_name(name)) {
            segments.emplace_back(*base, name);
        } else if (name == "head.snap") {
            head_present = true;
        } else if (name.ends_with(".tmp")) {
            ++rep.stray_temp_files;
            rep.notes.push_back("stray temp file from an interrupted snapshot: " + name);
        } else if (name.starts_with("ckpt-") && name.ends_with(".snap")) {
            // Monitor checkpoints live beside the log but are not part of it.
        } else {
            rep.notes.push_back("unrecognized file ignored: " + name);
        }
    }
    std::sort(segments.begin(), segments.end());
    rep.segments_scanned = segments.size();

    bool fatal = false;
    auto fail = [&](std::string note) {
        rep.notes.push_back(std::move(note));
        fatal = true;
    };

    // First point past which frames can no longer be trusted. Scanning
    // continues structurally (frame boundaries only) so the classifier
    // can tell tail damage from damage inside committed history.
    struct Damage {
        size_t segment_index = 0;
        size_t offset = 0;
        uint64_t seq = 0;  // sequence expected at the damage point
        Error error;
        bool torn_header = false;
    };
    std::optional<Damage> damage;
    size_t post_damage_commits = 0;  // commit frames past the damage claiming more entries
    size_t post_damage_frames = 0;
    std::vector<QuarantinedRecord> candidates;

    std::vector<StoredEntry> pending;  // entries awaiting their commit frame
    TreeFrontier spec;                 // frontier over committed + pending
    uint64_t expected_seq = 0;
    uint64_t committed_next_seq = 0;
    bool have_commit = false;
    size_t last_commit_si = 0;
    size_t last_commit_end = 0;     // offset just past the last commit frame
    size_t last_commit_frames = 0;  // frames in its segment up to that commit
    size_t last_file_size = 0;

    for (size_t si = 0; si < segments.size() && !fatal; ++si) {
        const bool is_last = si + 1 == segments.size();
        const auto& [name_base, name] = segments[si];
        auto bytes = fs.read_file(dir + "/" + name);
        if (!bytes.ok()) {
            fail("segment " + name + " unreadable: " + bytes.error().message);
            break;
        }
        if (is_last) last_file_size = bytes->size();

        auto base = decode_segment_header(*bytes);
        if (!base.ok()) {
            rep.notes.push_back("segment " + name + " header damaged: " + base.error().message);
            if (!is_last) {
                fail("segment " + name + " is not the tail; its header cannot be repaired");
                break;
            }
            if (!damage && name_base != expected_seq) {
                fail("segment " + name + " base disagrees with the preceding frames");
                break;
            }
            if (!damage) damage = Damage{si, 0, expected_seq, base.error(), true};
            continue;  // nothing in this file is readable
        }
        if (*base != name_base) {
            fail("segment " + name + " header base " + std::to_string(*base) +
                 " disagrees with its file name");
            break;
        }
        if (!damage && *base != expected_seq) {
            fail("segment " + name + " starts at seq " + std::to_string(*base) +
                 " but seq " + std::to_string(expected_seq) + " was expected");
            break;
        }

        size_t offset = kSegmentHeaderLen;
        size_t frames_in_this = 0;
        while (offset < bytes->size() && !fatal) {
            auto rec = scan_record(*bytes, offset);
            if (!rec.ok()) {
                if (!damage) {
                    rep.notes.push_back("segment " + name + ": " + rec.error().message +
                                        " at offset " + std::to_string(offset));
                    damage = Damage{si, offset, expected_seq, rec.error(), false};
                } else {
                    rep.notes.push_back("segment " + name + ": unscannable past offset " +
                                        std::to_string(offset));
                }
                break;  // framing lost; cannot resync inside this file
            }
            if (damage) {
                // Structural catalogue only: are there commits beyond
                // the damage that claim entries we could not verify?
                ++post_damage_frames;
                if (rec->digest_ok && rec->type == kRecordCommit) {
                    auto commit = decode_commit(*rec);
                    if (commit.ok() && commit->tree_size > out.entries.size()) {
                        ++post_damage_commits;
                    }
                }
                offset += rec->frame_len;
                continue;
            }
            if (!rec->digest_ok) {
                Error err{"record_checksum", "record digest mismatch (bit rot or torn write)",
                          offset};
                rep.notes.push_back("segment " + name + ": " + err.message + " at offset " +
                                    std::to_string(offset));
                candidates.push_back({name, offset, expected_seq, err});
                damage = Damage{si, offset, expected_seq, err, false};
                offset += rec->frame_len;
                continue;
            }
            if (rec->seq != expected_seq) {
                fail("segment " + name + ": frame at offset " + std::to_string(offset) +
                     " claims seq " + std::to_string(rec->seq) + " but seq " +
                     std::to_string(expected_seq) + " was expected");
                break;
            }
            if (rec->type == kRecordEntry) {
                auto entry = decode_entry(*rec);
                if (!entry.ok()) {
                    candidates.push_back({name, offset, expected_seq, entry.error()});
                    damage = Damage{si, offset, expected_seq, entry.error(), false};
                    offset += rec->frame_len;
                    continue;
                }
                spec.add_leaf(leaf_hash(entry->leaf_der));
                StoredEntry stored;
                stored.seq = entry->seq;
                stored.timestamp = entry->timestamp;
                stored.leaf_der = std::move(entry->leaf_der);
                pending.push_back(std::move(stored));
            } else {
                auto commit = decode_commit(*rec);
                if (!commit.ok()) {
                    candidates.push_back({name, offset, expected_seq, commit.error()});
                    damage = Damage{si, offset, expected_seq, commit.error(), false};
                    offset += rec->frame_len;
                    continue;
                }
                if (commit->tree_size != out.entries.size() + pending.size()) {
                    fail("segment " + name + ": commit at offset " + std::to_string(offset) +
                         " claims tree size " + std::to_string(commit->tree_size) + " but " +
                         std::to_string(out.entries.size() + pending.size()) +
                         " entries precede it");
                    break;
                }
                if (commit->root != spec.root()) {
                    fail("segment " + name + ": commit at offset " + std::to_string(offset) +
                         " carries a root that does not match the entries preceding it");
                    break;
                }
                for (StoredEntry& p : pending) {
                    out.tree.append(p.leaf_der);
                    out.entries.push_back(std::move(p));
                }
                pending.clear();
                out.frontier = spec;
                committed_next_seq = rec->seq + 1;
                have_commit = true;
                last_commit_si = si;
                last_commit_end = offset + rec->frame_len;
                last_commit_frames = frames_in_this + 1;
            }
            ++frames_in_this;
            ++expected_seq;
            offset += rec->frame_len;
        }
    }

    const size_t last_si = segments.empty() ? 0 : segments.size() - 1;
    RecoveryState state = RecoveryState::kClean;
    if (fatal) {
        state = RecoveryState::kUnrecoverable;
    } else if (damage && (damage->segment_index != last_si || post_damage_commits > 0)) {
        state = RecoveryState::kQuarantinedRecords;
    } else if (damage || !pending.empty()) {
        state = RecoveryState::kTailTruncated;
    }

    rep.entries_recovered = out.entries.size();

    if (state == RecoveryState::kQuarantinedRecords) {
        rep.quarantined = candidates;
        if (rep.quarantined.empty() && damage) {
            rep.quarantined.push_back({segments[damage->segment_index].second, damage->offset,
                                       damage->seq, damage->error});
        }
        rep.notes.push_back("committed history is damaged: store opens read-only, serving the " +
                            std::to_string(out.entries.size()) + " verified entries");
        if (post_damage_frames > 0) {
            rep.notes.push_back(std::to_string(post_damage_frames) +
                                " frame(s) past the damage are present but unverifiable");
        }
    }

    if (state == RecoveryState::kTailTruncated) {
        rep.tail_records_dropped = pending.size() + candidates.size() + post_damage_frames;
        if (damage && damage->torn_header) {
            out.repair = ScanOutcome::Repair::kRemove;
            out.repair_path = dir + "/" + segments[last_si].second;
            rep.tail_bytes_dropped = last_file_size;
        } else {
            size_t keep = (have_commit && last_commit_si == last_si) ? last_commit_end
                                                                     : kSegmentHeaderLen;
            if (keep < last_file_size) {
                out.repair = ScanOutcome::Repair::kTruncate;
                out.repair_path = dir + "/" + segments[last_si].second;
                out.repair_keep_len = keep;
                rep.tail_bytes_dropped = last_file_size - keep;
            }
        }
        rep.notes.push_back("uncommitted tail discarded: " +
                            std::to_string(rep.tail_records_dropped) + " record(s), " +
                            std::to_string(rep.tail_bytes_dropped) + " byte(s)");
    }

    // The head snapshot is an advisory floor: a stale one is normal
    // (it lags by up to snapshot_every_commits), but one claiming MORE
    // than was recovered proves acknowledged data was lost.
    if (head_present) {
        rep.head_snapshot_present = true;
        auto snap_bytes = fs.read_file(dir + "/head.snap");
        Expected<HeadSnapshot> head =
            snap_bytes.ok() ? decode_head_snapshot(*snap_bytes)
                            : Expected<HeadSnapshot>(snap_bytes.error());
        if (!head.ok()) {
            rep.notes.push_back("head snapshot unreadable: " + head.error().code + ": " +
                                head.error().message);
        } else if (head->tree_size > out.entries.size()) {
            rep.notes.push_back("head snapshot records " + std::to_string(head->tree_size) +
                                " committed entries but only " +
                                std::to_string(out.entries.size()) + " were recovered");
            if (state != RecoveryState::kQuarantinedRecords) {
                state = RecoveryState::kUnrecoverable;
            }
        } else {
            auto root = out.tree.root_at(head->tree_size);
            if (!root.ok() || *root != head->root) {
                rep.notes.push_back("head snapshot root disagrees with the recovered log at size " +
                                    std::to_string(head->tree_size));
                state = RecoveryState::kUnrecoverable;
            } else {
                rep.head_snapshot_matched = true;
            }
        }
    }

    rep.state = state;

    // Writer-resume position. Dropped tail frames never reached a
    // durable commit, so their sequence numbers are reused.
    out.next_seq = committed_next_seq;
    out.segment_count =
        segments.size() - (out.repair == ScanOutcome::Repair::kRemove ? 1 : 0);
    if (out.segment_count == 0) {
        out.frames_in_last_segment = 0;
    } else {
        size_t kept_last = out.repair == ScanOutcome::Repair::kRemove ? last_si - 1 : last_si;
        out.frames_in_last_segment =
            (have_commit && last_commit_si == kept_last) ? last_commit_frames : 0;
    }
    return out;
}

bool valid_checkpoint_name(const std::string& name) {
    if (name.empty() || name.size() > 64) return false;
    for (char c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-') return false;
    }
    return true;
}

std::string checkpoint_path(const std::string& dir, const std::string& name) {
    return dir + "/ckpt-" + name + ".snap";
}

}  // namespace

const char* recovery_state_name(RecoveryState state) noexcept {
    switch (state) {
        case RecoveryState::kClean: return "clean";
        case RecoveryState::kTailTruncated: return "tail-truncated";
        case RecoveryState::kQuarantinedRecords: return "quarantined-records";
        case RecoveryState::kUnrecoverable: return "unrecoverable";
    }
    return "unknown";
}

int recovery_exit_code(RecoveryState state) noexcept {
    switch (state) {
        case RecoveryState::kClean: return 0;
        case RecoveryState::kTailTruncated: return 1;
        case RecoveryState::kQuarantinedRecords: return 2;
        case RecoveryState::kUnrecoverable: return 3;
    }
    return 3;
}

// ---- Store -----------------------------------------------------------------

Expected<std::unique_ptr<Store>> Store::open(core::Fs& fs, const std::string& dir,
                                             StoreOptions options, RecoveryReport* report) {
    auto scanned = scan_store(fs, dir);
    if (!scanned.ok()) {
        if (!options.create_if_missing) return scanned.error();
        if (auto made = fs.make_dirs(dir); !made.ok()) return made.error();
        scanned = ScanOutcome{};
    }
    ScanOutcome& s = *scanned;
    if (report) *report = s.report;
    if (s.report.state == RecoveryState::kUnrecoverable) {
        std::string why = s.report.notes.empty() ? "committed data lost" : s.report.notes.back();
        return Error{"store_unrecoverable", "store at " + dir + " is unrecoverable: " + why};
    }

    std::unique_ptr<Store> store(new Store());
    store->fs_ = &fs;
    store->dir_ = dir;
    store->options_ = options;
    store->recovery_ = s.report;
    store->entries_ = std::move(s.entries);
    store->tree_ = std::move(s.tree);
    store->frontier_ = s.frontier;
    store->next_seq_ = s.next_seq;
    store->segment_count_ = s.segment_count;
    store->frames_in_segment_ = s.frames_in_last_segment;

    if (s.report.state == RecoveryState::kQuarantinedRecords) {
        store->read_only_ = true;
        store->read_only_reason_ =
            "quarantined records in committed history; serving the verified prefix read-only";
        return store;
    }

    // Tail repair runs through the same (possibly fault-injected) Fs
    // and uses only crash-safe steps, so a crash mid-repair lands back
    // in a state the next open() recovers from identically.
    if (s.repair == ScanOutcome::Repair::kRemove) {
        if (auto st = fs.remove(s.repair_path); !st.ok()) return st.error();
        if (auto st = fs.sync_dir(dir); !st.ok()) return st.error();
    } else if (s.repair == ScanOutcome::Repair::kTruncate) {
        auto bytes = fs.read_file(s.repair_path);
        if (!bytes.ok()) return bytes.error();
        Bytes kept(bytes->begin(),
                   bytes->begin() + static_cast<ptrdiff_t>(s.repair_keep_len));
        BytesView view(kept.data(), kept.size());
        if (auto st = core::atomic_write_file(fs, s.repair_path, view, dir); !st.ok()) {
            return st.error();
        }
    }
    return store;
}

Status Store::append_batch(std::span<const PendingEntry> batch) {
    if (read_only()) {
        return Error{"store_read_only",
                     read_only_reason_.empty() ? "store is read-only" : read_only_reason_};
    }
    if (batch.empty()) return Status::success();

    if (auto st = roll_segment_if_needed(); !st.ok()) return st;

    // Build every frame before touching the file, commit record last.
    std::vector<Bytes> frames;
    frames.reserve(batch.size() + 1);
    TreeFrontier next = frontier_;
    uint64_t seq = next_seq_;
    for (const PendingEntry& p : batch) {
        EntryRecord rec;
        rec.seq = seq++;
        rec.timestamp = p.timestamp;
        rec.leaf_der = p.leaf_der;
        frames.push_back(encode_entry_record(rec));
        next.add_leaf(leaf_hash(p.leaf_der));
    }
    CommitRecord commit;
    commit.seq = seq;
    commit.tree_size = entries_.size() + batch.size();
    commit.root = next.root();
    frames.push_back(encode_commit_record(commit));

    if (auto st = write_frames(frames); !st.ok()) return st;
    if (auto st = segment_->sync(); !st.ok()) return latch_failure(st.error());

    // The commit record is durable: mirror the batch in memory.
    for (const PendingEntry& p : batch) {
        StoredEntry stored;
        stored.seq = next_seq_++;
        stored.timestamp = p.timestamp;
        stored.leaf_der = p.leaf_der;
        tree_.append(stored.leaf_der);
        entries_.push_back(std::move(stored));
    }
    ++next_seq_;  // the commit frame's sequence number
    frontier_ = std::move(next);
    frames_in_segment_ += frames.size();

    ++commits_since_snapshot_;
    if (commits_since_snapshot_ >= options_.snapshot_every_commits) {
        if (auto st = write_head_snapshot(); !st.ok()) return st;
    }
    return Status::success();
}

Status Store::append(BytesView leaf_der, int64_t timestamp) {
    PendingEntry entry;
    entry.leaf_der.assign(leaf_der.begin(), leaf_der.end());
    entry.timestamp = timestamp;
    return append_batch(std::span<const PendingEntry>(&entry, 1));
}

Digest Store::tree_head() const { return frontier_.root(); }

Status Store::write_frames(const std::vector<Bytes>& frames) {
    for (const Bytes& frame : frames) {
        auto written = segment_->write(frame);
        if (!written.ok()) return latch_failure(written.error());
        if (*written != frame.size()) {
            return latch_failure(Error{"fs_short_write",
                                       "short write: " + std::to_string(*written) + " of " +
                                           std::to_string(frame.size()) + " bytes reached " +
                                           segment_path_});
        }
    }
    return Status::success();
}

Status Store::roll_segment_if_needed() {
    if (!segment_ && segment_count_ > 0 &&
        frames_in_segment_ < options_.segment_max_records) {
        // Reopen the recovered tail segment for append. Its frames are
        // the last ones before next_seq_, so its base is derivable.
        uint64_t base = next_seq_ - frames_in_segment_;
        segment_path_ = dir_ + "/" + segment_file_name(base);
        auto file = fs_->open_append(segment_path_);
        if (!file.ok()) return latch_failure(file.error());
        segment_ = std::move(*file);
        return Status::success();
    }
    if (segment_ && frames_in_segment_ < options_.segment_max_records) {
        return Status::success();
    }

    if (segment_) {
        (void)segment_->close();
        segment_.reset();
    }
    segment_path_ = dir_ + "/" + segment_file_name(next_seq_);
    auto file = fs_->create(segment_path_);
    if (!file.ok()) return latch_failure(file.error());
    Bytes header = encode_segment_header(next_seq_);
    auto written = (*file)->write(header);
    if (!written.ok()) return latch_failure(written.error());
    if (*written != header.size()) {
        return latch_failure(
            Error{"fs_short_write", "short write on segment header of " + segment_path_});
    }
    if (auto st = (*file)->sync(); !st.ok()) return latch_failure(st.error());
    if (auto st = fs_->sync_dir(dir_); !st.ok()) return latch_failure(st.error());
    segment_ = std::move(*file);
    frames_in_segment_ = 0;
    ++segment_count_;
    return Status::success();
}

Status Store::write_head_snapshot() {
    HeadSnapshot head;
    head.tree_size = entries_.size();
    head.root = frontier_.root();
    Bytes blob = encode_head_snapshot(head);
    BytesView view(blob.data(), blob.size());
    if (auto st = core::atomic_write_file(*fs_, dir_ + "/head.snap", view, dir_); !st.ok()) {
        return latch_failure(st.error());
    }
    commits_since_snapshot_ = 0;
    return Status::success();
}

Status Store::latch_failure(Error error) {
    // In-memory and on-disk state may now disagree; the only safe
    // continuation is a fresh Store::open.
    failed_ = true;
    read_only_reason_ = error.code + ": " + error.message;
    if (segment_) {
        (void)segment_->close();
        segment_.reset();
    }
    return error;
}

Status Store::save_checkpoint(const std::string& name, const MonitorCheckpoint& checkpoint) {
    if (!valid_checkpoint_name(name)) {
        return Error{"store_bad_name",
                     "checkpoint name must be a [A-Za-z0-9_-]{1,64} slug: '" + name + "'"};
    }
    Bytes blob = encode_checkpoint_snapshot(checkpoint);
    BytesView view(blob.data(), blob.size());
    return core::atomic_write_file(*fs_, checkpoint_path(dir_, name), view, dir_);
}

Expected<std::optional<MonitorCheckpoint>> Store::load_checkpoint(const std::string& name) {
    if (!valid_checkpoint_name(name)) {
        return Error{"store_bad_name",
                     "checkpoint name must be a [A-Za-z0-9_-]{1,64} slug: '" + name + "'"};
    }
    std::string path = checkpoint_path(dir_, name);
    auto exists = fs_->exists(path);
    if (!exists.ok()) return exists.error();
    if (!*exists) return std::optional<MonitorCheckpoint>{};
    auto bytes = fs_->read_file(path);
    if (!bytes.ok()) return bytes.error();
    auto checkpoint = decode_checkpoint_snapshot(*bytes);
    if (!checkpoint.ok()) return checkpoint.error();
    return std::optional<MonitorCheckpoint>(*checkpoint);
}

Expected<RecoveryReport> fsck(core::Fs& fs, const std::string& dir) {
    auto scanned = scan_store(fs, dir);
    if (!scanned.ok()) return scanned.error();
    return std::move(scanned->report);
}

// ---- StoreLogSource --------------------------------------------------------

Expected<SignedTreeHead> StoreLogSource::latest_tree_head() {
    SignedTreeHead sth;
    sth.tree_size = store_->size();
    sth.root_hash = store_->tree_head();
    sth.timestamp = store_->entries().empty() ? 0 : store_->entries().back().timestamp;
    return sth;
}

Expected<RawLogEntry> StoreLogSource::entry_at(size_t index) {
    const auto& entries = store_->entries();
    if (index >= entries.size()) {
        return Error{"entry_out_of_range",
                     "entry " + std::to_string(index) + " beyond store size " +
                         std::to_string(entries.size())};
    }
    RawLogEntry out;
    out.index = index;
    out.timestamp = entries[index].timestamp;
    out.leaf_der = entries[index].leaf_der;
    return out;
}

Expected<Digest> StoreLogSource::root_at(size_t tree_size) {
    return store_->tree().root_at(tree_size);
}

}  // namespace unicert::ctlog::store
