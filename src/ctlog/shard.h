// unicert/ctlog/shard.h
//
// Shardable views over a CT log for parallel ingestion. A log of N
// entries splits into contiguous, balanced ShardRanges; each shard is
// consumed independently (its own cursor, retries, quarantine) and
// carries its own ShardCheckpoint so a parallel ingestion pass aborted
// in one shard resumes exactly where that shard stopped — the
// per-shard analogue of the monitor's resumable-sync checkpoint.
// Shards are contiguous index ranges, so concatenating shard results
// in range order reproduces the global log order: the property the
// deterministic-merge invariant (DESIGN.md §8) relies on.
#pragma once

#include <cstddef>
#include <vector>

#include "ctlog/log_source.h"

namespace unicert::ctlog {

// Half-open entry range [begin, end).
struct ShardRange {
    size_t begin = 0;
    size_t end = 0;

    size_t size() const noexcept { return end - begin; }
    bool empty() const noexcept { return begin >= end; }

    bool operator==(const ShardRange&) const = default;
};

// Split [0, total) into at most `shards` contiguous ranges, balanced to
// within one entry, larger shards first. Fewer ranges come back when
// total < shards; zero when the log is empty.
std::vector<ShardRange> shard_ranges(size_t total, size_t shards);

// One shard's durable ingestion position: the next entry to consume
// within its range. `completed` means the cursor reached range.end
// without a stream-level abort; a resumed pass skips completed shards.
struct ShardCheckpoint {
    ShardRange range;
    size_t next_index = 0;
    bool completed = false;

    size_t remaining() const noexcept {
        return next_index >= range.end ? 0 : range.end - next_index;
    }

    bool operator==(const ShardCheckpoint&) const = default;
};

// A LogSource restricted to one shard: entry reads outside the range
// are refused, and the advertised tree head is clamped to range.end so
// a consumer sized by the head never walks off the shard. Reads
// delegate to the inner source, so fault decorators stay in effect.
class ShardedLogView final : public LogSource {
public:
    ShardedLogView(LogSource& inner, ShardRange range) : inner_(&inner), range_(range) {}

    const ShardRange& range() const noexcept { return range_; }

    std::string name() const override;
    Expected<SignedTreeHead> latest_tree_head() override;
    Expected<RawLogEntry> entry_at(size_t index) override;
    Expected<Digest> root_at(size_t tree_size) override;

private:
    LogSource* inner_;
    ShardRange range_;
};

}  // namespace unicert::ctlog
