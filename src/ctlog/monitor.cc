#include "ctlog/monitor.h"

#include <algorithm>
#include <array>

#include "ctlog/log.h"
#include "idna/labels.h"
#include "x509/parser.h"
#include "unicode/codec.h"
#include "unicode/properties.h"

namespace unicert::ctlog {
namespace {

// Table 6, one row per monitor.
const std::array<MonitorProfile, 5>& profiles() {
    static const std::array<MonitorProfile, 5> kProfiles = {{
        {"Crt.sh",
         {.fuzzy_search = true,
          .ulabel_check = false,
          .returns_special_unicode = true,
          .searches_subject_attrs = true}},
        {"SSLMate Spotter",
         {.fuzzy_search = false,
          .ulabel_check = true,
          .returns_special_unicode = false,
          .cn_substring_before_slash = true,
          .cn_ignored_if_space = true}},
        {"Facebook Monitor",
         {.fuzzy_search = false, .ulabel_check = true, .returns_special_unicode = true}},
        {"Entrust Search",
         {.fuzzy_search = false,
          .ulabel_check = false,
          .punycode_idn_cctld = false,
          .returns_special_unicode = true}},
        {"MerkleMap",
         {.fuzzy_search = true, .ulabel_check = false, .returns_special_unicode = true}},
    }};
    return kProfiles;
}

std::string ascii_fold(std::string_view s) {
    std::string out(s);
    for (char& c : out) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + 0x20);
    }
    return out;
}

bool has_special_unicode(std::string_view s) {
    return unicode::has_non_printable_ascii(s);
}

bool is_ascii_only(std::string_view s) {
    return std::all_of(s.begin(), s.end(),
                       [](char c) { return static_cast<unsigned char>(c) < 0x80; });
}

bool contains_xn_label(std::string_view host) {
    return host.find("xn--") != std::string_view::npos;
}

// ccTLD heuristic: last label is a 2-letter code or a Punycode TLD.
bool has_punycode_cctld(std::string_view host) {
    size_t dot = host.rfind('.');
    std::string_view tld = dot == std::string_view::npos ? host : host.substr(dot + 1);
    return tld.starts_with("xn--");
}

}  // namespace

std::span<const MonitorProfile> monitor_profiles() { return profiles(); }

std::vector<std::string> Monitor::derive_keys(const x509::Certificate& cert,
                                              bool& hidden) const {
    std::vector<std::string> keys;
    const MonitorCapabilities& caps = profile_.caps;

    auto add_key = [&](std::string value) {
        if (value.empty()) return;
        if (!caps.returns_special_unicode && has_special_unicode(value)) {
            // This monitor cannot surface certs with special Unicode in
            // searchable fields (P1.4): the record becomes unreachable.
            hidden = true;
            return;
        }
        keys.push_back(caps.case_insensitive ? ascii_fold(value) : std::move(value));
    };

    // CN handling, with SSLMate's quirks.
    for (const x509::AttributeValue* cn : cert.subject_common_names()) {
        std::string value = cn->to_utf8_lossy();
        if (caps.cn_ignored_if_space && value.find(' ') != std::string::npos) continue;
        if (caps.cn_substring_before_slash) {
            if (size_t slash = value.find('/'); slash != std::string::npos) {
                value = value.substr(0, slash);
            }
        }
        add_key(std::move(value));
    }

    // SAN DNSNames (all monitors) and IPs (crt.sh/SSLMate — harmless to
    // include generally).
    for (const x509::GeneralName& gn : cert.subject_alt_names()) {
        if (gn.type == x509::GeneralNameType::kDnsName ||
            gn.type == x509::GeneralNameType::kIpAddress) {
            add_key(gn.to_utf8_lossy());
        }
    }

    // Subject O / OU / emailAddress for monitors that index them.
    if (caps.searches_subject_attrs) {
        for (const asn1::Oid* oid :
             {&asn1::oids::organization_name(), &asn1::oids::organizational_unit_name(),
              &asn1::oids::email_address()}) {
            for (const x509::AttributeValue* av : cert.subject.find_all(*oid)) {
                add_key(av->to_utf8_lossy());
            }
        }
    }
    return keys;
}

size_t Monitor::index(const x509::Certificate& cert) {
    Record record;
    bool hidden = false;
    record.keys = derive_keys(cert, hidden);
    record.hidden = hidden && record.keys.empty();
    records_.push_back(std::move(record));
    size_t id = records_.size() - 1;
    raise_alerts_for(id);
    return id;
}

void Monitor::watch(std::string_view domain) { watches_.emplace_back(domain); }

void Monitor::raise_alerts_for(size_t id) {
    if (watches_.empty()) return;
    const Record& record = records_[id];
    if (record.hidden) return;
    const MonitorCapabilities& caps = profile_.caps;
    for (const std::string& domain : watches_) {
        std::string needle = caps.case_insensitive ? ascii_fold(domain) : domain;
        for (const std::string& key : record.keys) {
            bool match = caps.fuzzy_search ? key.find(needle) != std::string::npos
                                           : key == needle;
            if (match) {
                pending_alerts_.push_back({domain, id});
                break;
            }
        }
    }
}

std::vector<Monitor::Alert> Monitor::drain_alerts() {
    std::vector<Alert> out;
    out.swap(pending_alerts_);
    return out;
}

size_t Monitor::sync(const CtLog& log) {
    size_t indexed = 0;
    const auto& entries = log.entries();
    for (; checkpoint_.next_index < entries.size(); ++checkpoint_.next_index) {
        const x509::Certificate& cert = entries[checkpoint_.next_index].certificate;
        if (cert.is_precertificate()) continue;  // monitors skip poisoned entries
        index(cert);
        ++indexed;
    }
    checkpoint_.tree_size = entries.size();
    checkpoint_.root_hash = log.tree_head();
    checkpoint_.has_head = true;
    return indexed;
}

SyncReport Monitor::sync(LogSource& source, const core::RetryPolicy& policy,
                         core::Clock* clock) {
    SyncReport report;
    core::Clock& clk = clock != nullptr ? *clock : core::system_clock();

    auto fetch_head = [&]() -> Expected<SignedTreeHead> {
        core::RetryOutcome outcome;
        auto sth = core::retry<SignedTreeHead>(
            policy, clk, [&] { return source.latest_tree_head(); }, &outcome);
        report.retries += outcome.retries;
        return sth;
    };

    // 1. Fetch the advertised tree head, retrying transient faults.
    auto sth = fetch_head();
    if (!sth.ok()) {
        report.abort_error = sth.error();
        return report;
    }

    // 2. Checkpoint consistency: a head smaller than the checkpoint is a
    //    truncation/regression; the same size with a different history is
    //    a split view. A flaky frontend can serve a stale head, so a
    //    regressed view gets re-fetched before the alarm is raised —
    //    re-syncing from the last consistent checkpoint, never
    //    double-indexing against the bad view.
    if (checkpoint_.has_head) {
        for (int attempt = 1;; ++attempt) {
            bool regressed = sth->tree_size < checkpoint_.tree_size;
            bool rewritten = false;
            if (!regressed) {
                core::RetryOutcome outcome;
                auto old_root = core::retry<Digest>(
                    policy, clk, [&] { return source.root_at(checkpoint_.tree_size); },
                    &outcome);
                report.retries += outcome.retries;
                if (!old_root.ok()) {
                    report.abort_error = old_root.error();
                    return report;
                }
                rewritten = *old_root != checkpoint_.root_hash;
            }
            if (!regressed && !rewritten) break;
            if (attempt >= policy.max_attempts) {
                report.split_view_detected = true;
                report.abort_error =
                    Error{"split_view",
                          "log view inconsistent with checkpoint at size " +
                              std::to_string(checkpoint_.tree_size)};
                return report;
            }
            ++report.resyncs;
            ++report.retries;
            clk.sleep_ms(policy.backoff_ms(attempt));
            sth = fetch_head();
            if (!sth.ok()) {
                report.abort_error = sth.error();
                return report;
            }
        }
    }

    // 3. Consume entries from the cursor up to the verified head.
    while (checkpoint_.next_index < sth->tree_size) {
        const size_t want = checkpoint_.next_index;
        core::RetryOutcome outcome;
        auto entry = core::retry<RawLogEntry>(
            policy, clk,
            [&]() -> Expected<RawLogEntry> {
                auto e = source.entry_at(want);
                if (e.ok() && e->index != want) {
                    // Stale or duplicate delivery: the cursor already
                    // consumed (or never asked for) this index.
                    ++report.duplicates_skipped;
                    return Error{"stale_read", "asked for entry " + std::to_string(want) +
                                                   ", got " + std::to_string(e->index)};
                }
                return e;
            },
            &outcome);
        report.retries += outcome.retries;
        if (!entry.ok()) {
            // Budget exhausted or permanent fetch failure: stop with the
            // cursor parked on this entry so the next pass resumes here.
            report.abort_error = entry.error();
            return report;
        }

        auto cert = x509::parse_certificate(entry->leaf_der);
        if (!cert.ok()) {
            // Entry-scoped failure: quarantine and move on (the ladder's
            // skip-and-quarantine rung); the report keeps the evidence.
            report.quarantined.push_back({want, cert.error()});
        } else if (cert->is_precertificate()) {
            ++report.precerts_skipped;
        } else {
            index(cert.value());
            ++report.indexed;
        }
        ++checkpoint_.next_index;
    }

    checkpoint_.tree_size = sth->tree_size;
    checkpoint_.root_hash = sth->root_hash;
    checkpoint_.has_head = true;
    report.completed = true;
    return report;
}

QueryResult Monitor::query(std::string_view pattern) const {
    QueryResult result;
    const MonitorCapabilities& caps = profile_.caps;

    // --- Input validation -----------------------------------------------
    if (!is_ascii_only(pattern)) {
        if (!caps.unicode_search) {
            result.query_accepted = false;
            result.rejection_reason = "Unicode queries not supported";
            return result;
        }
    }
    if (contains_xn_label(pattern)) {
        if (!caps.punycode_idn) {
            result.query_accepted = false;
            result.rejection_reason = "Punycode queries not supported";
            return result;
        }
        if (!caps.punycode_idn_cctld && has_punycode_cctld(pattern)) {
            result.query_accepted = false;
            result.rejection_reason = "Punycode ccTLDs not supported";
            return result;
        }
        if (caps.ulabel_check) {
            // Validate every xn-- label; deceptive IDNs are refused
            // (SSLMate / Facebook behaviour in P1.3).
            std::string host(pattern);
            size_t start = 0;
            while (start <= host.size()) {
                size_t dot = host.find('.', start);
                std::string label = host.substr(
                    start, dot == std::string::npos ? std::string::npos : dot - start);
                if (idna::looks_like_a_label(label) && !idna::check_label(label).ok()) {
                    result.query_accepted = false;
                    result.rejection_reason = "IDN label fails U-label validation: " + label;
                    return result;
                }
                if (dot == std::string::npos) break;
                start = dot + 1;
            }
        }
    }

    // --- Matching ----------------------------------------------------------
    std::string needle = caps.case_insensitive ? ascii_fold(pattern) : std::string(pattern);
    for (size_t id = 0; id < records_.size(); ++id) {
        const Record& record = records_[id];
        if (record.hidden) continue;
        bool match = false;
        for (const std::string& key : record.keys) {
            if (caps.fuzzy_search ? key.find(needle) != std::string::npos : key == needle) {
                match = true;
                break;
            }
        }
        if (match) result.cert_ids.push_back(id);
    }
    return result;
}

bool Monitor::would_find(std::string_view pattern, size_t id) const {
    QueryResult r = query(pattern);
    return r.query_accepted &&
           std::find(r.cert_ids.begin(), r.cert_ids.end(), id) != r.cert_ids.end();
}

}  // namespace unicert::ctlog
