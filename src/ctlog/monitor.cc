#include "ctlog/monitor.h"

#include <algorithm>
#include <array>

#include "ctlog/index/matcher.h"
#include "ctlog/log.h"
#include "x509/parser.h"

namespace unicert::ctlog {
namespace {

// Table 6, one row per monitor.
const std::array<MonitorProfile, 5>& profiles() {
    static const std::array<MonitorProfile, 5> kProfiles = {{
        {"Crt.sh",
         {.fuzzy_search = true,
          .ulabel_check = false,
          .returns_special_unicode = true,
          .searches_subject_attrs = true}},
        {"SSLMate Spotter",
         {.fuzzy_search = false,
          .ulabel_check = true,
          .returns_special_unicode = false,
          .cn_substring_before_slash = true,
          .cn_ignored_if_space = true}},
        {"Facebook Monitor",
         {.fuzzy_search = false, .ulabel_check = true, .returns_special_unicode = true}},
        {"Entrust Search",
         {.fuzzy_search = false,
          .ulabel_check = false,
          .punycode_idn_cctld = false,
          .returns_special_unicode = true}},
        {"MerkleMap",
         {.fuzzy_search = true, .ulabel_check = false, .returns_special_unicode = true}},
    }};
    return kProfiles;
}

}  // namespace

std::span<const MonitorProfile> monitor_profiles() { return profiles(); }

size_t Monitor::index(const x509::Certificate& cert) {
    // All Table 6 capability semantics (CN quirks, special-Unicode
    // hiding, case folding) live in the shared matcher, which the
    // persistent index derives from too — scan and index paths cannot
    // drift.
    index::DerivedRecord derived = index::derive_record(profile_.caps, cert);
    Record record;
    record.keys = std::move(derived.keys);
    record.hidden = derived.hidden;
    records_.push_back(std::move(record));
    size_t id = records_.size() - 1;
    raise_alerts_for(id);
    return id;
}

void Monitor::watch(std::string_view domain) { watches_.emplace_back(domain); }

void Monitor::raise_alerts_for(size_t id) {
    if (watches_.empty()) return;
    const Record& record = records_[id];
    if (record.hidden) return;
    const MonitorCapabilities& caps = profile_.caps;
    for (const std::string& domain : watches_) {
        std::string needle = index::fold(caps, domain);
        if (index::any_key_matches(caps, record.keys, needle)) {
            pending_alerts_.push_back({domain, id});
        }
    }
}

std::vector<Monitor::Alert> Monitor::drain_alerts() {
    std::vector<Alert> out;
    out.swap(pending_alerts_);
    return out;
}

size_t Monitor::sync(const CtLog& log) {
    size_t indexed = 0;
    const auto& entries = log.entries();
    for (; checkpoint_.next_index < entries.size(); ++checkpoint_.next_index) {
        const x509::Certificate& cert = entries[checkpoint_.next_index].certificate;
        if (cert.is_precertificate()) continue;  // monitors skip poisoned entries
        index(cert);
        ++indexed;
    }
    checkpoint_.tree_size = entries.size();
    checkpoint_.root_hash = log.tree_head();
    checkpoint_.has_head = true;
    return indexed;
}

SyncReport Monitor::sync(LogSource& source, const core::RetryPolicy& policy,
                         core::Clock* clock) {
    SyncReport report;
    core::Clock& clk = clock != nullptr ? *clock : core::system_clock();

    auto fetch_head = [&]() -> Expected<SignedTreeHead> {
        core::RetryOutcome outcome;
        auto sth = core::retry<SignedTreeHead>(
            policy, clk, [&] { return source.latest_tree_head(); }, &outcome);
        report.retries += outcome.retries;
        return sth;
    };

    // 1. Fetch the advertised tree head, retrying transient faults.
    auto sth = fetch_head();
    if (!sth.ok()) {
        report.abort_error = sth.error();
        return report;
    }

    // 2. Checkpoint consistency: a head smaller than the checkpoint is a
    //    truncation/regression; the same size with a different history is
    //    a split view. A flaky frontend can serve a stale head, so a
    //    regressed view gets re-fetched before the alarm is raised —
    //    re-syncing from the last consistent checkpoint, never
    //    double-indexing against the bad view.
    if (checkpoint_.has_head) {
        for (int attempt = 1;; ++attempt) {
            bool regressed = sth->tree_size < checkpoint_.tree_size;
            bool rewritten = false;
            if (!regressed) {
                core::RetryOutcome outcome;
                auto old_root = core::retry<Digest>(
                    policy, clk, [&] { return source.root_at(checkpoint_.tree_size); },
                    &outcome);
                report.retries += outcome.retries;
                if (!old_root.ok()) {
                    report.abort_error = old_root.error();
                    return report;
                }
                rewritten = *old_root != checkpoint_.root_hash;
            }
            if (!regressed && !rewritten) break;
            if (attempt >= policy.max_attempts) {
                report.split_view_detected = true;
                report.abort_error =
                    Error{"split_view",
                          "log view inconsistent with checkpoint at size " +
                              std::to_string(checkpoint_.tree_size)};
                return report;
            }
            ++report.resyncs;
            ++report.retries;
            clk.sleep_ms(policy.backoff_ms(attempt));
            sth = fetch_head();
            if (!sth.ok()) {
                report.abort_error = sth.error();
                return report;
            }
        }
    }

    // 3. Consume entries from the cursor up to the verified head.
    while (checkpoint_.next_index < sth->tree_size) {
        const size_t want = checkpoint_.next_index;
        core::RetryOutcome outcome;
        auto entry = core::retry<RawLogEntry>(
            policy, clk,
            [&]() -> Expected<RawLogEntry> {
                auto e = source.entry_at(want);
                if (e.ok() && e->index != want) {
                    // Stale or duplicate delivery: the cursor already
                    // consumed (or never asked for) this index.
                    ++report.duplicates_skipped;
                    return Error{"stale_read", "asked for entry " + std::to_string(want) +
                                                   ", got " + std::to_string(e->index)};
                }
                return e;
            },
            &outcome);
        report.retries += outcome.retries;
        if (!entry.ok()) {
            // Budget exhausted or permanent fetch failure: stop with the
            // cursor parked on this entry so the next pass resumes here.
            report.abort_error = entry.error();
            return report;
        }

        auto cert = x509::parse_certificate(entry->leaf_der);
        if (!cert.ok()) {
            // Entry-scoped failure: quarantine and move on (the ladder's
            // skip-and-quarantine rung); the report keeps the evidence.
            report.quarantined.push_back({want, cert.error()});
        } else if (cert->is_precertificate()) {
            ++report.precerts_skipped;
        } else {
            index(cert.value());
            ++report.indexed;
        }
        ++checkpoint_.next_index;
    }

    checkpoint_.tree_size = sth->tree_size;
    checkpoint_.root_hash = sth->root_hash;
    checkpoint_.has_head = true;
    report.completed = true;
    return report;
}

QueryResult Monitor::query(std::string_view pattern) const {
    QueryResult result;
    const MonitorCapabilities& caps = profile_.caps;

    // --- Input validation ---------------------------------------------------
    if (auto rejection = index::validate_query(caps, pattern)) {
        result.query_accepted = false;
        result.rejection_reason = std::move(rejection->reason);
        return result;
    }

    // --- Matching ----------------------------------------------------------
    std::string needle = index::fold(caps, pattern);
    for (size_t id = 0; id < records_.size(); ++id) {
        const Record& record = records_[id];
        if (record.hidden) continue;
        if (index::any_key_matches(caps, record.keys, needle)) result.cert_ids.push_back(id);
    }
    return result;
}

bool Monitor::would_find(std::string_view pattern, size_t id) const {
    QueryResult r = query(pattern);
    return r.query_accepted &&
           std::find(r.cert_ids.begin(), r.cert_ids.end(), id) != r.cert_ids.end();
}

}  // namespace unicert::ctlog
