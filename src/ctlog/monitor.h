// unicert/ctlog/monitor.h
//
// CT monitor behavioural models (documented substitution for the five
// live services tested in Section 6.1 / Table 6). Each profile carries
// the capability matrix the paper measured — case folding, fuzzy
// search, Unicode query support, U-label validation, Punycode handling
// — plus the indexing quirks behind finding P1.4. A Monitor indexes a
// certificate stream and answers field queries the way its real
// counterpart would, which is what the CT-monitor-misleading threat
// scenario exercises.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.h"
#include "core/resilience.h"
#include "ctlog/log_source.h"
#include "x509/certificate.h"

namespace unicert::ctlog {

struct MonitorCapabilities {
    bool case_insensitive = true;        // P1.1: all monitors fold case
    bool unicode_search = false;         // none accept raw Unicode queries
    bool fuzzy_search = false;           // substring matching (P1.2)
    bool ulabel_check = false;           // validates IDN legality (P1.3)
    bool punycode_idn = true;            // accepts xn-- queries
    bool punycode_idn_cctld = true;      // accepts xn-- ccTLD queries
    bool returns_special_unicode = true; // false: certs with special Unicode vanish (P1.4)
    bool searches_subject_attrs = false; // also indexes O/OU/emailAddress (crt.sh)
    bool cn_substring_before_slash = false;  // SSLMate: match stops at '/'
    bool cn_ignored_if_space = false;        // SSLMate: CN with a space dropped
};

struct MonitorProfile {
    std::string name;
    MonitorCapabilities caps;
};

// The five public monitors of Table 6.
std::span<const MonitorProfile> monitor_profiles();

// Result of one query.
struct QueryResult {
    bool query_accepted = true;    // false when input validation refuses it
    std::string rejection_reason;
    std::vector<size_t> cert_ids;  // indexes assigned at indexing time
};

// The monitor's durable sync position: the next entry to consume plus
// the last tree head it verified against. Persisting this (it is plain
// data) lets a restarted monitor resume without double-indexing or
// silently skipping entries.
struct MonitorCheckpoint {
    size_t next_index = 0;  // first log entry not yet consumed
    size_t tree_size = 0;   // size of the last consistent tree head
    Digest root_hash{};     // its root
    bool has_head = false;

    bool operator==(const MonitorCheckpoint&) const = default;
};

// One entry the sync loop could not ingest (unparseable leaf DER).
struct SyncQuarantine {
    size_t entry_index = 0;
    Error error;

    bool operator==(const SyncQuarantine&) const = default;
};

// Outcome of one Monitor::sync pass over a LogSource.
struct SyncReport {
    size_t indexed = 0;
    size_t precerts_skipped = 0;
    size_t duplicates_skipped = 0;  // stale/duplicate deliveries discarded
    size_t retries = 0;             // transient faults absorbed by backoff
    size_t resyncs = 0;             // regressed tree heads recovered from
    std::vector<SyncQuarantine> quarantined;
    bool completed = false;         // cursor reached the advertised head
    bool split_view_detected = false;
    Error abort_error;              // set when !completed
};

class Monitor {
public:
    explicit Monitor(MonitorProfile profile) : profile_(std::move(profile)) {}

    const MonitorProfile& profile() const noexcept { return profile_; }

    // Index one certificate; returns its id within this monitor.
    size_t index(const x509::Certificate& cert);

    // Incrementally sync from a CT log: index every regular (non-
    // precert) entry not yet consumed. Returns how many were indexed.
    // This is the monitors-index-CT-logs loop of Section 6.1.
    size_t sync(const class CtLog& log);

    // Checkpointed sync against a (possibly faulty) LogSource: fetches
    // the tree head, verifies the previous checkpoint still lies on the
    // log's history (split-view / truncation signal), then consumes
    // entries from the cursor with retry/backoff. The cursor only
    // advances past entries that were indexed, skipped as precerts, or
    // deliberately quarantined — an aborted pass resumes exactly where
    // it stopped and alerts fire at most once per entry.
    SyncReport sync(LogSource& source, const core::RetryPolicy& policy = {},
                    core::Clock* clock = nullptr);

    // Durable sync position, for persistence and resumption.
    const MonitorCheckpoint& checkpoint() const noexcept { return checkpoint_; }
    void restore_checkpoint(const MonitorCheckpoint& checkpoint) { checkpoint_ = checkpoint; }

    size_t indexed_count() const noexcept { return records_.size(); }

    // Field-based query ("example.com", "xn--mnchen-3ya.example", an O
    // value, …) per the profile's capabilities.
    QueryResult query(std::string_view pattern) const;

    // Would a query for `pattern` surface certificate `id`? Convenience
    // for the misleading-scenario bench.
    bool would_find(std::string_view pattern, size_t id) const;

    // ---- Watch / alerting (the workflow domain owners actually use) ----

    // Subscribe to a domain; future index()/sync() calls raise an alert
    // for every certificate whose searchable keys match it (using this
    // monitor's own matching semantics — which is the point: a watch is
    // only as good as the indexing behind it).
    void watch(std::string_view domain);

    struct Alert {
        std::string domain;   // the subscription that fired
        size_t cert_id;
    };

    // Alerts accumulated since the last drain.
    std::vector<Alert> drain_alerts();

private:
    struct Record {
        std::vector<std::string> keys;  // derived searchable keys (index::derive_record)
        bool hidden = false;            // excluded from results entirely
    };

    void raise_alerts_for(size_t id);

    MonitorProfile profile_;
    std::vector<Record> records_;
    MonitorCheckpoint checkpoint_;  // sync cursor + last-seen tree head
    std::vector<std::string> watches_;
    std::vector<Alert> pending_alerts_;
};

}  // namespace unicert::ctlog
