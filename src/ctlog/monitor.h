// unicert/ctlog/monitor.h
//
// CT monitor behavioural models (documented substitution for the five
// live services tested in Section 6.1 / Table 6). Each profile carries
// the capability matrix the paper measured — case folding, fuzzy
// search, Unicode query support, U-label validation, Punycode handling
// — plus the indexing quirks behind finding P1.4. A Monitor indexes a
// certificate stream and answers field queries the way its real
// counterpart would, which is what the CT-monitor-misleading threat
// scenario exercises.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "x509/certificate.h"

namespace unicert::ctlog {

struct MonitorCapabilities {
    bool case_insensitive = true;        // P1.1: all monitors fold case
    bool unicode_search = false;         // none accept raw Unicode queries
    bool fuzzy_search = false;           // substring matching (P1.2)
    bool ulabel_check = false;           // validates IDN legality (P1.3)
    bool punycode_idn = true;            // accepts xn-- queries
    bool punycode_idn_cctld = true;      // accepts xn-- ccTLD queries
    bool returns_special_unicode = true; // false: certs with special Unicode vanish (P1.4)
    bool searches_subject_attrs = false; // also indexes O/OU/emailAddress (crt.sh)
    bool cn_substring_before_slash = false;  // SSLMate: match stops at '/'
    bool cn_ignored_if_space = false;        // SSLMate: CN with a space dropped
};

struct MonitorProfile {
    std::string name;
    MonitorCapabilities caps;
};

// The five public monitors of Table 6.
std::span<const MonitorProfile> monitor_profiles();

// Result of one query.
struct QueryResult {
    bool query_accepted = true;    // false when input validation refuses it
    std::string rejection_reason;
    std::vector<size_t> cert_ids;  // indexes assigned at indexing time
};

class Monitor {
public:
    explicit Monitor(MonitorProfile profile) : profile_(std::move(profile)) {}

    const MonitorProfile& profile() const noexcept { return profile_; }

    // Index one certificate; returns its id within this monitor.
    size_t index(const x509::Certificate& cert);

    // Incrementally sync from a CT log: index every regular (non-
    // precert) entry not yet consumed. Returns how many were indexed.
    // This is the monitors-index-CT-logs loop of Section 6.1.
    size_t sync(const class CtLog& log);

    size_t indexed_count() const noexcept { return records_.size(); }

    // Field-based query ("example.com", "xn--mnchen-3ya.example", an O
    // value, …) per the profile's capabilities.
    QueryResult query(std::string_view pattern) const;

    // Would a query for `pattern` surface certificate `id`? Convenience
    // for the misleading-scenario bench.
    bool would_find(std::string_view pattern, size_t id) const;

    // ---- Watch / alerting (the workflow domain owners actually use) ----

    // Subscribe to a domain; future index()/sync() calls raise an alert
    // for every certificate whose searchable keys match it (using this
    // monitor's own matching semantics — which is the point: a watch is
    // only as good as the indexing behind it).
    void watch(std::string_view domain);

    struct Alert {
        std::string domain;   // the subscription that fired
        size_t cert_id;
    };

    // Alerts accumulated since the last drain.
    std::vector<Alert> drain_alerts();

private:
    struct Record {
        std::vector<std::string> keys;  // derived searchable keys
        bool hidden = false;            // excluded from results entirely
    };

    std::vector<std::string> derive_keys(const x509::Certificate& cert, bool& hidden) const;

    void raise_alerts_for(size_t id);

    MonitorProfile profile_;
    std::vector<Record> records_;
    size_t synced_entries_ = 0;  // log entries already consumed by sync()
    std::vector<std::string> watches_;
    std::vector<Alert> pending_alerts_;
};

}  // namespace unicert::ctlog
