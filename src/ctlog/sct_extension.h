// unicert/ctlog/sct_extension.h
//
// The SignedCertificateTimestampList certificate extension
// (RFC 6962 section 3.3): SCTs embedded in final certificates using
// the TLS presentation-language encoding, wrapped in the
// 1.3.6.1.4.1.11129.2.4.2 extension. Completes the precertificate →
// poison → final-cert-with-SCTs lifecycle the CT substrate models.
#pragma once

#include <vector>

#include "common/expected.h"
#include "ctlog/log.h"
#include "x509/certificate.h"

namespace unicert::ctlog {

// TLS-encode one SCT (version 1 structure).
Bytes serialize_sct(const Sct& sct);

// Parse one serialized SCT.
Expected<Sct> deserialize_sct(BytesView data);

// Build the SCT-list extension from one or more SCTs.
x509::Extension make_sct_list_extension(const std::vector<Sct>& scts);

// Extract the SCTs from a certificate's SCT-list extension; empty when
// the extension is absent.
Expected<std::vector<Sct>> parse_sct_list(const x509::Certificate& cert);

// Full issuance lifecycle helper: given a precertificate (CT poison
// present) and the SCTs its submission earned, produce the final
// certificate — poison removed, SCT list embedded, re-signed.
x509::Certificate finalize_precertificate(const x509::Certificate& precert,
                                          const std::vector<Sct>& scts,
                                          const crypto::SimSigner& issuer_key);

}  // namespace unicert::ctlog
