#include "ctlog/merkle.h"

#include <string>

namespace unicert::ctlog {
namespace {

// Largest power of two strictly less than n (RFC 6962's split point).
size_t split_point(size_t n) {
    size_t k = 1;
    while (k * 2 < n) k *= 2;
    return k;
}

}  // namespace

Digest leaf_hash(BytesView entry) {
    crypto::Sha256 h;
    uint8_t prefix = 0x00;
    h.update({&prefix, 1});
    h.update(entry);
    return h.finish();
}

Digest node_hash(const Digest& left, const Digest& right) {
    crypto::Sha256 h;
    uint8_t prefix = 0x01;
    h.update({&prefix, 1});
    h.update({left.data(), left.size()});
    h.update({right.data(), right.size()});
    return h.finish();
}

size_t MerkleTree::append(BytesView entry) {
    leaves_.push_back(leaf_hash(entry));
    return leaves_.size() - 1;
}

Digest MerkleTree::subtree_root(size_t begin, size_t end) const {
    // Public entry points validate ranges; an inverted range here would
    // be an internal bug, answered with the empty-tree hash rather than
    // undefined behaviour.
    if (begin >= end || end > leaves_.size()) return crypto::sha256({});
    if (end - begin == 1) return leaves_[begin];
    size_t k = split_point(end - begin);
    return node_hash(subtree_root(begin, begin + k), subtree_root(begin + k, end));
}

Digest MerkleTree::root() const {
    if (leaves_.empty()) return crypto::sha256({});
    return subtree_root(0, leaves_.size());
}

Expected<Digest> MerkleTree::root_at(size_t n) const {
    if (n == 0) return crypto::sha256({});
    if (n > leaves_.size()) {
        return Error{"proof_out_of_range",
                     "tree size " + std::to_string(n) + " exceeds " +
                         std::to_string(leaves_.size()) + " leaves"};
    }
    return subtree_root(0, n);
}

void MerkleTree::subtree_proof(size_t target, size_t begin, size_t end,
                               std::vector<Digest>& proof) const {
    if (end - begin == 1) return;
    size_t k = split_point(end - begin);
    if (target < begin + k) {
        subtree_proof(target, begin, begin + k, proof);
        proof.push_back(subtree_root(begin + k, end));
    } else {
        subtree_proof(target, begin + k, end, proof);
        proof.push_back(subtree_root(begin, begin + k));
    }
}

Expected<std::vector<Digest>> MerkleTree::audit_proof(size_t index, size_t tree_size) const {
    if (tree_size == 0 || tree_size > leaves_.size()) {
        return Error{"proof_out_of_range",
                     "audit proof for tree size " + std::to_string(tree_size) +
                         " of a " + std::to_string(leaves_.size()) + "-leaf tree"};
    }
    if (index >= tree_size) {
        return Error{"proof_out_of_range",
                     "leaf index " + std::to_string(index) + " outside tree size " +
                         std::to_string(tree_size)};
    }
    std::vector<Digest> proof;
    subtree_proof(index, 0, tree_size, proof);
    return proof;
}

Expected<std::vector<Digest>> MerkleTree::consistency_proof(size_t m, size_t n) const {
    // RFC 6962 sec. 2.1.2, iterative SUBPROOF.
    std::vector<Digest> proof;
    if (m == 0 || m > n || n > leaves_.size()) {
        return Error{"proof_out_of_range",
                     "consistency proof " + std::to_string(m) + " -> " + std::to_string(n) +
                         " invalid for a " + std::to_string(leaves_.size()) + "-leaf tree"};
    }
    if (m == n) return proof;

    // Recursive helper via lambda.
    struct Helper {
        const MerkleTree& tree;
        std::vector<Digest>& proof;
        void subproof(size_t m, size_t begin, size_t end, bool full_subtree) {
            size_t n = end - begin;
            if (m == n) {
                if (!full_subtree) proof.push_back(tree.subtree_root(begin, end));
                return;
            }
            size_t k = split_point(n);
            if (m <= k) {
                subproof(m, begin, begin + k, full_subtree);
                proof.push_back(tree.subtree_root(begin + k, end));
            } else {
                subproof(m - k, begin + k, end, false);
                proof.push_back(tree.subtree_root(begin, begin + k));
            }
        }
    };
    Helper helper{*this, proof};
    helper.subproof(m, 0, n, true);
    return proof;
}

bool verify_audit_proof(const Digest& leaf, size_t index, size_t tree_size,
                        const std::vector<Digest>& proof, const Digest& root) {
    if (tree_size == 0 || index >= tree_size) return false;
    Digest hash = leaf;
    size_t idx = index;
    size_t size = tree_size;
    size_t proof_pos = 0;
    // Walk up the tree mirroring the recursive decomposition.
    std::vector<bool> rights;  // true when sibling is on the right
    // Reconstruct the path directions by replaying the splits.
    {
        size_t begin = 0, end = tree_size;
        std::vector<bool> dirs;
        while (end - begin > 1) {
            size_t k = split_point(end - begin);
            if (index < begin + k) {
                dirs.push_back(true);  // sibling right
                end = begin + k;
            } else {
                dirs.push_back(false);  // sibling left
                begin += k;
            }
        }
        rights.assign(dirs.rbegin(), dirs.rend());
    }
    (void)idx;
    (void)size;
    if (rights.size() != proof.size()) return false;
    for (bool sibling_right : rights) {
        if (proof_pos >= proof.size()) return false;
        const Digest& sibling = proof[proof_pos++];
        hash = sibling_right ? node_hash(hash, sibling) : node_hash(sibling, hash);
    }
    return hash == root;
}

}  // namespace unicert::ctlog
