// unicert/ctlog/log_source.h
//
// The access boundary between a CT log and its consumers (monitors, the
// compliance pipeline). Real ingestion stacks never read a log as an
// in-memory vector: they poll a moving tree head over a flaky frontend
// and fetch entries that can arrive truncated, duplicated, or not at
// all. LogSource models exactly that surface — every read can fail with
// a recoverable Error — so the resilience layer (retry/backoff,
// checkpointed sync, quarantine) has a realistic substrate, and the
// faultsim decorator can inject its schedule without the consumers
// knowing.
#pragma once

#include <string>

#include "common/expected.h"
#include "ctlog/merkle.h"

namespace unicert::ctlog {

class CtLog;

// The log's advertised view: size + root hash (RFC 6962 STH shape).
struct SignedTreeHead {
    size_t tree_size = 0;
    Digest root_hash{};
    int64_t timestamp = 0;

    bool operator==(const SignedTreeHead&) const = default;
};

// One leaf as fetched over the wire: raw DER, parsed by the consumer.
struct RawLogEntry {
    size_t index = 0;
    int64_t timestamp = 0;
    Bytes leaf_der;
};

class LogSource {
public:
    virtual ~LogSource() = default;

    virtual std::string name() const = 0;

    // Current tree head. Transient errors ("unavailable", "timeout")
    // merit a retry; a regressed head is returned as data, not an error
    // — detecting it is the monitor's job.
    virtual Expected<SignedTreeHead> latest_tree_head() = 0;

    // Fetch one leaf. A response whose index differs from the request
    // is a stale/duplicate delivery the caller should treat as
    // transient.
    virtual Expected<RawLogEntry> entry_at(size_t index) = 0;

    // Historical root over the first `tree_size` leaves, used to check
    // a checkpoint still lies on this log's history (split-view test).
    virtual Expected<Digest> root_at(size_t tree_size) = 0;
};

// Direct, fault-free adapter over an in-process CtLog.
class InMemoryLogSource final : public LogSource {
public:
    explicit InMemoryLogSource(const CtLog& log) : log_(&log) {}

    std::string name() const override;
    Expected<SignedTreeHead> latest_tree_head() override;
    Expected<RawLogEntry> entry_at(size_t index) override;
    Expected<Digest> root_at(size_t tree_size) override;

private:
    const CtLog* log_;
};

}  // namespace unicert::ctlog
