#include "ctlog/sct_extension.h"

#include "asn1/der.h"
#include "x509/builder.h"

namespace unicert::ctlog {
namespace {

void put_u16(Bytes& out, size_t v) {
    out.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
    out.push_back(static_cast<uint8_t>(v & 0xFF));
}

void put_u64(Bytes& out, uint64_t v) {
    for (int i = 7; i >= 0; --i) out.push_back(static_cast<uint8_t>((v >> (i * 8)) & 0xFF));
}

// TLS hash/signature algorithm ids for our SimSig substrate: sha256(4)
// + a private signature id (0xE0).
constexpr uint8_t kHashSha256 = 4;
constexpr uint8_t kSigSimSig = 0xE0;

}  // namespace

Bytes serialize_sct(const Sct& sct) {
    Bytes out;
    out.push_back(0x00);  // version v1
    append(out, sct.log_id);  // 32 bytes
    put_u64(out, static_cast<uint64_t>(sct.timestamp));
    put_u16(out, 0);  // extensions: none
    out.push_back(kHashSha256);
    out.push_back(kSigSimSig);
    put_u16(out, sct.signature.size());
    append(out, sct.signature);
    return out;
}

Expected<Sct> deserialize_sct(BytesView data) {
    // 1 version + 32 log id + 8 timestamp + 2 ext len + 2 algs + 2 sig len
    if (data.size() < 47) return Error{"sct_truncated", "SCT shorter than fixed header"};
    size_t pos = 0;
    if (data[pos++] != 0x00) return Error{"sct_bad_version", "only v1 SCTs supported"};

    Sct sct;
    sct.log_id.assign(data.begin() + pos, data.begin() + pos + 32);
    pos += 32;

    uint64_t ts = 0;
    for (int i = 0; i < 8; ++i) ts = (ts << 8) | data[pos++];
    sct.timestamp = static_cast<int64_t>(ts);

    size_t ext_len = (static_cast<size_t>(data[pos]) << 8) | data[pos + 1];
    pos += 2;
    if (pos + ext_len + 4 > data.size()) return Error{"sct_truncated", "extensions overflow"};
    pos += ext_len;

    pos += 2;  // hash + signature algorithm ids
    size_t sig_len = (static_cast<size_t>(data[pos]) << 8) | data[pos + 1];
    pos += 2;
    if (pos + sig_len > data.size()) return Error{"sct_truncated", "signature overflow"};
    sct.signature.assign(data.begin() + pos, data.begin() + pos + sig_len);
    return sct;
}

x509::Extension make_sct_list_extension(const std::vector<Sct>& scts) {
    // SignedCertificateTimestampList: u16 total, then per-SCT u16 + body.
    Bytes list;
    for (const Sct& sct : scts) {
        Bytes serialized = serialize_sct(sct);
        put_u16(list, serialized.size());
        append(list, serialized);
    }
    Bytes tls;
    put_u16(tls, list.size());
    append(tls, list);

    // The ASN.1 wrapper is an OCTET STRING containing the TLS bytes.
    asn1::Writer w;
    w.add_octet_string(tls);

    x509::Extension ext;
    ext.oid = asn1::oids::ct_sct_list();
    ext.critical = false;
    ext.value = w.take();
    return ext;
}

Expected<std::vector<Sct>> parse_sct_list(const x509::Certificate& cert) {
    const x509::Extension* ext = cert.find_extension(asn1::oids::ct_sct_list());
    if (ext == nullptr) return std::vector<Sct>{};

    auto octet = asn1::read_tlv(ext->value);
    if (!octet.ok()) return octet.error();
    if (!octet->is_universal(asn1::Tag::kOctetString)) {
        return Error{"sct_list_not_octet_string", "SCT list must be an OCTET STRING"};
    }
    BytesView tls = octet->content;
    if (tls.size() < 2) return Error{"sct_list_truncated", "missing list length"};
    size_t total = (static_cast<size_t>(tls[0]) << 8) | tls[1];
    if (total + 2 != tls.size()) {
        return Error{"sct_list_bad_length", "list length mismatch"};
    }

    std::vector<Sct> out;
    size_t pos = 2;
    while (pos < tls.size()) {
        if (pos + 2 > tls.size()) return Error{"sct_list_truncated", "missing SCT length"};
        size_t len = (static_cast<size_t>(tls[pos]) << 8) | tls[pos + 1];
        pos += 2;
        if (pos + len > tls.size()) return Error{"sct_list_truncated", "SCT overflows list"};
        auto sct = deserialize_sct(tls.subspan(pos, len));
        if (!sct.ok()) return sct.error();
        out.push_back(std::move(sct).value());
        pos += len;
    }
    return out;
}

x509::Certificate finalize_precertificate(const x509::Certificate& precert,
                                          const std::vector<Sct>& scts,
                                          const crypto::SimSigner& issuer_key) {
    x509::Certificate final_cert = precert;
    // Strip the CT poison.
    final_cert.extensions.erase(
        std::remove_if(final_cert.extensions.begin(), final_cert.extensions.end(),
                       [](const x509::Extension& ext) {
                           return ext.oid == asn1::oids::ct_poison();
                       }),
        final_cert.extensions.end());
    final_cert.extensions.push_back(make_sct_list_extension(scts));
    x509::sign_certificate(final_cert, issuer_key);
    return final_cert;
}

}  // namespace unicert::ctlog
