#include "ctlog/shard.h"

#include <algorithm>

namespace unicert::ctlog {

std::vector<ShardRange> shard_ranges(size_t total, size_t shards) {
    std::vector<ShardRange> out;
    if (total == 0 || shards == 0) return out;
    shards = std::min(shards, total);
    const size_t base = total / shards;
    const size_t extra = total % shards;  // first `extra` shards get one more
    size_t begin = 0;
    for (size_t s = 0; s < shards; ++s) {
        size_t len = base + (s < extra ? 1 : 0);
        out.push_back({begin, begin + len});
        begin += len;
    }
    return out;
}

std::string ShardedLogView::name() const {
    return inner_->name() + "[" + std::to_string(range_.begin) + "," +
           std::to_string(range_.end) + ")";
}

Expected<SignedTreeHead> ShardedLogView::latest_tree_head() {
    auto sth = inner_->latest_tree_head();
    if (!sth.ok()) return sth;
    SignedTreeHead clamped = sth.value();
    if (clamped.tree_size > range_.end) {
        clamped.tree_size = range_.end;
        auto root = inner_->root_at(clamped.tree_size);
        if (!root.ok()) return root.error();
        clamped.root_hash = root.value();
    }
    return clamped;
}

Expected<RawLogEntry> ShardedLogView::entry_at(size_t index) {
    if (index < range_.begin || index >= range_.end) {
        return Error{"out_of_shard", "entry " + std::to_string(index) + " outside shard [" +
                                         std::to_string(range_.begin) + "," +
                                         std::to_string(range_.end) + ")"};
    }
    return inner_->entry_at(index);
}

Expected<Digest> ShardedLogView::root_at(size_t tree_size) {
    return inner_->root_at(tree_size);
}

}  // namespace unicert::ctlog
