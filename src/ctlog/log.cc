#include "ctlog/log.h"

namespace unicert::ctlog {
namespace {

Bytes sct_message(const Bytes& log_id, int64_t timestamp, BytesView cert_der) {
    Bytes msg = log_id;
    for (int i = 7; i >= 0; --i) {
        msg.push_back(static_cast<uint8_t>((static_cast<uint64_t>(timestamp) >> (i * 8)) & 0xFF));
    }
    append(msg, cert_der);
    return msg;
}

}  // namespace

CtLog::CtLog(const std::string& name)
    : name_(name), key_(crypto::SimSigner::from_name("ct-log:" + name)) {
    log_id_ = crypto::sha256_bytes(key_.public_key());
}

Sct CtLog::submit(const x509::Certificate& cert, int64_t timestamp) {
    Sct sct;
    sct.log_id = log_id_;
    sct.timestamp = timestamp;
    sct.signature = key_.sign(sct_message(log_id_, timestamp, cert.der));

    LogEntry entry;
    entry.index = tree_.append(cert.der);
    entry.timestamp = timestamp;
    entry.certificate = cert;
    entry.sct = sct;
    entries_.push_back(std::move(entry));
    return sct;
}

bool CtLog::verify_sct(const x509::Certificate& cert, const Sct& sct) const {
    if (sct.log_id != log_id_) return false;
    return crypto::sim_verify(key_, sct_message(log_id_, sct.timestamp, cert.der),
                              sct.signature);
}

std::vector<const x509::Certificate*> CtLog::regular_certificates() const {
    std::vector<const x509::Certificate*> out;
    for (const LogEntry& entry : entries_) {
        if (!entry.certificate.is_precertificate()) out.push_back(&entry.certificate);
    }
    return out;
}

double CtLog::precert_fraction() const {
    if (entries_.empty()) return 0.0;
    size_t precerts = 0;
    for (const LogEntry& entry : entries_) {
        if (entry.certificate.is_precertificate()) ++precerts;
    }
    return static_cast<double>(precerts) / static_cast<double>(entries_.size());
}

}  // namespace unicert::ctlog
