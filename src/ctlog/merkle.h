// unicert/ctlog/merkle.h
//
// RFC 6962 Merkle hash tree: leaf/node hashing, root computation,
// audit (inclusion) proofs and consistency proofs. Backs the CT-log
// substrate's verifiability guarantees.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/expected.h"
#include "crypto/sha256.h"

namespace unicert::ctlog {

using crypto::Digest;

// MTH leaf hash: SHA-256(0x00 || entry).
Digest leaf_hash(BytesView entry);

// Interior node hash: SHA-256(0x01 || left || right).
Digest node_hash(const Digest& left, const Digest& right);

// Append-only Merkle tree over opaque entries.
class MerkleTree {
public:
    // Append one entry; returns its leaf index.
    size_t append(BytesView entry);

    size_t size() const noexcept { return leaves_.size(); }

    // Merkle tree head over the current leaves (RFC 6962 sec. 2.1).
    // The empty tree's root is SHA-256 of the empty string.
    Digest root() const;

    // Root over the first n leaves (for consistency checks). Errors on
    // n beyond the current tree — a hostile or stale request, not a
    // programming error, so no assert/abort.
    Expected<Digest> root_at(size_t n) const;

    // Audit path proving leaf `index` is in the tree of size `tree_size`.
    // Out-of-range requests return a `proof_out_of_range` error.
    Expected<std::vector<Digest>> audit_proof(size_t index, size_t tree_size) const;

    // Consistency proof between tree sizes m <= n. Invalid size pairs
    // return a `proof_out_of_range` error.
    Expected<std::vector<Digest>> consistency_proof(size_t m, size_t n) const;

private:
    Digest subtree_root(size_t begin, size_t end) const;
    void subtree_proof(size_t target, size_t begin, size_t end,
                       std::vector<Digest>& proof) const;

    std::vector<Digest> leaves_;  // leaf hashes
};

// Verify an audit path for `leaf` at `index` against `root`.
bool verify_audit_proof(const Digest& leaf, size_t index, size_t tree_size,
                        const std::vector<Digest>& proof, const Digest& root);

}  // namespace unicert::ctlog
