// unicert/difffuzz/fuzzer.h
//
// Structure-aware differential fuzz loop over the supervised engine.
// Seed DER inputs (string TLVs of each scenario family) are mutated by
// faultsim::DerMutator, decoded back into a (string type, value bytes)
// scenario, and run through every library model under the Supervisor's
// containment budget. Two failure sources feed the crash corpus:
//   - containment failures (crash / hang / oversize-output) of one
//     library model on one input;
//   - cross-library divergences, where the supported libraries split
//     into accept and reject camps; the minority camp is bucketed
//     under a signature of the full 9-library accept/reject pattern.
// Everything is a pure function of (options.seed, input bytes), so
// `unicert_diff --replay` re-triggers every bucket deterministically.
#pragma once

#include <string>
#include <vector>

#include "core/resilience.h"
#include "difffuzz/crash_corpus.h"
#include "tlslib/supervisor.h"

namespace unicert::difffuzz {

struct FuzzOptions {
    uint64_t seed = 1;
    size_t iterations = 256;  // mutated inputs per run()
    tlslib::FieldContext context = tlslib::FieldContext::kDnName;
    tlslib::EvalBudget budget;   // per-call containment budget
    bool minimize = true;        // delta-debug new buckets
    size_t reduce_checks = 200;  // predicate budget per minimization
};

struct FuzzStats {
    size_t inputs = 0;       // mutated inputs evaluated
    size_t evaluations = 0;  // (library, input) model evaluations run
    size_t failures = 0;     // failing (library, input) pairs observed
    size_t new_buckets = 0;  // corpus buckets created this run
    size_t minimized = 0;    // buckets whose payload shrank
};

// Outcome of one (library, input) contained evaluation.
struct InputEval {
    tlslib::Library lib{};
    tlslib::EvalOutcome outcome = tlslib::EvalOutcome::kOk;
    std::string signature;  // set for failure outcomes
    std::string detail;
};

class DiffFuzzer {
public:
    explicit DiffFuzzer(CrashCorpus& corpus, FuzzOptions options = {},
                        tlslib::LibraryModel& model = tlslib::builtin_model(),
                        core::Clock& clock = core::system_clock());

    const FuzzOptions& options() const noexcept { return options_; }

    // The fuzz loop: mutate seeds, evaluate, bucket + minimize
    // failures into the corpus. Never throws on model misbehaviour.
    FuzzStats run();

    // Run one DER input through all nine library models, contained.
    // Returns one entry per library (kOk/kUnsupported included).
    std::vector<InputEval> evaluate_input(BytesView der);

    // Re-run every corpus bucket and check the same (library, outcome,
    // signature) reproduces. Returns the number reproduced; bucket keys
    // that did not are appended to `unreproduced` when non-null.
    size_t replay(std::vector<std::string>* unreproduced = nullptr);

    // How a raw DER input maps onto an engine scenario: descend through
    // constructed TLVs to the first primitive leaf; a universal string
    // tag selects the declared type, anything else defaults to
    // UTF8String with the raw buffer as value bytes.
    static tlslib::Scenario derive_scenario(BytesView der, tlslib::FieldContext ctx);
    static Bytes derive_value(BytesView der);

    // The deterministic seed inputs the mutator starts from.
    static std::vector<Bytes> seed_inputs();

private:
    InputEval contain_call(tlslib::Library lib, const tlslib::Scenario& scenario,
                           const Bytes& value);

    CrashCorpus* corpus_;
    FuzzOptions options_;
    tlslib::LibraryModel* model_;
    core::Clock* clock_;
};

}  // namespace unicert::difffuzz
