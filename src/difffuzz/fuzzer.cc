#include "difffuzz/fuzzer.h"

#include <exception>
#include <optional>

#include "asn1/der.h"
#include "asn1/oid.h"
#include "difffuzz/reducer.h"
#include "faultsim/der_mutator.h"

namespace unicert::difffuzz {
namespace {

using tlslib::EvalOutcome;
using tlslib::Library;
using tlslib::Scenario;

uint64_t mix64(uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

// 16-hex-char signature of an arbitrary string (FNV-1a then mix).
std::string signature_of(std::string_view text) {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : text) h = (h ^ static_cast<uint8_t>(c)) * 0x100000001B3ULL;
    h = mix64(h);
    static const char* hex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = hex[h & 0xF];
        h >>= 4;
    }
    return out;
}

// Descend through constructed TLVs to the first primitive leaf.
std::optional<asn1::Tlv> leaf_tlv(BytesView der) {
    auto tlv = asn1::read_tlv(der);
    if (!tlv.ok()) return std::nullopt;
    for (int depth = 0; tlv->is_constructed() && !tlv->content.empty() && depth < 128;
         ++depth) {
        auto child = asn1::read_tlv(tlv->content);
        if (!child.ok()) break;
        tlv = child;
    }
    return tlv.value();
}

}  // namespace

DiffFuzzer::DiffFuzzer(CrashCorpus& corpus, FuzzOptions options, tlslib::LibraryModel& model,
                       core::Clock& clock)
    : corpus_(&corpus), options_(options), model_(&model), clock_(&clock) {}

Scenario DiffFuzzer::derive_scenario(BytesView der, tlslib::FieldContext ctx) {
    Scenario scenario{asn1::StringType::kUtf8String, ctx};
    auto leaf = leaf_tlv(der);
    if (leaf && leaf->tag_class() == asn1::TagClass::kUniversal && !leaf->is_constructed()) {
        if (auto st = asn1::string_type_from_tag(leaf->tag_number())) {
            scenario.declared = *st;
        }
    }
    return scenario;
}

Bytes DiffFuzzer::derive_value(BytesView der) {
    auto leaf = leaf_tlv(der);
    if (leaf && !leaf->is_constructed()) {
        return Bytes(leaf->content.begin(), leaf->content.end());
    }
    return Bytes(der.begin(), der.end());
}

std::vector<Bytes> DiffFuzzer::seed_inputs() {
    std::vector<Bytes> seeds;
    auto string_seed = [&](asn1::StringType st, BytesView value) {
        asn1::Writer w;
        w.add_string(asn1::string_type_tag(st), value);
        seeds.push_back(w.take());
    };
    string_seed(asn1::StringType::kPrintableString, to_bytes("test.com"));
    string_seed(asn1::StringType::kIa5String, to_bytes("fuzz.example"));
    string_seed(asn1::StringType::kUtf8String, to_bytes("t\xC3\xABst.com"));
    string_seed(asn1::StringType::kBmpString,
                Bytes{0x00, 't', 0x00, 'e', 0x00, 's', 0x00, 't'});

    // An RDN-shaped nested structure so structural mutations see
    // constructed layers above the string leaf.
    asn1::Writer nested;
    nested.add_sequence([](asn1::Writer& rdn) {
        rdn.add_set([](asn1::Writer& atv) {
            atv.add_sequence([](asn1::Writer& inner) {
                inner.add_string(asn1::string_type_tag(asn1::StringType::kUtf8String),
                                 to_bytes("cn.example"));
            });
        });
    });
    seeds.push_back(nested.take());
    return seeds;
}

InputEval DiffFuzzer::contain_call(Library lib, const Scenario& scenario, const Bytes& value) {
    InputEval eval;
    eval.lib = lib;
    int64_t start = clock_->now_ms();
    tlslib::ParseOutcome out;
    try {
        if (scenario.context == tlslib::FieldContext::kDnName) {
            x509::AttributeValue av;
            av.type = asn1::oids::common_name();
            av.string_type = scenario.declared;
            av.value_bytes = value;
            out = model_->parse_attribute(lib, av);
        } else {
            x509::GeneralName gn;
            gn.type = scenario.context == tlslib::FieldContext::kCrlDp
                          ? x509::GeneralNameType::kUri
                          : x509::GeneralNameType::kDnsName;
            gn.string_type = asn1::StringType::kIa5String;
            gn.value_bytes = value;
            out = model_->parse_general_name(lib, gn, scenario.context);
        }
    } catch (const std::exception& e) {
        eval.outcome = EvalOutcome::kCrash;
        eval.detail = e.what();
        eval.signature = signature_of(std::string("crash:") + e.what());
        return eval;
    } catch (...) {
        eval.outcome = EvalOutcome::kCrash;
        eval.detail = "non-standard exception";
        eval.signature = signature_of("crash:non-standard");
        return eval;
    }
    int64_t elapsed = clock_->now_ms() - start;
    if (options_.budget.wall_ms > 0 && elapsed > options_.budget.wall_ms) {
        eval.outcome = EvalOutcome::kHang;
        eval.detail = "call exceeded " + std::to_string(options_.budget.wall_ms) + "ms budget";
        eval.signature = signature_of("hang");
        return eval;
    }
    if (options_.budget.max_output_bytes > 0 &&
        out.value_utf8.size() > options_.budget.max_output_bytes) {
        eval.outcome = EvalOutcome::kOversizeOutput;
        eval.detail = "output of " + std::to_string(out.value_utf8.size()) + " bytes";
        eval.signature = signature_of("oversize");
        return eval;
    }
    // Encode accept/reject in `detail` for the divergence pass; the
    // caller rewrites failures into their final form.
    eval.outcome = EvalOutcome::kOk;
    eval.detail = out.ok ? "accept" : "reject";
    return eval;
}

std::vector<InputEval> DiffFuzzer::evaluate_input(BytesView der) {
    Scenario scenario = derive_scenario(der, options_.context);
    Bytes value = derive_value(der);

    std::vector<InputEval> results;
    results.reserve(tlslib::kAllLibraries.size());
    std::string pattern;  // one char per library: A/R/U/C/H/O
    for (Library lib : tlslib::kAllLibraries) {
        InputEval eval;
        eval.lib = lib;
        bool supported = false;
        try {
            supported =
                model_->probe_decode(lib, scenario.declared, scenario.context).supported;
        } catch (...) {
            supported = false;
        }
        if (!supported) {
            eval.outcome = EvalOutcome::kUnsupported;
            pattern.push_back('U');
            results.push_back(std::move(eval));
            continue;
        }
        eval = contain_call(lib, scenario, value);
        switch (eval.outcome) {
            case EvalOutcome::kCrash: pattern.push_back('C'); break;
            case EvalOutcome::kHang: pattern.push_back('H'); break;
            case EvalOutcome::kOversizeOutput: pattern.push_back('O'); break;
            default: pattern.push_back(eval.detail == "accept" ? 'A' : 'R'); break;
        }
        results.push_back(std::move(eval));
    }

    // Divergence: the supported, healthy libraries split into accept
    // and reject camps. The minority camp carries the failure, bucketed
    // under a signature of the whole pattern (accept-side ties break
    // toward accept so the signature stays stable).
    size_t accepts = 0, rejects = 0;
    for (char c : pattern) {
        if (c == 'A') ++accepts;
        if (c == 'R') ++rejects;
    }
    if (accepts > 0 && rejects > 0) {
        char minority = accepts <= rejects ? 'A' : 'R';
        std::string sig = signature_of("split:" + pattern);
        for (size_t i = 0; i < results.size(); ++i) {
            if (pattern[i] != minority) continue;
            results[i].outcome = EvalOutcome::kDivergence;
            results[i].signature = sig;
            results[i].detail = "accept/reject split " + pattern;
        }
    }
    for (InputEval& eval : results) {
        if (eval.outcome == EvalOutcome::kOk) eval.detail.clear();
    }
    return results;
}

FuzzStats DiffFuzzer::run() {
    FuzzStats stats;
    std::vector<Bytes> seeds = seed_inputs();
    faultsim::DerMutator mutator(options_.seed);

    for (size_t i = 0; i < options_.iterations; ++i) {
        Bytes input = mutator.mutate(seeds[i % seeds.size()], /*salt=*/i);
        ++stats.inputs;
        std::vector<InputEval> evals = evaluate_input(input);
        for (const InputEval& eval : evals) {
            if (eval.outcome != EvalOutcome::kUnsupported) ++stats.evaluations;
            if (!tlslib::eval_outcome_is_failure(eval.outcome)) continue;
            ++stats.failures;

            CrashEntry entry;
            entry.lib = eval.lib;
            entry.scenario = derive_scenario(input, options_.context);
            entry.outcome = eval.outcome;
            entry.signature = eval.signature;
            entry.detail = eval.detail;
            entry.payload = input;
            if (!corpus_->add(entry)) continue;
            ++stats.new_buckets;

            if (!options_.minimize) continue;
            auto still_fails = [&](BytesView candidate) {
                for (const InputEval& e : evaluate_input(candidate)) {
                    if (e.lib == entry.lib && e.outcome == entry.outcome &&
                        e.signature == entry.signature) {
                        return true;
                    }
                }
                return false;
            };
            Bytes reduced = reduce(entry.payload, still_fails, options_.reduce_checks);
            if (reduced.size() < entry.payload.size()) {
                entry.payload = std::move(reduced);
                entry.scenario = derive_scenario(entry.payload, options_.context);
                corpus_->update(entry);
                ++stats.minimized;
            }
        }
    }
    return stats;
}

size_t DiffFuzzer::replay(std::vector<std::string>* unreproduced) {
    size_t reproduced = 0;
    for (const auto& [key, entry] : corpus_->entries()) {
        bool hit = false;
        for (const InputEval& eval : evaluate_input(entry.payload)) {
            if (eval.lib == entry.lib && eval.outcome == entry.outcome &&
                eval.signature == entry.signature) {
                hit = true;
                break;
            }
        }
        if (hit) {
            ++reproduced;
        } else if (unreproduced) {
            unreproduced->push_back(key);
        }
    }
    return reproduced;
}

}  // namespace unicert::difffuzz
