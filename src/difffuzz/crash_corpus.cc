#include "difffuzz/crash_corpus.h"

#include <cstdlib>
#include <sstream>

namespace unicert::difffuzz {
namespace {

constexpr std::string_view kMagic = "unicert-crash-v1";
constexpr std::string_view kMetaMagic = "unicert-fuzz-meta-v1";

// Filesystem-safe library slug ("Golang Crypto" -> "golang_crypto").
std::string library_slug(tlslib::Library lib) {
    std::string slug = tlslib::library_name(lib);
    for (char& c : slug) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
        if (c == ' ' || c == '.') c = '_';
    }
    return slug;
}

template <typename T, typename Range, typename NameFn>
std::optional<T> match_name(std::string_view name, const Range& range, NameFn name_of) {
    for (T candidate : range) {
        if (name == name_of(candidate)) return candidate;
    }
    return std::nullopt;
}

constexpr std::array<tlslib::EvalOutcome, 7> kAllOutcomes = {
    tlslib::EvalOutcome::kOk,           tlslib::EvalOutcome::kUnsupported,
    tlslib::EvalOutcome::kParseRefusal, tlslib::EvalOutcome::kDivergence,
    tlslib::EvalOutcome::kCrash,        tlslib::EvalOutcome::kHang,
    tlslib::EvalOutcome::kOversizeOutput,
};

constexpr std::array<asn1::StringType, 8> kAllStringTypes = {
    asn1::StringType::kUtf8String,      asn1::StringType::kNumericString,
    asn1::StringType::kPrintableString, asn1::StringType::kIa5String,
    asn1::StringType::kVisibleString,   asn1::StringType::kUniversalString,
    asn1::StringType::kBmpString,       asn1::StringType::kTeletexString,
};

constexpr std::array<tlslib::FieldContext, 3> kAllContexts = {
    tlslib::FieldContext::kDnName,
    tlslib::FieldContext::kGeneralName,
    tlslib::FieldContext::kCrlDp,
};

}  // namespace

std::string bucket_key(const CrashEntry& e) {
    return library_slug(e.lib) + "." + tlslib::eval_outcome_name(e.outcome) + "." + e.signature;
}

std::string serialize_entry(const CrashEntry& e) {
    std::ostringstream out;
    out << kMagic << "\n";
    out << "library: " << tlslib::library_name(e.lib) << "\n";
    out << "string_type: " << asn1::string_type_name(e.scenario.declared) << "\n";
    out << "context: " << tlslib::field_context_name(e.scenario.context) << "\n";
    out << "outcome: " << tlslib::eval_outcome_name(e.outcome) << "\n";
    out << "signature: " << e.signature << "\n";
    out << "detail: " << e.detail << "\n";
    out << "payload: " << hex_encode(e.payload) << "\n";
    return out.str();
}

Expected<CrashEntry> parse_entry(std::string_view text) {
    std::istringstream in{std::string(text)};
    std::string line;
    if (!std::getline(in, line) || line != kMagic) {
        return Error{"corpus_bad_magic", "not a unicert-crash-v1 entry"};
    }
    CrashEntry e;
    bool have_lib = false, have_outcome = false, have_payload = false;
    while (std::getline(in, line)) {
        size_t colon = line.find(": ");
        if (colon == std::string::npos) continue;
        std::string_view key(line.data(), colon);
        std::string_view value(line.data() + colon + 2, line.size() - colon - 2);
        if (key == "library") {
            auto lib = match_name<tlslib::Library>(value, tlslib::kAllLibraries,
                                                   tlslib::library_name);
            if (!lib) return Error{"corpus_bad_library", "unknown library " + std::string(value)};
            e.lib = *lib;
            have_lib = true;
        } else if (key == "string_type") {
            auto st = match_name<asn1::StringType>(value, kAllStringTypes,
                                                   asn1::string_type_name);
            if (!st) return Error{"corpus_bad_string_type", std::string(value)};
            e.scenario.declared = *st;
        } else if (key == "context") {
            auto ctx = match_name<tlslib::FieldContext>(value, kAllContexts,
                                                        tlslib::field_context_name);
            if (!ctx) return Error{"corpus_bad_context", std::string(value)};
            e.scenario.context = *ctx;
        } else if (key == "outcome") {
            auto o = match_name<tlslib::EvalOutcome>(value, kAllOutcomes,
                                                     tlslib::eval_outcome_name);
            if (!o) return Error{"corpus_bad_outcome", std::string(value)};
            e.outcome = *o;
            have_outcome = true;
        } else if (key == "signature") {
            e.signature = std::string(value);
        } else if (key == "detail") {
            e.detail = std::string(value);
        } else if (key == "payload") {
            e.payload = hex_decode(value);
            if (e.payload.empty() && !value.empty()) {
                return Error{"corpus_bad_payload", "payload is not valid hex"};
            }
            have_payload = true;
        }
    }
    if (!have_lib || !have_outcome || !have_payload) {
        return Error{"corpus_incomplete_entry", "missing library/outcome/payload line"};
    }
    return e;
}

CrashCorpus::CrashCorpus(std::string dir, core::Fs* fs)
    : dir_(std::move(dir)), fs_(fs != nullptr ? fs : &core::real_fs()) {
    if (!dir_.empty()) {
        (void)fs_->make_dirs(dir_);  // best-effort; persist() reports failures
    }
}

bool CrashCorpus::add(const CrashEntry& e) {
    std::string key = bucket_key(e);
    auto [it, inserted] = entries_.emplace(key, e);
    if (inserted) (void)persist(e);
    return inserted;
}

void CrashCorpus::update(const CrashEntry& e) {
    entries_[bucket_key(e)] = e;
    (void)persist(e);
}

bool CrashCorpus::contains(const std::string& key) const { return entries_.count(key) > 0; }

Status CrashCorpus::persist(const CrashEntry& e) {
    if (dir_.empty()) return Status::success();
    // Temp + rename: a crash mid-write must never leave a truncated
    // .crash file behind to poison later --replay runs.
    std::string text = serialize_entry(e);
    Status st = core::atomic_write_file(*fs_, dir_ + "/" + bucket_key(e) + ".crash",
                                        std::string_view(text), dir_);
    if (!st.ok() && persist_status_.ok()) persist_status_ = st;
    return st;
}

Status CrashCorpus::load(LoadReport* report) {
    entries_.clear();
    if (dir_.empty()) return Status::success();
    auto names = fs_->list_dir(dir_);
    if (!names.ok()) return Error{"corpus_unreadable", "cannot read corpus dir " + dir_};
    auto skip = [&](const std::string& name, const Error& why) {
        if (report == nullptr) return;
        ++report->skipped;
        report->notes.push_back(name + ": " + why.code + ": " + why.message);
    };
    for (const std::string& name : *names) {
        if (!name.ends_with(".crash")) continue;
        auto bytes = fs_->read_file(dir_ + "/" + name);
        if (!bytes.ok()) {
            skip(name, bytes.error());
            continue;
        }
        auto entry = parse_entry(
            std::string_view(reinterpret_cast<const char*>(bytes->data()), bytes->size()));
        if (!entry.ok()) {
            skip(name, entry.error());
            continue;
        }
        entries_[bucket_key(entry.value())] = std::move(entry).value();
        if (report != nullptr) ++report->loaded;
    }
    return Status::success();
}

// ---- corpus.meta -----------------------------------------------------------

std::string serialize_meta(const CorpusMeta& meta) {
    std::ostringstream out;
    out << kMetaMagic << "\n";
    out << "seed: " << meta.seed << "\n";
    out << "crash_rate: " << meta.crash_rate << "\n";
    out << "hang_rate: " << meta.hang_rate << "\n";
    out << "oversize_rate: " << meta.oversize_rate << "\n";
    return out.str();
}

MetaParseResult parse_meta(std::string_view text) {
    MetaParseResult result;
    size_t first_newline = text.find('\n');
    if (first_newline == std::string_view::npos ||
        text.substr(0, first_newline) != kMetaMagic) {
        result.note = "corpus.meta is not a " + std::string(kMetaMagic) + " file";
        return result;
    }
    result.ok = true;
    // A file cut mid-line ends without '\n'; everything after the last
    // newline is the torn tail and is skipped, not trusted.
    std::string_view body = text.substr(first_newline + 1);
    if (!body.empty() && body.back() != '\n') {
        size_t last_newline = body.rfind('\n');
        std::string_view tail =
            last_newline == std::string_view::npos ? body : body.substr(last_newline + 1);
        body = last_newline == std::string_view::npos ? std::string_view{}
                                                      : body.substr(0, last_newline + 1);
        result.truncated = true;
        result.note = "torn tail ignored: \"" + std::string(tail) + "\"";
    }
    auto parse_u64 = [](std::string_view v, uint64_t* out) {
        char* end = nullptr;
        std::string s(v);
        *out = std::strtoull(s.c_str(), &end, 10);
        return end != s.c_str() && *end == '\0';
    };
    auto parse_rate = [](std::string_view v, double* out) {
        char* end = nullptr;
        std::string s(v);
        *out = std::strtod(s.c_str(), &end);
        return end != s.c_str() && *end == '\0' && *out >= 0.0 && *out <= 1.0;
    };
    size_t pos = 0;
    while (pos < body.size()) {
        size_t newline = body.find('\n', pos);
        std::string_view line = body.substr(pos, newline - pos);
        pos = newline + 1;
        size_t colon = line.find(": ");
        if (colon == std::string_view::npos) {
            result.truncated = true;
            result.note = "malformed line ignored: \"" + std::string(line) + "\"";
            continue;
        }
        std::string_view key = line.substr(0, colon);
        std::string_view value = line.substr(colon + 2);
        bool applied = true;
        if (key == "seed") {
            applied = parse_u64(value, &result.meta.seed);
        } else if (key == "crash_rate") {
            applied = parse_rate(value, &result.meta.crash_rate);
        } else if (key == "hang_rate") {
            applied = parse_rate(value, &result.meta.hang_rate);
        } else if (key == "oversize_rate") {
            applied = parse_rate(value, &result.meta.oversize_rate);
        }
        if (!applied) {
            result.truncated = true;
            result.note = "unparseable value ignored: \"" + std::string(line) + "\"";
        }
    }
    return result;
}

}  // namespace unicert::difffuzz
