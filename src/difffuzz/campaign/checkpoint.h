// unicert/difffuzz/campaign/checkpoint.h
//
// Atomically-committed checkpoint generations for campaign state. The
// generation mechanics (write-temp-fsync-rename commits, newest-valid
// recovery, stray-temp cleanup, pruning) live in core::GenerationStore;
// this wrapper binds them to the `unicert-campaign-v1` serialization and
// keeps the campaign_* error codes and CampaignState-typed API the
// campaign engine and its kill-point sweep were written against.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/generation_store.h"
#include "difffuzz/campaign/state.h"

namespace unicert::difffuzz::campaign {

// What recover() found. `found == false` means an empty (or absent)
// state directory — a fresh campaign, not an error.
struct RecoveredCheckpoint {
    CampaignState state;
    uint64_t generation = 0;
    bool found = false;
    size_t corrupt_skipped = 0;       // generations whose checksum failed
    size_t stray_temp_files = 0;      // interrupted-commit leftovers removed
    std::vector<std::string> notes;   // one line per skipped/cleaned file
};

class CheckpointStore {
public:
    // Keeps the newest `keep` generations on disk; older ones are
    // pruned (best-effort) after each successful commit.
    explicit CheckpointStore(core::Fs& fs, std::string dir, size_t keep = 3);

    const std::string& dir() const noexcept { return store_.dir(); }

    // mkdir -p the state directory.
    Status init();

    // Atomically commit `state` as generation `generation`. Idempotent
    // per generation number: re-committing the same generation is a
    // no-op. Prune failures are swallowed — an old generation left
    // behind is garbage, not corruption.
    Status commit(const CampaignState& state, uint64_t generation);

    // Newest generation whose checksum validates. Error code
    // campaign_unrecoverable when checkpoint files exist but none
    // validates (an acknowledged commit was lost — the invariant the
    // kill-point sweep asserts never fires).
    Expected<RecoveredCheckpoint> recover();

    // Highest generation commit() has acknowledged this process run.
    std::optional<uint64_t> last_committed() const noexcept {
        return store_.last_committed();
    }

    // ckpt-<16 hex digits>.ckpt
    static std::string checkpoint_file_name(uint64_t generation);
    static std::optional<uint64_t> parse_checkpoint_file_name(std::string_view name);

private:
    core::GenerationStore store_;
};

}  // namespace unicert::difffuzz::campaign
