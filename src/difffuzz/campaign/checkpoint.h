// unicert/difffuzz/campaign/checkpoint.h
//
// Atomically-committed checkpoint generations for campaign state,
// written through the core::Fs seam (so the kill-point sweep can run
// the whole commit path over faultsim::FaultyFs). Each generation is
// one self-checking `unicert-campaign-v1` file, landed with the
// write-temp-fsync-rename pattern the durable CT-log store established:
// a crash at any filesystem operation leaves either the previous
// generation or the new one fully intact, never a mix. Recovery scans
// the directory newest-first and resumes from the first generation
// whose checksum validates; torn or bit-rotted files are skipped (and
// noted), stray temp files from an interrupted commit are removed.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/fs.h"
#include "difffuzz/campaign/state.h"

namespace unicert::difffuzz::campaign {

// What recover() found. `found == false` means an empty (or absent)
// state directory — a fresh campaign, not an error.
struct RecoveredCheckpoint {
    CampaignState state;
    uint64_t generation = 0;
    bool found = false;
    size_t corrupt_skipped = 0;       // generations whose checksum failed
    size_t stray_temp_files = 0;      // interrupted-commit leftovers removed
    std::vector<std::string> notes;   // one line per skipped/cleaned file
};

class CheckpointStore {
public:
    // Keeps the newest `keep` generations on disk; older ones are
    // pruned (best-effort) after each successful commit.
    explicit CheckpointStore(core::Fs& fs, std::string dir, size_t keep = 3);

    const std::string& dir() const noexcept { return dir_; }

    // mkdir -p the state directory.
    Status init();

    // Atomically commit `state` as generation `generation`. Idempotent
    // per generation number: re-committing the same generation is a
    // no-op. Prune failures are swallowed — an old generation left
    // behind is garbage, not corruption.
    Status commit(const CampaignState& state, uint64_t generation);

    // Newest generation whose checksum validates. Error code
    // campaign_unrecoverable when checkpoint files exist but none
    // validates (an acknowledged commit was lost — the invariant the
    // kill-point sweep asserts never fires).
    Expected<RecoveredCheckpoint> recover();

    // Highest generation commit() has acknowledged this process run.
    std::optional<uint64_t> last_committed() const noexcept { return last_committed_; }

    // ckpt-<16 hex digits>.ckpt
    static std::string checkpoint_file_name(uint64_t generation);
    static std::optional<uint64_t> parse_checkpoint_file_name(std::string_view name);

private:
    core::Fs* fs_;
    std::string dir_;
    size_t keep_;
    std::optional<uint64_t> last_committed_;
};

}  // namespace unicert::difffuzz::campaign
