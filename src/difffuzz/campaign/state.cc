#include "difffuzz/campaign/state.h"

#include <charconv>
#include <sstream>

#include "crypto/sha256.h"

namespace unicert::difffuzz::campaign {
namespace {

constexpr std::string_view kChecksumKey = "checksum: ";

bool parse_u64_field(std::string_view text, uint64_t* out) {
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
    return ec == std::errc{} && ptr == text.data() + text.size();
}

// Split "a b c" on single spaces; returns false when the field count
// does not match.
bool split_fields(std::string_view line, std::vector<std::string_view>& out, size_t count) {
    out.clear();
    size_t pos = 0;
    while (pos <= line.size()) {
        size_t space = line.find(' ', pos);
        if (space == std::string_view::npos) space = line.size();
        out.push_back(line.substr(pos, space - pos));
        pos = space + 1;
    }
    return out.size() == count;
}

}  // namespace

std::string serialize_state(const CampaignState& state) {
    std::ostringstream out;
    out << kStateMagic << "\n";
    out << "seed: " << state.seed << "\n";
    out << "next_salt: " << state.next_salt << "\n";
    out << "batches_done: " << state.batches_done << "\n";
    out << "evals: " << state.evals << "\n";
    out << "failures: " << state.failures << "\n";
    out << "quarantined: " << state.quarantined << "\n";
    for (const std::string& key : state.buckets) {
        out << "bucket: " << key << "\n";
    }
    for (const SeedEntry& entry : state.corpus) {
        out << "seed_entry: " << entry.id << " " << entry.energy << " " << entry.discoveries
            << " " << entry.trials << " " << hex_encode(entry.payload) << "\n";
    }
    std::string body = out.str();
    crypto::Digest digest = crypto::sha256(
        BytesView(reinterpret_cast<const uint8_t*>(body.data()), body.size()));
    body += std::string(kChecksumKey) + hex_encode(digest) + "\n";
    return body;
}

Expected<CampaignState> parse_state(std::string_view text) {
    // Magic first, so a wrong-format file reads as such rather than as
    // a torn checkpoint.
    if (!text.starts_with(kStateMagic) ||
        (text.size() > kStateMagic.size() && text[kStateMagic.size()] != '\n')) {
        return Error{"campaign_bad_magic", "not a unicert-campaign-v1 checkpoint"};
    }
    // The checksum line must be the last line and must cover everything
    // before it — a file cut anywhere (even mid-checksum) fails here.
    size_t trailer = text.rfind(kChecksumKey);
    if (trailer == std::string_view::npos || trailer + kChecksumKey.size() + 65 != text.size() ||
        text.back() != '\n') {
        return Error{"campaign_truncated", "checkpoint has no complete checksum trailer"};
    }
    std::string_view body = text.substr(0, trailer);
    std::string_view stored = text.substr(trailer + kChecksumKey.size(), 64);
    crypto::Digest digest = crypto::sha256(
        BytesView(reinterpret_cast<const uint8_t*>(body.data()), body.size()));
    if (hex_encode(digest) != stored) {
        return Error{"campaign_checksum", "checkpoint checksum mismatch"};
    }

    std::istringstream in{std::string(body)};
    std::string line;
    if (!std::getline(in, line) || line != kStateMagic) {
        return Error{"campaign_bad_magic", "not a unicert-campaign-v1 checkpoint"};
    }
    CampaignState state;
    std::vector<std::string_view> fields;
    while (std::getline(in, line)) {
        size_t colon = line.find(": ");
        if (colon == std::string::npos) {
            return Error{"campaign_bad_field", "malformed line: " + line};
        }
        std::string_view key(line.data(), colon);
        std::string_view value(line.data() + colon + 2, line.size() - colon - 2);
        bool ok = true;
        if (key == "seed") {
            ok = parse_u64_field(value, &state.seed);
        } else if (key == "next_salt") {
            ok = parse_u64_field(value, &state.next_salt);
        } else if (key == "batches_done") {
            ok = parse_u64_field(value, &state.batches_done);
        } else if (key == "evals") {
            ok = parse_u64_field(value, &state.evals);
        } else if (key == "failures") {
            ok = parse_u64_field(value, &state.failures);
        } else if (key == "quarantined") {
            ok = parse_u64_field(value, &state.quarantined);
        } else if (key == "bucket") {
            state.buckets.insert(std::string(value));
        } else if (key == "seed_entry") {
            SeedEntry entry;
            ok = split_fields(value, fields, 5) && parse_u64_field(fields[0], &entry.id) &&
                 parse_u64_field(fields[1], &entry.energy) &&
                 parse_u64_field(fields[2], &entry.discoveries) &&
                 parse_u64_field(fields[3], &entry.trials);
            if (ok) {
                entry.payload = hex_decode(fields[4]);
                ok = !entry.payload.empty() || fields[4].empty();
            }
            if (ok) state.corpus.push_back(std::move(entry));
        }
        // Unknown keys are ignored for forward compatibility; the
        // checksum already guarantees they are not corruption.
        if (!ok) return Error{"campaign_bad_field", "malformed line: " + line};
    }
    return state;
}

}  // namespace unicert::difffuzz::campaign
