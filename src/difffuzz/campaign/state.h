// unicert/difffuzz/campaign/state.h
//
// The complete persistent state of one feedback-guided fuzzing
// campaign, and its checksummed on-disk serialization (format
// `unicert-campaign-v1`, DESIGN.md section 11). Everything the engine
// needs to continue a run lives here: the live seed corpus with its
// per-seed mutation-energy accounting, the set of discovered
// (library x outcome x signature) buckets, cumulative counters, and
// the input cursor `next_salt` that doubles as the in-flight ledger —
// because every mutation/selection decision is a pure hash of
// (campaign seed, salt), replaying salts past the cursor reproduces
// any work that was in flight when the process died, so no explicit
// redo log is needed.
//
// Serialization is line-oriented text with a trailing SHA-256 line
// covering every preceding byte, so a torn tail or a flipped bit is
// always detected (parse fails, recovery falls back to the previous
// committed generation).
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/expected.h"

namespace unicert::difffuzz::campaign {

inline constexpr std::string_view kStateMagic = "unicert-campaign-v1";

// One live-corpus seed. `id` is stable and deterministic: the initial
// seeds take 0..n-1, a mutant promoted into the corpus takes
// n + the salt that produced it, so two runs of the same campaign
// assign identical ids regardless of job count.
struct SeedEntry {
    uint64_t id = 0;
    uint64_t energy = 0;       // mutation-energy driving weighted selection
    uint64_t discoveries = 0;  // novel buckets found by this seed's mutants
    uint64_t trials = 0;       // mutants generated from this seed
    Bytes payload;

    bool operator==(const SeedEntry&) const = default;
};

struct CampaignState {
    uint64_t seed = 1;         // campaign RNG seed, pinned at start
    uint64_t next_salt = 0;    // mutated inputs generated so far (the cursor)
    uint64_t batches_done = 0;
    uint64_t evals = 0;        // supported (library, input) model evaluations
    uint64_t failures = 0;     // failing (library, input) pairs observed
    uint64_t quarantined = 0;  // inputs abandoned by the worker retry ladder
    std::vector<SeedEntry> corpus;   // insertion-ordered live corpus
    std::set<std::string> buckets;   // discovered bucket keys

    bool operator==(const CampaignState&) const = default;
};

// Text serialization with the SHA-256 trailer. Byte-for-byte
// deterministic in the state, which is what the resume-parity tests
// compare.
std::string serialize_state(const CampaignState& state);

// Error codes: campaign_bad_magic, campaign_truncated (checksum line
// missing — torn tail), campaign_checksum (trailer mismatch — bit
// rot), campaign_bad_field.
Expected<CampaignState> parse_state(std::string_view text);

}  // namespace unicert::difffuzz::campaign
