#include "difffuzz/campaign/checkpoint.h"

#include <algorithm>
#include <cstdio>

namespace unicert::difffuzz::campaign {
namespace {

constexpr std::string_view kPrefix = "ckpt-";
constexpr std::string_view kSuffix = ".ckpt";

bool is_hex_lower(char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

}  // namespace

CheckpointStore::CheckpointStore(core::Fs& fs, std::string dir, size_t keep)
    : fs_(&fs), dir_(std::move(dir)), keep_(std::max<size_t>(keep, 1)) {}

std::string CheckpointStore::checkpoint_file_name(uint64_t generation) {
    char buf[38];
    std::snprintf(buf, sizeof(buf), "ckpt-%016llx.ckpt",
                  static_cast<unsigned long long>(generation));
    return buf;
}

std::optional<uint64_t> CheckpointStore::parse_checkpoint_file_name(std::string_view name) {
    if (name.size() != kPrefix.size() + 16 + kSuffix.size()) return std::nullopt;
    if (!name.starts_with(kPrefix) || !name.ends_with(kSuffix)) return std::nullopt;
    uint64_t generation = 0;
    for (size_t i = 0; i < 16; ++i) {
        char c = name[kPrefix.size() + i];
        if (!is_hex_lower(c)) return std::nullopt;
        generation = (generation << 4) | static_cast<uint64_t>(
                                             c <= '9' ? c - '0' : c - 'a' + 10);
    }
    return generation;
}

Status CheckpointStore::init() { return fs_->make_dirs(dir_); }

Status CheckpointStore::commit(const CampaignState& state, uint64_t generation) {
    if (last_committed_ && *last_committed_ == generation) return Status::success();
    std::string text = serialize_state(state);
    Status st = core::atomic_write_file(*fs_, dir_ + "/" + checkpoint_file_name(generation),
                                        std::string_view(text), dir_);
    if (!st.ok()) return st;
    last_committed_ = generation;

    // Best-effort prune of generations older than the newest `keep_`.
    auto names = fs_->list_dir(dir_);
    if (!names.ok()) return Status::success();
    std::vector<uint64_t> generations;
    for (const std::string& name : *names) {
        if (auto gen = parse_checkpoint_file_name(name)) generations.push_back(*gen);
    }
    std::sort(generations.begin(), generations.end());
    if (generations.size() <= keep_) return Status::success();
    for (size_t i = 0; i + keep_ < generations.size(); ++i) {
        (void)fs_->remove(dir_ + "/" + checkpoint_file_name(generations[i]));
    }
    return Status::success();
}

Expected<RecoveredCheckpoint> CheckpointStore::recover() {
    RecoveredCheckpoint recovered;
    auto names = fs_->list_dir(dir_);
    if (!names.ok()) {
        // An absent directory is a campaign that never started, not an
        // error. (Fs::exists is file-only on some implementations, so
        // the listing itself is the existence probe.)
        if (names.error().code == "fs_not_found") return recovered;
        return Error{"campaign_state_unreadable", "cannot read state dir " + dir_};
    }

    std::vector<uint64_t> generations;
    for (const std::string& name : *names) {
        if (auto gen = parse_checkpoint_file_name(name)) {
            generations.push_back(*gen);
        } else if (name.ends_with(".tmp")) {
            // An interrupted commit; the generation it was writing was
            // never acknowledged, so dropping it loses nothing.
            (void)fs_->remove(dir_ + "/" + name);
            ++recovered.stray_temp_files;
            recovered.notes.push_back("removed stray temp file " + name);
        }
    }
    std::sort(generations.rbegin(), generations.rend());

    for (uint64_t generation : generations) {
        std::string name = checkpoint_file_name(generation);
        auto bytes = fs_->read_file(dir_ + "/" + name);
        if (!bytes.ok()) {
            ++recovered.corrupt_skipped;
            recovered.notes.push_back(name + ": " + bytes.error().message);
            continue;
        }
        auto state = parse_state(
            std::string_view(reinterpret_cast<const char*>(bytes->data()), bytes->size()));
        if (!state.ok()) {
            ++recovered.corrupt_skipped;
            recovered.notes.push_back(name + ": " + state.error().message);
            continue;
        }
        recovered.state = std::move(state).value();
        recovered.generation = generation;
        recovered.found = true;
        last_committed_ = generation;
        return recovered;
    }

    if (!generations.empty()) {
        // Commits are atomic, so a directory full of invalid
        // checkpoints means an acknowledged generation was destroyed.
        return Error{"campaign_unrecoverable",
                     "no checkpoint in " + dir_ + " validates (" +
                         std::to_string(generations.size()) + " present)"};
    }
    return recovered;
}

}  // namespace unicert::difffuzz::campaign
