#include "difffuzz/campaign/checkpoint.h"

namespace unicert::difffuzz::campaign {

CheckpointStore::CheckpointStore(core::Fs& fs, std::string dir, size_t keep)
    : store_(fs, std::move(dir), "campaign", keep) {}

std::string CheckpointStore::checkpoint_file_name(uint64_t generation) {
    return core::GenerationStore::file_name(generation);
}

std::optional<uint64_t> CheckpointStore::parse_checkpoint_file_name(std::string_view name) {
    return core::GenerationStore::parse_file_name(name);
}

Status CheckpointStore::init() { return store_.init(); }

Status CheckpointStore::commit(const CampaignState& state, uint64_t generation) {
    return store_.commit(serialize_state(state), generation);
}

Expected<RecoveredCheckpoint> CheckpointStore::recover() {
    auto raw = store_.recover([](std::string_view payload) -> Status {
        auto state = parse_state(payload);
        if (!state.ok()) return state.error();
        return Status::success();
    });
    if (!raw.ok()) return raw.error();

    RecoveredCheckpoint recovered;
    recovered.generation = raw->generation;
    recovered.found = raw->found;
    recovered.corrupt_skipped = raw->corrupt_skipped;
    recovered.stray_temp_files = raw->stray_temp_files;
    recovered.notes = std::move(raw->notes);
    if (raw->found) {
        auto state = parse_state(raw->payload);
        if (!state.ok()) return state.error();  // validated above; unreachable
        recovered.state = std::move(state).value();
    }
    return recovered;
}

}  // namespace unicert::difffuzz::campaign
