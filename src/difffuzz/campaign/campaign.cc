#include "difffuzz/campaign/campaign.h"

#include <algorithm>
#include <sstream>

#include "core/executor.h"
#include "faultsim/der_mutator.h"

namespace unicert::difffuzz::campaign {
namespace {

// splitmix64, the repo's standard decision hash.
uint64_t mix64(uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

size_t initial_seed_count() {
    static const size_t count = DiffFuzzer::seed_inputs().size();
    return count;
}

faultsim::FaultPlanOptions harness_plan_options(const CampaignOptions& options) {
    faultsim::FaultPlanOptions plan;
    plan.seed = options.seed ^ 0xCA3BA16EULL;  // decoupled from the mutation stream
    plan.transient_rate = options.flake_rate;
    plan.poison_rate = options.poison_rate;
    plan.transient_failures = options.flake_failures;
    return plan;
}

FuzzOptions eval_options(const CampaignOptions& options) {
    FuzzOptions fuzz;
    fuzz.seed = options.seed;
    fuzz.context = options.context;
    fuzz.budget = options.budget;
    return fuzz;
}

}  // namespace

// One planned input: filled sequentially, evaluated on a worker,
// merged back in salt order.
struct Campaign::Slot {
    uint64_t salt = 0;
    size_t parent = 0;
    Bytes input;
    std::vector<InputEval> evals;
    bool ok = false;
    Error error;
    size_t retries = 0;
};

Campaign::Campaign(CampaignOptions options, CrashCorpus& corpus, CheckpointStore& store,
                   tlslib::LibraryModel& model, core::Clock& clock)
    : options_(options),
      corpus_(&corpus),
      store_(&store),
      model_(&model),
      clock_(&clock),
      fuzzer_(corpus, eval_options(options), model, clock),
      harness_plan_(harness_plan_options(options)) {}

Status Campaign::start_fresh() {
    state_ = CampaignState{};
    state_.seed = options_.seed;
    std::vector<Bytes> seeds = DiffFuzzer::seed_inputs();
    for (size_t i = 0; i < seeds.size(); ++i) {
        SeedEntry entry;
        entry.id = i;
        entry.energy = std::max<uint64_t>(options_.base_energy, 1);
        entry.payload = std::move(seeds[i]);
        state_.corpus.push_back(std::move(entry));
    }
    if (Status st = store_->init(); !st.ok()) return st;
    return store_->commit(state_, 0);
}

Expected<RecoveredCheckpoint> Campaign::resume() {
    auto recovered = store_->recover();
    if (!recovered.ok()) return recovered.error();
    if (!recovered->found) {
        return Error{"campaign_no_checkpoint", "no checkpoint in " + store_->dir()};
    }
    state_ = recovered->state;
    return recovered;
}

size_t Campaign::pick_parent(uint64_t salt) const {
    uint64_t total = 0;
    for (const SeedEntry& entry : state_.corpus) total += entry.energy;
    uint64_t r = mix64(state_.seed ^ mix64(salt ^ 0x5CA1AB1EULL)) % total;
    for (size_t i = 0; i < state_.corpus.size(); ++i) {
        if (r < state_.corpus[i].energy) return i;
        r -= state_.corpus[i].energy;
    }
    return state_.corpus.size() - 1;
}

void Campaign::evaluate_slot(Slot& slot) {
    int attempt_no = 0;
    auto attempt = [&]() -> Expected<std::vector<InputEval>> {
        int attempt_index = attempt_no++;
        // Harness-level fault injection, keyed by salt so the schedule
        // is identical at any job count or retry interleaving.
        if (harness_plan_.fires(faultsim::FaultKind::kPoison, slot.salt)) {
            return Error{"eval_poisoned", "injected permanent worker failure"};
        }
        if (harness_plan_.fires(faultsim::FaultKind::kTransient, slot.salt) &&
            attempt_index < options_.flake_failures) {
            return Error{"timeout", "injected transient worker failure"};
        }
        // Hard fence: evaluate_input contains model misbehaviour
        // itself, but a harness bug must not take the campaign down.
        try {
            return fuzzer_.evaluate_input(slot.input);
        } catch (const std::exception& e) {
            return Error{"eval_crashed", e.what()};
        } catch (...) {
            return Error{"eval_crashed", "non-standard exception"};
        }
    };
    core::RetryOutcome outcome;
    auto result =
        core::retry<std::vector<InputEval>>(options_.retry, *clock_, attempt, &outcome);
    slot.retries = outcome.retries;
    if (result.ok()) {
        slot.evals = std::move(result).value();
        slot.ok = true;
    } else {
        slot.error = result.error();
    }
}

void Campaign::merge_slot(const Slot& slot, CampaignReport& report) {
    report.retried += slot.retries;
    SeedEntry& parent = state_.corpus[slot.parent];
    ++parent.trials;
    if (!slot.ok) {
        // The ladder gave up (classify_failure: quarantine, not abort)
        // — the salt is consumed, the schedule moves on undisturbed.
        ++state_.quarantined;
        ++report.quarantined;
        return;
    }
    uint64_t found = 0;
    for (const InputEval& eval : slot.evals) {
        if (eval.outcome != tlslib::EvalOutcome::kUnsupported) ++state_.evals;
        if (!tlslib::eval_outcome_is_failure(eval.outcome)) continue;
        ++state_.failures;
        CrashEntry entry;
        entry.lib = eval.lib;
        entry.scenario = DiffFuzzer::derive_scenario(slot.input, options_.context);
        entry.outcome = eval.outcome;
        entry.signature = eval.signature;
        entry.detail = eval.detail;
        entry.payload = slot.input;
        if (!state_.buckets.insert(bucket_key(entry)).second) continue;
        ++found;
        // add() may report "already present" after a resume reloaded
        // the entry from disk; the content is deterministic, so either
        // way the corpus holds the same bytes.
        (void)corpus_->add(entry);
    }
    report.new_buckets += found;
    if (found > 0) {
        parent.discoveries += found;
        parent.energy = std::min(options_.max_energy, parent.energy + options_.base_energy);
        SeedEntry mutant;
        mutant.id = initial_seed_count() + slot.salt;
        mutant.energy = std::max<uint64_t>(options_.base_energy, 1);
        mutant.payload = slot.input;
        state_.corpus.push_back(std::move(mutant));
    } else {
        parent.energy = std::max<uint64_t>(
            1, parent.energy - std::max<uint64_t>(1, parent.energy / 8));
    }
}

void Campaign::evict_to_cap() {
    const size_t cap = std::max<size_t>(options_.corpus_max, 1);
    while (state_.corpus.size() > cap) {
        size_t victim = 0;
        for (size_t i = 1; i < state_.corpus.size(); ++i) {
            const SeedEntry& a = state_.corpus[i];
            const SeedEntry& b = state_.corpus[victim];
            const bool worse = a.discoveries != b.discoveries ? a.discoveries < b.discoveries
                               : a.energy != b.energy         ? a.energy < b.energy
                                                              : a.id > b.id;
            if (worse) victim = i;
        }
        state_.corpus.erase(state_.corpus.begin() +
                            static_cast<std::ptrdiff_t>(victim));
    }
}

CampaignReport Campaign::run() {
    CampaignReport report;
    if (options_.max_evals == 0 && options_.max_wall_ms == 0) {
        report.io = Error{"campaign_no_stop_condition",
                          "set max_evals and/or max_wall_ms; unbounded runs are refused"};
        return report;
    }
    if (state_.corpus.empty()) {
        report.io = Error{"campaign_not_started", "call start_fresh() or resume() first"};
        return report;
    }

    const int64_t start_ms = clock_->now_ms();
    core::Executor executor(std::max<size_t>(options_.jobs, 1));
    faultsim::DerMutator mutator(state_.seed);

    for (;;) {
        if (options_.max_evals > 0 && state_.next_salt >= options_.max_evals) {
            report.stopped_by_evals = true;
            break;
        }
        if (options_.max_wall_ms > 0 && clock_->now_ms() - start_ms >= options_.max_wall_ms) {
            report.stopped_by_wall = true;
            break;
        }

        // Plan the batch sequentially against the current state; every
        // decision is a pure hash of (seed, salt).
        size_t batch = std::max<size_t>(options_.batch_size, 1);
        if (options_.max_evals > 0) {
            batch = static_cast<size_t>(std::min<uint64_t>(
                batch, options_.max_evals - state_.next_salt));
        }
        std::vector<Slot> slots(batch);
        for (size_t k = 0; k < batch; ++k) {
            Slot& slot = slots[k];
            slot.salt = state_.next_salt + k;
            slot.parent = pick_parent(slot.salt);
            slot.input = mutator.mutate(state_.corpus[slot.parent].payload, slot.salt);
        }

        // Fan out, then merge in salt order: byte-identical state at
        // any job count.
        for (Slot& slot : slots) {
            executor.submit([this, &slot] { evaluate_slot(slot); });
        }
        executor.wait_idle();
        for (const Slot& slot : slots) merge_slot(slot, report);
        evict_to_cap();

        state_.next_salt += batch;
        ++state_.batches_done;
        report.inputs += batch;

        if (const Status& st = corpus_->persist_status(); !st.ok()) {
            report.io = st;
            break;
        }
        if (options_.checkpoint_every > 0 &&
            state_.batches_done % options_.checkpoint_every == 0) {
            if (Status st = store_->commit(state_, state_.batches_done); !st.ok()) {
                report.io = st;
                break;
            }
            ++report.checkpoints;
        }
    }

    // Commit whatever progress the stop condition left uncheckpointed.
    if (report.io.ok() &&
        (!store_->last_committed() || *store_->last_committed() != state_.batches_done)) {
        if (Status st = store_->commit(state_, state_.batches_done); st.ok()) {
            ++report.checkpoints;
        } else {
            report.io = st;
        }
    }
    return report;
}

std::string describe_state(const CampaignState& state, uint64_t generation) {
    std::ostringstream out;
    out << "gen " << generation << " | inputs " << state.next_salt << " | evals "
        << state.evals << " | buckets " << state.buckets.size() << " | corpus "
        << state.corpus.size() << " | failures " << state.failures << " | quarantined "
        << state.quarantined;
    return out.str();
}

}  // namespace unicert::difffuzz::campaign
