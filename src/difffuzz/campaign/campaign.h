// unicert/difffuzz/campaign/campaign.h
//
// Feedback-guided, crash-survivable differential fuzzing campaigns
// (DESIGN.md section 11). Where DiffFuzzer::run mutates its five fixed
// seeds blindly, a Campaign closes the loop: mutants are scored by the
// novel (library x outcome x signature) buckets they discover, a
// bucket-discovering mutant is promoted into the live corpus, and
// mutation energy is scheduled toward seeds whose offspring keep
// finding new buckets (energy doubles on discovery, decays otherwise —
// the corpus stays minimized because only coverage-contributing inputs
// ever enter it).
//
// Execution model: inputs are planned sequentially (weighted energy
// pick + structure-aware mutation, both pure hashes of the campaign
// seed and the global input cursor), fanned out across a
// core::Executor pool for the expensive 9-library evaluation, then
// merged back in cursor order — so the final state is byte-identical
// at any job count. A worker evaluation that crashes or hangs at the
// harness level is retried through the core::resilience ladder
// (transient faults) or quarantined (permanent ones) without poisoning
// the schedule: the input's salt is consumed either way.
//
// Robustness core: after every checkpoint interval the full campaign
// state is committed as a checksummed generation through the core::Fs
// seam (CheckpointStore). Because planning is deterministic in
// (seed, salt), a kill -9 at any filesystem operation resumes from the
// last committed generation and replays the lost tail identically —
// resumed campaigns are byte-equivalent to uninterrupted ones, the
// property the kill-point sweep in tests/difffuzz_campaign_recovery_
// test.cc proves over every FaultyFs fault site.
//
// Caveat for injected-clock runs: retry-ladder sleeps advance the
// shared clock, so keep per-call wall budgets comfortably above the
// ladder's worst-case total sleep or healthy evaluations can be
// misclassified as hangs.
#pragma once

#include <string>

#include "core/resilience.h"
#include "difffuzz/campaign/checkpoint.h"
#include "difffuzz/crash_corpus.h"
#include "difffuzz/fuzzer.h"
#include "faultsim/fault_plan.h"

namespace unicert::difffuzz::campaign {

struct CampaignOptions {
    uint64_t seed = 1;
    size_t jobs = 1;            // executor workers evaluating a batch
    size_t batch_size = 16;     // inputs planned per scheduling round
    uint64_t checkpoint_every = 4;  // batches per committed generation

    // Stop conditions, both campaign-cumulative. max_evals counts
    // mutated inputs (so a resumed run stops at the same total as an
    // uninterrupted one); max_wall_ms bounds this process run against
    // the injectable Clock. At least one must be non-zero.
    uint64_t max_evals = 0;
    int64_t max_wall_ms = 0;

    tlslib::FieldContext context = tlslib::FieldContext::kDnName;
    tlslib::EvalBudget budget;  // per-call containment budget

    // Energy scheduling.
    uint64_t base_energy = 16;  // initial energy; also the discovery boost
    uint64_t max_energy = 128;
    size_t corpus_max = 64;     // live-corpus cap; least productive evicted

    // Harness-level worker fault injection (deterministic per input
    // salt, for supervision tests and chaos CI): flakes fail
    // `flake_failures` times then recover under the retry ladder;
    // poisoned inputs fail permanently and are quarantined.
    double flake_rate = 0.0;
    double poison_rate = 0.0;
    int flake_failures = 2;
    core::RetryPolicy retry{.max_attempts = 4, .initial_backoff_ms = 1, .max_backoff_ms = 8};
};

// What one run() call did (state counters are cumulative across the
// campaign; these are per-invocation).
struct CampaignReport {
    uint64_t inputs = 0;        // mutated inputs evaluated this run
    uint64_t new_buckets = 0;   // buckets discovered this run
    uint64_t retried = 0;       // worker evaluations retried by the ladder
    uint64_t quarantined = 0;   // inputs abandoned after the ladder gave up
    uint64_t checkpoints = 0;   // generations committed this run
    bool stopped_by_evals = false;
    bool stopped_by_wall = false;
    Status io;                  // first checkpoint/corpus persist failure
};

class Campaign {
public:
    // `corpus` receives one CrashEntry per discovered bucket (its
    // persist failures stop the campaign); `store` owns checkpoint
    // durability. Both write through whatever Fs they were built on.
    Campaign(CampaignOptions options, CrashCorpus& corpus, CheckpointStore& store,
             tlslib::LibraryModel& model = tlslib::builtin_model(),
             core::Clock& clock = core::system_clock());

    // Initialize generation 0 (the structural seed inputs at base
    // energy) and commit it, so a kill before the first interval still
    // resumes cleanly.
    Status start_fresh();

    // Continue from the newest valid checkpoint generation. Error code
    // campaign_no_checkpoint when the state directory has none.
    Expected<RecoveredCheckpoint> resume();

    // Run batches until a stop condition or an I/O failure; commits a
    // final generation for whatever progress was made.
    CampaignReport run();

    const CampaignOptions& options() const noexcept { return options_; }
    const CampaignState& state() const noexcept { return state_; }

private:
    struct Slot;  // one planned input in flight

    size_t pick_parent(uint64_t salt) const;
    void evaluate_slot(Slot& slot);
    void merge_slot(const Slot& slot, CampaignReport& report);
    void evict_to_cap();

    CampaignOptions options_;
    CrashCorpus* corpus_;
    CheckpointStore* store_;
    tlslib::LibraryModel* model_;
    core::Clock* clock_;
    CampaignState state_;
    DiffFuzzer fuzzer_;  // evaluation engine (evaluate_input only)
    faultsim::FaultPlan harness_plan_;
};

// One-line human summary ("gen 12 | inputs 384 | buckets 17 | ...").
std::string describe_state(const CampaignState& state, uint64_t generation);

}  // namespace unicert::difffuzz::campaign
