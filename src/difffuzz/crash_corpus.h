// unicert/difffuzz/crash_corpus.h
//
// Triaged, deduplicated corpus of inputs that made a supervised
// differential evaluation fail. Every failing input is bucketed by
// (library × outcome × divergence signature); one minimized
// representative per bucket is kept, and — when a directory is
// configured — persisted as a small self-describing text file so
// `unicert_diff --replay` can re-run every bucket deterministically.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/expected.h"
#include "core/fs.h"
#include "tlslib/supervisor.h"

namespace unicert::difffuzz {

// One failing input. `payload` is the full (minimized) DER input the
// fuzzer fed to the engine; the scenario is re-derived from it on
// replay, the copy here is for triage display.
struct CrashEntry {
    tlslib::Library lib{};
    tlslib::Scenario scenario{};
    tlslib::EvalOutcome outcome = tlslib::EvalOutcome::kCrash;
    std::string signature;  // divergence/crash signature (hex, 16 chars)
    std::string detail;     // one-line diagnostic
    Bytes payload;
};

// Stable dedup key: "<library-slug>.<outcome>.<signature>".
std::string bucket_key(const CrashEntry& e);

// The on-disk text format (versioned, hex payload).
std::string serialize_entry(const CrashEntry& e);
Expected<CrashEntry> parse_entry(std::string_view text);

// What a (lenient) corpus load salvaged. Individual entries that are
// truncated, bit-rotted or otherwise unparseable are skipped and
// reported here instead of aborting the load — a half-written file
// must never block replay of the rest of the corpus.
struct LoadReport {
    size_t loaded = 0;
    size_t skipped = 0;
    std::vector<std::string> notes;  // one line per skipped file
};

// ---- corpus.meta: the engine parameters that filled a corpus -------------
//
// Fuzz/campaign runs record their seed and fault-injection rates next
// to the corpus so --replay reconstructs the identical engine. The
// file is tiny and atomically written, but a crashed writer (or a
// short write on a sick disk) can still leave a torn tail — parsing is
// therefore lenient: every complete `key: value` line is applied and a
// cut-off tail is reported, not fatal.

struct CorpusMeta {
    uint64_t seed = 1;
    double crash_rate = 0.0;
    double hang_rate = 0.0;
    double oversize_rate = 0.0;
};

std::string serialize_meta(const CorpusMeta& meta);

struct MetaParseResult {
    CorpusMeta meta;
    bool ok = false;         // magic line recognized; `meta` holds parsed fields
    bool truncated = false;  // a torn/partial tail was detected and skipped
    std::string note;        // human diagnostic when !ok or truncated
};

MetaParseResult parse_meta(std::string_view text);

class CrashCorpus {
public:
    // Empty `dir` keeps the corpus in memory only. All I/O goes through
    // `fs` (the process filesystem when null), so crash tests can run
    // the corpus over a fault-injected substrate.
    explicit CrashCorpus(std::string dir = {}, core::Fs* fs = nullptr);

    const std::string& dir() const noexcept { return dir_; }

    // Insert (and persist) the entry unless its bucket already exists.
    // Returns true when the bucket is new.
    bool add(const CrashEntry& e);

    // Replace the representative for an existing bucket (after
    // minimization shrank its payload).
    void update(const CrashEntry& e);

    bool contains(const std::string& key) const;
    size_t size() const noexcept { return entries_.size(); }
    const std::map<std::string, CrashEntry>& entries() const noexcept { return entries_; }

    // Load every *.crash file from `dir`, replacing in-memory state.
    // Lenient per entry: an unreadable or unparseable file (torn tail,
    // bit rot, partial write) is skipped and recorded in `report`, so
    // one damaged entry never aborts a replay of the rest. Only a
    // directory-level failure is an error.
    Status load(LoadReport* report = nullptr);

    // First persist failure observed by add()/update(), success when
    // every write landed. Callers that accumulated buckets silently
    // check this once at the end and fail loudly instead of shipping a
    // corpus with holes.
    const Status& persist_status() const noexcept { return persist_status_; }

private:
    Status persist(const CrashEntry& e);

    std::string dir_;
    core::Fs* fs_;
    std::map<std::string, CrashEntry> entries_;
    Status persist_status_;
};

}  // namespace unicert::difffuzz
