// unicert/difffuzz/crash_corpus.h
//
// Triaged, deduplicated corpus of inputs that made a supervised
// differential evaluation fail. Every failing input is bucketed by
// (library × outcome × divergence signature); one minimized
// representative per bucket is kept, and — when a directory is
// configured — persisted as a small self-describing text file so
// `unicert_diff --replay` can re-run every bucket deterministically.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/expected.h"
#include "core/fs.h"
#include "tlslib/supervisor.h"

namespace unicert::difffuzz {

// One failing input. `payload` is the full (minimized) DER input the
// fuzzer fed to the engine; the scenario is re-derived from it on
// replay, the copy here is for triage display.
struct CrashEntry {
    tlslib::Library lib{};
    tlslib::Scenario scenario{};
    tlslib::EvalOutcome outcome = tlslib::EvalOutcome::kCrash;
    std::string signature;  // divergence/crash signature (hex, 16 chars)
    std::string detail;     // one-line diagnostic
    Bytes payload;
};

// Stable dedup key: "<library-slug>.<outcome>.<signature>".
std::string bucket_key(const CrashEntry& e);

// The on-disk text format (versioned, hex payload).
std::string serialize_entry(const CrashEntry& e);
Expected<CrashEntry> parse_entry(std::string_view text);

class CrashCorpus {
public:
    // Empty `dir` keeps the corpus in memory only. All I/O goes through
    // `fs` (the process filesystem when null), so crash tests can run
    // the corpus over a fault-injected substrate.
    explicit CrashCorpus(std::string dir = {}, core::Fs* fs = nullptr);

    const std::string& dir() const noexcept { return dir_; }

    // Insert (and persist) the entry unless its bucket already exists.
    // Returns true when the bucket is new.
    bool add(const CrashEntry& e);

    // Replace the representative for an existing bucket (after
    // minimization shrank its payload).
    void update(const CrashEntry& e);

    bool contains(const std::string& key) const;
    size_t size() const noexcept { return entries_.size(); }
    const std::map<std::string, CrashEntry>& entries() const noexcept { return entries_; }

    // Load every *.crash file from `dir`, replacing in-memory state.
    Status load();

    // First persist failure observed by add()/update(), success when
    // every write landed. Callers that accumulated buckets silently
    // check this once at the end and fail loudly instead of shipping a
    // corpus with holes.
    const Status& persist_status() const noexcept { return persist_status_; }

private:
    Status persist(const CrashEntry& e);

    std::string dir_;
    core::Fs* fs_;
    std::map<std::string, CrashEntry> entries_;
    Status persist_status_;
};

}  // namespace unicert::difffuzz
