#include "difffuzz/faulty_model.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace unicert::difffuzz {
namespace {

uint64_t mix64(uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

double unit(uint64_t h) noexcept {
    return static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
}

// FNV-1a over the payload, mixed with seed and library: the fault
// decision is a pure function of content, so replay re-triggers it.
uint64_t content_hash(uint64_t seed, tlslib::Library lib, BytesView payload) noexcept {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (uint8_t b : payload) h = (h ^ b) * 0x100000001B3ULL;
    return mix64(seed ^ mix64(h) ^ mix64(static_cast<uint64_t>(lib) + 1));
}

}  // namespace

std::optional<tlslib::ParseOutcome> FaultyModel::maybe_fault(tlslib::Library lib,
                                                             BytesView payload) {
    if (!options_.only.empty() &&
        std::find(options_.only.begin(), options_.only.end(), lib) == options_.only.end()) {
        return std::nullopt;
    }
    uint64_t h = content_hash(options_.seed, lib, payload);
    double u = unit(h);
    if (options_.crash_rate > 0.0 && u < options_.crash_rate) {
        ++injected_;
        throw std::runtime_error(std::string("injected crash in ") + tlslib::library_name(lib));
    }
    u -= options_.crash_rate;
    if (options_.hang_rate > 0.0 && u >= 0.0 && u < options_.hang_rate) {
        ++injected_;
        // Cooperative hang: consume (simulated) time inside the call;
        // the supervisor's watchdog detects it when the call returns.
        clock_->sleep_ms(options_.hang_ms);
        return std::nullopt;
    }
    u -= options_.hang_rate;
    if (options_.oversize_rate > 0.0 && u >= 0.0 && u < options_.oversize_rate) {
        ++injected_;
        tlslib::ParseOutcome out;
        out.value_utf8.assign(options_.oversize_bytes, 'A');
        return out;
    }
    return std::nullopt;
}

tlslib::DecodeBehavior FaultyModel::probe_decode(tlslib::Library lib, asn1::StringType st,
                                                 tlslib::FieldContext ctx) {
    return base_->probe_decode(lib, st, ctx);
}

tlslib::TextBehavior FaultyModel::probe_text(tlslib::Library lib, tlslib::FieldContext ctx) {
    return base_->probe_text(lib, ctx);
}

tlslib::ParseOutcome FaultyModel::parse_attribute(tlslib::Library lib,
                                                  const x509::AttributeValue& av) {
    if (auto fault = maybe_fault(lib, av.value_bytes)) return *fault;
    return base_->parse_attribute(lib, av);
}

tlslib::ParseOutcome FaultyModel::parse_general_name(tlslib::Library lib,
                                                     const x509::GeneralName& gn,
                                                     tlslib::FieldContext ctx) {
    if (auto fault = maybe_fault(lib, gn.value_bytes)) return *fault;
    return base_->parse_general_name(lib, gn, ctx);
}

tlslib::ParseOutcome FaultyModel::format_dn(tlslib::Library lib,
                                            const x509::DistinguishedName& dn) {
    return base_->format_dn(lib, dn);
}

tlslib::ParseOutcome FaultyModel::format_san(tlslib::Library lib,
                                             const x509::GeneralNames& names) {
    return base_->format_san(lib, names);
}

}  // namespace unicert::difffuzz
