#include "difffuzz/reducer.h"

#include <algorithm>

#include "asn1/der.h"

namespace unicert::difffuzz {
namespace {

// Budgeted predicate wrapper.
struct Checker {
    const std::function<bool(BytesView)>& predicate;
    size_t remaining;

    bool operator()(BytesView candidate) {
        if (remaining == 0) return false;
        --remaining;
        return predicate(candidate);
    }
};

// Structure pass: while the whole buffer is one constructed TLV whose
// child region still reproduces, descend into it. Collapses deep
// wrapper shells (nesting inflation) without O(n^2) byte work.
Bytes unwrap_pass(Bytes current, Checker& check) {
    for (;;) {
        auto tlv = asn1::read_tlv(current);
        if (!tlv.ok() || !tlv->is_constructed() || tlv->content.empty() ||
            tlv->total_len != current.size()) {
            return current;
        }
        Bytes child(tlv->content.begin(), tlv->content.end());
        if (!check(child)) return current;
        current = std::move(child);
    }
}

// Classic ddmin-style chunk deletion: try removing aligned chunks at
// decreasing granularity, restarting whenever a deletion sticks.
Bytes ddmin_pass(Bytes current, Checker& check) {
    size_t chunk = current.size() / 2;
    while (chunk >= 1 && check.remaining > 0) {
        bool shrunk = false;
        for (size_t start = 0; start + chunk <= current.size() && check.remaining > 0;) {
            Bytes candidate;
            candidate.reserve(current.size() - chunk);
            candidate.insert(candidate.end(), current.begin(),
                             current.begin() + static_cast<long>(start));
            candidate.insert(candidate.end(),
                             current.begin() + static_cast<long>(start + chunk),
                             current.end());
            if (!candidate.empty() && check(candidate)) {
                current = std::move(candidate);
                shrunk = true;
                // Keep `start` in place: the next chunk slid into it.
            } else {
                start += chunk;
            }
        }
        if (!shrunk) chunk /= 2;
        else chunk = std::min(chunk, current.size() / 2);
        if (chunk == 0) break;
    }
    return current;
}

}  // namespace

Bytes reduce(BytesView input, const std::function<bool(BytesView)>& still_fails,
             size_t max_checks) {
    Checker check{still_fails, max_checks};
    Bytes current(input.begin(), input.end());
    // Alternate passes until a fixpoint: unwrapping can expose new
    // deletable bytes and vice versa.
    for (;;) {
        size_t before = current.size();
        current = unwrap_pass(std::move(current), check);
        current = ddmin_pass(std::move(current), check);
        if (current.size() >= before || check.remaining == 0) break;
    }
    return current;
}

}  // namespace unicert::difffuzz
