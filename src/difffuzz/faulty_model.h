// unicert/difffuzz/faulty_model.h
//
// Misbehaving library-model double for supervised-engine testing and
// fuzz demos: wraps a base LibraryModel and deterministically injects
// crashes (throws), hangs (burns injected-clock time inside the call)
// and oversize outputs. The decision for one call is a pure hash of
// (seed, library, payload bytes) — NOT a call counter — so a corpus
// entry replayed later triggers exactly the fault that created it.
#pragma once

#include <atomic>
#include <optional>
#include <vector>

#include "core/resilience.h"
#include "tlslib/model.h"

namespace unicert::difffuzz {

struct FaultyModelOptions {
    uint64_t seed = 1;
    double crash_rate = 0.0;
    double hang_rate = 0.0;
    double oversize_rate = 0.0;
    int64_t hang_ms = 60'000;           // simulated time one hang consumes
    size_t oversize_bytes = 4u << 20;   // size of an injected flood output
    // When non-empty, only these libraries misbehave.
    std::vector<tlslib::Library> only;
};

class FaultyModel final : public tlslib::LibraryModel {
public:
    FaultyModel(tlslib::LibraryModel& base, FaultyModelOptions options, core::Clock& clock)
        : base_(&base), options_(options), clock_(&clock) {}

    const FaultyModelOptions& options() const noexcept { return options_; }
    size_t injected_faults() const noexcept {
        return injected_.load(std::memory_order_relaxed);
    }

    tlslib::DecodeBehavior probe_decode(tlslib::Library lib, asn1::StringType st,
                                        tlslib::FieldContext ctx) override;
    tlslib::TextBehavior probe_text(tlslib::Library lib, tlslib::FieldContext ctx) override;
    tlslib::ParseOutcome parse_attribute(tlslib::Library lib,
                                         const x509::AttributeValue& av) override;
    tlslib::ParseOutcome parse_general_name(tlslib::Library lib, const x509::GeneralName& gn,
                                            tlslib::FieldContext ctx) override;
    tlslib::ParseOutcome format_dn(tlslib::Library lib,
                                   const x509::DistinguishedName& dn) override;
    tlslib::ParseOutcome format_san(tlslib::Library lib,
                                    const x509::GeneralNames& names) override;

private:
    // Throws / sleeps / returns an oversize outcome when the channel
    // hash fires; returns nullopt to mean "forward to the base model".
    std::optional<tlslib::ParseOutcome> maybe_fault(tlslib::Library lib, BytesView payload);

    tlslib::LibraryModel* base_;
    FaultyModelOptions options_;
    core::Clock* clock_;
    // Atomic: campaign workers drive one shared model concurrently.
    std::atomic<size_t> injected_{0};
};

}  // namespace unicert::difffuzz
