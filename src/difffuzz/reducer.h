// unicert/difffuzz/reducer.h
//
// Delta-debugging DER reducer: shrink a failing input to a (locally)
// minimal payload that still reproduces the same failure bucket. Two
// passes compose: a structure-aware unwrap pass (replace the buffer
// with one of its TLV children — collapses nesting-inflation bombs in
// O(depth) steps) and classic ddmin chunk deletion over the raw bytes.
// Purely deterministic: no randomness, fixed scan order.
#pragma once

#include <functional>

#include "common/bytes.h"

namespace unicert::difffuzz {

// `still_fails` must return true when the candidate reproduces the
// original failure. The input itself is assumed to fail. Returns the
// smallest reproducer found within `max_checks` predicate calls.
Bytes reduce(BytesView input, const std::function<bool(BytesView)>& still_fails,
             size_t max_checks = 2000);

}  // namespace unicert::difffuzz
