#include "unicode/codec.h"

#include <array>

namespace unicert::unicode {
namespace {

// Append the lossy substitution for one bad byte according to policy.
void emit_bad_byte(CodePoints& out, uint8_t byte, ErrorPolicy policy) {
    switch (policy) {
        case ErrorPolicy::kStrict:
            // Caller handles strict separately; treat as replace for safety.
            out.push_back(kReplacementChar);
            break;
        case ErrorPolicy::kReplace:
            out.push_back(kReplacementChar);
            break;
        case ErrorPolicy::kSkip:
            break;
        case ErrorPolicy::kHexEscape: {
            static constexpr char kDigits[] = "0123456789abcdef";
            out.push_back('\\');
            out.push_back('x');
            out.push_back(static_cast<CodePoint>(kDigits[byte >> 4]));
            out.push_back(static_cast<CodePoint>(kDigits[byte & 0x0F]));
            break;
        }
    }
}

struct DecodeStep {
    // Number of bytes consumed; 0 means "error consuming 1 byte".
    size_t consumed = 0;
    CodePoint cp = 0;
    bool ok = false;
};

DecodeStep step_utf8(BytesView b, size_t i) {
    uint8_t lead = b[i];
    if (lead < 0x80) return {1, lead, true};
    size_t len;
    CodePoint cp;
    if ((lead & 0xE0) == 0xC0) {
        len = 2;
        cp = lead & 0x1F;
    } else if ((lead & 0xF0) == 0xE0) {
        len = 3;
        cp = lead & 0x0F;
    } else if ((lead & 0xF8) == 0xF0) {
        len = 4;
        cp = lead & 0x07;
    } else {
        return {};
    }
    if (i + len > b.size()) return {};
    for (size_t k = 1; k < len; ++k) {
        uint8_t cont = b[i + k];
        if ((cont & 0xC0) != 0x80) return {};
        cp = (cp << 6) | (cont & 0x3F);
    }
    // Reject overlong forms, surrogates, and out-of-range values.
    static constexpr std::array<CodePoint, 5> kMinByLen = {0, 0, 0x80, 0x800, 0x10000};
    if (cp < kMinByLen[len]) return {};
    if (!is_scalar_value(cp)) return {};
    return {len, cp, true};
}

}  // namespace

const char* encoding_name(Encoding e) noexcept {
    switch (e) {
        case Encoding::kAscii: return "ASCII";
        case Encoding::kLatin1: return "ISO-8859-1";
        case Encoding::kUtf8: return "UTF-8";
        case Encoding::kUcs2: return "UCS-2";
        case Encoding::kUtf16: return "UTF-16";
        case Encoding::kUcs4: return "UCS-4";
    }
    return "?";
}

Expected<CodePoints> decode(BytesView bytes, Encoding enc) {
    CodePoints out;
    switch (enc) {
        case Encoding::kAscii:
            out.reserve(bytes.size());
            for (size_t i = 0; i < bytes.size(); ++i) {
                if (bytes[i] > 0x7F) {
                    return Error{"ascii_out_of_range",
                                 "byte 0x" + hex_encode({&bytes[i], 1}) +
                                     " at offset " + std::to_string(i) + " is not ASCII"};
                }
                out.push_back(bytes[i]);
            }
            return out;

        case Encoding::kLatin1:
            out.reserve(bytes.size());
            for (uint8_t b : bytes) out.push_back(b);
            return out;

        case Encoding::kUtf8: {
            size_t i = 0;
            while (i < bytes.size()) {
                DecodeStep s = step_utf8(bytes, i);
                if (!s.ok) {
                    return Error{"utf8_malformed",
                                 "ill-formed UTF-8 sequence at offset " + std::to_string(i)};
                }
                out.push_back(s.cp);
                i += s.consumed;
            }
            return out;
        }

        case Encoding::kUcs2: {
            if (bytes.size() % 2 != 0) {
                return Error{"ucs2_odd_length", "UCS-2 input has odd byte length"};
            }
            for (size_t i = 0; i < bytes.size(); i += 2) {
                CodePoint cp = (static_cast<CodePoint>(bytes[i]) << 8) | bytes[i + 1];
                if (is_surrogate(cp)) {
                    return Error{"ucs2_surrogate",
                                 "surrogate code unit at offset " + std::to_string(i)};
                }
                out.push_back(cp);
            }
            return out;
        }

        case Encoding::kUtf16: {
            if (bytes.size() % 2 != 0) {
                return Error{"utf16_odd_length", "UTF-16 input has odd byte length"};
            }
            size_t i = 0;
            while (i < bytes.size()) {
                CodePoint hi = (static_cast<CodePoint>(bytes[i]) << 8) | bytes[i + 1];
                if (hi >= 0xD800 && hi <= 0xDBFF) {
                    if (i + 4 > bytes.size()) {
                        return Error{"utf16_truncated_pair",
                                     "lone high surrogate at offset " + std::to_string(i)};
                    }
                    CodePoint lo = (static_cast<CodePoint>(bytes[i + 2]) << 8) | bytes[i + 3];
                    if (lo < 0xDC00 || lo > 0xDFFF) {
                        return Error{"utf16_invalid_low_surrogate",
                                     "expected low surrogate at offset " + std::to_string(i + 2)};
                    }
                    out.push_back(0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00));
                    i += 4;
                } else if (hi >= 0xDC00 && hi <= 0xDFFF) {
                    return Error{"utf16_unexpected_low_surrogate",
                                 "lone low surrogate at offset " + std::to_string(i)};
                } else {
                    out.push_back(hi);
                    i += 2;
                }
            }
            return out;
        }

        case Encoding::kUcs4: {
            if (bytes.size() % 4 != 0) {
                return Error{"ucs4_bad_length", "UCS-4 input length not a multiple of 4"};
            }
            for (size_t i = 0; i < bytes.size(); i += 4) {
                CodePoint cp = (static_cast<CodePoint>(bytes[i]) << 24) |
                               (static_cast<CodePoint>(bytes[i + 1]) << 16) |
                               (static_cast<CodePoint>(bytes[i + 2]) << 8) | bytes[i + 3];
                if (!is_scalar_value(cp)) {
                    return Error{"ucs4_invalid_scalar",
                                 "invalid scalar value at offset " + std::to_string(i)};
                }
                out.push_back(cp);
            }
            return out;
        }
    }
    return Error{"unknown_encoding", "unhandled encoding"};
}

CodePoints decode_lossy(BytesView bytes, Encoding enc, ErrorPolicy policy) {
    if (policy == ErrorPolicy::kStrict) {
        auto r = decode(bytes, enc);
        if (r.ok()) return std::move(r).value();
        // Strict caller that still used the lossy entry point: degrade to
        // replacement so callers always receive a sequence.
        policy = ErrorPolicy::kReplace;
    }

    CodePoints out;
    switch (enc) {
        case Encoding::kAscii:
            for (uint8_t b : bytes) {
                if (b > 0x7F) {
                    emit_bad_byte(out, b, policy);
                } else {
                    out.push_back(b);
                }
            }
            return out;

        case Encoding::kLatin1:
            for (uint8_t b : bytes) out.push_back(b);
            return out;

        case Encoding::kUtf8: {
            size_t i = 0;
            while (i < bytes.size()) {
                DecodeStep s = step_utf8(bytes, i);
                if (!s.ok) {
                    emit_bad_byte(out, bytes[i], policy);
                    ++i;
                } else {
                    out.push_back(s.cp);
                    i += s.consumed;
                }
            }
            return out;
        }

        case Encoding::kUcs2: {
            size_t even = bytes.size() & ~size_t{1};
            for (size_t i = 0; i < even; i += 2) {
                CodePoint cp = (static_cast<CodePoint>(bytes[i]) << 8) | bytes[i + 1];
                if (is_surrogate(cp)) {
                    emit_bad_byte(out, bytes[i], policy);
                    emit_bad_byte(out, bytes[i + 1], policy);
                } else {
                    out.push_back(cp);
                }
            }
            if (even != bytes.size()) emit_bad_byte(out, bytes.back(), policy);
            return out;
        }

        case Encoding::kUtf16: {
            size_t i = 0;
            while (i + 2 <= bytes.size()) {
                CodePoint hi = (static_cast<CodePoint>(bytes[i]) << 8) | bytes[i + 1];
                if (hi >= 0xD800 && hi <= 0xDBFF && i + 4 <= bytes.size()) {
                    CodePoint lo = (static_cast<CodePoint>(bytes[i + 2]) << 8) | bytes[i + 3];
                    if (lo >= 0xDC00 && lo <= 0xDFFF) {
                        out.push_back(0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00));
                        i += 4;
                        continue;
                    }
                }
                if (is_surrogate(hi)) {
                    emit_bad_byte(out, bytes[i], policy);
                    emit_bad_byte(out, bytes[i + 1], policy);
                } else {
                    out.push_back(hi);
                }
                i += 2;
            }
            if (i != bytes.size()) emit_bad_byte(out, bytes.back(), policy);
            return out;
        }

        case Encoding::kUcs4: {
            size_t quads = bytes.size() / 4 * 4;
            for (size_t i = 0; i < quads; i += 4) {
                CodePoint cp = (static_cast<CodePoint>(bytes[i]) << 24) |
                               (static_cast<CodePoint>(bytes[i + 1]) << 16) |
                               (static_cast<CodePoint>(bytes[i + 2]) << 8) | bytes[i + 3];
                if (!is_scalar_value(cp)) {
                    for (size_t k = 0; k < 4; ++k) emit_bad_byte(out, bytes[i + k], policy);
                } else {
                    out.push_back(cp);
                }
            }
            for (size_t i = quads; i < bytes.size(); ++i) emit_bad_byte(out, bytes[i], policy);
            return out;
        }
    }
    return out;
}

Expected<Bytes> encode(const CodePoints& cps, Encoding enc) {
    Bytes out;
    switch (enc) {
        case Encoding::kAscii:
            for (CodePoint cp : cps) {
                if (cp > 0x7F) {
                    return Error{"ascii_unrepresentable",
                                 "code point " + std::to_string(cp) +
                                     " not representable in ASCII"};
                }
                out.push_back(static_cast<uint8_t>(cp));
            }
            return out;

        case Encoding::kLatin1:
            for (CodePoint cp : cps) {
                if (cp > 0xFF) {
                    return Error{"latin1_unrepresentable",
                                 "code point not representable in ISO-8859-1"};
                }
                out.push_back(static_cast<uint8_t>(cp));
            }
            return out;

        case Encoding::kUtf8:
            for (CodePoint cp : cps) {
                if (!is_scalar_value(cp)) {
                    return Error{"utf8_invalid_scalar", "cannot encode surrogate/out-of-range"};
                }
                if (cp < 0x80) {
                    out.push_back(static_cast<uint8_t>(cp));
                } else if (cp < 0x800) {
                    out.push_back(static_cast<uint8_t>(0xC0 | (cp >> 6)));
                    out.push_back(static_cast<uint8_t>(0x80 | (cp & 0x3F)));
                } else if (cp < 0x10000) {
                    out.push_back(static_cast<uint8_t>(0xE0 | (cp >> 12)));
                    out.push_back(static_cast<uint8_t>(0x80 | ((cp >> 6) & 0x3F)));
                    out.push_back(static_cast<uint8_t>(0x80 | (cp & 0x3F)));
                } else {
                    out.push_back(static_cast<uint8_t>(0xF0 | (cp >> 18)));
                    out.push_back(static_cast<uint8_t>(0x80 | ((cp >> 12) & 0x3F)));
                    out.push_back(static_cast<uint8_t>(0x80 | ((cp >> 6) & 0x3F)));
                    out.push_back(static_cast<uint8_t>(0x80 | (cp & 0x3F)));
                }
            }
            return out;

        case Encoding::kUcs2:
            for (CodePoint cp : cps) {
                if (cp > kBmpMax || is_surrogate(cp)) {
                    return Error{"ucs2_unrepresentable",
                                 "code point outside BMP cannot be UCS-2 encoded"};
                }
                out.push_back(static_cast<uint8_t>(cp >> 8));
                out.push_back(static_cast<uint8_t>(cp & 0xFF));
            }
            return out;

        case Encoding::kUtf16:
            for (CodePoint cp : cps) {
                if (!is_scalar_value(cp)) {
                    return Error{"utf16_invalid_scalar", "cannot encode surrogate/out-of-range"};
                }
                if (cp <= kBmpMax) {
                    out.push_back(static_cast<uint8_t>(cp >> 8));
                    out.push_back(static_cast<uint8_t>(cp & 0xFF));
                } else {
                    CodePoint v = cp - 0x10000;
                    CodePoint hi = 0xD800 + (v >> 10);
                    CodePoint lo = 0xDC00 + (v & 0x3FF);
                    out.push_back(static_cast<uint8_t>(hi >> 8));
                    out.push_back(static_cast<uint8_t>(hi & 0xFF));
                    out.push_back(static_cast<uint8_t>(lo >> 8));
                    out.push_back(static_cast<uint8_t>(lo & 0xFF));
                }
            }
            return out;

        case Encoding::kUcs4:
            for (CodePoint cp : cps) {
                if (!is_scalar_value(cp)) {
                    return Error{"ucs4_invalid_scalar", "cannot encode surrogate/out-of-range"};
                }
                out.push_back(static_cast<uint8_t>(cp >> 24));
                out.push_back(static_cast<uint8_t>((cp >> 16) & 0xFF));
                out.push_back(static_cast<uint8_t>((cp >> 8) & 0xFF));
                out.push_back(static_cast<uint8_t>(cp & 0xFF));
            }
            return out;
    }
    return Error{"unknown_encoding", "unhandled encoding"};
}

Expected<CodePoints> utf8_to_codepoints(std::string_view utf8) {
    return decode(to_bytes(utf8), Encoding::kUtf8);
}

std::string codepoints_to_utf8(const CodePoints& cps) {
    CodePoints sane;
    sane.reserve(cps.size());
    for (CodePoint cp : cps) sane.push_back(is_scalar_value(cp) ? cp : kReplacementChar);
    auto bytes = encode(sane, Encoding::kUtf8);
    // Cannot fail: all inputs were made scalar values above.
    return to_string(bytes.value());
}

std::string transcode_to_utf8(BytesView bytes, Encoding enc, ErrorPolicy policy) {
    return codepoints_to_utf8(decode_lossy(bytes, enc, policy));
}

bool is_well_formed(BytesView bytes, Encoding enc) {
    return decode(bytes, enc).ok();
}

}  // namespace unicert::unicode
