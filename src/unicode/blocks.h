// unicert/unicode/blocks.h
//
// Unicode block table (Blocks.txt). The paper's test-certificate
// generator samples one character from each standard Unicode block
// (excluding surrogates) to probe TLS library parsing; this module
// provides the table and lookup helpers.
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "unicode/codepoint.h"

namespace unicert::unicode {

struct Block {
    CodePoint first;
    CodePoint last;
    std::string_view name;

    bool contains(CodePoint cp) const noexcept { return cp >= first && cp <= last; }
    bool is_surrogate_block() const noexcept {
        return first >= kSurrogateLow && last <= kSurrogateHigh;
    }
};

// All blocks, ascending by first code point.
std::span<const Block> all_blocks() noexcept;

// Block containing `cp`, or nullopt for unassigned gaps.
std::optional<Block> block_of(CodePoint cp) noexcept;

// Name of the block containing `cp`, or "No_Block".
std::string_view block_name(CodePoint cp) noexcept;

// A representative sample character per block: the first assigned,
// non-control code point heuristic (first + offset for blocks that
// begin with controls). Surrogate blocks are skipped. Used by the
// Unicert test generator (Section 3.2 of the paper).
CodePoints sample_per_block();

}  // namespace unicert::unicode
