#include "unicode/properties.h"

#include <algorithm>
#include <array>
#include <cstdio>

#include "unicode/codec.h"

namespace unicert::unicode {
namespace {

struct SkeletonPair {
    CodePoint from;
    CodePoint to;
};

// A curated slice of the Unicode confusables table covering the scripts
// the paper's spoofing discussion exercises: Cyrillic and Greek lookalikes
// of Latin letters, fullwidth forms, and a few punctuation twins.
constexpr std::array kSkeletonMap = {
    // Cyrillic lowercase -> Latin
    SkeletonPair{0x0430, 'a'},  // а
    SkeletonPair{0x0435, 'e'},  // е
    SkeletonPair{0x043E, 'o'},  // о
    SkeletonPair{0x0440, 'p'},  // р
    SkeletonPair{0x0441, 'c'},  // с
    SkeletonPair{0x0443, 'y'},  // у
    SkeletonPair{0x0445, 'x'},  // х
    SkeletonPair{0x0455, 's'},  // ѕ
    SkeletonPair{0x0456, 'i'},  // і
    SkeletonPair{0x0458, 'j'},  // ј
    SkeletonPair{0x04BB, 'h'},  // һ
    SkeletonPair{0x0501, 'd'},  // ԁ
    SkeletonPair{0x051B, 'q'},  // ԛ
    SkeletonPair{0x051D, 'w'},  // ԝ
    // Cyrillic uppercase -> Latin
    SkeletonPair{0x0410, 'A'},
    SkeletonPair{0x0412, 'B'},
    SkeletonPair{0x0415, 'E'},
    SkeletonPair{0x041A, 'K'},
    SkeletonPair{0x041C, 'M'},
    SkeletonPair{0x041D, 'H'},
    SkeletonPair{0x041E, 'O'},
    SkeletonPair{0x0420, 'P'},
    SkeletonPair{0x0421, 'C'},
    SkeletonPair{0x0422, 'T'},
    SkeletonPair{0x0425, 'X'},
    // Greek -> Latin
    SkeletonPair{0x03B1, 'a'},  // α (loose)
    SkeletonPair{0x03BF, 'o'},  // ο
    SkeletonPair{0x03C1, 'p'},  // ρ
    SkeletonPair{0x03BD, 'v'},  // ν
    SkeletonPair{0x0391, 'A'},
    SkeletonPair{0x0392, 'B'},
    SkeletonPair{0x0395, 'E'},
    SkeletonPair{0x0396, 'Z'},
    SkeletonPair{0x0397, 'H'},
    SkeletonPair{0x0399, 'I'},
    SkeletonPair{0x039A, 'K'},
    SkeletonPair{0x039C, 'M'},
    SkeletonPair{0x039D, 'N'},
    SkeletonPair{0x039F, 'O'},
    SkeletonPair{0x03A1, 'P'},
    SkeletonPair{0x03A4, 'T'},
    SkeletonPair{0x03A5, 'Y'},
    SkeletonPair{0x03A7, 'X'},
    // Punctuation / symbol twins from the paper's Table 3 and F.1
    SkeletonPair{0x2010, '-'},  // HYPHEN
    SkeletonPair{0x2011, '-'},  // NON-BREAKING HYPHEN
    SkeletonPair{0x2012, '-'},  // FIGURE DASH
    SkeletonPair{0x2013, '-'},  // EN DASH
    SkeletonPair{0x2014, '-'},  // EM DASH
    SkeletonPair{0x037E, ';'},  // GREEK QUESTION MARK
    SkeletonPair{0x00B7, '.'},  // MIDDLE DOT (loose)
    SkeletonPair{0x0131, 'i'},  // dotless i
    SkeletonPair{0x2024, '.'},  // ONE DOT LEADER
};

}  // namespace

CodePoint confusable_skeleton(CodePoint cp) noexcept {
    // Fullwidth Latin forms map algorithmically.
    if (cp >= 0xFF01 && cp <= 0xFF5E) return cp - 0xFF00 + 0x20;
    for (const auto& p : kSkeletonMap) {
        if (p.from == cp) return p.to;
    }
    return cp;
}

CodePoints skeleton(const CodePoints& cps) {
    CodePoints out;
    out.reserve(cps.size());
    for (CodePoint cp : cps) {
        CodePoint s = confusable_skeleton(cp);
        if (s >= 'A' && s <= 'Z') s = s - 'A' + 'a';
        // Invisible characters vanish in the skeleton: they contribute
        // nothing visually, which is exactly why they are dangerous.
        if (is_layout_control(s)) continue;
        out.push_back(s);
    }
    return out;
}

bool are_confusable(const CodePoints& a, const CodePoints& b) {
    if (a == b) return false;
    return skeleton(a) == skeleton(b);
}

CodePoint fold_case(CodePoint cp) noexcept {
    if (cp >= 'A' && cp <= 'Z') return cp + 0x20;
    if (cp >= 0x00C0 && cp <= 0x00DE && cp != 0x00D7) return cp + 0x20;  // Latin-1 capitals
    if (cp >= 0x0391 && cp <= 0x03A9 && cp != 0x03A2) return cp + 0x20;  // Greek capitals
    if (cp >= 0x0410 && cp <= 0x042F) return cp + 0x20;                  // Cyrillic capitals
    if (cp >= 0x0400 && cp <= 0x040F) return cp + 0x50;                  // Cyrillic Ё etc.
    // Latin Extended-A: alternating upper/lower pairs in three runs.
    if (cp >= 0x0100 && cp <= 0x0137) return (cp % 2 == 0) ? cp + 1 : cp;  // Ā..ķ
    if (cp >= 0x0139 && cp <= 0x0148) return (cp % 2 == 1) ? cp + 1 : cp;  // Ĺ..ň
    if (cp >= 0x014A && cp <= 0x0177) return (cp % 2 == 0) ? cp + 1 : cp;  // Ŋ..ŷ
    if (cp == 0x0178) return 0x00FF;                                       // Ÿ -> ÿ
    if (cp >= 0x0179 && cp <= 0x017E) return (cp % 2 == 1) ? cp + 1 : cp;  // Ź..ž
    // Latin Extended-B pairs used by Romanian/Slavic names.
    if (cp >= 0x01DE && cp <= 0x01EF) return (cp % 2 == 0) ? cp + 1 : cp;
    if (cp >= 0x0218 && cp <= 0x021F) return (cp % 2 == 0) ? cp + 1 : cp;  // Șș Țț Ȝȝ Ȟȟ
    // Latin Extended Additional (Vietnamese etc.): even/odd pairs.
    if (cp >= 0x1E00 && cp <= 0x1EFF && cp != 0x1E9E) {
        return (cp % 2 == 0) ? cp + 1 : cp;
    }
    return cp;
}

CodePoints fold_case(const CodePoints& cps) {
    CodePoints out;
    out.reserve(cps.size());
    for (CodePoint cp : cps) out.push_back(fold_case(cp));
    return out;
}

std::string codepoint_label(CodePoint cp) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), cp <= 0xFFFF ? "U+%04X" : "U+%06X", cp);
    return buf;
}

bool has_non_printable_ascii(std::string_view utf8) {
    auto decoded = utf8_to_codepoints(utf8);
    if (!decoded.ok()) return true;  // malformed UTF-8 is by definition not printable ASCII
    return std::any_of(decoded->begin(), decoded->end(),
                       [](CodePoint cp) { return !is_printable_ascii(cp); });
}

}  // namespace unicert::unicode
