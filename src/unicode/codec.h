// unicert/unicode/codec.h
//
// Character-encoding codecs used throughout the certificate pipeline.
//
// The paper's parsing study (Section 3.2) distinguishes five decoding
// methods observed across TLS libraries: ASCII, ISO-8859-1, UTF-8,
// UCS-2 and UTF-16. We implement each as an explicit codec so the
// tlslib behavioural profiles can decode real DER value bytes exactly
// the way each library would.
//
// Every decoder comes in a *strict* flavour (returns an Error on the
// first ill-formed unit) and a *lossy* flavour that applies one of the
// ErrorPolicy substitution modes the paper calls "modified decoding".
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/expected.h"
#include "unicode/codepoint.h"

namespace unicert::unicode {

// Encoding identifiers. Names follow the paper's Table 4 terminology.
enum class Encoding {
    kAscii,      // 7-bit US-ASCII
    kLatin1,     // ISO-8859-1 (each byte is the code point)
    kUtf8,       // RFC 3629 UTF-8
    kUcs2,       // big-endian 2-byte units, BMP only (no surrogates)
    kUtf16,      // big-endian UTF-16 with surrogate pairs
    kUcs4,       // big-endian 4-byte units (UniversalString)
};

const char* encoding_name(Encoding e) noexcept;

// What a lossy decoder does when it meets an undecodable unit.
enum class ErrorPolicy {
    kStrict,      // fail with Error
    kReplace,     // substitute U+FFFD
    kSkip,        // drop the offending unit ("character truncation")
    kHexEscape,   // substitute "\xNN" per offending byte (OpenSSL style)
};

// ---- Decoding: bytes -> code points -------------------------------------

// Strict decode; first malformed unit yields an Error whose code names
// the encoding, e.g. "utf8_invalid_continuation".
Expected<CodePoints> decode(BytesView bytes, Encoding enc);

// Lossy decode applying `policy` to malformed units. With kStrict this
// is equivalent to decode(); with other policies it cannot fail.
// Hex-escaped bytes are expanded to the code points of the literal
// characters '\','x',hi,lo so the result remains a plain code point
// sequence.
CodePoints decode_lossy(BytesView bytes, Encoding enc, ErrorPolicy policy);

// ---- Encoding: code points -> bytes -------------------------------------

// Strict encode; fails if a code point is not representable in `enc`
// (e.g. non-ASCII in kAscii, astral plane in kUcs2).
Expected<Bytes> encode(const CodePoints& cps, Encoding enc);

// ---- UTF-8 convenience (internal text interchange format) ---------------

// Decode UTF-8 from a std::string (strict).
Expected<CodePoints> utf8_to_codepoints(std::string_view utf8);

// Encode code points to a UTF-8 std::string. Non-scalar values are
// replaced with U+FFFD rather than failing, since display paths must
// always produce *something*.
std::string codepoints_to_utf8(const CodePoints& cps);

// One-shot: transcode bytes in `enc` to a UTF-8 string using `policy`
// for malformed input. The workhorse of the library behaviour profiles.
std::string transcode_to_utf8(BytesView bytes, Encoding enc, ErrorPolicy policy);

// True if `bytes` is well-formed in `enc`.
bool is_well_formed(BytesView bytes, Encoding enc);

}  // namespace unicert::unicode
