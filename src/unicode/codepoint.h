// unicert/unicode/codepoint.h
//
// Code point type and fundamental constants for the Unicode layer.
#pragma once

#include <cstdint>
#include <vector>

namespace unicert::unicode {

// A Unicode scalar value or code point. We use a 32-bit unsigned type;
// valid scalar values are U+0000..U+10FFFF excluding surrogates.
using CodePoint = uint32_t;

using CodePoints = std::vector<CodePoint>;

inline constexpr CodePoint kMaxCodePoint = 0x10FFFF;
inline constexpr CodePoint kSurrogateLow = 0xD800;
inline constexpr CodePoint kSurrogateHigh = 0xDFFF;
inline constexpr CodePoint kReplacementChar = 0xFFFD;
inline constexpr CodePoint kBmpMax = 0xFFFF;

// True for code points that can never appear in well-formed UTF-8/UTF-16
// text (UTF-16 surrogate halves).
constexpr bool is_surrogate(CodePoint cp) noexcept {
    return cp >= kSurrogateLow && cp <= kSurrogateHigh;
}

// True for any value that is a legal Unicode scalar value.
constexpr bool is_scalar_value(CodePoint cp) noexcept {
    return cp <= kMaxCodePoint && !is_surrogate(cp);
}

}  // namespace unicert::unicode
