// unicert/unicode/normalize.h
//
// Unicode Normalization Form C (UAX #15) over the script repertoire the
// paper's measurements exercise: Latin (Latin-1 Supplement + Latin
// Extended-A), Greek, Cyrillic precomposed characters, and the full
// algorithmic Hangul syllable composition. RFC 5280 requires UTF8String
// attribute values to be NFC ("attribute normalization", Table 10 of
// the paper); the T2 lints use is_nfc() to detect violations.
//
// Scope note (documented substitution): the canonical data tables cover
// the ranges above rather than the entire UCD. Characters without an
// entry are treated as already-composed starters, which is correct for
// every code point that has no canonical decomposition and conservative
// (never falsely reports "not NFC") elsewhere.
#pragma once

#include "unicode/codepoint.h"

namespace unicert::unicode {

// Canonical combining class (ccc); 0 for starters.
int combining_class(CodePoint cp) noexcept;

// Full canonical decomposition (NFD) of one code point, recursively
// expanded, appended to `out`. Appends `cp` itself when no mapping.
void canonical_decompose(CodePoint cp, CodePoints& out);

// Primary composite for a starter + combining pair, or 0 if none.
CodePoint compose_pair(CodePoint starter, CodePoint combining) noexcept;

// Normalization Form D: decompose + canonical ordering.
CodePoints nfd(const CodePoints& in);

// Normalization Form C: nfd() + canonical composition.
CodePoints nfc(const CodePoints& in);

// True when `in` is already in NFC (i.e. nfc(in) == in).
bool is_nfc(const CodePoints& in);

}  // namespace unicert::unicode
