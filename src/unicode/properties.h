// unicert/unicode/properties.h
//
// Character property queries used by the lint rules, the parsing
// profiles and the threat analyses: control/format classification,
// printable-ASCII range checks (the paper's "Non-PrintableASCII"
// definition), bidi/layout controls, and a confusable-skeleton map for
// homograph detection (Appendix F.1).
#pragma once

#include <string>
#include <string_view>

#include "unicode/codepoint.h"

namespace unicert::unicode {

// ---- ASCII-range classes -------------------------------------------------

// Printable ASCII, U+0020..U+007E. The paper's Unicert definition is
// "contains any character beyond this range".
constexpr bool is_printable_ascii(CodePoint cp) noexcept {
    return cp >= 0x20 && cp <= 0x7E;
}

constexpr bool is_ascii(CodePoint cp) noexcept { return cp <= 0x7F; }

constexpr bool is_ascii_digit(CodePoint cp) noexcept { return cp >= '0' && cp <= '9'; }

constexpr bool is_ascii_alpha(CodePoint cp) noexcept {
    return (cp >= 'a' && cp <= 'z') || (cp >= 'A' && cp <= 'Z');
}

// LDH: letter / digit / hyphen, the DNS label alphabet (RFC 1034).
constexpr bool is_ldh(CodePoint cp) noexcept {
    return is_ascii_alpha(cp) || is_ascii_digit(cp) || cp == '-';
}

// ---- Control & format classes --------------------------------------------

// C0 controls U+0000..U+001F plus DEL U+007F.
constexpr bool is_c0_control(CodePoint cp) noexcept { return cp <= 0x1F || cp == 0x7F; }

// C1 controls U+0080..U+009F.
constexpr bool is_c1_control(CodePoint cp) noexcept { return cp >= 0x80 && cp <= 0x9F; }

constexpr bool is_control(CodePoint cp) noexcept {
    return is_c0_control(cp) || is_c1_control(cp);
}

// Explicit bidirectional controls (LRM/RLM/ALM and embedding/override/
// isolate codes). These enable the "www.‮lapyap‬.com" spoof
// of Appendix F.1 and are DISALLOWED in IDNA2008 labels.
constexpr bool is_bidi_control(CodePoint cp) noexcept {
    return cp == 0x061C ||                      // ARABIC LETTER MARK
           cp == 0x200E || cp == 0x200F ||      // LRM, RLM
           (cp >= 0x202A && cp <= 0x202E) ||    // LRE, RLE, PDF, LRO, RLO
           (cp >= 0x2066 && cp <= 0x2069);      // LRI, RLI, FSI, PDI
}

// Zero-width / invisible join controls.
constexpr bool is_zero_width(CodePoint cp) noexcept {
    return cp == 0x200B ||                       // ZERO WIDTH SPACE
           cp == 0x200C || cp == 0x200D ||       // ZWNJ, ZWJ
           cp == 0x2060 ||                       // WORD JOINER
           cp == 0xFEFF;                         // ZERO WIDTH NO-BREAK SPACE / BOM
}

// Invisible layout & format characters in the General Punctuation block
// (U+2000..U+206F) plus BOM: the characters Table 14 reports browsers
// render invisibly.
constexpr bool is_layout_control(CodePoint cp) noexcept {
    return is_bidi_control(cp) || is_zero_width(cp) ||
           (cp >= 0x2000 && cp <= 0x200A) ||    // typographic spaces
           cp == 0x2028 || cp == 0x2029 ||      // LS, PS
           cp == 0x202F || cp == 0x205F ||      // narrow/medium math space
           (cp >= 0x2061 && cp <= 0x2064) ||    // invisible math operators
           (cp >= 0x206A && cp <= 0x206F);      // deprecated format controls
}

// Whitespace characters beyond U+0020 that the Subject-variant study
// (Table 3) flags: NBSP, ideographic space, typographic spaces.
constexpr bool is_nonstandard_space(CodePoint cp) noexcept {
    return cp == 0x00A0 || cp == 0x1680 || (cp >= 0x2000 && cp <= 0x200A) ||
           cp == 0x202F || cp == 0x205F || cp == 0x3000;
}

constexpr bool is_space(CodePoint cp) noexcept {
    return cp == 0x20 || cp == 0x09 || is_nonstandard_space(cp);
}

// Private use areas (BMP + both supplementary planes).
constexpr bool is_private_use(CodePoint cp) noexcept {
    return (cp >= 0xE000 && cp <= 0xF8FF) || (cp >= 0xF0000 && cp <= 0xFFFFD) ||
           (cp >= 0x100000 && cp <= 0x10FFFD);
}

// Permanently-reserved noncharacters (U+FDD0..U+FDEF and the two final
// code points of every plane).
constexpr bool is_noncharacter(CodePoint cp) noexcept {
    return (cp >= 0xFDD0 && cp <= 0xFDEF) || ((cp & 0xFFFE) == 0xFFFE && cp <= 0x10FFFF);
}

// ---- Confusables / homographs ---------------------------------------------

// Maps visually-confusable Cyrillic / Greek / fullwidth letters onto
// their Latin skeleton (e.g. U+0430 CYRILLIC SMALL A -> 'a'); identity
// for everything else. This is the core of the homograph-feasibility
// check in the browser study (Appendix F.1, Table 14 "Homograph
// feasibility").
CodePoint confusable_skeleton(CodePoint cp) noexcept;

// Applies confusable_skeleton + ASCII lowercase fold over a string.
CodePoints skeleton(const CodePoints& cps);

// True if two strings are distinct but share a confusable skeleton.
bool are_confusable(const CodePoints& a, const CodePoints& b);

// Simple case folding over ASCII, Latin-1, Greek and Cyrillic letters —
// sufficient for the CT-monitor case-insensitive query models (Table 6).
CodePoint fold_case(CodePoint cp) noexcept;

// fold_case applied to a whole string.
CodePoints fold_case(const CodePoints& cps);

// ---- Display helpers -------------------------------------------------------

// "U+XXXX" formatting for diagnostics.
std::string codepoint_label(CodePoint cp);

// True if the UTF-8 string contains any character outside printable
// ASCII — the paper's Unicert trigger predicate. Malformed UTF-8 counts
// as non-ASCII content.
bool has_non_printable_ascii(std::string_view utf8);

}  // namespace unicert::unicode
