#include "idna/bidi.h"

#include "unicode/normalize.h"
#include "unicode/properties.h"

namespace unicert::idna {
namespace {

using unicode::CodePoint;
using unicode::CodePoints;

bool in(CodePoint cp, CodePoint lo, CodePoint hi) { return cp >= lo && cp <= hi; }

}  // namespace

BidiClass bidi_class(CodePoint cp) noexcept {
    // Numbers.
    if (in(cp, '0', '9')) return BidiClass::kEN;
    if (in(cp, 0x0660, 0x0669) || in(cp, 0x066B, 0x066C)) return BidiClass::kAN;

    // Separators / terminators.
    if (cp == '+' || cp == '-') return BidiClass::kES;
    if (cp == '.' || cp == ',' || cp == '/' || cp == ':') return BidiClass::kCS;
    if (cp == '#' || cp == '$' || cp == '%' || in(cp, 0x00A2, 0x00A5) ||
        in(cp, 0x20A0, 0x20CF)) {
        return BidiClass::kET;
    }

    // Non-spacing marks.
    if (unicode::combining_class(cp) != 0 || in(cp, 0x0300, 0x036F) ||
        in(cp, 0x0610, 0x061A) || in(cp, 0x064B, 0x065F) || in(cp, 0x05B0, 0x05BD) ||
        cp == 0x05BF || in(cp, 0x05C1, 0x05C2) || in(cp, 0x06D6, 0x06DC) ||
        in(cp, 0x08D3, 0x08FF) || in(cp, 0xFE00, 0xFE0F)) {
        return BidiClass::kNSM;
    }

    // Boundary neutrals: format controls.
    if (unicode::is_zero_width(cp) || in(cp, 0x202A, 0x202E) || in(cp, 0x2066, 0x2069)) {
        return BidiClass::kBN;
    }

    // Right-to-left Arabic-script ranges.
    if (in(cp, 0x0600, 0x06FF) || in(cp, 0x0750, 0x077F) || in(cp, 0x08A0, 0x08FF) ||
        in(cp, 0xFB50, 0xFDFF) || in(cp, 0xFE70, 0xFEFF) || in(cp, 0x0700, 0x074F) ||
        in(cp, 0x0780, 0x07BF)) {
        return BidiClass::kAL;
    }
    // Right-to-left (Hebrew and friends).
    if (in(cp, 0x0590, 0x05FF) || in(cp, 0xFB1D, 0xFB4F) || in(cp, 0x07C0, 0x07FF) ||
        in(cp, 0x0800, 0x083F)) {
        return BidiClass::kR;
    }

    // Letters default to L; ASCII symbols and the rest are ON.
    if (unicode::is_ascii_alpha(cp)) return BidiClass::kL;
    if (cp < 0x80) return BidiClass::kON;
    if (in(cp, 0x2000, 0x2BFF)) return BidiClass::kON;  // punctuation & symbols
    return BidiClass::kL;  // letters of LTR scripts (Latin supplements, CJK, ...)
}

bool is_bidi_label(const CodePoints& label) {
    for (CodePoint cp : label) {
        BidiClass c = bidi_class(cp);
        if (c == BidiClass::kR || c == BidiClass::kAL || c == BidiClass::kAN) return true;
    }
    return false;
}

Status check_bidi_rule(const CodePoints& label) {
    if (label.empty()) return Error{"bidi_empty_label", "empty label"};

    BidiClass first = bidi_class(label.front());

    // Condition 1: first character must be L, R or AL.
    bool rtl;
    if (first == BidiClass::kR || first == BidiClass::kAL) {
        rtl = true;
    } else if (first == BidiClass::kL) {
        rtl = false;
    } else {
        return Error{"bidi_bad_first_char",
                     "label must start with a letter (L, R or AL), got " +
                         unicode::codepoint_label(label.front())};
    }

    bool saw_en = false, saw_an = false;
    BidiClass last_non_nsm = first;
    for (CodePoint cp : label) {
        BidiClass c = bidi_class(cp);
        if (c == BidiClass::kEN) saw_en = true;
        if (c == BidiClass::kAN) saw_an = true;
        if (c != BidiClass::kNSM) last_non_nsm = c;

        if (rtl) {
            // Condition 2: allowed classes in an RTL label.
            switch (c) {
                case BidiClass::kR: case BidiClass::kAL: case BidiClass::kAN:
                case BidiClass::kEN: case BidiClass::kES: case BidiClass::kCS:
                case BidiClass::kET: case BidiClass::kON: case BidiClass::kBN:
                case BidiClass::kNSM:
                    break;
                default:
                    return Error{"bidi_ltr_char_in_rtl_label",
                                 "L character in RTL label: " + unicode::codepoint_label(cp)};
            }
        } else {
            // Condition 5: allowed classes in an LTR label.
            switch (c) {
                case BidiClass::kL: case BidiClass::kEN: case BidiClass::kES:
                case BidiClass::kCS: case BidiClass::kET: case BidiClass::kON:
                case BidiClass::kBN: case BidiClass::kNSM:
                    break;
                default:
                    return Error{"bidi_rtl_char_in_ltr_label",
                                 "R/AL/AN character in LTR label: " +
                                     unicode::codepoint_label(cp)};
            }
        }
    }

    if (rtl) {
        // Condition 3: last (non-NSM) char must be R, AL, EN or AN.
        if (last_non_nsm != BidiClass::kR && last_non_nsm != BidiClass::kAL &&
            last_non_nsm != BidiClass::kEN && last_non_nsm != BidiClass::kAN) {
            return Error{"bidi_bad_rtl_ending", "RTL label ends in a non-R/AL/EN/AN character"};
        }
        // Condition 4: EN and AN must not both appear.
        if (saw_en && saw_an) {
            return Error{"bidi_mixed_numbers", "RTL label mixes European and Arabic numbers"};
        }
    } else {
        // Condition 6: last (non-NSM) char must be L or EN.
        if (last_non_nsm != BidiClass::kL && last_non_nsm != BidiClass::kEN) {
            return Error{"bidi_bad_ltr_ending", "LTR label ends in a non-L/EN character"};
        }
    }
    return Status::success();
}

}  // namespace unicert::idna
