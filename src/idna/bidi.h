// unicert/idna/bidi.h
//
// RFC 5893 ("Right-to-Left Scripts for IDNA") Bidi rule: labels that
// contain right-to-left characters must satisfy directional
// constraints or they render ambiguously — one of the IDNA2008
// requirements the paper's F1 discussion notes CAs do not check.
#pragma once

#include "common/expected.h"
#include "unicode/codepoint.h"

namespace unicert::idna {

// Coarse Unicode bidirectional classes (enough for the RFC 5893 rule).
enum class BidiClass {
    kL,    // left-to-right letters
    kR,    // right-to-left (Hebrew etc.)
    kAL,   // right-to-left Arabic
    kEN,   // European number
    kES,   // European separator (+ -)
    kET,   // European terminator (currency, %, #)
    kAN,   // Arabic number
    kCS,   // common separator (. , / :)
    kNSM,  // non-spacing mark
    kBN,   // boundary neutral (format controls)
    kON,   // other neutral
};

BidiClass bidi_class(unicode::CodePoint cp) noexcept;

// True when the label contains any R/AL/AN character (making it a
// "Bidi label" whose whole domain must satisfy the rule).
bool is_bidi_label(const unicode::CodePoints& label);

// Check the six conditions of RFC 5893 section 2. Returns success for
// non-Bidi (pure LTR without RTL chars) labels that satisfy the LTR
// conditions trivially.
Status check_bidi_rule(const unicode::CodePoints& label);

}  // namespace unicert::idna
