// unicert/idna/punycode.h
//
// RFC 3492 Punycode: the Bootstring encoding used by IDNA to represent
// Unicode domain labels ("U-labels") in the LDH subset of ASCII
// ("A-labels", prefixed "xn--"). Implemented in full, including bias
// adaptation and mixed-case annotation-free output.
#pragma once

#include <string>
#include <string_view>

#include "common/expected.h"
#include "unicode/codepoint.h"

namespace unicert::idna {

// Encode code points to the Punycode form (without the "xn--" prefix).
// Fails only when the input overflows the 32-bit delta arithmetic.
Expected<std::string> punycode_encode(const unicode::CodePoints& input);

// Decode a Punycode string (without the "xn--" prefix) to code points.
// Fails on invalid basic code points, bad digits, or overflow.
Expected<unicode::CodePoints> punycode_decode(std::string_view input);

}  // namespace unicert::idna
