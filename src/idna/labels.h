// unicert/idna/labels.h
//
// IDNA label machinery: U-label <-> A-label conversion, IDNA2008-style
// code point classification, LDH syntax (RFC 1034 / RFC 5890), and
// whole-hostname validation. This module backs the paper's F1 finding
// ("poor validation of DNSNames": syntactically valid xn-- labels that
// cannot convert to Unicode or decode to disallowed characters).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/expected.h"
#include "unicode/codepoint.h"

namespace unicert::idna {

inline constexpr std::string_view kAcePrefix = "xn--";

// ---- Label-level checks -----------------------------------------------

// RFC 1034 LDH label: letters/digits/hyphen, no leading/trailing
// hyphen, 1..63 octets. (Underscore is rejected; the lints that allow
// it for CN wildcards handle that separately.)
bool is_ldh_label(std::string_view label) noexcept;

// "xn--"-prefixed label with LDH syntax — *syntactically* an A-label,
// regardless of whether it decodes. The paper found 27,102 certs whose
// labels pass this test yet fail full conversion.
bool looks_like_a_label(std::string_view label) noexcept;

// IDNA2008 derived-property style classification for a code point in a
// U-label. Coarse model of RFC 5892: DISALLOWED covers controls, bidi
// and layout controls, whitespace, symbols/punctuation outside the
// exceptions, private use and noncharacters.
enum class IdnaClass { kPvalid, kDisallowed };
IdnaClass idna_class(unicode::CodePoint cp) noexcept;

// Why a U-label failed validation.
enum class LabelIssue {
    kOk,
    kEmpty,
    kTooLong,                 // > 63 octets in ACE form
    kUndecodablePunycode,     // xn-- label whose payload fails RFC 3492
    kDisallowedCodePoint,     // decoded label contains DISALLOWED cp
    kNotNfc,                  // decoded label not in NFC
    kHyphen34,                // "--" in positions 3-4 without being an A-label
    kLeadingCombiningMark,    // label begins with a combining mark
    kBadLdh,                  // ASCII label violating LDH syntax
    kBidiViolation,           // fails the RFC 5893 Bidi rule
};

const char* label_issue_name(LabelIssue issue) noexcept;

struct LabelCheck {
    LabelIssue issue = LabelIssue::kOk;
    // Decoded U-label code points when conversion succeeded (possibly
    // with issues); empty otherwise.
    unicode::CodePoints unicode;

    bool ok() const noexcept { return issue == LabelIssue::kOk; }
};

// Validate one label as it would appear in a certificate DNSName:
// ASCII labels get LDH checks; xn-- labels get Punycode conversion +
// IDNA2008 code point + NFC checks (the paper's new
// e_rfc_dns_idn_a2u_unpermitted_unichar / e_rfc_dns_idn_malformed_unicode
// lints build on this).
LabelCheck check_label(std::string_view label);

// ---- Conversion ---------------------------------------------------------

// U-label (Unicode code points) -> A-label ("xn--…"). Validates IDNA
// class + NFC first.
Expected<std::string> to_a_label(const unicode::CodePoints& u_label);

// A-label -> U-label. Fails on undecodable Punycode. Does NOT apply
// IDNA checks (so callers can examine what invalid labels decode to —
// the paper's measurement needs exactly this).
Expected<unicode::CodePoints> to_u_label(std::string_view a_label);

// ---- Hostname-level checks ------------------------------------------------

struct HostnameCheck {
    bool ok = true;
    bool has_idn = false;             // any xn-- label present
    std::vector<LabelIssue> issues;   // one per offending label
    std::string display;              // UTF-8 display form (U-labels decoded)
};

// Split on '.', validate each label (wildcard "*" leftmost label is
// permitted), and produce the Unicode display form.
HostnameCheck check_hostname(std::string_view hostname);

// Convert a hostname containing U-labels (UTF-8) to its all-ASCII ACE
// form. Fails if any label fails IDNA validation.
Expected<std::string> hostname_to_ascii(std::string_view utf8_hostname);

// Convert an ACE hostname back to Unicode display form, decoding each
// xn-- label (undecodable labels are left verbatim — mirroring what
// lenient tooling does).
std::string hostname_to_display(std::string_view hostname);

}  // namespace unicert::idna
