#include "idna/labels.h"

#include <algorithm>

#include "idna/bidi.h"
#include "idna/punycode.h"
#include "unicode/codec.h"
#include "unicode/normalize.h"
#include "unicode/properties.h"

namespace unicert::idna {
namespace {

using unicode::CodePoint;
using unicode::CodePoints;

bool starts_with_ace_prefix(std::string_view label) {
    if (label.size() < kAcePrefix.size()) return false;
    for (size_t i = 0; i < kAcePrefix.size(); ++i) {
        char c = label[i];
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + 0x20);
        if (c != kAcePrefix[i]) return false;
    }
    return true;
}

bool is_combining_mark(CodePoint cp) {
    return unicode::combining_class(cp) != 0 ||
           (cp >= 0x0300 && cp <= 0x036F) || (cp >= 0x1AB0 && cp <= 0x1AFF) ||
           (cp >= 0x1DC0 && cp <= 0x1DFF) || (cp >= 0x20D0 && cp <= 0x20FF) ||
           (cp >= 0xFE20 && cp <= 0xFE2F);
}

}  // namespace

bool is_ldh_label(std::string_view label) noexcept {
    if (label.empty() || label.size() > 63) return false;
    if (label.front() == '-' || label.back() == '-') return false;
    return std::all_of(label.begin(), label.end(), [](char c) {
        return unicode::is_ldh(static_cast<unsigned char>(c));
    });
}

bool looks_like_a_label(std::string_view label) noexcept {
    return starts_with_ace_prefix(label) && is_ldh_label(label);
}

IdnaClass idna_class(CodePoint cp) noexcept {
    using namespace unicode;
    if (is_control(cp)) return IdnaClass::kDisallowed;
    if (is_bidi_control(cp) || is_layout_control(cp)) return IdnaClass::kDisallowed;
    if (is_space(cp) || cp == 0x0020) return IdnaClass::kDisallowed;
    if (is_private_use(cp) || is_noncharacter(cp)) return IdnaClass::kDisallowed;
    if (is_surrogate(cp)) return IdnaClass::kDisallowed;

    // ASCII: only lowercase LDH is PVALID in IDNA2008 (uppercase is
    // mapped out before reaching the protocol; we treat both cases as
    // valid here because certificate DNSNames are case-insensitive).
    if (cp <= 0x7F) {
        return is_ldh(cp) ? IdnaClass::kPvalid : IdnaClass::kDisallowed;
    }

    // Symbols, punctuation, and dingbat ranges are DISALLOWED.
    if (cp >= 0x2000 && cp <= 0x2BFF) return IdnaClass::kDisallowed;  // punct/symbols/arrows
    if (cp >= 0x1F000 && cp <= 0x1FBFF) return IdnaClass::kDisallowed;  // emoji etc.
    if (cp == 0x00A0 || cp == 0x3000) return IdnaClass::kDisallowed;    // special spaces
    if (cp >= 0xFFF0 && cp <= 0xFFFF) return IdnaClass::kDisallowed;    // specials
    if (cp >= 0xFE00 && cp <= 0xFE0F) return IdnaClass::kDisallowed;    // variation selectors
    if (cp >= 0xE0000 && cp <= 0xE01EF) return IdnaClass::kDisallowed;  // tags/VS supplement

    // Uppercase letters outside ASCII are mapped, not PVALID; as above
    // we accept them for measurement purposes. Everything else in the
    // letter/digit script ranges counts as PVALID in this model.
    return IdnaClass::kPvalid;
}

const char* label_issue_name(LabelIssue issue) noexcept {
    switch (issue) {
        case LabelIssue::kOk: return "ok";
        case LabelIssue::kEmpty: return "empty";
        case LabelIssue::kTooLong: return "too_long";
        case LabelIssue::kUndecodablePunycode: return "undecodable_punycode";
        case LabelIssue::kDisallowedCodePoint: return "disallowed_code_point";
        case LabelIssue::kNotNfc: return "not_nfc";
        case LabelIssue::kHyphen34: return "hyphen_in_positions_3_4";
        case LabelIssue::kLeadingCombiningMark: return "leading_combining_mark";
        case LabelIssue::kBadLdh: return "bad_ldh_syntax";
        case LabelIssue::kBidiViolation: return "bidi_rule_violation";
    }
    return "?";
}

LabelCheck check_label(std::string_view label) {
    LabelCheck result;
    if (label.empty()) {
        result.issue = LabelIssue::kEmpty;
        return result;
    }
    if (label.size() > 63) {
        result.issue = LabelIssue::kTooLong;
        return result;
    }

    if (starts_with_ace_prefix(label)) {
        auto decoded = punycode_decode(label.substr(kAcePrefix.size()));
        if (!decoded.ok()) {
            result.issue = LabelIssue::kUndecodablePunycode;
            return result;
        }
        result.unicode = std::move(decoded).value();
        if (result.unicode.empty()) {
            result.issue = LabelIssue::kUndecodablePunycode;
            return result;
        }
        for (CodePoint cp : result.unicode) {
            if (idna_class(cp) == IdnaClass::kDisallowed) {
                result.issue = LabelIssue::kDisallowedCodePoint;
                return result;
            }
        }
        if (!unicode::is_nfc(result.unicode)) {
            result.issue = LabelIssue::kNotNfc;
            return result;
        }
        if (is_combining_mark(result.unicode.front())) {
            result.issue = LabelIssue::kLeadingCombiningMark;
            return result;
        }
        if (is_bidi_label(result.unicode) && !check_bidi_rule(result.unicode).ok()) {
            result.issue = LabelIssue::kBidiViolation;
            return result;
        }
        // A pure-ASCII payload means the label did not need encoding;
        // treat as valid (some registries emit these, flagged elsewhere).
        return result;
    }

    // Plain ASCII label.
    if (!is_ldh_label(label)) {
        result.issue = LabelIssue::kBadLdh;
        return result;
    }
    if (label.size() >= 4 && label[2] == '-' && label[3] == '-') {
        // "??--" reserved except for the xn-- prefix handled above.
        result.issue = LabelIssue::kHyphen34;
        return result;
    }
    result.unicode.assign(label.begin(), label.end());
    return result;
}

Expected<std::string> to_a_label(const CodePoints& u_label) {
    if (u_label.empty()) return Error{"idna_empty_label", "empty label"};
    for (CodePoint cp : u_label) {
        if (idna_class(cp) == IdnaClass::kDisallowed) {
            return Error{"idna_disallowed",
                         "code point " + unicode::codepoint_label(cp) + " is DISALLOWED"};
        }
    }
    if (!unicode::is_nfc(u_label)) {
        return Error{"idna_not_nfc", "label is not in NFC"};
    }
    bool all_ascii = std::all_of(u_label.begin(), u_label.end(),
                                 [](CodePoint cp) { return cp < 0x80; });
    if (all_ascii) {
        std::string plain(u_label.begin(), u_label.end());
        if (!is_ldh_label(plain)) return Error{"idna_bad_ldh", "ASCII label is not LDH"};
        return plain;
    }
    auto encoded = punycode_encode(u_label);
    if (!encoded.ok()) return encoded.error();
    std::string out = std::string(kAcePrefix) + encoded.value();
    if (out.size() > 63) return Error{"idna_label_too_long", "ACE form exceeds 63 octets"};
    return out;
}

Expected<CodePoints> to_u_label(std::string_view a_label) {
    if (!starts_with_ace_prefix(a_label)) {
        return Error{"idna_no_ace_prefix", "label does not start with xn--"};
    }
    return punycode_decode(a_label.substr(kAcePrefix.size()));
}

HostnameCheck check_hostname(std::string_view hostname) {
    HostnameCheck result;
    std::string display;
    size_t start = 0;
    bool first = true;
    while (start <= hostname.size()) {
        size_t dot = hostname.find('.', start);
        std::string_view label = hostname.substr(
            start, dot == std::string_view::npos ? std::string_view::npos : dot - start);

        if (!display.empty() || !first) display.push_back('.');

        if (first && label == "*") {
            display += "*";  // wildcard leftmost label allowed (RFC 6125)
        } else if (dot == std::string_view::npos && label.empty() && start == hostname.size() &&
                   start > 0) {
            // Trailing dot (root label): tolerated.
            break;
        } else {
            LabelCheck lc = check_label(label);
            if (looks_like_a_label(label)) result.has_idn = true;
            if (!lc.ok()) {
                result.ok = false;
                result.issues.push_back(lc.issue);
                display += std::string(label);  // keep verbatim when unconvertible
            } else if (!lc.unicode.empty()) {
                display += unicode::codepoints_to_utf8(lc.unicode);
            } else {
                display += std::string(label);
            }
        }
        first = false;
        if (dot == std::string_view::npos) break;
        start = dot + 1;
    }
    if (hostname.empty() || hostname.size() > 253) result.ok = false;
    result.display = std::move(display);
    return result;
}

Expected<std::string> hostname_to_ascii(std::string_view utf8_hostname) {
    auto cps = unicode::utf8_to_codepoints(utf8_hostname);
    if (!cps.ok()) return Error{"idna_bad_utf8", "hostname is not valid UTF-8"};

    std::string out;
    CodePoints label;
    auto flush = [&]() -> Status {
        if (label.empty()) return Error{"idna_empty_label", "empty label"};
        if (label.size() == 1 && label[0] == '*' && out.empty()) {
            out += "*";
            label.clear();
            return Status::success();
        }
        auto a = to_a_label(label);
        if (!a.ok()) return a.error();
        out += a.value();
        label.clear();
        return Status::success();
    };

    for (CodePoint cp : cps.value()) {
        if (cp == '.') {
            if (Status s = flush(); !s.ok()) return s.error();
            out.push_back('.');
        } else {
            label.push_back(unicode::fold_case(cp));
        }
    }
    if (Status s = flush(); !s.ok()) return s.error();
    if (out.size() > 253) return Error{"idna_hostname_too_long", "ACE hostname exceeds 253"};
    return out;
}

std::string hostname_to_display(std::string_view hostname) {
    return check_hostname(hostname).display;
}

}  // namespace unicert::idna
