#include "idna/punycode.h"

#include <limits>

namespace unicert::idna {
namespace {

// Bootstring parameters for Punycode (RFC 3492 section 5).
constexpr uint32_t kBase = 36;
constexpr uint32_t kTMin = 1;
constexpr uint32_t kTMax = 26;
constexpr uint32_t kSkew = 38;
constexpr uint32_t kDamp = 700;
constexpr uint32_t kInitialBias = 72;
constexpr uint32_t kInitialN = 128;
constexpr char kDelimiter = '-';

constexpr uint32_t kMaxInt = std::numeric_limits<uint32_t>::max();

// digit-value -> code point ('a'..'z', '0'..'9'); lowercase output.
char encode_digit(uint32_t d) {
    return d < 26 ? static_cast<char>('a' + d) : static_cast<char>('0' + d - 26);
}

// code point -> digit-value, or kBase on invalid.
uint32_t decode_digit(char c) {
    if (c >= '0' && c <= '9') return static_cast<uint32_t>(c - '0' + 26);
    if (c >= 'a' && c <= 'z') return static_cast<uint32_t>(c - 'a');
    if (c >= 'A' && c <= 'Z') return static_cast<uint32_t>(c - 'A');
    return kBase;
}

uint32_t adapt(uint32_t delta, uint32_t numpoints, bool first_time) {
    delta = first_time ? delta / kDamp : delta / 2;
    delta += delta / numpoints;
    uint32_t k = 0;
    while (delta > ((kBase - kTMin) * kTMax) / 2) {
        delta /= kBase - kTMin;
        k += kBase;
    }
    return k + (((kBase - kTMin + 1) * delta) / (delta + kSkew));
}

bool is_basic(unicode::CodePoint cp) { return cp < 0x80; }

}  // namespace

Expected<std::string> punycode_encode(const unicode::CodePoints& input) {
    std::string output;

    // Copy basic code points straight through.
    for (unicode::CodePoint cp : input) {
        if (is_basic(cp)) output.push_back(static_cast<char>(cp));
    }
    uint32_t basic_count = static_cast<uint32_t>(output.size());
    uint32_t handled = basic_count;
    if (basic_count > 0) output.push_back(kDelimiter);

    uint32_t n = kInitialN;
    uint32_t delta = 0;
    uint32_t bias = kInitialBias;

    while (handled < input.size()) {
        // Next code point >= n present in the input.
        uint32_t m = kMaxInt;
        for (unicode::CodePoint cp : input) {
            if (cp >= n && cp < m) m = cp;
        }
        if (m - n > (kMaxInt - delta) / (handled + 1)) {
            return Error{"punycode_overflow", "delta overflow during encode"};
        }
        delta += (m - n) * (handled + 1);
        n = m;

        for (unicode::CodePoint cp : input) {
            if (cp < n && ++delta == 0) {
                return Error{"punycode_overflow", "delta wrapped during encode"};
            }
            if (cp == n) {
                uint32_t q = delta;
                for (uint32_t k = kBase;; k += kBase) {
                    uint32_t t = k <= bias ? kTMin : (k >= bias + kTMax ? kTMax : k - bias);
                    if (q < t) break;
                    output.push_back(encode_digit(t + (q - t) % (kBase - t)));
                    q = (q - t) / (kBase - t);
                }
                output.push_back(encode_digit(q));
                bias = adapt(delta, handled + 1, handled == basic_count);
                delta = 0;
                ++handled;
            }
        }
        ++delta;
        ++n;
    }
    return output;
}

Expected<unicode::CodePoints> punycode_decode(std::string_view input) {
    unicode::CodePoints output;

    // Basic code points precede the last delimiter.
    size_t b = input.rfind(kDelimiter);
    size_t in = 0;
    if (b != std::string_view::npos) {
        for (size_t i = 0; i < b; ++i) {
            unsigned char c = static_cast<unsigned char>(input[i]);
            if (c >= 0x80) {
                return Error{"punycode_nonbasic",
                             "non-basic code point before delimiter at " + std::to_string(i)};
            }
            output.push_back(c);
        }
        in = b + 1;
    }

    uint32_t n = kInitialN;
    uint32_t i = 0;
    uint32_t bias = kInitialBias;

    while (in < input.size()) {
        uint32_t oldi = i;
        uint32_t w = 1;
        for (uint32_t k = kBase;; k += kBase) {
            if (in >= input.size()) {
                return Error{"punycode_truncated", "input ended inside a variable-length integer"};
            }
            uint32_t digit = decode_digit(input[in++]);
            if (digit >= kBase) {
                return Error{"punycode_bad_digit",
                             "invalid digit at position " + std::to_string(in - 1)};
            }
            if (digit > (kMaxInt - i) / w) {
                return Error{"punycode_overflow", "i overflow during decode"};
            }
            i += digit * w;
            uint32_t t = k <= bias ? kTMin : (k >= bias + kTMax ? kTMax : k - bias);
            if (digit < t) break;
            if (w > kMaxInt / (kBase - t)) {
                return Error{"punycode_overflow", "w overflow during decode"};
            }
            w *= kBase - t;
        }
        uint32_t out_len = static_cast<uint32_t>(output.size()) + 1;
        bias = adapt(i - oldi, out_len, oldi == 0);
        if (i / out_len > kMaxInt - n) {
            return Error{"punycode_overflow", "n overflow during decode"};
        }
        n += i / out_len;
        i %= out_len;
        if (n > unicode::kMaxCodePoint || unicode::is_surrogate(n)) {
            return Error{"punycode_invalid_codepoint",
                         "decoded value is not a Unicode scalar value"};
        }
        output.insert(output.begin() + i, n);
        ++i;
    }
    return output;
}

}  // namespace unicert::idna
