#include "common/base64.h"

#include <array>

namespace unicert {
namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<int8_t, 256> build_reverse() {
    std::array<int8_t, 256> table{};
    for (auto& v : table) v = -1;
    for (int i = 0; i < 64; ++i) table[static_cast<uint8_t>(kAlphabet[i])] = static_cast<int8_t>(i);
    return table;
}

constexpr std::array<int8_t, 256> kReverse = build_reverse();

bool is_space(char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

}  // namespace

std::string base64_encode(BytesView data) {
    std::string out;
    out.reserve((data.size() + 2) / 3 * 4);
    size_t i = 0;
    for (; i + 3 <= data.size(); i += 3) {
        uint32_t v = (static_cast<uint32_t>(data[i]) << 16) |
                     (static_cast<uint32_t>(data[i + 1]) << 8) | data[i + 2];
        out.push_back(kAlphabet[(v >> 18) & 0x3F]);
        out.push_back(kAlphabet[(v >> 12) & 0x3F]);
        out.push_back(kAlphabet[(v >> 6) & 0x3F]);
        out.push_back(kAlphabet[v & 0x3F]);
    }
    size_t rem = data.size() - i;
    if (rem == 1) {
        uint32_t v = static_cast<uint32_t>(data[i]) << 16;
        out.push_back(kAlphabet[(v >> 18) & 0x3F]);
        out.push_back(kAlphabet[(v >> 12) & 0x3F]);
        out += "==";
    } else if (rem == 2) {
        uint32_t v = (static_cast<uint32_t>(data[i]) << 16) |
                     (static_cast<uint32_t>(data[i + 1]) << 8);
        out.push_back(kAlphabet[(v >> 18) & 0x3F]);
        out.push_back(kAlphabet[(v >> 12) & 0x3F]);
        out.push_back(kAlphabet[(v >> 6) & 0x3F]);
        out.push_back('=');
    }
    return out;
}

Expected<Bytes> base64_decode(std::string_view text) {
    Bytes out;
    uint32_t acc = 0;
    int bits = 0;
    size_t padding = 0;
    for (char c : text) {
        if (is_space(c)) continue;
        if (c == '=') {
            ++padding;
            continue;
        }
        if (padding > 0) {
            return Error{"base64_data_after_padding", "content after '='"};
        }
        int8_t v = kReverse[static_cast<uint8_t>(c)];
        if (v < 0) {
            return Error{"base64_bad_character",
                         std::string("invalid base64 character '") + c + "'"};
        }
        acc = (acc << 6) | static_cast<uint32_t>(v);
        bits += 6;
        if (bits >= 8) {
            bits -= 8;
            out.push_back(static_cast<uint8_t>((acc >> bits) & 0xFF));
        }
    }
    if (padding > 2) return Error{"base64_bad_padding", "more than two '='"};
    // Leftover bits must be zero-padded correctly.
    if (bits >= 6) return Error{"base64_truncated", "dangling base64 unit"};
    if (bits > 0 && (acc & ((1u << bits) - 1)) != 0) {
        return Error{"base64_nonzero_padding_bits", "non-canonical final unit"};
    }
    return out;
}

}  // namespace unicert
