// unicert/common/base64.h
//
// Standard (RFC 4648) base64 used by the PEM layer.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/expected.h"

namespace unicert {

// Encode without line wrapping.
std::string base64_encode(BytesView data);

// Decode; ignores ASCII whitespace, enforces valid alphabet/padding.
Expected<Bytes> base64_decode(std::string_view text);

}  // namespace unicert
