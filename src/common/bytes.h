// unicert/common/bytes.h
//
// Byte-buffer aliases and small helpers shared by the DER, crypto and
// codec layers. We standardize on std::vector<uint8_t> for owned binary
// data and std::span<const uint8_t> at API boundaries.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace unicert {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

// Reinterpret a string's storage as bytes (no copy of semantics; the
// returned vector copies the data).
inline Bytes to_bytes(std::string_view s) {
    return Bytes(s.begin(), s.end());
}

// Reinterpret bytes as a std::string (binary-safe; may contain NULs).
inline std::string to_string(BytesView b) {
    return std::string(b.begin(), b.end());
}

// Lowercase hex encoding, e.g. {0xDE, 0xAD} -> "dead".
inline std::string hex_encode(BytesView b) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(b.size() * 2);
    for (uint8_t byte : b) {
        out.push_back(kDigits[byte >> 4]);
        out.push_back(kDigits[byte & 0x0F]);
    }
    return out;
}

// Inverse of hex_encode. Returns empty on odd length or non-hex input.
inline Bytes hex_decode(std::string_view s) {
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
    };
    if (s.size() % 2 != 0) return {};
    Bytes out;
    out.reserve(s.size() / 2);
    for (size_t i = 0; i < s.size(); i += 2) {
        int hi = nibble(s[i]);
        int lo = nibble(s[i + 1]);
        if (hi < 0 || lo < 0) return {};
        out.push_back(static_cast<uint8_t>((hi << 4) | lo));
    }
    return out;
}

// Append one buffer to another.
inline void append(Bytes& dst, BytesView src) {
    dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace unicert
