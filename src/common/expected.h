// unicert/common/expected.h
//
// A minimal expected<T, E> used across the library for recoverable
// errors (parse failures, range violations). Exceptions are reserved
// for programming errors; anything driven by untrusted input returns
// an Expected.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace unicert {

// Error payload carried by Expected on the failure path. Holds a
// machine-readable code string (stable, snake_case) plus a human
// message with position / context details. Parsers additionally record
// the absolute byte offset where decoding failed (kNoOffset when the
// failure has no meaningful position), which quarantine reports surface.
struct Error {
    static constexpr size_t kNoOffset = static_cast<size_t>(-1);

    std::string code;
    std::string message;
    size_t offset = kNoOffset;

    Error() = default;
    Error(std::string c, std::string m) : code(std::move(c)), message(std::move(m)) {}
    Error(std::string c, std::string m, size_t off)
        : code(std::move(c)), message(std::move(m)), offset(off) {}

    bool has_offset() const noexcept { return offset != kNoOffset; }

    // Rebase a relative offset onto an enclosing buffer position.
    Error shift_offset(size_t base) const {
        Error out = *this;
        if (out.has_offset()) out.offset += base;
        return out;
    }

    bool operator==(const Error& other) const = default;
};

// Expected<T>: either a value or an Error. Deliberately small; only the
// operations the library needs. Accessing the wrong alternative is a
// programming error (asserts in debug builds).
template <typename T>
class Expected {
public:
    Expected(T value) : state_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
    Expected(Error error) : state_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

    bool ok() const noexcept { return std::holds_alternative<T>(state_); }
    explicit operator bool() const noexcept { return ok(); }

    const T& value() const& {
        assert(ok());
        return std::get<T>(state_);
    }
    T& value() & {
        assert(ok());
        return std::get<T>(state_);
    }
    T&& value() && {
        assert(ok());
        return std::get<T>(std::move(state_));
    }
    const T& operator*() const& { return value(); }
    T& operator*() & { return value(); }
    const T* operator->() const { return &value(); }
    T* operator->() { return &value(); }

    const Error& error() const& {
        assert(!ok());
        return std::get<Error>(state_);
    }

    T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

private:
    std::variant<T, Error> state_;
};

// Expected<void> analogue for operations that only signal success/failure.
class Status {
public:
    Status() = default;
    Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT(google-explicit-constructor)

    static Status success() { return Status{}; }

    bool ok() const noexcept { return !failed_; }
    explicit operator bool() const noexcept { return ok(); }

    const Error& error() const {
        assert(failed_);
        return error_;
    }

private:
    Error error_;
    bool failed_ = false;
};

}  // namespace unicert
