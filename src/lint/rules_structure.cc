// T3 "Invalid Structure" (2 lints) and "Discouraged Field" (2 lints)
// rules (Section 4.3.1).
#include "lint/helpers.h"
#include "lint/rules.h"

namespace unicert::lint {
namespace {

using x509::AttributeValue;
using x509::CertField;
using x509::GeneralName;
using x509::GeneralNameType;

Rule make(std::string name, std::string description, Severity severity, NcType type,
          Source source, int64_t effective, RuleFootprint fp,
          std::function<std::optional<std::string>(const CertView&)> check) {
    Rule r;
    r.info = {std::move(name), std::move(description), severity, source, type, effective,
              /*is_new=*/false, std::move(fp)};
    r.check = std::move(check);
    return r;
}

}  // namespace

void register_structure_rules(Registry& reg) {
    namespace oids = asn1::oids;

    // 1. CABF BR: every Subject CN value must also appear in the SAN.
    //    The paper's single biggest structure lint (93.7K certs). The
    //    name keeps zlint's w_ prefix; the BR requirement level is MUST
    //    and the paper's Table 1 counts these as error-level.
    reg.add(make(
        "w_cab_subject_common_name_not_in_san",
        "Subject CommonName values must be repeated in the SAN",
        Severity::kError, NcType::kInvalidStructure, Source::kCabfBr, dates::kCabfBr,
        footprint({CertField::kSubject}, {&oids::subject_alt_name()}, {&oids::common_name()}),
        [](const CertView& cert) -> std::optional<std::string> {
            auto cns = cert.subject_common_names();
            if (cns.empty()) return std::nullopt;
            const x509::GeneralNames& sans = cert.subject_alt_names();
            for (const AttributeValue* cn : cns) {
                std::string value = cn->to_utf8_lossy();
                if (!looks_like_hostname(value)) continue;
                bool found = false;
                for (const GeneralName& gn : sans) {
                    if (gn.type == GeneralNameType::kDnsName && gn.to_utf8_lossy() == value) {
                        found = true;
                        break;
                    }
                }
                if (!found) return "CN '" + value + "' not present in SAN";
            }
            return std::nullopt;
        }));

    // 2. Duplicate non-CN attribute types in the Subject (duplicate CN
    //    is covered by w_cab_subject_contain_extra_common_name below).
    reg.add(make(
        "e_rfc_subject_duplicate_attribute",
        "Subject must not repeat attribute types (other than CN, OU, DC, STREET)",
        Severity::kError, NcType::kInvalidStructure, Source::kRfc5280, dates::kRfc5280,
        footprint({CertField::kSubject}),
        [](const CertView& cert) -> std::optional<std::string> {
            // Attributes that may legitimately repeat.
            const asn1::Oid* repeatable[] = {
                &asn1::oids::common_name(),  // handled by the discouraged lint
                &asn1::oids::organizational_unit_name(),
                &asn1::oids::domain_component(),
                &asn1::oids::street_address(),
            };
            std::vector<asn1::Oid> seen;
            std::optional<std::string> found;
            for_each_attribute(cert.subject(), [&](const AttributeValue& av) {
                if (found) return;
                for (const asn1::Oid* ok : repeatable) {
                    if (av.type == *ok) return;
                }
                for (const asn1::Oid& s : seen) {
                    if (s == av.type) {
                        found = "duplicate attribute " + asn1::attribute_short_name(av.type);
                        return;
                    }
                }
                seen.push_back(av.type);
            });
            return found;
        }));
}

void register_discouraged_rules(Registry& reg) {
    namespace oids = asn1::oids;

    // 1. Multiple CommonNames in the Subject (589 certs in the paper).
    reg.add(make(
        "w_cab_subject_contain_extra_common_name",
        "Subject should contain at most one CommonName",
        Severity::kWarning, NcType::kDiscouragedField, Source::kCabfBr, dates::kCabfBr,
        footprint({CertField::kSubject}, {}, {&oids::common_name()}),
        [](const CertView& cert) -> std::optional<std::string> {
            size_t n = cert.subject_common_names().size();
            if (n > 1) return std::to_string(n) + " CommonName attributes present";
            return std::nullopt;
        }));

    // 2. URIs in the SAN of TLS server certificates are discouraged.
    reg.add(make(
        "w_discouraged_san_uri",
        "URI entries in the SAN of server certificates are discouraged",
        Severity::kWarning, NcType::kDiscouragedField, Source::kCabfBr, dates::kCabfBr,
        footprint({}, {&oids::subject_alt_name()}),
        [](const CertView& cert) -> std::optional<std::string> {
            for (const GeneralName& gn : cert.subject_alt_names()) {
                if (gn.type == GeneralNameType::kUri) {
                    return std::string("SAN contains a URI entry");
                }
            }
            return std::nullopt;
        }));
}

}  // namespace unicert::lint
