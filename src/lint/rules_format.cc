// T3 "Illegal Format" rules: basic formatting errors — length
// overflows, wrong character case, malformed hostnames, reversed
// validity (Section 4.3.1). 17 lints, none new.
#include "lint/helpers.h"
#include "lint/rules.h"
#include "unicode/properties.h"

namespace unicert::lint {
namespace {

using unicode::CodePoints;
using x509::AttributeValue;
using x509::CertField;
using x509::GeneralName;
using x509::GeneralNameType;

Rule make(std::string name, std::string description, Severity severity, Source source,
          int64_t effective, RuleFootprint fp,
          std::function<std::optional<std::string>(const CertView&)> check) {
    Rule r;
    r.info = {std::move(name), std::move(description), severity, source,
              NcType::kIllegalFormat, effective, /*is_new=*/false, std::move(fp)};
    r.check = std::move(check);
    return r;
}

// Max-length rule factory for one subject attribute (X.520 upper bounds).
Rule attr_max_length(std::string name, const asn1::Oid& oid, size_t max_chars) {
    return make(
        std::move(name),
        "attribute value exceeds its X.520 upper bound of " + std::to_string(max_chars),
        Severity::kError, Source::kRfc5280, dates::kRfc5280,
        footprint({CertField::kSubject}, {}, {&oid}),
        [&oid, max_chars](const CertView& cert) -> std::optional<std::string> {
            for (const AttributeValue* av : cert.subject().find_all(oid)) {
                auto cps = decode_attribute(*av);
                if (!cps) continue;
                if (cps->size() > max_chars) {
                    return asn1::attribute_short_name(oid) + " has " +
                           std::to_string(cps->size()) + " characters (max " +
                           std::to_string(max_chars) + ")";
                }
            }
            return std::nullopt;
        });
}

std::optional<std::string> for_each_dns_label(
    const CertView& cert,
    const std::function<std::optional<std::string>(const std::string&, size_t label_index)>&
        check) {
    for (const DnsNameRef& dns : dns_name_candidates(cert)) {
        size_t start = 0;
        size_t index = 0;
        const std::string& host = dns.value;
        while (start <= host.size()) {
            size_t dot = host.find('.', start);
            std::string label =
                host.substr(start, dot == std::string::npos ? std::string::npos : dot - start);
            if (auto r = check(label, index)) return r;
            ++index;
            if (dot == std::string::npos) break;
            start = dot + 1;
        }
    }
    return std::nullopt;
}

// Footprint of every rule reading DNSName candidates (SAN + subject CN).
RuleFootprint dns_footprint() {
    return footprint({CertField::kSubject}, {&asn1::oids::subject_alt_name()},
                     {&asn1::oids::common_name()});
}

}  // namespace

void register_format_rules(Registry& reg) {
    // 1. CertificatePolicies explicitText length bound (200 chars,
    //    RFC 5280 sec. 4.2.1.4) — 2,988 certs in the paper.
    reg.add(make(
        "e_rfc_ext_cp_explicit_text_too_long",
        "CertificatePolicies explicitText must not exceed 200 characters",
        Severity::kError, Source::kRfc5280, dates::kRfc5280,
        footprint({}, {&asn1::oids::certificate_policies()}),
        [](const CertView& cert) -> std::optional<std::string> {
            const x509::Extension* ext = cert.find_extension(asn1::oids::certificate_policies());
            if (ext == nullptr) return std::nullopt;
            auto policies = x509::parse_certificate_policies(*ext);
            if (!policies.ok()) return std::nullopt;
            for (const x509::PolicyInformation& pi : policies.value()) {
                for (const x509::PolicyQualifier& q : pi.qualifiers) {
                    if (!q.explicit_text) continue;
                    std::string text = q.explicit_text->to_utf8_lossy();
                    auto cps = unicode::utf8_to_codepoints(text);
                    size_t n = cps.ok() ? cps->size() : text.size();
                    if (n > 200) {
                        return "explicitText has " + std::to_string(n) + " characters";
                    }
                }
            }
            return std::nullopt;
        }));

    // 2-6. X.520 attribute upper bounds.
    reg.add(attr_max_length("e_subject_common_name_max_length", asn1::oids::common_name(), 64));
    reg.add(attr_max_length("e_subject_organization_name_max_length",
                            asn1::oids::organization_name(), 64));
    reg.add(attr_max_length("e_subject_organizational_unit_name_max_length",
                            asn1::oids::organizational_unit_name(), 64));
    reg.add(attr_max_length("e_subject_locality_name_max_length", asn1::oids::locality_name(),
                            128));
    reg.add(attr_max_length("e_subject_state_name_max_length",
                            asn1::oids::state_or_province_name(), 128));

    // 7. CountryName must be exactly two letters.
    reg.add(make(
        "e_subject_country_not_two_letters",
        "CountryName must be a 2-character ISO 3166 code",
        Severity::kError, Source::kRfc5280, dates::kRfc5280,
        footprint({CertField::kSubject}, {}, {&asn1::oids::country_name()}),
        [](const CertView& cert) -> std::optional<std::string> {
            for (const AttributeValue* av : cert.subject().find_all(asn1::oids::country_name())) {
                auto cps = decode_attribute(*av);
                if (!cps) continue;
                if (cps->size() != 2) {
                    return "C has " + std::to_string(cps->size()) + " characters";
                }
            }
            return std::nullopt;
        }));

    // 8. CountryName must be uppercase (the "DE,de / Germany" variants).
    reg.add(make(
        "e_subject_country_not_uppercase",
        "CountryName codes must use uppercase letters",
        Severity::kError, Source::kCabfBr, dates::kCabfBr,
        footprint({CertField::kSubject}, {}, {&asn1::oids::country_name()}),
        [](const CertView& cert) -> std::optional<std::string> {
            for (const AttributeValue* av : cert.subject().find_all(asn1::oids::country_name())) {
                auto cps = decode_attribute(*av);
                if (!cps) continue;
                for (unicode::CodePoint cp : *cps) {
                    if (cp >= 'a' && cp <= 'z') return std::string("C contains lowercase");
                }
            }
            return std::nullopt;
        }));

    // 9-12. DNS syntax limits.
    reg.add(make(
        "e_dns_label_too_long", "DNS labels are limited to 63 octets",
        Severity::kError, Source::kDnsRfc, dates::kAlways, dns_footprint(),
        [](const CertView& cert) {
            return for_each_dns_label(cert, [](const std::string& label, size_t)
                                                -> std::optional<std::string> {
                if (label.size() > 63) return "label of " + std::to_string(label.size()) + " octets";
                return std::nullopt;
            });
        }));
    reg.add(make(
        "e_dns_name_too_long", "DNS names are limited to 253 octets",
        Severity::kError, Source::kDnsRfc, dates::kAlways, dns_footprint(),
        [](const CertView& cert) -> std::optional<std::string> {
            for (const DnsNameRef& dns : dns_name_candidates(cert)) {
                if (dns.value.size() > 253) {
                    return "name of " + std::to_string(dns.value.size()) + " octets";
                }
            }
            return std::nullopt;
        }));
    reg.add(make(
        "e_dns_label_empty", "DNS names must not contain empty labels",
        Severity::kError, Source::kDnsRfc, dates::kAlways, dns_footprint(),
        [](const CertView& cert) -> std::optional<std::string> {
            for (const DnsNameRef& dns : dns_name_candidates(cert)) {
                if (dns.value.empty()) return std::string("empty DNSName");
                if (dns.value.find("..") != std::string::npos || dns.value.front() == '.') {
                    return "empty label in '" + dns.value + "'";
                }
            }
            return std::nullopt;
        }));
    reg.add(make(
        "e_dns_wildcard_not_leftmost",
        "wildcards are only permitted as the complete leftmost label",
        Severity::kError, Source::kCabfBr, dates::kCabfBr, dns_footprint(),
        [](const CertView& cert) {
            return for_each_dns_label(cert, [](const std::string& label, size_t index)
                                                -> std::optional<std::string> {
                if (label.find('*') != std::string::npos && (index != 0 || label != "*")) {
                    return "wildcard inside label '" + label + "'";
                }
                return std::nullopt;
            });
        }));

    // 13/14. Serial number bounds (RFC 5280 sec. 4.1.2.2).
    reg.add(make(
        "e_serial_number_too_long", "serialNumber must be at most 20 octets",
        Severity::kError, Source::kRfc5280, dates::kRfc5280,
        footprint({CertField::kSerial}),
        [](const CertView& cert) -> std::optional<std::string> {
            if (cert.serial().size() > 20) {
                return std::to_string(cert.serial().size()) + "-octet serial";
            }
            return std::nullopt;
        }));
    reg.add(make(
        "e_serial_number_not_positive", "serialNumber must be a positive integer",
        Severity::kError, Source::kRfc5280, dates::kRfc5280,
        footprint({CertField::kSerial}),
        [](const CertView& cert) -> std::optional<std::string> {
            bool all_zero = true;
            for (uint8_t b : cert.serial()) {
                if (b != 0) {
                    all_zero = false;
                    break;
                }
            }
            if (cert.serial().empty() || all_zero) return std::string("zero or empty serial");
            return std::nullopt;
        }));

    // 15. Validity sanity. Cited against RFC 5280 sec. 4.1.2.5, so the
    //     effective date matches the citation rather than kAlways.
    reg.add(make(
        "e_validity_reversed", "notAfter must not precede notBefore",
        Severity::kError, Source::kRfc5280, dates::kRfc5280,
        footprint({CertField::kValidity}),
        [](const CertView& cert) -> std::optional<std::string> {
            if (cert.validity().not_after < cert.validity().not_before) {
                return std::string("notAfter < notBefore");
            }
            return std::nullopt;
        }));

    // 16. SAN entries must not be empty strings.
    reg.add(make(
        "e_san_dns_empty_value", "SAN DNSName values must not be empty",
        Severity::kError, Source::kRfc5280, dates::kRfc5280,
        footprint({}, {&asn1::oids::subject_alt_name()}),
        [](const CertView& cert) -> std::optional<std::string> {
            for (const GeneralName& gn : cert.subject_alt_names()) {
                if (gn.type == GeneralNameType::kDnsName && gn.value_bytes.empty()) {
                    return std::string("empty DNSName entry");
                }
            }
            return std::nullopt;
        }));

    // 17. rfc822Name must contain exactly one '@' (mailbox syntax).
    reg.add(make(
        "e_rfc822_no_at_symbol", "rfc822Names must be addr-spec mailboxes",
        Severity::kError, Source::kRfc5280, dates::kRfc5280,
        footprint({}, {&asn1::oids::subject_alt_name()}),
        [](const CertView& cert) -> std::optional<std::string> {
            for (const GeneralName& gn : cert.subject_alt_names()) {
                if (gn.type != GeneralNameType::kRfc822Name) continue;
                std::string v = gn.to_utf8_lossy();
                size_t at = v.find('@');
                if (at == std::string::npos || at == 0 || at + 1 == v.size() ||
                    v.find('@', at + 1) != std::string::npos) {
                    return "rfc822Name '" + v + "' is not a valid mailbox";
                }
            }
            return std::nullopt;
        }));
}

}  // namespace unicert::lint
