// Assembles the default 95-lint registry (Table 1's "All (New)"
// column: T1 22(10), T2 4(3), T3 format 17(0), encoding 48(37),
// structure 2(0), discouraged 2(0) — 95 lints, 50 new).
#include "lint/lint.h"
#include "lint/rules.h"

namespace unicert::lint {

const Registry& default_registry() {
    static const Registry registry = [] {
        Registry r;
        register_charset_rules(r);
        register_normalization_rules(r);
        register_format_rules(r);
        register_encoding_rules(r);
        register_structure_rules(r);
        register_discouraged_rules(r);
        return r;
    }();
    return registry;
}

}  // namespace unicert::lint
